//! Failure injection: every factorization flavor must degrade *predictably*
//! on hostile inputs — exact singularity at assorted ranks and positions,
//! non-finite entries, and degenerate shapes. Errors, never wrong answers
//! or panics (panics are reserved for API misuse).

use calu_repro::core::{
    calu_factor, gepp_factor, runtime_calu_factor, tiled_calu_factor, tslu_factor, CaluOpts,
    LocalLu, RuntimeOpts,
};
use calu_repro::matrix::lapack::{getf2, getf2_info, getrf, GetrfOpts};
use calu_repro::matrix::{gen, Error, Matrix, NoObs};
use calu_repro::runtime::ExecutorKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Matrix with exact rank `r`: random leading r columns, zero tail columns.
fn rank_deficient(seed: u64, n: usize, r: usize) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let b = gen::randn(&mut rng, n, r);
    Matrix::from_fn(n, n, |i, j| if j < r { b[(i, j)] } else { 0.0 })
}

#[test]
fn all_flavors_report_singularity_at_the_same_step() {
    let n = 48;
    for &r in &[1usize, 7, 24, 47] {
        let a = rank_deficient(500 + r as u64, n, r);
        let opts = CaluOpts { block: 8, p: 4, ..Default::default() };

        let e_calu = calu_factor(&a, opts).unwrap_err();
        let e_tiled = tiled_calu_factor(&a, opts).unwrap_err();
        let e_gepp = gepp_factor(&a, 8).unwrap_err();

        // Zero columns make the first dead pivot exactly step r for every
        // pivoting strategy.
        for (name, e) in [("calu", e_calu), ("tiled", e_tiled), ("gepp", e_gepp)] {
            match e {
                Error::SingularPivot { step } => {
                    assert_eq!(step, r, "{name}: wrong singular step for rank {r}")
                }
                other => panic!("{name}: unexpected error {other:?}"),
            }
        }
    }
}

#[test]
fn runtime_dag_cancels_on_singularity_and_reports_absolute_step() {
    // A SingularPivot inside a Panel(k) task must cancel dependent tasks
    // and surface the *absolute* elimination step — same contract as the
    // sequential sweep's `shift_step`, now across the task DAG at every
    // lookahead depth and on both executors.
    let n = 48;
    for &r in &[1usize, 7, 24, 47] {
        let a = rank_deficient(500 + r as u64, n, r);
        let opts = CaluOpts { block: 8, p: 4, ..Default::default() };
        for lookahead in 1..=3 {
            for executor in [
                ExecutorKind::Serial,
                ExecutorKind::Threaded { threads: 2 },
                ExecutorKind::Threaded { threads: 4 },
            ] {
                let rt = RuntimeOpts { lookahead, executor, parallel_panel: false };
                let e = runtime_calu_factor(&a, opts, rt).unwrap_err();
                match e {
                    Error::SingularPivot { step } => assert_eq!(
                        step, r,
                        "rank {r} d={lookahead} {executor:?}: wrong singular step"
                    ),
                    other => panic!("rank {r}: unexpected error {other:?}"),
                }
            }
        }
    }
}

#[test]
fn resident_panel_subgraph_cancels_on_singularity_and_reports_absolute_step() {
    // Same contract as the monolithic Panel(k) above, but with the panel
    // decomposed into the PanelElect/PanelReduce/PanelFinish/PanelApply
    // subgraph: rank-deficient stacks never fail inside the tournament
    // (elections and reductions always elect *some* rows), so the dead
    // pivot surfaces in PanelFinish's diagonal-tile elimination — and it
    // must still be rebased to the absolute step, cancel all dependents
    // on both executors at every depth, and never hang.
    use calu_repro::core::{runtime_calu_tiles_factor, PanelMode};
    let n = 48;
    for &r in &[1usize, 7, 24, 47] {
        let a = rank_deficient(500 + r as u64, n, r);
        let opts = CaluOpts { block: 8, panel_mode: PanelMode::Resident, ..Default::default() };
        for lookahead in 1..=3 {
            for executor in [
                ExecutorKind::Serial,
                ExecutorKind::Threaded { threads: 2 },
                ExecutorKind::Threaded { threads: 4 },
            ] {
                let rt = RuntimeOpts { lookahead, executor, parallel_panel: false };
                let e = runtime_calu_factor(&a, opts, rt).unwrap_err();
                match e {
                    Error::SingularPivot { step } => assert_eq!(
                        step, r,
                        "resident rank {r} d={lookahead} {executor:?}: wrong singular step"
                    ),
                    other => panic!("resident rank {r}: unexpected error {other:?}"),
                }
                let e = runtime_calu_tiles_factor(&a, opts, rt).unwrap_err();
                match e {
                    Error::SingularPivot { step } => assert_eq!(
                        step, r,
                        "resident tiles rank {r} d={lookahead} {executor:?}: wrong singular step"
                    ),
                    other => panic!("resident tiles rank {r}: unexpected error {other:?}"),
                }
            }
        }
    }
}

#[test]
fn resident_singularity_in_looked_ahead_panel_still_sequentially_first() {
    // Unbounded lookahead runs later panels' elects early; the reduction
    // spine of the failing panel must still report the sequentially-first
    // dead pivot (panels are chained through PanelFinish).
    use calu_repro::core::PanelMode;
    let n = 64;
    let a = rank_deficient(777, n, 40);
    let opts = CaluOpts { block: 8, panel_mode: PanelMode::Resident, ..Default::default() };
    let rt = RuntimeOpts {
        lookahead: 1_000_000,
        executor: ExecutorKind::Threaded { threads: 4 },
        parallel_panel: true,
    };
    let e = runtime_calu_factor(&a, opts, rt).unwrap_err();
    assert_eq!(e, Error::SingularPivot { step: 40 });
}

#[test]
fn runtime_singularity_in_looked_ahead_panel_still_sequentially_first() {
    // Deep lookahead runs Panel(k+1), Panel(k+2), ... early; a failure
    // discovered out of wall-clock order must still be reported as the
    // error the sequential sweep would hit (panels are chained, so the
    // first failing panel *is* the sequential one).
    let n = 64;
    let a = rank_deficient(777, n, 40);
    let opts = CaluOpts { block: 8, p: 4, ..Default::default() };
    let rt = RuntimeOpts {
        lookahead: 1_000_000,
        executor: ExecutorKind::Threaded { threads: 4 },
        parallel_panel: true,
    };
    let e = runtime_calu_factor(&a, opts, rt).unwrap_err();
    assert_eq!(e, Error::SingularPivot { step: 40 });
}

#[test]
fn zero_matrix_fails_at_step_zero() {
    let a: Matrix = Matrix::zeros(16, 16);
    let e = calu_factor(&a, CaluOpts { block: 4, p: 2, ..Default::default() }).unwrap_err();
    assert_eq!(e, Error::SingularPivot { step: 0 });
}

#[test]
fn one_by_one_matrices() {
    let a = Matrix::from_rows(&[&[3.0]]);
    let f = calu_factor(&a, CaluOpts { block: 1, p: 1, ..Default::default() }).unwrap();
    assert_eq!(f.lu[(0, 0)], 3.0);
    assert_eq!(f.solve(&[6.0]), vec![2.0]);

    let z = Matrix::from_rows(&[&[0.0]]);
    let e = calu_factor(&z, CaluOpts { block: 1, p: 1, ..Default::default() }).unwrap_err();
    assert_eq!(e, Error::SingularPivot { step: 0 });
}

#[test]
fn nan_input_is_reported_not_propagated_silently() {
    let mut rng = StdRng::seed_from_u64(321);
    let mut a = gen::randn(&mut rng, 24, 24);
    a[(10, 3)] = f64::NAN;
    // The NaN reaches a pivot comparison within the first panel; strict
    // kernels flag it rather than produce a NaN-filled "factorization"
    // silently. (iamax treats NaN as non-maximal, so the chosen pivot is
    // finite until the NaN contaminates the column — at which point the
    // column max is NaN and getf2 errors.)
    let mut w = a.clone();
    let mut ipiv = vec![0usize; 24];
    let r = getf2(w.view_mut(), &mut ipiv, &mut NoObs);
    assert!(r.is_err(), "a NaN column maximum must be flagged");
}

#[test]
fn inf_entry_is_flagged_by_strict_kernels() {
    let mut rng = StdRng::seed_from_u64(322);
    let mut a = gen::randn(&mut rng, 16, 16);
    a[(4, 0)] = f64::INFINITY;
    let mut ipiv = vec![0usize; 16];
    let e = getf2(a.view_mut(), &mut ipiv, &mut NoObs).unwrap_err();
    assert!(matches!(e, Error::SingularPivot { step: 0 }), "{e:?}");
}

#[test]
fn getf2_info_completes_where_strict_errors() {
    let a = rank_deficient(600, 32, 5);
    let mut w1 = a.clone();
    let mut ip1 = vec![0usize; 32];
    assert!(getf2(w1.view_mut(), &mut ip1, &mut NoObs).is_err());

    let mut w2 = a.clone();
    let mut ip2 = vec![0usize; 32];
    let info = getf2_info(w2.view_mut(), &mut ip2, &mut NoObs);
    assert_eq!(info, Some(5));
    // And the completed factors agree with the strict attempt's prefix.
    assert_eq!(w1.max_abs_diff(&w2), 0.0, "both run to completion identically");
}

#[test]
fn tslu_panel_with_singular_candidates_still_elects_winners() {
    // A panel whose middle block-row is all zeros: the tournament must not
    // fail — it elects winners from the live blocks (the Wilkinson
    // regression that motivated the LAPACK-faithful info kernels).
    let mut rng = StdRng::seed_from_u64(323);
    let mut panel = gen::randn(&mut rng, 32, 4);
    for i in 8..16 {
        for j in 0..4 {
            panel[(i, j)] = 0.0;
        }
    }
    let r = tslu_factor(panel.view_mut(), 4, LocalLu::Recursive, &mut NoObs).unwrap();
    assert_eq!(r.pivot_rows.len(), 4);
    for &w in &r.pivot_rows {
        assert!(!(8..16).contains(&w), "zero rows must not win the tournament");
    }
}

#[test]
fn wilkinson_block_rows_regression() {
    // The original failure: Wilkinson's matrix makes every off-diagonal
    // block-row rank 1, so local GEPPs hit exact zero pivots mid-panel.
    // CALU must factor it and reproduce the 2^(n-1) growth.
    let n = 24;
    let a: Matrix = gen::wilkinson(n);
    for p in [2usize, 4, 8] {
        let f = calu_factor(&a, CaluOpts { block: 8, p, ..Default::default() })
            .unwrap_or_else(|e| panic!("p={p}: {e}"));
        let umax = f.lu.upper().max_abs();
        assert!(umax >= 2f64.powi(n as i32 - 1) * 0.99, "p={p}: growth {umax}");
    }
}

#[test]
fn getrf_errors_with_absolute_step_across_blocks() {
    // Singularity in a later panel must report the absolute column.
    let a = rank_deficient(700, 40, 25);
    let mut w = a.clone();
    let mut ipiv = vec![0usize; 40];
    let e =
        getrf(w.view_mut(), &mut ipiv, GetrfOpts { block: 8, ..Default::default() }, &mut NoObs)
            .unwrap_err();
    assert_eq!(e, Error::SingularPivot { step: 25 });
}

#[test]
fn solve_with_huge_scale_variation_stays_accurate_after_equilibration() {
    use calu_repro::matrix::lapack::{geequ, getrs, laqge, unscale_solution};
    let mut rng = StdRng::seed_from_u64(324);
    let n = 32;
    let mut a = gen::diag_dominant(&mut rng, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] *= 10.0_f64.powi((i % 9) as i32 - 4);
        }
    }
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 4) as f64) - 1.5).collect();
    let b = gen::rhs_for_solution(&a, &x_true);

    let eq = geequ(a.view()).unwrap();
    let mut s = a.clone();
    laqge(s.view_mut(), &eq);
    let mut bs: Vec<f64> = b.iter().zip(&eq.r).map(|(bi, ri)| bi * ri).collect();
    let mut ipiv = vec![0usize; n];
    getrf(s.view_mut(), &mut ipiv, GetrfOpts::default(), &mut NoObs).unwrap();
    getrs(s.view(), &ipiv, &mut bs);
    unscale_solution(&mut bs, &eq);
    for (got, want) in bs.iter().zip(&x_true) {
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }
}

#[test]
fn distributed_dag_cancels_across_ranks_and_reports_absolute_step() {
    // A singular pivot on any rank of the distributed DAG must cancel the
    // dependent tasks of *other ranks* (no hang — they simply never
    // start) and surface `DistFactors::first_singular` at the absolute
    // elimination step, for both executors, every lookahead depth, and
    // both panel algorithms — mirroring the shared-memory runtime's
    // failure contract above.
    use calu_repro::core::dist::{
        dist_calu_factor_spmd, dist_pdgetrf_factor_spmd, DistCaluConfig, DistPdgetrfConfig,
    };
    use calu_repro::core::{dist_calu_factor_rt, dist_pdgetrf_factor_rt, DistRtOpts};
    use calu_repro::netsim::MachineConfig;
    let n = 32;
    for &r in &[5usize, 17] {
        let a = rank_deficient(900 + r as u64, n, r);
        let calu_cfg = DistCaluConfig { b: 8, pr: 2, pc: 2, local: LocalLu::Classic };
        let pdg_cfg = DistPdgetrfConfig { b: 8, pr: 2, pc: 2 };
        // The SPMD references record the same absolute step INFO-style.
        let (_q, spmd_calu) = dist_calu_factor_spmd(&a, calu_cfg, MachineConfig::ideal());
        let (_q, spmd_pdg) = dist_pdgetrf_factor_spmd(&a, pdg_cfg, MachineConfig::ideal());
        assert_eq!(spmd_calu.first_singular, Some(r));
        assert_eq!(spmd_pdg.first_singular, Some(r));
        for lookahead in 1..=3 {
            for executor in [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 3 }] {
                let rt = DistRtOpts { lookahead, executor, ..Default::default() };
                let (rep, d) = dist_calu_factor_rt(&a, calu_cfg, rt, MachineConfig::ideal());
                assert_eq!(
                    d.first_singular,
                    Some(r),
                    "calu d={lookahead} {executor:?}: zero column {r} must surface absolutely"
                );
                // Cancellation strands payloads posted for recv tasks that
                // never ran (the TSLU panel posts its W block before the
                // failing reduction): the driver must drain them, leaving
                // an empty mailbox.
                assert!(
                    rep.comm.drained_words > 0,
                    "calu d={lookahead} {executor:?}: canceled run must have stranded payloads"
                );
                assert_eq!(
                    rep.comm.residual_words, 0,
                    "calu d={lookahead} {executor:?}: mailbox must be empty after the run"
                );
                let (rep, d) = dist_pdgetrf_factor_rt(&a, pdg_cfg, rt, MachineConfig::ideal());
                assert_eq!(
                    d.first_singular,
                    Some(r),
                    "pdgetrf d={lookahead} {executor:?}: zero column {r} must surface absolutely"
                );
                assert_eq!(
                    rep.comm.residual_words, 0,
                    "pdgetrf d={lookahead} {executor:?}: mailbox must be empty after the run"
                );
            }
        }
    }
}

#[test]
fn threaded_communicator_cancels_across_rank_threads_without_hanging() {
    // The hard version of the contract above: with `CommKind::Threaded`
    // every rank is a real OS thread blocked on real point-to-point
    // fetches, so a singular pivot on ONE rank thread must wake and
    // cancel the fetches of ALL other rank threads — the whole grid joins
    // (no hang), `first_singular` carries the absolute step, stranded
    // in-flight payloads are drained, and the residual is zero.
    use calu_repro::core::dist::{DistCaluConfig, DistPdgetrfConfig};
    use calu_repro::core::{dist_calu_factor_rt, dist_pdgetrf_factor_rt, CommKind, DistRtOpts};
    use calu_repro::netsim::MachineConfig;
    let n = 32;
    for &r in &[5usize, 17] {
        let a = rank_deficient(900 + r as u64, n, r);
        let calu_cfg = DistCaluConfig { b: 8, pr: 2, pc: 2, local: LocalLu::Classic };
        let pdg_cfg = DistPdgetrfConfig { b: 8, pr: 2, pc: 2 };
        for lookahead in 1..=3 {
            let rt =
                DistRtOpts { lookahead, communicator: CommKind::Threaded, ..Default::default() };
            let (rep, d) = dist_calu_factor_rt(&a, calu_cfg, rt, MachineConfig::ideal());
            assert_eq!(
                d.first_singular,
                Some(r),
                "threaded calu d={lookahead}: zero column {r} must surface absolutely"
            );
            assert!(
                rep.comm.drained_words > 0,
                "threaded calu d={lookahead}: canceled run must have stranded payloads"
            );
            assert_eq!(
                rep.comm.residual_words, 0,
                "threaded calu d={lookahead}: rank stashes must be empty after the run"
            );
            let (rep, d) = dist_pdgetrf_factor_rt(&a, pdg_cfg, rt, MachineConfig::ideal());
            assert_eq!(
                d.first_singular,
                Some(r),
                "threaded pdgetrf d={lookahead}: zero column {r} must surface absolutely"
            );
            assert_eq!(
                rep.comm.residual_words, 0,
                "threaded pdgetrf d={lookahead}: rank stashes must be empty after the run"
            );
        }
    }
}
