//! Observability-layer integration tests over *committed artifacts*: the
//! Chrome trace and BENCH records that `serve_calu` and friends write are
//! checked in, so these tests guarantee the repository's own copies stay
//! parseable and carry the provenance fields every record must have —
//! a regenerated artifact that breaks the format fails CI here, not in a
//! downstream viewer.
//!
//! The last test is the property form of the comm-accounting claim: for
//! arbitrary matrix data the mailbox ledger must equal the exact
//! predictor term for term (candidate counts depend on geometry, never
//! on values).

use calu_repro::core::dist::DistCaluConfig;
use calu_repro::core::{dist_calu_factor_rt, DistRtOpts, LocalLu};
use calu_repro::matrix::{gen, Matrix};
use calu_repro::netsim::MachineConfig;
use calu_repro::obs::{parse_chrome_trace, JsonValue};
use calu_repro::runtime::ExecutorKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

fn committed(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed artifact {} must exist: {e}", path.display()))
}

#[test]
fn committed_serve_trace_is_valid_chrome_trace() {
    let text = committed("TRACE_serve.json");

    // It must be plain JSON with the trace_events shape...
    let doc = JsonValue::parse(&text).expect("TRACE_serve.json parses as JSON");
    let events =
        doc.get("traceEvents").and_then(JsonValue::as_array).expect("top-level traceEvents array");
    assert!(!events.is_empty(), "committed trace must not be empty");
    for ev in events {
        assert_eq!(ev.get("ph").and_then(JsonValue::as_str), Some("X"), "complete events only");
        assert!(ev.get("name").and_then(JsonValue::as_str).is_some());
        assert!(ev.get("cat").and_then(JsonValue::as_str).is_some());
        assert!(ev.get("pid").and_then(JsonValue::as_u64).is_some());
        assert!(ev.get("tid").and_then(JsonValue::as_u64).is_some());
        assert!(ev.get("ts").and_then(JsonValue::as_f64).unwrap() >= 0.0);
        assert!(ev.get("dur").and_then(JsonValue::as_f64).unwrap() >= 0.0);
    }

    let cat_of = |ev: &JsonValue| ev.get("cat").and_then(JsonValue::as_str).map(str::to_string);
    assert!(
        events.iter().any(|ev| {
            ev.get("name").and_then(JsonValue::as_str) == Some("process")
                && cat_of(ev).as_deref() == Some("serve")
        }),
        "serve trace must carry the process-pass interval spans"
    );
    assert!(
        events.iter().any(|ev| cat_of(ev).as_deref() != Some("serve")),
        "serve trace must also carry the executor's task spans"
    );

    // ...and round-trip through the span parser, keeping every event.
    let spans = parse_chrome_trace(&text).expect("trace parses back into spans");
    assert_eq!(spans.len(), events.len());
    // The exporter sorts by timestamp — a viewer-friendly invariant.
    assert!(spans.windows(2).all(|w| w[0].ts_us <= w[1].ts_us), "spans sorted by start time");
}

#[test]
fn committed_bench_records_parse_and_carry_host_provenance() {
    for name in [
        "BENCH_runtime.json",
        "BENCH_precision.json",
        "BENCH_layout.json",
        "BENCH_dist.json",
        "BENCH_serve.json",
    ] {
        let doc = JsonValue::parse(&committed(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(doc.get("bench").and_then(JsonValue::as_str).is_some(), "{name}: bench id");
        for field in ["host_threads", "executor_threads", "measured_speedup_valid"] {
            assert!(doc.get(field).is_some(), "{name}: missing host provenance field {field}");
        }
    }
}

#[test]
fn committed_serve_record_embeds_metrics_and_trace_pointer() {
    let doc = JsonValue::parse(&committed("BENCH_serve.json")).expect("parses");
    assert_eq!(doc.get("trace_file").and_then(JsonValue::as_str), Some("TRACE_serve.json"));
    assert!(doc.get("trace_spans").and_then(JsonValue::as_u64).unwrap() > 0);

    let metrics = doc.get("metrics").expect("embedded metrics snapshot");
    let counters = metrics.get("counters").expect("counters section");
    let submitted = counters.get("serve.submitted").and_then(JsonValue::as_u64).unwrap();
    let completed = counters.get("serve.completed").and_then(JsonValue::as_u64).unwrap();
    assert!(submitted > 0, "snapshot scenario submitted requests");
    assert_eq!(submitted, completed, "hot scenario completes everything it admits");
    let hists = metrics.get("histograms").expect("histograms section");
    assert!(hists.get("serve.ticket_latency_s").is_some(), "latency histogram recorded");
}

#[test]
fn committed_dist_record_reconciles_comm_exactly() {
    let doc = JsonValue::parse(&committed("BENCH_dist.json")).expect("parses");
    let comm = doc.get("comm").expect("comm ledger section");
    assert_eq!(comm.get("residual_words").and_then(JsonValue::as_u64), Some(0));
    assert!(comm.get("total_words").and_then(JsonValue::as_u64).unwrap() > 0);
    let recon = comm.get("reconcile").and_then(JsonValue::as_array).expect("reconcile table");
    let mut exact_terms = 0;
    for row in recon {
        if row.get("source").and_then(JsonValue::as_str) == Some("mailbox_exact") {
            assert_eq!(
                row.get("exact").and_then(JsonValue::as_bool),
                Some(true),
                "term {:?} must reconcile exactly",
                row.get("term")
            );
            exact_terms += 1;
        }
    }
    assert!(exact_terms >= 4, "tslu/pivot/panel/u terms all present, got {exact_terms}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The exact-accounting property on arbitrary data: whatever the matrix
    // values, the mailbox ledger equals the exact predictor for every
    // mailbox term (TSLU legs, pivot/panel/U broadcasts, W blocks) — the
    // wire counts are a function of geometry alone.
    #[test]
    fn mailbox_ledger_matches_exact_prediction_for_arbitrary_data(
        seed in 0u64..1 << 32,
        grid_idx in 0usize..3,
        lookahead in 1usize..4,
        comm_idx in 0usize..2,
    ) {
        let (pr, pc) = [(2, 2), (2, 4), (3, 2)][grid_idx];
        let communicator =
            [calu_repro::core::CommKind::InProcess, calu_repro::core::CommKind::Threaded][comm_idx];
        let n = 24;
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Matrix = gen::randn(&mut rng, n, n);
        let cfg = DistCaluConfig { b: 4, pr, pc, local: LocalLu::Classic };
        let rt = DistRtOpts { lookahead, executor: ExecutorKind::Serial, communicator };
        let (rep, d) = dist_calu_factor_rt(&a, cfg, rt, MachineConfig::ideal());
        prop_assert!(d.first_singular.is_none(), "randn matrices are nonsingular");
        prop_assert_eq!(rep.comm.residual_words, 0);
        prop_assert_eq!(rep.communicator, communicator.label());
        for delta in rep.mailbox_deltas() {
            if delta.source == "mailbox_exact" {
                prop_assert!(
                    delta.exact(),
                    "{pr}x{pc} d={lookahead} {:?} term {}: measured {:?} != expected {:?}",
                    communicator, delta.term, delta.measured, delta.expected
                );
            }
        }
    }
}
