//! Observability-layer integration tests over *committed artifacts*: the
//! Chrome trace and BENCH records that `serve_calu` and friends write are
//! checked in, so these tests guarantee the repository's own copies stay
//! parseable and carry the provenance fields every record must have —
//! a regenerated artifact that breaks the format fails CI here, not in a
//! downstream viewer.
//!
//! The last test is the property form of the comm-accounting claim: for
//! arbitrary matrix data the mailbox ledger must equal the exact
//! predictor term for term (candidate counts depend on geometry, never
//! on values).

use calu_repro::core::dist::DistCaluConfig;
use calu_repro::core::{dist_calu_factor_rt, DistRtOpts, LocalLu};
use calu_repro::matrix::{gen, Matrix};
use calu_repro::netsim::MachineConfig;
use calu_repro::obs::{parse_chrome_trace, JsonValue, Profile, ProfileInputs};
use calu_repro::runtime::ExecutorKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

fn committed(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed artifact {} must exist: {e}", path.display()))
}

#[test]
fn committed_serve_trace_is_valid_chrome_trace() {
    let text = committed("TRACE_serve.json");

    // It must be plain JSON with the trace_events shape...
    let doc = JsonValue::parse(&text).expect("TRACE_serve.json parses as JSON");
    let events =
        doc.get("traceEvents").and_then(JsonValue::as_array).expect("top-level traceEvents array");
    assert!(!events.is_empty(), "committed trace must not be empty");
    for ev in events {
        assert_eq!(ev.get("ph").and_then(JsonValue::as_str), Some("X"), "complete events only");
        assert!(ev.get("name").and_then(JsonValue::as_str).is_some());
        assert!(ev.get("cat").and_then(JsonValue::as_str).is_some());
        assert!(ev.get("pid").and_then(JsonValue::as_u64).is_some());
        assert!(ev.get("tid").and_then(JsonValue::as_u64).is_some());
        assert!(ev.get("ts").and_then(JsonValue::as_f64).unwrap() >= 0.0);
        assert!(ev.get("dur").and_then(JsonValue::as_f64).unwrap() >= 0.0);
    }

    let cat_of = |ev: &JsonValue| ev.get("cat").and_then(JsonValue::as_str).map(str::to_string);
    assert!(
        events.iter().any(|ev| {
            ev.get("name").and_then(JsonValue::as_str) == Some("process")
                && cat_of(ev).as_deref() == Some("serve")
        }),
        "serve trace must carry the process-pass interval spans"
    );
    assert!(
        events.iter().any(|ev| cat_of(ev).as_deref() != Some("serve")),
        "serve trace must also carry the executor's task spans"
    );

    // ...and round-trip through the span parser, keeping every event.
    let spans = parse_chrome_trace(&text).expect("trace parses back into spans");
    assert_eq!(spans.len(), events.len());
    // The exporter sorts by timestamp — a viewer-friendly invariant.
    assert!(spans.windows(2).all(|w| w[0].ts_us <= w[1].ts_us), "spans sorted by start time");
}

#[test]
fn committed_serve_trace_round_trips_through_the_analyzer() {
    // The committed trace must stay analyzable, not merely parseable: the
    // analyzer's wall-clock partition has to hold exactly on it, and the
    // measured critical path has to land inside [0, wall].
    let spans = parse_chrome_trace(&committed("TRACE_serve.json")).expect("trace parses");
    let profile = Profile::build(&spans, ProfileInputs::default());
    assert_eq!(profile.spans, spans.len(), "every span lands in some worker lane");
    assert!(!profile.workers.is_empty());
    for w in &profile.workers {
        assert!(
            w.partition_exact(),
            "lane ({},{}): compute+comm_wait+overhead+idle must equal wall exactly",
            w.pid,
            w.tid
        );
        // No side channels in a bare trace: busy time is all compute.
        assert_eq!(w.comm_wait_ns, 0);
        assert_eq!(w.overhead_ns, 0);
    }
    assert!(profile.measured_cp_ns > 0, "a non-empty trace has a non-empty chain");
    assert!(profile.measured_cp_ns <= profile.wall_ns);

    // The JSON rendering keeps the partition: the four _ns components of
    // every worker still sum to its wall_ns after serialization.
    let doc = JsonValue::parse(&profile.to_json().to_json()).expect("profile JSON parses");
    let workers = doc.get("per_worker").and_then(JsonValue::as_array).expect("per_worker");
    assert_eq!(workers.len(), profile.workers.len());
    for w in workers {
        let f = |k: &str| w.get(k).and_then(JsonValue::as_u64).expect("u64 field");
        assert_eq!(
            f("compute_ns") + f("comm_wait_ns") + f("overhead_ns") + f("idle_ns"),
            f("wall_ns")
        );
    }
}

#[test]
fn committed_bench_records_parse_and_carry_host_provenance() {
    for name in [
        "BENCH_runtime.json",
        "BENCH_precision.json",
        "BENCH_layout.json",
        "BENCH_dist.json",
        "BENCH_serve.json",
    ] {
        let doc = JsonValue::parse(&committed(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(doc.get("bench").and_then(JsonValue::as_str).is_some(), "{name}: bench id");
        for field in ["host_threads", "executor_threads", "measured_speedup_valid"] {
            assert!(doc.get(field).is_some(), "{name}: missing host provenance field {field}");
        }
    }
}

#[test]
fn committed_serve_record_embeds_metrics_and_trace_pointer() {
    let doc = JsonValue::parse(&committed("BENCH_serve.json")).expect("parses");
    assert_eq!(doc.get("trace_file").and_then(JsonValue::as_str), Some("TRACE_serve.json"));
    assert!(doc.get("trace_spans").and_then(JsonValue::as_u64).unwrap() > 0);

    let metrics = doc.get("metrics").expect("embedded metrics snapshot");
    let counters = metrics.get("counters").expect("counters section");
    let submitted = counters.get("serve.submitted").and_then(JsonValue::as_u64).unwrap();
    let completed = counters.get("serve.completed").and_then(JsonValue::as_u64).unwrap();
    assert!(submitted > 0, "snapshot scenario submitted requests");
    assert_eq!(submitted, completed, "hot scenario completes everything it admits");
    let hists = metrics.get("histograms").expect("histograms section");
    assert!(hists.get("serve.ticket_latency_s").is_some(), "latency histogram recorded");
}

#[test]
fn committed_dist_record_reconciles_comm_exactly() {
    let doc = JsonValue::parse(&committed("BENCH_dist.json")).expect("parses");
    let comm = doc.get("comm").expect("comm ledger section");
    assert_eq!(comm.get("residual_words").and_then(JsonValue::as_u64), Some(0));
    assert!(comm.get("total_words").and_then(JsonValue::as_u64).unwrap() > 0);
    let recon = comm.get("reconcile").and_then(JsonValue::as_array).expect("reconcile table");
    let mut exact_terms = 0;
    for row in recon {
        if row.get("source").and_then(JsonValue::as_str) == Some("mailbox_exact") {
            assert_eq!(
                row.get("exact").and_then(JsonValue::as_bool),
                Some(true),
                "term {:?} must reconcile exactly",
                row.get("term")
            );
            exact_terms += 1;
        }
    }
    assert!(exact_terms >= 4, "tslu/pivot/panel/u terms all present, got {exact_terms}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The exact-accounting property on arbitrary data: whatever the matrix
    // values, the mailbox ledger equals the exact predictor for every
    // mailbox term (TSLU legs, pivot/panel/U broadcasts, W blocks) — the
    // wire counts are a function of geometry alone.
    #[test]
    fn mailbox_ledger_matches_exact_prediction_for_arbitrary_data(
        seed in 0u64..1 << 32,
        grid_idx in 0usize..3,
        lookahead in 1usize..4,
        comm_idx in 0usize..2,
    ) {
        let (pr, pc) = [(2, 2), (2, 4), (3, 2)][grid_idx];
        let communicator =
            [calu_repro::core::CommKind::InProcess, calu_repro::core::CommKind::Threaded][comm_idx];
        let n = 24;
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Matrix = gen::randn(&mut rng, n, n);
        let cfg = DistCaluConfig { b: 4, pr, pc, local: LocalLu::Classic };
        let rt = DistRtOpts { lookahead, executor: ExecutorKind::Serial, communicator };
        let (rep, d) = dist_calu_factor_rt(&a, cfg, rt, MachineConfig::ideal());
        prop_assert!(d.first_singular.is_none(), "randn matrices are nonsingular");
        prop_assert_eq!(rep.comm.residual_words, 0);
        prop_assert_eq!(rep.communicator, communicator.label());
        for delta in rep.mailbox_deltas() {
            if delta.source == "mailbox_exact" {
                prop_assert!(
                    delta.exact(),
                    "{pr}x{pc} d={lookahead} {:?} term {}: measured {:?} != expected {:?}",
                    communicator, delta.term, delta.measured, delta.expected
                );
            }
        }
    }

    // The wait-state property: for every communicator × executor × grid,
    // feeding a run's spans plus its measured side channels (blocked
    // fetch-wait per rank, queue delay per lane) to the analyzer yields a
    // per-worker partition of wall-clock into compute + comm-wait +
    // overhead + idle that is EXACT in integer nanoseconds — no epsilon.
    #[test]
    fn wait_state_partition_is_exact_across_communicators_and_grids(
        seed in 0u64..1 << 32,
        grid_idx in 0usize..3,
        lookahead in 1usize..3,
        comm_idx in 0usize..2,
    ) {
        let (pr, pc) = [(2, 2), (2, 4), (3, 2)][grid_idx];
        let communicator =
            [calu_repro::core::CommKind::InProcess, calu_repro::core::CommKind::Threaded][comm_idx];
        let n = 24;
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Matrix = gen::randn(&mut rng, n, n);
        let cfg = DistCaluConfig { b: 4, pr, pc, local: LocalLu::Classic };
        let rt = DistRtOpts { lookahead, executor: ExecutorKind::Serial, communicator };
        let (rep, d) = dist_calu_factor_rt(&a, cfg, rt, MachineConfig::ideal());
        prop_assert!(d.first_singular.is_none(), "randn matrices are nonsingular");

        let waits: Vec<((u32, u32), u64)> =
            rep.comm.wait_rank_totals().into_iter().map(|(r, ns)| ((r, r), ns)).collect();
        let overheads = rep.exec.queue_delay_ns_by_lane();
        let profile = Profile::build(
            &rep.spans,
            ProfileInputs { wall_s: rep.exec.wall, comm_wait_ns: &waits, overhead_ns: &overheads },
        );
        prop_assert_eq!(profile.spans, rep.spans.len());
        prop_assert!(!profile.workers.is_empty());
        for w in &profile.workers {
            prop_assert!(
                w.partition_exact(),
                "{pr}x{pc} d={lookahead} {:?} lane ({},{}): \
                 compute {} + comm_wait {} + overhead {} + idle {} != wall {}",
                communicator, w.pid, w.tid,
                w.compute_ns, w.comm_wait_ns, w.overhead_ns, w.idle_ns, w.wall_ns
            );
        }
        prop_assert!(profile.measured_cp_ns <= profile.wall_ns);
        // The threaded communicator moves payloads through real channels,
        // so its ledger always records blocked-fetch wait somewhere.
        if communicator == calu_repro::core::CommKind::Threaded {
            prop_assert!(rep.comm.wait_total_ns() > 0, "threaded runs block on first fetches");
            prop_assert!(
                profile.workers.iter().map(|w| w.comm_wait_ns).sum::<u64>() > 0,
                "recorded waits must surface in the profile"
            );
        }
    }
}
