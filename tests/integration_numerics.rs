//! Cross-crate integration tests: CALU's numerics against GEPP across
//! shapes, ensembles, and execution flavors.

use calu_repro::core::{
    calu_factor, calu_inplace, gepp_factor, par_calu_factor, CaluOpts, LocalLu, PivotStats,
};
use calu_repro::matrix::blas3::gemm;
use calu_repro::matrix::perm::{ipiv_to_perm, is_permutation, permute_rows};
use calu_repro::matrix::{gen, Matrix};
use calu_repro::stability::{componentwise_backward_error, hpl_tests};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn reconstruction_error(orig: &Matrix, lu: &Matrix, ipiv: &[usize]) -> f64 {
    let perm = ipiv_to_perm(ipiv, orig.rows());
    assert!(is_permutation(&perm));
    let pa = permute_rows(orig, &perm);
    let l = lu.unit_lower();
    let u = lu.upper();
    let mut prod = Matrix::zeros(orig.rows(), orig.cols());
    gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
    pa.max_abs_diff(&prod) / orig.max_abs().max(1.0)
}

#[test]
fn calu_reconstructs_across_ensembles() {
    let mut rng = StdRng::seed_from_u64(1001);
    let n = 120;
    let ensembles: Vec<(&str, Matrix)> = vec![
        ("randn", gen::randn(&mut rng, n, n)),
        ("uniform", gen::uniform(&mut rng, n, n, -1.0, 1.0)),
        ("toeplitz", gen::randn_toeplitz(&mut rng, n)),
        ("diag_dominant", gen::diag_dominant(&mut rng, n)),
    ];
    for (name, a) in ensembles {
        let f = calu_factor(&a, CaluOpts { block: 24, p: 4, ..Default::default() })
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let err = reconstruction_error(&a, &f.lu, &f.ipiv);
        assert!(err < 1e-10, "{name}: reconstruction error {err}");
    }
}

#[test]
fn calu_matches_gepp_solution_quality() {
    let mut rng = StdRng::seed_from_u64(1002);
    let n = 200;
    let a: Matrix = gen::randn(&mut rng, n, n);
    let b = gen::hpl_rhs(&mut rng, n);

    let fc = calu_factor(&a, CaluOpts { block: 32, p: 8, ..Default::default() }).unwrap();
    let fg = gepp_factor(&a, 32).unwrap();
    let wc = componentwise_backward_error(&a, &fc.solve(&b), &b);
    let wg = componentwise_backward_error(&a, &fg.solve(&b), &b);
    // "CALU leads to results of the same order of magnitude" (Section 6.1).
    assert!(wc < 100.0 * wg, "CALU wb {wc} vs GEPP wb {wg}");
    assert!(hpl_tests(&a, &fc.solve(&b), &b).passes());
}

#[test]
fn threshold_bound_holds_across_tournament_heights() {
    // The headline stability claim: tau_min stays well above 0 (paper:
    // >= 0.33 over their whole experiment set) and |L| stays small, for
    // every tournament height.
    let mut rng = StdRng::seed_from_u64(1003);
    let n = 128;
    let a = gen::randn(&mut rng, n, n);
    for p in [1usize, 2, 4, 8, 16] {
        let mut stats = PivotStats::new(a.max_abs());
        let mut w = a.clone();
        calu_inplace(w.view_mut(), CaluOpts { block: 16, p, ..Default::default() }, &mut stats)
            .unwrap();
        assert!(stats.tau_min() > 0.15, "p={p}: tau_min {}", stats.tau_min());
        assert!(stats.max_l < 1.0 / stats.tau_min() + 1e-9, "|L| <= 1/tau_min");
        if p == 1 {
            assert!((stats.tau_min() - 1.0).abs() < 1e-12, "p=1 is partial pivoting");
        }
    }
}

#[test]
fn all_three_flavors_agree() {
    // Sequential, rayon-parallel: identical factors. (The simulated
    // distributed flavor is exercised in integration_dist.rs.)
    let mut rng = StdRng::seed_from_u64(1004);
    let a: Matrix = gen::randn(&mut rng, 150, 150);
    let opts = CaluOpts {
        block: 25,
        p: 5,
        local: LocalLu::Recursive,
        parallel_update: false,
        ..Default::default()
    };
    let f_seq = calu_factor(&a, opts).unwrap();
    let f_par = par_calu_factor(&a, opts).unwrap();
    assert_eq!(f_seq.ipiv, f_par.ipiv);
    assert_eq!(f_seq.lu.max_abs_diff(&f_par.lu), 0.0);
}

#[test]
fn rectangular_matrices_factor() {
    let mut rng = StdRng::seed_from_u64(1005);
    for &(m, n) in &[(100usize, 60usize), (60, 100), (128, 32)] {
        let a = gen::randn(&mut rng, m, n);
        let f = calu_factor(&a, CaluOpts { block: 16, p: 4, ..Default::default() }).unwrap();
        let err = reconstruction_error(&a, &f.lu, &f.ipiv);
        assert!(err < 1e-11, "{m}x{n}: {err}");
    }
}

#[test]
fn singular_matrix_reports_error() {
    let mut a = Matrix::zeros(8, 8);
    // Rank 1: every pivot after the first is zero.
    for i in 0..8 {
        for j in 0..8 {
            a[(i, j)] = ((i + 1) * (j + 1)) as f64;
        }
    }
    let err = calu_factor(&a, CaluOpts { block: 4, p: 2, ..Default::default() }).unwrap_err();
    assert!(matches!(err, calu_repro::matrix::Error::SingularPivot { .. }));
}

#[test]
fn wilkinson_growth_matches_theory_for_gepp_and_calu() {
    // The classical worst case: growth 2^(n-1). ca-pivoting reproduces it
    // (it picks the same pivots here), a useful negative control showing
    // the growth instrumentation is real.
    let n = 24;
    let a = gen::wilkinson(n);
    let mut stats = PivotStats::new(a.max_abs());
    let mut w = a.clone();
    calu_inplace(w.view_mut(), CaluOpts { block: 8, p: 4, ..Default::default() }, &mut stats)
        .unwrap();
    assert!(stats.max_elem >= 2f64.powi(n as i32 - 1) * 0.99, "growth {}", stats.max_elem);
}
