//! Mixed-precision integration tests: the `f32` instantiation of the
//! kernel stack (tolerances scaled to `f32::EPSILON`), bitwise identity
//! of runtime-scheduled `f32` CALU against sequential `f32` CALU on both
//! executors, and the `ir_solve` convergence / failure contracts.

use calu_repro::core::{
    calu_factor, ir_solve, runtime_calu_factor, CaluOpts, IrOpts, LocalLu, RuntimeOpts,
};
use calu_repro::matrix::blas3::{gemm, gemm_naive};
use calu_repro::matrix::lapack::{getf2, getrf, GetrfOpts};
use calu_repro::matrix::perm::{ipiv_to_perm, permute_rows};
use calu_repro::matrix::{gen, Error, Matrix, NoObs, Scalar};
use calu_repro::runtime::ExecutorKind;
use calu_repro::stability::hpl_tests;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn randn32(seed: u64, m: usize, n: usize) -> Matrix<f32> {
    gen::randn(&mut StdRng::seed_from_u64(seed), m, n)
}

/// Reconstruction check at precision `T`: `||P A − L U||_max` below a
/// tolerance that scales with the precision's epsilon and the problem
/// size (the same shape the `f64` tests use, with `ε_T` substituted).
fn check_plu<T: Scalar>(orig: &Matrix<T>, lu: &Matrix<T>, ipiv: &[usize], n_scale: f64) {
    let perm = ipiv_to_perm(ipiv, orig.rows());
    let pa = permute_rows(orig, &perm);
    let l = lu.unit_lower();
    let u = lu.upper();
    let mut prod = Matrix::zeros(orig.rows(), orig.cols());
    gemm(T::ONE, l.view(), u.view(), T::ZERO, prod.view_mut());
    let d = pa.max_abs_diff(&prod).to_f64();
    let tol = 64.0 * T::EPSILON.to_f64() * n_scale * orig.max_abs().to_f64().max(1.0);
    assert!(d < tol, "||P A − L U||_max = {d} > {tol} at {}", T::NAME);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_f32_gemm_matches_naive(
        seed in 0u64..1_000_000,
        m in 1usize..48,
        k in 1usize..32,
        n in 1usize..48,
    ) {
        let a = randn32(seed, m, k);
        let b = randn32(seed ^ 0xb10c, k, n);
        let c0 = randn32(seed ^ 0xc0de, m, n);
        let mut c1 = c0.clone();
        let mut c2 = c0;
        gemm(1.5f32, a.view(), b.view(), -0.5, c1.view_mut());
        gemm_naive(1.5f32, a.view(), b.view(), -0.5, c2.view_mut());
        let d = c1.max_abs_diff(&c2) as f64;
        prop_assert!(d < 1e-4 * k as f64, "blocked vs naive f32 gemm differ by {d}");
    }

    #[test]
    fn prop_f32_getf2_reconstructs(
        seed in 0u64..1_000_000,
        m in 2usize..48,
        n in 1usize..24,
    ) {
        let a0 = randn32(seed, m, n.min(m));
        let mut a = a0.clone();
        let mut ipiv = vec![0usize; a0.rows().min(a0.cols())];
        getf2(a.view_mut(), &mut ipiv, &mut NoObs).unwrap();
        check_plu(&a0, &a, &ipiv, m as f64);
    }

    #[test]
    fn prop_f32_getrf_matches_f32_getf2_pivots(
        seed in 0u64..1_000_000,
        n in 4usize..48,
        nb in 1usize..16,
    ) {
        let a0 = randn32(seed, n, n);
        let mut ab = a0.clone();
        let mut au = a0.clone();
        let mut ip_b = vec![0usize; n];
        let mut ip_u = vec![0usize; n];
        getrf(ab.view_mut(), &mut ip_b, GetrfOpts { block: nb, ..Default::default() }, &mut NoObs)
            .unwrap();
        getf2(au.view_mut(), &mut ip_u, &mut NoObs).unwrap();
        prop_assert_eq!(ip_b, ip_u, "f32 blocked/unblocked pivots differ");
        let d = ab.max_abs_diff(&au) as f64;
        prop_assert!(d < 1e-3, "f32 blocked/unblocked factors differ by {d}");
    }

    #[test]
    fn prop_f32_calu_reconstructs(
        seed in 0u64..1_000_000,
        n in 8usize..64,
        b in 1usize..16,
        p in 1usize..6,
    ) {
        let a = randn32(seed, n, n);
        let f = calu_factor(&a, CaluOpts { block: b, p, ..Default::default() }).unwrap();
        check_plu(&a, &f.lu, &f.ipiv, n as f64);
    }

    #[test]
    fn prop_ir_solve_converges_on_well_conditioned_ensembles(
        seed in 0u64..1_000_000,
        n in 16usize..96,
    ) {
        // Seeded well-conditioned ensemble (random normal square matrices
        // at these orders have κ ~ n, far below 1/ε_f32) with an
        // HPL-style uniform rhs.
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Matrix = gen::randn(&mut rng, n, n);
        let b: Vec<f64> = gen::hpl_rhs(&mut rng, n);
        let opts = IrOpts { calu: CaluOpts { block: 16, p: 4, ..Default::default() }, ..Default::default() };
        let (x, report) = ir_solve(&a, &b, opts).unwrap();

        // The acceptance criterion: the f64 HPL gate (all three residuals
        // < 16) passes within at most 5 refinement steps.
        prop_assert!(report.converged, "ir_solve did not converge: {:?}", report.steps);
        prop_assert!(report.iterations <= 5, "took {} refinement steps", report.iterations);

        // The reported trajectory matches an independent recomputation of
        // the gate, and refinement actually reduced the backward error
        // from the raw f32 solve.
        let gate = hpl_tests(&a, &x, &b);
        prop_assert!(gate.passes(), "independent HPL check failed: {gate:?}");
        let first = report.steps.first().unwrap().backward_error;
        let last = report.final_backward_error();
        prop_assert!(last <= first, "refinement worsened backward error: {first} -> {last}");
        // Final backward error is at f64 roundoff scale, far below f32's.
        prop_assert!(last < 1e-10, "final backward error {last} not full precision");
    }
}

#[test]
fn f32_runtime_calu_bitwise_matches_sequential_all_depths_and_executors() {
    let mut rng = StdRng::seed_from_u64(77);
    for &(m, n, b, p) in
        &[(96usize, 96usize, 16usize, 4usize), (100, 60, 16, 4), (60, 100, 16, 4), (97, 97, 16, 3)]
    {
        let a: Matrix<f32> = gen::randn(&mut rng, m, n);
        let opts = CaluOpts {
            block: b,
            p,
            local: LocalLu::Recursive,
            parallel_update: false,
            ..Default::default()
        };
        let seq = calu_factor(&a, opts).unwrap();
        for depth in 1..=3 {
            for executor in [
                ExecutorKind::Serial,
                ExecutorKind::Threaded { threads: 2 },
                ExecutorKind::Threaded { threads: 4 },
            ] {
                let rt = RuntimeOpts { lookahead: depth, executor, parallel_panel: false };
                let (f, _rep) = runtime_calu_factor(&a, opts, rt).unwrap();
                assert_eq!(seq.ipiv, f.ipiv, "{m}x{n} d={depth} {executor:?}");
                assert_eq!(
                    seq.lu.max_abs_diff(&f.lu),
                    0.0,
                    "{m}x{n} d={depth} {executor:?}: f32 factors must be bitwise identical"
                );
            }
        }
    }
}

#[test]
fn f32_ensembles_are_rounded_f64_ensembles() {
    // Same seed, both precisions: the f32 draw must be exactly the f64
    // draw rounded — the property cross-precision comparisons rely on.
    let a64: Matrix<f64> = gen::randn(&mut StdRng::seed_from_u64(9), 20, 20);
    let a32: Matrix<f32> = gen::randn(&mut StdRng::seed_from_u64(9), 20, 20);
    assert_eq!(a64.cast::<f32>(), a32);
}

#[test]
fn ir_solve_singular_f32_panel_surfaces_singular_pivot() {
    // Exact rank deficiency survives rounding to f32: the zero columns
    // stay zero, so the f32 panel factorization hits a dead pivot. The
    // contract: Error::SingularPivot at the rank (absolute step), the
    // runtime cancels dependents, and the call returns — no hang, no
    // wrong answer.
    let n = 48;
    let r = 20;
    let mut rng = StdRng::seed_from_u64(4242);
    let base: Matrix = gen::randn(&mut rng, n, r);
    let a = Matrix::from_fn(n, n, |i, j| if j < r { base[(i, j)] } else { 0.0 });
    let b = vec![1.0_f64; n];
    for executor in [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 3 }] {
        let opts = IrOpts {
            calu: CaluOpts { block: 8, p: 4, ..Default::default() },
            rt: RuntimeOpts { lookahead: 2, executor, parallel_panel: false },
            max_iter: 4,
        };
        let err = ir_solve(&a, &b, opts).unwrap_err();
        assert_eq!(err, Error::SingularPivot { step: r }, "{executor:?}");
    }
}

#[test]
fn ir_solve_zero_iterations_cap_still_reports_trajectory() {
    // max_iter = 0: one raw f32 solve, one accuracy record, no panic.
    let mut rng = StdRng::seed_from_u64(11);
    let n = 32;
    let a: Matrix = gen::diag_dominant(&mut rng, n);
    let b: Vec<f64> = gen::hpl_rhs(&mut rng, n);
    let opts = IrOpts { max_iter: 0, ..Default::default() };
    let (_x, report) = ir_solve(&a, &b, opts).unwrap();
    assert_eq!(report.steps.len(), 1);
    assert_eq!(report.iterations, 0);
}

#[test]
fn ir_solve_zero_rhs_converges_immediately() {
    // b = 0 means x = 0 exactly: the gate must report [0, 0, 0] (exact
    // solve), not 0/0 NaNs that can never pass.
    let mut rng = StdRng::seed_from_u64(31);
    let n = 24;
    let a: Matrix = gen::diag_dominant(&mut rng, n);
    let b = vec![0.0_f64; n];
    let (x, report) = ir_solve(&a, &b, IrOpts::default()).unwrap();
    assert!(x.iter().all(|&v| v == 0.0));
    assert!(report.converged, "exactly-solved system must pass the gate: {:?}", report.steps);
    assert_eq!(report.iterations, 0);
    assert_eq!(report.steps[0].hpl, [0.0; 3]);
}

#[test]
fn f32_hpl_gate_uses_f32_epsilon() {
    // A converged f32 solve passes the f32-parameterized gate: the gate
    // formula asks for error ~ O(ε_T), not O(ε_f64).
    let mut rng = StdRng::seed_from_u64(21);
    let n = 64;
    let a: Matrix<f32> = gen::randn(&mut rng, n, n);
    let b: Vec<f32> = gen::hpl_rhs(&mut rng, n);
    let f = calu_factor(&a, CaluOpts { block: 16, p: 4, ..Default::default() }).unwrap();
    let x = f.solve(&b);
    let rep = hpl_tests(&a, &x, &b);
    assert!(rep.passes(), "f32 solve must pass the f32 gate: {rep:?}");
}
