//! Serving-layer integration tests: the blocked solve path must be
//! **bitwise identical** to the per-column reference at every layer
//! (`getrs_mat` vs `getrs`, the runtime solve DAG vs both, batched
//! iterative refinement vs standalone), and the failure paths must be
//! honest (`diverged` on hopeless conditioning).

use calu_repro::core::{
    calu_factor, ir_solve, ir_solve_batch, runtime_solve_mat, CaluOpts, IrOpts, ServeOpts,
    SolverService,
};
use calu_repro::matrix::lapack::{getrf, getrs, getrs_mat, GetrfOpts};
use calu_repro::matrix::{gen, Matrix, NoObs, Scalar};
use calu_repro::runtime::ExecutorKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The satellite invariant, generic over precision: solving a `k`-column
/// block must reproduce `k` independent single-RHS `getrs` sweeps bit for
/// bit — for the blocked `getrs_mat`, for `LuFactors::solve_mat`, and for
/// the runtime solve DAG on both executors at ragged tile widths.
fn block_solve_matches_per_column<T: Scalar>(
    seed: u64,
    n: usize,
    k: usize,
    nb: usize,
    rhs_nb: usize,
) -> std::result::Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: Matrix<T> = gen::diag_dominant(&mut rng, n);
    let b: Matrix<T> = gen::randn(&mut rng, n, k);

    let mut lu = a.clone();
    let mut ipiv = vec![0usize; n];
    getrf(
        lu.view_mut(),
        &mut ipiv,
        GetrfOpts { block: nb.min(n), ..Default::default() },
        &mut NoObs,
    )
    .expect("diagonally dominant matrices factor");

    // Reference: k column-by-column triangular sweeps.
    let mut want = b.clone();
    for j in 0..k {
        getrs(lu.view(), &ipiv, want.col_mut(j));
    }

    // Blocked getrs_mat on the whole block.
    let mut got = b.clone();
    getrs_mat(lu.view(), &ipiv, got.view_mut());
    for j in 0..k {
        prop_assert_eq!(got.col(j), want.col(j), "getrs_mat col {} (n={} k={})", j, n, k);
    }

    // The same factors through the CALU-facing wrapper and the solve DAG.
    let factors = calu_factor(&a, CaluOpts { block: nb.min(n), ..Default::default() })
        .expect("diagonally dominant matrices factor");
    let mut ref_cols = b.clone();
    for j in 0..k {
        let x = factors.solve(b.col(j));
        ref_cols.col_mut(j).copy_from_slice(&x);
    }
    let mut via_mat = b.clone();
    factors.solve_mat(via_mat.view_mut());
    for j in 0..k {
        prop_assert_eq!(via_mat.col(j), ref_cols.col(j), "solve_mat col {}", j);
    }
    for executor in [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 3 }] {
        let mut via_dag = b.clone();
        runtime_solve_mat(&factors, via_dag.view_mut(), nb, rhs_nb, executor);
        for j in 0..k {
            prop_assert_eq!(
                via_dag.col(j),
                ref_cols.col(j),
                "runtime solve col {} (nb={} rhs_nb={} {:?})",
                j,
                nb,
                rhs_nb,
                executor
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_block_solve_bitwise_f64(
        seed in 0u64..1_000_000,
        n in 4usize..64,
        k in 1usize..9,
        nb in 1usize..16,
        rhs_nb in 1usize..5,
    ) {
        block_solve_matches_per_column::<f64>(seed, n, k, nb, rhs_nb)?;
    }

    #[test]
    fn prop_block_solve_bitwise_f32(
        seed in 0u64..1_000_000,
        n in 4usize..64,
        k in 1usize..9,
        nb in 1usize..16,
        rhs_nb in 1usize..5,
    ) {
        block_solve_matches_per_column::<f32>(seed, n, k, nb, rhs_nb)?;
    }
}

#[test]
fn ir_batch_columns_match_standalone_ir_solve_bitwise() {
    // Sharing one f32 factorization across the batch must not perturb any
    // column: solution vectors AND the per-step accuracy trajectories are
    // bitwise those of a standalone ir_solve per column.
    let mut rng = StdRng::seed_from_u64(41);
    let n = 96;
    let k = 5;
    let a: Matrix<f64> = gen::diag_dominant(&mut rng, n);
    let b: Matrix<f64> = gen::randn(&mut rng, n, k);
    let opts = IrOpts { calu: CaluOpts { block: 16, ..Default::default() }, ..Default::default() };

    let (x, rep) = ir_solve_batch(&a, &b, opts).unwrap();
    assert_eq!(rep.per_rhs.len(), k);
    for j in 0..k {
        let (xj, rj) = ir_solve(&a, b.col(j), opts).unwrap();
        assert_eq!(x.col(j), &xj[..], "column {j}: solutions must be bitwise identical");
        assert_eq!(rep.per_rhs[j], rj, "column {j}: trajectories must be identical");
    }
    assert!(rep.converged && !rep.diverged);
    assert_eq!(rep.iterations, rep.per_rhs.iter().map(|r| r.iterations).max().unwrap());
}

#[test]
fn ir_solve_surfaces_divergence_on_hopeless_conditioning() {
    // kappa(A) ~ 1e13 makes kappa * eps_f32 >> 1: the f32 correction
    // equation cannot reduce the f64 residual, so the backward error
    // stalls. The report must say `diverged` after the two-strikes rule
    // instead of burning max_iter steps or claiming convergence.
    let mut rng = StdRng::seed_from_u64(42);
    let n = 64;
    let a: Matrix<f64> = gen::randsvd(&mut rng, n, 1e13);
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 4) as f64) - 1.5).collect();
    let b = gen::rhs_for_solution(&a, &x_true);
    let opts = IrOpts { max_iter: 40, ..Default::default() };

    let (_x, rep) = ir_solve(&a, &b, opts).unwrap();
    assert!(rep.diverged, "stalled refinement must be reported: {:?}", rep.steps);
    assert!(!rep.converged);
    assert!(rep.iterations < 40, "divergence must cut the loop short, not exhaust max_iter");
}

#[test]
fn solver_service_facade_roundtrip() {
    // End-to-end through the workspace facade: register, submit a burst,
    // process once, redeem every ticket against the direct solve.
    let mut rng = StdRng::seed_from_u64(43);
    let n = 48;
    let a: Matrix<f64> = gen::diag_dominant(&mut rng, n);
    let opts =
        ServeOpts { calu: CaluOpts { block: 8, ..Default::default() }, ..Default::default() };
    let factors = calu_factor(&a, opts.calu).unwrap();

    let mut svc: SolverService = SolverService::new(opts);
    svc.register(7, a.clone());
    let mut tickets = Vec::new();
    let mut wants = Vec::new();
    for c in 0..9 {
        let rhs: Vec<f64> = (0..n).map(|i| ((i * 7 + c * 13) % 5) as f64 - 2.0).collect();
        wants.push(factors.solve(&rhs));
        tickets.push(svc.submit(7, rhs).unwrap());
    }
    let rep = svc.process();
    assert_eq!(rep.completed, 9);
    assert_eq!(rep.factored, 1, "one burst, one factorization");
    for (t, want) in tickets.into_iter().zip(wants) {
        let got = svc.try_take(t).expect("processed").expect("well-conditioned");
        assert_eq!(got, want, "service result must equal the direct solve bitwise");
    }
    let stats = svc.cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.entries, 1);
}
