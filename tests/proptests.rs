//! Property-based tests (proptest) on the core invariants:
//! factorization identities, permutation algebra, tournament winners,
//! threshold bounds, and kernel equivalences, over randomized shapes.

use calu_repro::core::tournament::{reduce_pair, tournament, Candidates};
use calu_repro::core::{calu_factor, calu_inplace, CaluOpts, PivotStats};
use calu_repro::matrix::blas3::{gemm, gemm_naive};
use calu_repro::matrix::perm::{compose, invert_perm, ipiv_to_perm, is_permutation, permute_rows};
use calu_repro::matrix::{gen, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn randn_mat(seed: u64, m: usize, n: usize) -> Matrix {
    gen::randn(&mut StdRng::seed_from_u64(seed), m, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_calu_reconstructs(
        seed in 0u64..1_000_000,
        n in 8usize..96,
        b in 1usize..24,
        p in 1usize..8,
    ) {
        let a = randn_mat(seed, n, n);
        let f = calu_factor(&a, CaluOpts { block: b, p, ..Default::default() }).unwrap();
        let perm = ipiv_to_perm(&f.ipiv, n);
        prop_assert!(is_permutation(&perm));
        let pa = permute_rows(&a, &perm);
        let l = f.lu.unit_lower();
        let u = f.lu.upper();
        let mut prod = Matrix::zeros(n, n);
        gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
        let err = pa.max_abs_diff(&prod) / a.max_abs().max(1.0);
        prop_assert!(err < 1e-9, "reconstruction error {err} (n={n} b={b} p={p})");
    }

    #[test]
    fn prop_thresholds_in_unit_interval(
        seed in 0u64..1_000_000,
        n in 8usize..64,
        p in 1usize..6,
    ) {
        let a = randn_mat(seed, n, n);
        let mut stats = PivotStats::new(a.max_abs());
        let mut w = a.clone();
        calu_inplace(w.view_mut(), CaluOpts { block: 8, p, ..Default::default() }, &mut stats).unwrap();
        prop_assert_eq!(stats.steps(), n);
        for &t in &stats.thresholds {
            prop_assert!(t > 0.0 && t <= 1.0 + 1e-12, "tau = {t}");
        }
        // |L| <= 1/tau_min by construction.
        prop_assert!(stats.max_l <= 1.0 / stats.tau_min() + 1e-6);
    }

    #[test]
    fn prop_tournament_winners_are_valid_rows(
        seed in 0u64..1_000_000,
        b in 1usize..10,
        chunks in 2usize..6,
        rows_per in 2usize..12,
    ) {
        let total = chunks * rows_per.max(b);
        let a = randn_mat(seed, total, b);
        let blocks: Vec<Candidates> = (0..chunks)
            .map(|i| {
                let lo = i * total / chunks;
                let hi = (i + 1) * total / chunks;
                let block = a.view().submatrix(lo, 0, hi - lo, b).to_matrix();
                Candidates::from_block_row(&block, &(lo..hi).collect::<Vec<_>>())
            })
            .collect();
        let w = tournament(blocks);
        prop_assert_eq!(w.len(), b.min(total));
        let mut seen = std::collections::HashSet::new();
        for (k, &r) in w.rows.iter().enumerate() {
            prop_assert!(r < total);
            prop_assert!(seen.insert(r), "duplicate winner {r}");
            for j in 0..b {
                prop_assert_eq!(w.block[(k, j)], a[(r, j)], "winner values must be original");
            }
        }
    }

    #[test]
    fn prop_reduce_pair_first_winner_maximizes_col0(
        seed in 0u64..1_000_000,
        b in 1usize..8,
    ) {
        let a = randn_mat(seed, 4 * b.max(2), b);
        let half = a.rows() / 2;
        let c0 = Candidates::from_block_row(
            &a.view().submatrix(0, 0, half, b).to_matrix(),
            &(0..half).collect::<Vec<_>>(),
        );
        let c1 = Candidates::from_block_row(
            &a.view().submatrix(half, 0, a.rows() - half, b).to_matrix(),
            &(half..a.rows()).collect::<Vec<_>>(),
        );
        let w = reduce_pair(&c0, &c1);
        let best = c0.block.col(0).iter().chain(c1.block.col(0)).fold(0.0_f64, |m, &v| m.max(v.abs()));
        prop_assert_eq!(a[(w.rows[0], 0)].abs(), best);
    }

    #[test]
    fn prop_gemm_matches_naive(
        seed in 0u64..1_000_000,
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
    ) {
        let a = randn_mat(seed, m, k);
        let b = randn_mat(seed ^ 0xABCD, k, n);
        let c0 = randn_mat(seed ^ 0x1234, m, n);
        let mut c1 = c0.clone();
        let mut c2 = c0;
        gemm(alpha, a.view(), b.view(), beta, c1.view_mut());
        gemm_naive(alpha, a.view(), b.view(), beta, c2.view_mut());
        prop_assert!(c1.max_abs_diff(&c2) < 1e-10 * (k as f64 + 1.0));
    }

    #[test]
    fn prop_perm_algebra(perm_seed in 0u64..1_000_000, n in 1usize..64) {
        // Build a permutation by shuffling via random ipiv.
        let mut rng = StdRng::seed_from_u64(perm_seed);
        use rand::Rng;
        let ipiv: Vec<usize> = (0..n).map(|i| rng.gen_range(i..n)).collect();
        let perm = ipiv_to_perm(&ipiv, n);
        prop_assert!(is_permutation(&perm));
        let inv = invert_perm(&perm);
        let id = compose(&inv, &perm);
        prop_assert_eq!(id, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn prop_solve_residual_small(
        seed in 0u64..1_000_000,
        n in 4usize..80,
        b in 1usize..16,
        p in 1usize..6,
    ) {
        let a = randn_mat(seed, n, n);
        let rhs = gen::hpl_rhs(&mut StdRng::seed_from_u64(seed ^ 0xFF), n);
        let f = calu_factor(&a, CaluOpts { block: b, p, ..Default::default() }).unwrap();
        let x = f.solve(&rhs);
        let wb = calu_repro::stability::componentwise_backward_error(&a, &x, &rhs);
        // Random normal matrices at these sizes are well conditioned with
        // overwhelming probability; wb should be near machine epsilon.
        prop_assert!(wb < 1e-8, "wb = {wb} (n={n} b={b} p={p})");
    }

    #[test]
    fn prop_runtime_dag_equals_sequential_bitwise(
        seed in 0u64..1_000_000,
        m in 8usize..72,
        n in 8usize..72,
        b in 2usize..20,
        p in 1usize..6,
        depth in 1usize..4,
        exec_sel in 0usize..2,
    ) {
        // Any schedule the runtime can produce — serial replay or
        // work-stealing threads, lookahead depths 1..3, ragged shapes —
        // must be a pure reordering: identical pivots, bitwise identical
        // factors.
        use calu_repro::core::{runtime_calu_factor, RuntimeOpts};
        use calu_repro::runtime::ExecutorKind;
        let a = randn_mat(seed, m, n);
        let opts = CaluOpts { block: b, p, ..Default::default() };
        let seq = calu_factor(&a, opts).unwrap();
        let executor = if exec_sel == 1 {
            ExecutorKind::Threaded { threads: 3 }
        } else {
            ExecutorKind::Serial
        };
        let rt = RuntimeOpts { lookahead: depth, executor, parallel_panel: false };
        let (f, _rep) = runtime_calu_factor(&a, opts, rt).unwrap();
        prop_assert_eq!(&seq.ipiv, &f.ipiv, "pivots differ (m={} n={} b={} p={} d={})", m, n, b, p, depth);
        prop_assert_eq!(seq.lu.max_abs_diff(&f.lu), 0.0);
    }

    #[test]
    fn prop_serial_executor_schedule_is_deterministic(
        seed in 0u64..1_000_000,
        m in 8usize..72,
        n in 8usize..72,
        b in 2usize..20,
        depth in 1usize..4,
    ) {
        // The serial executor replays a fixed priority order: two runs of
        // the same factorization must execute the identical task sequence.
        use calu_repro::core::{runtime_calu_factor, RuntimeOpts};
        use calu_repro::runtime::ExecutorKind;
        let a = randn_mat(seed, m, n);
        let opts = CaluOpts { block: b, p: 4, ..Default::default() };
        let rt = RuntimeOpts { lookahead: depth, executor: ExecutorKind::Serial, parallel_panel: false };
        let (f1, r1) = runtime_calu_factor(&a, opts, rt).unwrap();
        let (f2, r2) = runtime_calu_factor(&a, opts, rt).unwrap();
        prop_assert_eq!(&r1.order, &r2.order, "serial schedule must be run-to-run deterministic");
        prop_assert_eq!(f1.lu.max_abs_diff(&f2.lu), 0.0);
        prop_assert_eq!(f1.ipiv, f2.ipiv);
    }

    #[test]
    fn prop_tiled_lookahead_equals_sequential_bitwise(
        seed in 0u64..1_000_000,
        m in 8usize..80,
        n in 8usize..80,
        b in 2usize..20,
        p in 1usize..6,
    ) {
        // The lookahead schedule must be a pure reordering: identical
        // pivots and bitwise identical factors on every shape.
        let a = randn_mat(seed, m, n);
        let opts = CaluOpts { block: b, p, ..Default::default() };
        let seq = calu_factor(&a, opts).unwrap();
        let tiled = calu_repro::core::tiled_calu_factor(&a, opts).unwrap();
        prop_assert_eq!(&seq.ipiv, &tiled.ipiv, "pivots differ (m={} n={} b={} p={})", m, n, b, p);
        prop_assert_eq!(seq.lu.max_abs_diff(&tiled.lu), 0.0);
    }

    #[test]
    fn prop_dist_pdgetrf_equals_sequential_getrf(
        seed in 0u64..1_000_000,
        nblocks in 3usize..8,
        b in 2usize..8,
        pr in 1usize..4,
        pc in 1usize..4,
    ) {
        use calu_repro::core::dist::{dist_pdgetrf_factor, DistPdgetrfConfig};
        use calu_repro::matrix::lapack::{getrf, GetrfOpts};
        use calu_repro::matrix::NoObs;
        let n = nblocks * b;
        let a = randn_mat(seed, n, n);
        let (_rep, d) = dist_pdgetrf_factor(
            &a,
            DistPdgetrfConfig { b, pr, pc },
            calu_repro::netsim::MachineConfig::ideal(),
        );
        let mut lu = a.clone();
        let mut ipiv = vec![0usize; n];
        getrf(lu.view_mut(), &mut ipiv, GetrfOpts { block: b, ..Default::default() }, &mut NoObs)
            .unwrap();
        prop_assert_eq!(&d.ipiv, &ipiv);
        prop_assert_eq!(d.lu.max_abs_diff(&lu), 0.0, "partial pivoting is deterministic");
    }

    #[test]
    fn prop_dist_rt_calu_bitwise_matches_spmd(
        seed in 0u64..1_000_000,
        m in 24usize..56,
        n in 24usize..56,
        gi in 0usize..4,
        depth in 1usize..4,
    ) {
        // The DAG-driven distributed CALU must reproduce the pre-refactor
        // SPMD loop's factors BITWISE — per grid, lookahead depth,
        // executor, COMMUNICATOR (shared in-process mailbox vs. real
        // rank threads over point-to-point messages), precision, and
        // ragged shape. Equality of both communicators to one SPMD
        // reference is equality of the communicators to each other.
        use calu_repro::core::dist::{dist_calu_factor_spmd, DistCaluConfig};
        use calu_repro::core::{dist_calu_factor_rt, CommKind, DistRtOpts, LocalLu};
        use calu_repro::netsim::MachineConfig;
        use calu_repro::runtime::ExecutorKind;
        let (pr, pc) = [(1usize, 1usize), (2, 2), (2, 4), (3, 2)][gi];
        let cfg = DistCaluConfig { b: 8, pr, pc, local: LocalLu::Recursive };
        let a64 = randn_mat(seed, m, n);
        let a32 = a64.cast::<f32>();
        let (_r, want64) = dist_calu_factor_spmd(&a64, cfg, MachineConfig::ideal());
        let (_r, want32) = dist_calu_factor_spmd(&a32, cfg, MachineConfig::ideal());
        for executor in [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 2 }] {
            for communicator in [CommKind::InProcess, CommKind::Threaded] {
                let rt = DistRtOpts { lookahead: depth, executor, communicator };
                let (_q, got64) = dist_calu_factor_rt(&a64, cfg, rt, MachineConfig::ideal());
                prop_assert_eq!(&want64.ipiv, &got64.ipiv, "f64 pivots (m={} n={} {}x{} d={} {:?})", m, n, pr, pc, depth, communicator);
                prop_assert_eq!(want64.lu.max_abs_diff(&got64.lu), 0.0, "f64 factors (m={} n={} {}x{} d={} {:?} {:?})", m, n, pr, pc, depth, executor, communicator);
                prop_assert_eq!(got64.first_singular, None);
                let (_q, got32) = dist_calu_factor_rt(&a32, cfg, rt, MachineConfig::ideal());
                prop_assert_eq!(&want32.ipiv, &got32.ipiv, "f32 pivots (m={} n={} {}x{} d={} {:?})", m, n, pr, pc, depth, communicator);
                prop_assert_eq!(want32.lu.max_abs_diff(&got32.lu), 0.0f32, "f32 factors (m={} n={} {}x{} d={} {:?} {:?})", m, n, pr, pc, depth, executor, communicator);
            }
        }
    }

    #[test]
    fn prop_dist_rt_pdgetrf_equals_sequential_getrf(
        seed in 0u64..1_000_000,
        n in 16usize..48,
        b in 3usize..9,
        gi in 0usize..4,
        depth in 1usize..4,
    ) {
        // The runtime-driven PDGETRF baseline stays bitwise equal to the
        // sequential blocked getrf at every grid and lookahead depth
        // (ragged n not a multiple of b included).
        use calu_repro::core::dist::DistPdgetrfConfig;
        use calu_repro::core::{dist_pdgetrf_factor_rt, CommKind, DistRtOpts};
        use calu_repro::matrix::lapack::{getrf, GetrfOpts};
        use calu_repro::matrix::NoObs;
        use calu_repro::netsim::MachineConfig;
        use calu_repro::runtime::ExecutorKind;
        let (pr, pc) = [(1usize, 1usize), (2, 2), (2, 4), (3, 2)][gi];
        let a = randn_mat(seed, n, n);
        let mut lu = a.clone();
        let mut ipiv = vec![0usize; n];
        getrf(lu.view_mut(), &mut ipiv, GetrfOpts { block: b, ..Default::default() }, &mut NoObs)
            .unwrap();
        for executor in [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 2 }] {
            for communicator in [CommKind::InProcess, CommKind::Threaded] {
                let rt = DistRtOpts { lookahead: depth, executor, communicator };
                let (_rep, d) = dist_pdgetrf_factor_rt(
                    &a,
                    DistPdgetrfConfig { b, pr, pc },
                    rt,
                    MachineConfig::ideal(),
                );
                prop_assert_eq!(&d.ipiv, &ipiv, "pivots (n={} b={} {}x{} d={} {:?})", n, b, pr, pc, depth, communicator);
                prop_assert_eq!(d.lu.max_abs_diff(&lu), 0.0, "factors (n={} b={} {}x{} d={} {:?} {:?})", n, b, pr, pc, depth, executor, communicator);
            }
        }
    }

    #[test]
    fn prop_resident_panel_bitwise_across_schedules(
        seed in 0u64..1_000_000,
        m in 8usize..72,
        n in 8usize..72,
        b in 2usize..20,
        depth in 1usize..4,
    ) {
        // Tile-resident panel mode follows a different deterministic
        // tournament tree (tile-height leaves), so it is not compared to
        // the gathered reference — instead its serial depth-1 run is the
        // reference, and every executor x depth x precision must
        // reproduce it bitwise on ragged shapes; the f64 factors must
        // also reconstruct P A = L U.
        use calu_repro::core::{runtime_calu_factor, PanelMode, RuntimeOpts};
        use calu_repro::runtime::ExecutorKind;
        let a64 = randn_mat(seed, m, n);
        let a32 = a64.cast::<f32>();
        let opts = CaluOpts { block: b, panel_mode: PanelMode::Resident, ..Default::default() };
        let rt0 = RuntimeOpts { lookahead: 1, executor: ExecutorKind::Serial, parallel_panel: false };
        let (want64, _) = runtime_calu_factor(&a64, opts, rt0).unwrap();
        let (want32, _) = runtime_calu_factor(&a32, opts, rt0).unwrap();
        let perm = ipiv_to_perm(&want64.ipiv, m);
        prop_assert!(is_permutation(&perm));
        let pa = permute_rows(&a64, &perm);
        let l = want64.lu.unit_lower();
        let u = want64.lu.upper();
        let mut prod = Matrix::zeros(m, n);
        gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
        let err = pa.max_abs_diff(&prod) / a64.max_abs().max(1.0);
        prop_assert!(err < 1e-9, "resident reconstruction error {err} (m={m} n={n} b={b})");
        for executor in [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 3 }] {
            let rt = RuntimeOpts { lookahead: depth, executor, parallel_panel: false };
            let (f, _) = runtime_calu_factor(&a64, opts, rt).unwrap();
            prop_assert_eq!(&want64.ipiv, &f.ipiv, "f64 pivots (m={} n={} b={} d={} {:?})", m, n, b, depth, executor);
            prop_assert_eq!(want64.lu.max_abs_diff(&f.lu), 0.0, "f64 factors (m={} n={} b={} d={} {:?})", m, n, b, depth, executor);
            let (f, _) = runtime_calu_factor(&a32, opts, rt).unwrap();
            prop_assert_eq!(&want32.ipiv, &f.ipiv, "f32 pivots (m={} n={} b={} d={} {:?})", m, n, b, depth, executor);
            prop_assert_eq!(want32.lu.max_abs_diff(&f.lu), 0.0f32, "f32 factors (m={} n={} b={} d={} {:?})", m, n, b, depth, executor);
        }
    }

    #[test]
    fn prop_resident_serial_schedule_run_to_run_deterministic(
        seed in 0u64..1_000_000,
        m in 8usize..72,
        n in 8usize..72,
        b in 2usize..20,
        depth in 1usize..4,
    ) {
        // Same contract the gathered path proves: the serial executor
        // replays a fixed priority order, so two resident-mode runs must
        // execute the identical task sequence and produce identical bits.
        use calu_repro::core::{runtime_calu_factor, PanelMode, RuntimeOpts};
        use calu_repro::runtime::ExecutorKind;
        let a = randn_mat(seed, m, n);
        let opts = CaluOpts { block: b, panel_mode: PanelMode::Resident, ..Default::default() };
        let rt = RuntimeOpts { lookahead: depth, executor: ExecutorKind::Serial, parallel_panel: false };
        let (f1, r1) = runtime_calu_factor(&a, opts, rt).unwrap();
        let (f2, r2) = runtime_calu_factor(&a, opts, rt).unwrap();
        prop_assert_eq!(&r1.order, &r2.order, "resident serial schedule must be run-to-run deterministic");
        prop_assert_eq!(f1.lu.max_abs_diff(&f2.lu), 0.0);
        prop_assert_eq!(f1.ipiv, f2.ipiv);
    }

    #[test]
    fn prop_calu_growth_within_inverse_threshold_power(
        seed in 0u64..1_000_000,
        n in 16usize..64,
        p in 2usize..6,
    ) {
        // Threshold-pivoting theory: with per-step thresholds tau_i, the
        // growth is bounded by prod(1 + 1/tau_i); we check the much
        // tighter practical statement from the paper — growth within a
        // modest factor of GEPP's on the same matrix.
        let a = randn_mat(seed, n, n);
        let mut s_calu = PivotStats::new(a.max_abs());
        let mut w = a.clone();
        calu_inplace(w.view_mut(), CaluOpts { block: 8, p, ..Default::default() }, &mut s_calu).unwrap();

        let mut s_gepp = PivotStats::new(a.max_abs());
        let mut g = a.clone();
        calu_inplace(g.view_mut(), CaluOpts { block: 8, p: 1, ..Default::default() }, &mut s_gepp).unwrap();

        prop_assert!(
            s_calu.max_elem <= 16.0 * s_gepp.max_elem,
            "ca-pivoting growth {} wildly above GEPP {} (n={} p={})",
            s_calu.max_elem, s_gepp.max_elem, n, p
        );
    }
}
