//! Cross-crate integration tests for the simulated-distributed layer:
//! distributed results vs sequential references, and simulated performance
//! claims (the paper's headline shapes) end to end.

use calu_repro::core::dist::{
    dist_calu_factor, sim_pdgetf2_panel, sim_tslu_panel, skeleton_calu, skeleton_pdgetf2,
    skeleton_pdgetrf, skeleton_tslu, DistCaluConfig, RowSwapScheme, SkelCfg,
};
use calu_repro::core::{tslu_pivots, CaluOpts, LocalLu, LuFactors};
use calu_repro::matrix::blas3::gemm;
use calu_repro::matrix::perm::{ipiv_to_perm, permute_rows};
use calu_repro::matrix::{gen, Matrix};
use calu_repro::netsim::MachineConfig;
use calu_repro::perfmodel::equations::{t_pdgetrf, t_tslu};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dist_tslu_elects_sequential_pivots() {
    let mut rng = StdRng::seed_from_u64(2001);
    let a: Matrix = gen::randn(&mut rng, 256, 16);
    for p in [2usize, 4, 8, 16] {
        let seq = tslu_pivots(a.view(), p, LocalLu::Recursive);
        let (_rep, d) = sim_tslu_panel(&a, p, LocalLu::Recursive, MachineConfig::power5());
        assert_eq!(d.pivot_rows, seq, "p={p}");
    }
}

#[test]
fn dist_pdgetf2_is_partial_pivoting() {
    let mut rng = StdRng::seed_from_u64(2002);
    let a: Matrix = gen::randn(&mut rng, 128, 16);
    let (_rep, d) = sim_pdgetf2_panel(&a, 8, MachineConfig::xt4());
    let mut seq = a.clone();
    let mut ipiv = vec![0usize; 16];
    calu_repro::matrix::lapack::getf2(seq.view_mut(), &mut ipiv, &mut calu_repro::matrix::NoObs)
        .unwrap();
    assert_eq!(d.ipiv, ipiv);
    assert_eq!(d.panel.max_abs_diff(&seq), 0.0);
}

#[test]
fn dist_calu_full_stack_solves() {
    let mut rng = StdRng::seed_from_u64(2003);
    let n = 128;
    let a = gen::randn(&mut rng, n, n);
    let (_rep, d) = dist_calu_factor(
        &a,
        DistCaluConfig { b: 16, pr: 4, pc: 2, local: LocalLu::Recursive },
        MachineConfig::power5(),
    );
    // Reconstruction.
    let perm = ipiv_to_perm(&d.ipiv, n);
    let pa = permute_rows(&a, &perm);
    let l = d.lu.unit_lower();
    let u = d.lu.upper();
    let mut prod = Matrix::zeros(n, n);
    gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
    assert!(pa.max_abs_diff(&prod) < 1e-9);
    // Solve.
    let f = LuFactors { lu: d.lu, ipiv: d.ipiv };
    let xt: Vec<f64> = (0..n).map(|i| (i % 3) as f64 - 1.0).collect();
    let b = gen::rhs_for_solution(&a, &xt);
    let x = f.solve(&b);
    for (xi, ti) in x.iter().zip(&xt) {
        assert!((xi - ti).abs() < 1e-8);
    }
}

#[test]
fn dist_calu_matches_sequential_when_layout_is_contiguous() {
    // With pr=1 the panel is on one rank: pivots equal sequential CALU's
    // with p=1 (both are partial pivoting).
    let mut rng = StdRng::seed_from_u64(2004);
    let a: Matrix = gen::randn(&mut rng, 64, 64);
    let (_rep, d) = dist_calu_factor(
        &a,
        DistCaluConfig { b: 16, pr: 1, pc: 4, local: LocalLu::Classic },
        MachineConfig::ideal(),
    );
    let f = calu_repro::core::calu_factor(
        &a,
        CaluOpts {
            block: 16,
            p: 1,
            local: LocalLu::Classic,
            parallel_update: false,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(d.ipiv, f.ipiv);
    assert!(d.lu.max_abs_diff(&f.lu) < 1e-10);
}

#[test]
fn paper_headline_panel_shape_holds_on_both_machines() {
    // Table 3/4 shape: TSLU >= PDGETF2 everywhere it's valid, with the
    // largest wins on big panels (Rec) and small-matrix/many-proc cells.
    for mch in [MachineConfig::power5(), MachineConfig::xt4()] {
        let big = skeleton_pdgetf2(1_000_000, 150, 16, mch.clone()).makespan()
            / skeleton_tslu(1_000_000, 150, 16, LocalLu::Recursive, mch.clone()).makespan();
        let small = skeleton_pdgetf2(1_000, 50, 16, mch.clone()).makespan()
            / skeleton_tslu(1_000, 50, 16, LocalLu::Classic, mch.clone()).makespan();
        assert!(big > 2.0, "{}: big-panel ratio {big}", mch.name);
        assert!(small > 1.2, "{}: small-panel ratio {small}", mch.name);
    }
}

#[test]
fn paper_headline_full_factorization_shape() {
    // Table 5 shape on POWER5: improvement largest for m=10^3 at P=64,
    // shrinking toward 1 for m=10^4 at P=4.
    let mch = MachineConfig::power5();
    let cell = |m: usize, b: usize, pr: usize, pc: usize| {
        let cfg = SkelCfg {
            m,
            n: m,
            b,
            pr,
            pc,
            local: LocalLu::Recursive,
            swap: RowSwapScheme::ReduceBcast,
        };
        let pdg = SkelCfg { local: LocalLu::Classic, swap: RowSwapScheme::PdLaswp, ..cfg };
        skeleton_pdgetrf(pdg, mch.clone()).makespan() / skeleton_calu(cfg, mch.clone()).makespan()
    };
    let small_64 = cell(1_000, 50, 8, 8);
    let large_4 = cell(10_000, 50, 2, 2);
    assert!(small_64 > 1.5, "m=1e3 P=64: {small_64}");
    assert!((0.9..1.4).contains(&large_4), "m=1e4 P=4: {large_4}");
    assert!(small_64 > large_4);
}

#[test]
fn closed_forms_track_simulator() {
    // Eq (1) uses a single flop rate and counts the tournament combines as
    // 2b^3/3 flops per level, where the actual 2b x b GEPP costs 10b^3/3
    // flops at BLAS-2 rate — so on combine-dominated cells (small m, large
    // P) the simulator is up to ~6x above the closed form, and on
    // compute-dominated cells they agree closely. Both regimes asserted;
    // the gap itself is a documented deviation (EXPERIMENTS.md).
    let mch = MachineConfig::power5();
    for &(m, b, p, lo, hi) in &[
        (10_000usize, 50usize, 4usize, 0.4, 3.0),
        (100_000, 100, 16, 0.4, 3.0),
        (1_000, 50, 16, 1.0, 8.0), // combine-dominated: sim above eq
    ] {
        let sim = skeleton_tslu(m, b, p, LocalLu::Recursive, mch.clone()).makespan();
        let eq = t_tslu(&mch, m, b, p).total();
        let ratio = sim / eq;
        assert!((lo..hi).contains(&ratio), "m={m} b={b} p={p}: sim/eq {ratio}");
    }
    // PDGETRF closed form vs skeleton on a mid cell.
    let cfg = SkelCfg {
        m: 5_000,
        n: 5_000,
        b: 100,
        pr: 4,
        pc: 8,
        local: LocalLu::Classic,
        swap: RowSwapScheme::PdLaswp,
    };
    let sim = skeleton_pdgetrf(cfg, mch.clone()).makespan();
    let eq = t_pdgetrf(&mch, 5_000, 5_000, 100, 4, 8).total();
    let ratio = sim / eq;
    assert!((0.3..3.0).contains(&ratio), "pdgetrf sim/eq {ratio}");
}

#[test]
fn dist_dag_critical_path_cross_checks_the_lookahead_skeleton() {
    // Dedupe check between the two independent cost models of distributed
    // lookahead: the closed-form `skeleton_calu_lookahead` (deferred-bulk
    // simulation over netsim ranks) and the per-task `DistCostModel` over
    // the distributed DAG. Three relations must hold, else the models
    // have diverged:
    //
    //  1. the DAG's critical path (infinite-parallelism bound) at any
    //     depth is at or below the skeleton's modeled time;
    //  2. the DAG's per-rank modeled schedule at depth 1 agrees with the
    //     depth-1 skeleton within a documented ±25% tolerance (measured
    //     agreement is within ~13% on these cells);
    //  3. depth 2 never slows the modeled rank schedule.
    use calu_repro::core::dist::skeleton_calu_lookahead;
    use calu_repro::runtime::{
        simulate_dist_schedule, DistCostModel, DistGeom, DistPanelAlg, LuDag, LuShape,
    };
    let mch = MachineConfig::power5();
    for &(m, b, pr, pc) in &[(2000usize, 50usize, 2usize, 2usize), (2000, 50, 4, 4)] {
        let skel = skeleton_calu_lookahead(
            SkelCfg {
                m,
                n: m,
                b,
                pr,
                pc,
                local: LocalLu::Recursive,
                swap: RowSwapScheme::ReduceBcast,
            },
            mch.clone(),
        )
        .makespan();
        let shape = LuShape { m, n: m, nb: b };
        let model = DistCostModel {
            geom: DistGeom { shape, pr, pc },
            alg: DistPanelAlg::Tslu,
            recursive_panel: true,
            mch: mch.clone(),
        };
        let mut mk = Vec::new();
        for d in 1..=3usize {
            let dag = LuDag::build_dist(shape, (pr, pc), d);
            let cp = dag.critical_path(|t| model.cost(t).total(&mch));
            assert!(
                cp <= skel * 1.001,
                "{pr}x{pc} d={d}: DAG critical path {cp} exceeds skeleton {skel}"
            );
            mk.push(simulate_dist_schedule(&dag, |t| model.cost(t), &mch).makespan);
        }
        let ratio = mk[0] / skel;
        assert!(
            (0.75..1.25).contains(&ratio),
            "{pr}x{pc}: depth-1 rank schedule {} vs skeleton {skel} diverged (ratio {ratio})",
            mk[0]
        );
        assert!(mk[1] <= mk[0] * 1.001, "{pr}x{pc}: depth 2 must not slow the modeled schedule");
    }
}
