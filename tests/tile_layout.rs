//! Tile-storage integration tests: lossless `from_matrix`/`to_matrix`
//! round trips (including ragged shapes), cross-tile `laswp` equivalence
//! with the flat pivot application, and bitwise identity of tile-backed
//! runtime CALU against the sequential sweep at both precisions, on both
//! executors, at lookahead depths 1–3.

use calu_repro::core::{calu_factor, runtime_calu_tiles, CaluOpts, RuntimeOpts};
use calu_repro::matrix::perm::apply_ipiv;
use calu_repro::matrix::{gen, Matrix, NoObs, Scalar, TileMatrix};
use calu_repro::runtime::ExecutorKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn executors() -> [ExecutorKind; 2] {
    [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 3 }]
}

/// Tile-backed runtime CALU vs sequential `calu_inplace`, bitwise, at one
/// precision across executors and depths.
fn check_tile_runtime_bitwise<T: Scalar>(seed: u64, m: usize, n: usize, b: usize, p: usize) {
    let a: Matrix<T> = gen::randn(&mut StdRng::seed_from_u64(seed), m, n);
    let opts = CaluOpts { block: b, p, ..Default::default() };
    let seq = calu_factor(&a, opts).expect("random normal matrices are nonsingular");
    for depth in 1..=3 {
        for executor in executors() {
            let rt = RuntimeOpts { lookahead: depth, executor, parallel_panel: false };
            let mut tiles = TileMatrix::from_matrix(&a, b, b);
            let (ipiv, _rep) = runtime_calu_tiles(&mut tiles, opts, rt, &mut NoObs).unwrap();
            assert_eq!(seq.ipiv, ipiv, "{} {m}x{n} b={b} d={depth} {executor:?}", T::NAME);
            assert_eq!(
                seq.lu.max_abs_diff(&tiles.to_matrix()),
                T::ZERO,
                "{} {m}x{n} b={b} d={depth} {executor:?}: tile factors must be bitwise identical",
                T::NAME
            );
        }
    }
}

#[test]
fn tile_runtime_bitwise_f64_all_depths_and_executors() {
    for &(m, n, b, p) in &[(96usize, 96usize, 16usize, 4usize), (97, 97, 16, 3), (60, 100, 16, 4)] {
        check_tile_runtime_bitwise::<f64>(7101, m, n, b, p);
    }
}

#[test]
fn tile_runtime_bitwise_f32_all_depths_and_executors() {
    for &(m, n, b, p) in &[(96usize, 96usize, 16usize, 4usize), (97, 97, 16, 3), (100, 60, 16, 4)] {
        check_tile_runtime_bitwise::<f32>(7102, m, n, b, p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// from_matrix -> to_matrix is lossless for any shape and tile size,
    /// divisible or ragged, and element addressing agrees everywhere.
    #[test]
    fn tile_round_trip_is_lossless(
        m in 1usize..40,
        n in 1usize..40,
        mb in 1usize..12,
        nb in 1usize..12,
        seed in 0u64..1_000,
    ) {
        let a: Matrix = gen::randn(&mut StdRng::seed_from_u64(seed), m, n);
        let t = TileMatrix::from_matrix(&a, mb, nb);
        prop_assert_eq!(t.to_matrix(), a.clone());
        // Spot-check direct indexing on the corners and center.
        for &(i, j) in &[(0, 0), (m - 1, 0), (0, n - 1), (m - 1, n - 1), (m / 2, n / 2)] {
            prop_assert_eq!(t[(i, j)], a[(i, j)]);
        }
    }

    /// Cross-tile laswp == flat apply_ipiv for random transposition
    /// sequences, including swaps that cross tile boundaries.
    #[test]
    fn tile_laswp_matches_flat(
        m in 2usize..40,
        n in 1usize..30,
        mb in 1usize..12,
        nb in 1usize..12,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Matrix = gen::randn(&mut rng, m, n);
        let kn = m.min(8);
        let ipiv: Vec<usize> =
            (0..kn).map(|i| i + (seed as usize * 31 + i * 17) % (m - i)).collect();
        let mut flat = a.clone();
        apply_ipiv(flat.view_mut(), &ipiv);
        let mut tiled = TileMatrix::from_matrix(&a, mb, nb);
        tiled.laswp(&ipiv);
        prop_assert_eq!(tiled.to_matrix(), flat);
    }

    /// The shared cast helper keeps both layouts' precision ladders in
    /// lockstep: casting tiles == tiling the cast.
    #[test]
    fn tile_cast_commutes_with_matrix_cast(
        m in 1usize..24,
        n in 1usize..24,
        b in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let a: Matrix = gen::randn(&mut StdRng::seed_from_u64(seed), m, n);
        let via_tiles = TileMatrix::from_matrix(&a, b, b).cast::<f32>().to_matrix();
        let via_flat = a.cast::<f32>();
        prop_assert_eq!(via_tiles, via_flat);
    }
}
