//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `channel::{unbounded, Sender, Receiver}` with `send` / `recv_timeout`.
//!
//! Backed by `std::sync::mpsc`, which has identical semantics for the
//! simulator's usage pattern (many cloned senders, one receiver per rank,
//! unbounded buffering, disconnect-on-drop).

#![warn(missing_docs)]

/// Multi-producer single-consumer channels.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError};

    /// Cloneable sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for a message up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Blocks for a message until all senders are dropped.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
            drop(tx);
            assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
        }
    }
}
