//! Offline stand-in for the subset of `rayon` this workspace uses:
//! [`join`], `prelude::*` (`par_iter().map(..).collect()`), and
//! `ThreadPoolBuilder` / `ThreadPool::install`.
//!
//! Parallelism is real (scoped OS threads), but primitive: `join` spawns
//! one thread for the second closure; `par_iter().map().collect()` chunks
//! the slice across up to [`current_num_threads`] threads. There is no
//! work stealing and no pool reuse — adequate for this workspace, where
//! the rayon paths are asserted *bitwise equal* to the sequential ones
//! and wall-clock scaling is informational only.
//!
//! # Pool-size semantics
//!
//! [`ThreadPool::install`] runs its closure on a fresh scoped thread with
//! a thread-local concurrency limit set to the builder's `num_threads`,
//! and the limit is **inherited** by every thread this crate spawns
//! underneath (nested `join`s and `par_iter`s included), so
//! `ThreadPoolBuilder::new().num_threads(n)` genuinely caps this crate's
//! primitives at `n` concurrent threads. With `num_threads(1)`, `join`
//! and `par_iter` degenerate to sequential inline execution on the
//! installing thread's child — useful for scaling studies.
//!
//! # Remaining gaps vs. real rayon
//!
//! * **No pool reuse**: every `install`/`join`/`par_iter` spawns fresh
//!   scoped threads rather than dispatching to persistent workers, so the
//!   per-call overhead is a thread spawn (~10 µs), not a queue push.
//! * **No work stealing**: `par_iter` splits into equal contiguous chunks
//!   up front; imbalanced workloads are not rebalanced. (The task-graph
//!   runtime in `calu-runtime` has its own shared-pool scheduler and does
//!   not rely on this crate.)
//! * The limit caps only threads spawned *by this crate*: `join(a, b)`
//!   under a limit of `n ≥ 2` runs `a` on the calling thread and may
//!   spawn one more, but it never tracks a global census across sibling
//!   `join`s — deeply nested unbalanced trees can briefly exceed the cap.
//! * `spawn`, `scope`, `ParallelSlice`, bridges, and the rest of rayon's
//!   surface are absent.

#![warn(missing_docs)]

use std::cell::Cell;

thread_local! {
    /// Concurrency limit installed by [`ThreadPool::install`]; `None`
    /// means "host parallelism".
    static POOL_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The concurrency limit in effect on this thread: the installed pool
/// size, or the host's available parallelism outside any pool.
pub fn current_num_threads() -> usize {
    POOL_LIMIT
        .get()
        .unwrap_or_else(|| std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1))
        .max(1)
}

/// Runs `f` on a scoped thread that inherits the caller's pool limit
/// (`std::thread::scope` does not propagate thread-locals by itself).
fn spawn_inheriting<'scope, 'env, R: Send + 'scope>(
    s: &'scope std::thread::Scope<'scope, 'env>,
    f: impl FnOnce() -> R + Send + 'scope,
) -> std::thread::ScopedJoinHandle<'scope, R> {
    let limit = POOL_LIMIT.get();
    s.spawn(move || {
        POOL_LIMIT.set(limit);
        f()
    })
}

/// Runs both closures, potentially in parallel, and returns both results.
/// Under an installed pool limit of 1 both run sequentially on the
/// calling thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = spawn_inheriting(s, b);
        let ra = a();
        (ra, hb.join().expect("rayon-compat join: task panicked"))
    })
}

/// Parallel-iterator traits and adaptors.
pub mod prelude {
    /// `.par_iter()` on slices (and, via deref, `Vec`).
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Creates a parallel iterator over `&self`.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        /// Maps each element through `f` (run in parallel at collect time).
        pub fn map<F, R>(self, f: F) -> ParMap<'a, T, F>
        where
            F: Fn(&'a T) -> R + Sync,
            R: Send,
        {
            ParMap { items: self.items, f }
        }
    }

    /// A mapped parallel iterator, consumed by [`ParMap::collect`].
    pub struct ParMap<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    impl<'a, T: Sync, F> ParMap<'a, T, F> {
        /// Runs the map across threads (at most the installed pool limit)
        /// and collects in input order.
        pub fn collect<C, R>(self) -> C
        where
            F: Fn(&'a T) -> R + Sync,
            R: Send,
            C: FromIterator<R>,
        {
            let n = self.items.len();
            let threads = crate::current_num_threads().min(n);
            if n <= 1 || threads <= 1 {
                return self.items.iter().map(&self.f).collect();
            }
            let chunk = n.div_ceil(threads);
            let f = &self.f;
            let mut out: Vec<Vec<R>> = std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .items
                    .chunks(chunk)
                    .map(|c| {
                        crate::spawn_inheriting(s, move || c.iter().map(f).collect::<Vec<R>>())
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rayon-compat map: task panicked"))
                    .collect()
            });
            out.drain(..).flatten().collect()
        }
    }
}

/// Errors from [`ThreadPoolBuilder::build`]; never produced by this
/// stand-in.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`]. `num_threads(0)` (the default) means
/// "host parallelism", matching rayon.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a pool size, enforced as the concurrency limit of every
    /// primitive of this crate that runs inside [`ThreadPool::install`].
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    /// Never fails in this stand-in (kept for API compatibility).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A handle mimicking `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's configured concurrency limit.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
        } else {
            self.num_threads
        }
    }

    /// Runs `f` inside the pool: on a fresh scoped thread whose
    /// thread-local concurrency limit is this pool's size, inherited by
    /// every nested `join`/`par_iter` spawn (see the crate docs for the
    /// remaining gaps vs. real rayon).
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let limit = self.current_num_threads();
        std::thread::scope(|s| {
            s.spawn(|| {
                POOL_LIMIT.set(Some(limit));
                f()
            })
            .join()
            .expect("rayon-compat install: task panicked")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::ThreadId;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_install_runs_on_its_own_thread() {
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let caller = std::thread::current().id();
        let (val, inner) = pool.install(|| (5, std::thread::current().id()));
        assert_eq!(val, 5);
        assert_ne!(caller, inner, "install must run on a pool thread");
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn single_thread_pool_runs_join_inline() {
        let pool = super::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let ids = pool.install(|| {
            let here = std::thread::current().id();
            let (ia, ib) =
                super::join(|| std::thread::current().id(), || std::thread::current().id());
            (here, ia, ib)
        });
        assert_eq!(ids.0, ids.1, "limit 1: first closure inline");
        assert_eq!(ids.0, ids.2, "limit 1: second closure inline too");
    }

    #[test]
    fn pool_limit_caps_par_iter_threads() {
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..64).collect();
        let out: Vec<usize> = pool.install(|| {
            v.par_iter()
                .map(|x| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    *x
                })
                .collect()
        });
        assert_eq!(out, v);
        let used = seen.lock().unwrap().len();
        assert!(used <= 2, "pool of 2 must not use {used} threads");
    }

    #[test]
    fn pool_limit_inherits_into_nested_spawns() {
        // The limit must survive into the *spawned* side of a join (the
        // thread-local does not propagate by itself) and keep capping
        // nested primitives there.
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (outer, spawned) =
            pool.install(|| super::join(super::current_num_threads, super::current_num_threads));
        assert_eq!(outer, 2);
        assert_eq!(spawned, 2, "spawned join arm must inherit the installed limit");

        // And a limit of 1 forces joins inline on whatever thread runs them.
        let pool1 = super::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let ok = pool1.install(|| {
            let here = std::thread::current().id();
            let (a, b) =
                super::join(|| std::thread::current().id(), || std::thread::current().id());
            a == here && b == here
        });
        assert!(ok, "limit 1 must run both join arms inline");
    }

    #[test]
    fn outside_a_pool_the_host_limit_applies() {
        assert!(super::current_num_threads() >= 1);
    }
}
