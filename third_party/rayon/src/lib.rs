//! Offline stand-in for the subset of `rayon` this workspace uses:
//! [`join`], `prelude::*` (`par_iter().map(..).collect()`), and
//! `ThreadPoolBuilder` / `ThreadPool::install`.
//!
//! Parallelism is real (scoped OS threads), but primitive: `join` spawns
//! one thread for the second closure; `par_iter().map().collect()` chunks
//! the slice across `available_parallelism` threads. There is no work
//! stealing and no pool reuse — adequate for this workspace, where the
//! rayon paths are asserted *bitwise equal* to the sequential ones and
//! wall-clock scaling is informational only.

#![warn(missing_docs)]

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-compat join: task panicked"))
    })
}

/// Parallel-iterator traits and adaptors.
pub mod prelude {
    /// `.par_iter()` on slices (and, via deref, `Vec`).
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Creates a parallel iterator over `&self`.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        /// Maps each element through `f` (run in parallel at collect time).
        pub fn map<F, R>(self, f: F) -> ParMap<'a, T, F>
        where
            F: Fn(&'a T) -> R + Sync,
            R: Send,
        {
            ParMap { items: self.items, f }
        }
    }

    /// A mapped parallel iterator, consumed by [`ParMap::collect`].
    pub struct ParMap<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    impl<'a, T: Sync, F> ParMap<'a, T, F> {
        /// Runs the map across threads and collects in input order.
        pub fn collect<C, R>(self) -> C
        where
            F: Fn(&'a T) -> R + Sync,
            R: Send,
            C: FromIterator<R>,
        {
            let n = self.items.len();
            if n <= 1 {
                return self.items.iter().map(&self.f).collect();
            }
            let threads = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1).min(n);
            let chunk = n.div_ceil(threads);
            let f = &self.f;
            let mut out: Vec<Vec<R>> = std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .items
                    .chunks(chunk)
                    .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rayon-compat map: task panicked"))
                    .collect()
            });
            out.drain(..).flatten().collect()
        }
    }
}

/// Errors from [`ThreadPoolBuilder::build`]; never produced by this
/// stand-in.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`]. The stand-in records the requested size
/// but runs `install` inline on the calling thread.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a pool size (recorded but not enforced by the stand-in).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { _num_threads: self.num_threads })
    }
}

/// A handle mimicking `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    _num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` "inside the pool" — inline in this stand-in, so nested
    /// `join`/`par_iter` calls still parallelize via scoped threads, but
    /// the pool size is not enforced.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_install_runs() {
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(|| 5), 5);
    }
}
