//! Offline stand-in for the subset of `rayon` this workspace uses:
//! [`join`], `prelude::*` (`par_iter().map(..).collect()`), and
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`].
//!
//! Parallelism is real **work stealing over persistent workers**, the
//! same architecture as rayon proper: a pool owns `num_threads` OS
//! worker threads, each with its own double-ended job queue, plus one
//! shared injector for work arriving from outside the pool. A worker
//! pushes the jobs it forks onto the *back* of its own deque and pops
//! them back LIFO (cache-warm, depth-first); idle workers steal FIFO
//! from the *front* of other workers' deques or the injector — so a
//! fork's oldest (largest) pending half is what migrates, and imbalanced
//! workloads rebalance without any up-front chunking.
//!
//! * [`join`] on a worker forks the second closure onto the worker's own
//!   deque, runs the first inline, then reclaims the fork if no thief
//!   took it (the common, allocation-light path — the job lives on the
//!   caller's stack, completion is a latch). While a stolen fork is in
//!   flight the waiting worker *helps*: it executes other pool work
//!   instead of blocking.
//! * [`join`] outside any pool migrates into the global registry (sized
//!   to the host's available parallelism) via the injector, so nested
//!   primitives underneath always find themselves on a worker.
//! * `par_iter().map(f).collect()` splits the slice by recursive
//!   [`join`] down to a few pieces per worker and reassembles in input
//!   order — stealing, not static chunking, decides who runs what.
//!
//! # Pool-size semantics
//!
//! [`ThreadPool::install`] runs its closure **on a pool worker**, and
//! every primitive of this crate underneath it schedules exclusively on
//! that pool's `num_threads` workers — there is no other thread the work
//! could run on, so a depth-`d` nest of `join`s/`par_iter`s is globally
//! capped at `num_threads` concurrent threads (not `num_threads^d`; the
//! old spawn-per-call stand-in needed a census to fake this, the pool
//! gets it by construction). With `num_threads(1)` every fork degenerates
//! to sequential inline execution on the single worker — useful for
//! scaling studies. `num_threads(0)` (the default) means "host
//! parallelism", matching rayon.
//!
//! # Remaining gaps vs. real rayon
//!
//! * Deques are `Mutex<VecDeque>`, not lock-free Chase-Lev: correct and
//!   contention-adequate at this workspace's fork granularity (panel
//!   tiles), but a real implementation steals without locks.
//! * `spawn`, `scope`, `ParallelSlice`, bridges, and the rest of rayon's
//!   surface are absent; `collect` materializes per-split `Vec`s rather
//!   than driving a `Consumer` tree.
//! * The global registry is never torn down (rayon leaks it too);
//!   [`ThreadPool`] joins its workers on drop.

#![warn(missing_docs)]

use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Job plumbing: type-erased pointers to stack-allocated closures, completed
// through a latch. The pointee outlives the pointer because every fork's
// owner blocks (or help-steals) until the latch is set before returning.

#[derive(Clone, Copy)]
struct JobRef {
    ptr: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, while the StackJob it points
// to is kept alive by the forking stack frame waiting on its latch.
unsafe impl Send for JobRef {}

impl JobRef {
    unsafe fn execute(self) {
        (self.exec)(self.ptr);
    }
}

/// One-shot completion flag, waitable both by blocking (non-worker threads)
/// and by polling (workers, which help-steal instead of sleeping).
struct Latch {
    done: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Self {
        Latch { done: AtomicBool::new(false), lock: Mutex::new(()), cv: Condvar::new() }
    }

    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn set(&self) {
        self.done.store(true, Ordering::Release);
        // Serialize with a sleeping waiter's recheck-then-wait.
        let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        self.cv.notify_all();
    }

    fn wait_blocking(&self) {
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while !self.probe() {
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<std::thread::Result<R>>>,
    latch: Latch,
}

// SAFETY: the UnsafeCells are touched only by the single executor (guarded
// by the one-shot JobRef) and, after the latch is set, by the single waiter.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F: FnOnce() -> R + Send, R: Send> StackJob<F, R> {
    fn new(f: F) -> Self {
        StackJob { f: UnsafeCell::new(Some(f)), result: UnsafeCell::new(None), latch: Latch::new() }
    }

    unsafe fn exec_erased(this: *const ()) {
        let job = &*(this as *const Self);
        let f = (*job.f.get()).take().expect("job executed twice");
        *job.result.get() = Some(catch_unwind(AssertUnwindSafe(f)));
        job.latch.set();
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef { ptr: self as *const Self as *const (), exec: Self::exec_erased }
    }

    /// Takes the result after the latch is set; re-raises a payload if the
    /// closure panicked on whichever thread executed it.
    fn take_result(&self) -> R {
        debug_assert!(self.latch.probe());
        // SAFETY: latch set — the executor is done with both cells.
        match unsafe { (*self.result.get()).take() } {
            Some(Ok(r)) => r,
            Some(Err(payload)) => resume_unwind(payload),
            None => unreachable!("latch set without a result"),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry: the persistent worker pool.

/// Per-worker wait-state counters, updated with relaxed atomics on the
/// scheduling paths (one add per steal attempt or park interval — far off
/// the job-execution hot path).
#[derive(Default)]
struct WorkerCounters {
    steals: AtomicU64,
    failed_steals: AtomicU64,
    park_ns: AtomicU64,
}

/// A point-in-time snapshot of one worker's wait-state counters — how
/// often it took work from a sibling's deque, how often a full scan came
/// up empty, and how long it has slept waiting for work. Monotone over
/// the pool's lifetime; profilers diff two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolWorkerStats {
    /// Jobs taken from another worker's deque (injector pops and local
    /// pops are not steals).
    pub steals: u64,
    /// Work-finding scans (own deque + injector + every sibling) that
    /// found nothing — the spinning half of idle time.
    pub failed_steals: u64,
    /// Nanoseconds parked in the sleep condvar between failed scans —
    /// the sleeping half of idle time.
    pub park_ns: u64,
}

struct Registry {
    /// Per-worker deques: owner pushes/pops LIFO at the back, thieves
    /// steal FIFO from the front.
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Work arriving from threads outside the pool.
    injector: Mutex<VecDeque<JobRef>>,
    /// Per-worker steal/park accounting, indexed like `deques`.
    counters: Vec<WorkerCounters>,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    terminate: AtomicBool,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// Set for the lifetime of a worker thread: its registry and index.
    static WORKER: RefCell<Option<(Arc<Registry>, usize)>> = const { RefCell::new(None) };
}

fn current_worker() -> Option<(Arc<Registry>, usize)> {
    WORKER.with_borrow(Clone::clone)
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
}

impl Registry {
    fn new(n: usize) -> Arc<Self> {
        let n = n.max(1);
        let reg = Arc::new(Registry {
            deques: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            counters: (0..n).map(|_| WorkerCounters::default()).collect(),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            terminate: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(n);
        for index in 0..n {
            let r = Arc::clone(&reg);
            let h = std::thread::Builder::new()
                .name(format!("rayon-compat-{index}"))
                .spawn(move || r.worker_main(index))
                .expect("rayon-compat: failed to spawn pool worker");
            handles.push(h);
        }
        *reg.handles.lock().unwrap_or_else(|e| e.into_inner()) = handles;
        reg
    }

    fn num_threads(&self) -> usize {
        self.deques.len()
    }

    fn notify(&self) {
        let _guard = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.sleep_cv.notify_all();
    }

    fn inject(&self, job: JobRef) {
        self.injector.lock().unwrap_or_else(|e| e.into_inner()).push_back(job);
        self.notify();
    }

    fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index].lock().unwrap_or_else(|e| e.into_inner()).push_back(job);
        self.notify();
    }

    fn pop_local(&self, index: usize) -> Option<JobRef> {
        self.deques[index].lock().unwrap_or_else(|e| e.into_inner()).pop_back()
    }

    /// Own deque (LIFO) first, then the injector, then steal round-robin
    /// from the other workers (FIFO — the oldest fork is the biggest).
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.pop_local(index) {
            return Some(job);
        }
        if let Some(job) = self.injector.lock().unwrap_or_else(|e| e.into_inner()).pop_front() {
            return Some(job);
        }
        let n = self.num_threads();
        for offset in 1..n {
            let victim = (index + offset) % n;
            if let Some(job) =
                self.deques[victim].lock().unwrap_or_else(|e| e.into_inner()).pop_front()
            {
                self.counters[index].steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        self.counters[index].failed_steals.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Snapshot of every worker's wait-state counters.
    fn stats(&self) -> Vec<PoolWorkerStats> {
        self.counters
            .iter()
            .map(|c| PoolWorkerStats {
                steals: c.steals.load(Ordering::Relaxed),
                failed_steals: c.failed_steals.load(Ordering::Relaxed),
                park_ns: c.park_ns.load(Ordering::Relaxed),
            })
            .collect()
    }

    fn worker_main(self: Arc<Self>, index: usize) {
        WORKER.set(Some((Arc::clone(&self), index)));
        loop {
            if let Some(job) = self.find_work(index) {
                // SAFETY: the forking frame waits on the job's latch.
                unsafe { job.execute() };
                continue;
            }
            if self.terminate.load(Ordering::Acquire) {
                break;
            }
            let guard = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
            // Timed wait: a push between our failed scan and this wait
            // would be missed otherwise; 1 ms bounds that race.
            let parked = Instant::now();
            let _ = self
                .sleep_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(|e| e.into_inner());
            self.counters[index]
                .park_ns
                .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Runs `f` on a worker of this registry: inline when already on one,
    /// else injected and waited for (blocking — the caller is not a pool
    /// thread, it has no work to help with).
    fn in_worker<R: Send>(self: &Arc<Self>, f: impl FnOnce() -> R + Send) -> R {
        if let Some((reg, _)) = current_worker() {
            if Arc::ptr_eq(&reg, self) {
                return f();
            }
        }
        let job = StackJob::new(f);
        self.inject(job.as_job_ref());
        job.latch.wait_blocking();
        job.take_result()
    }
}

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The registry used outside any installed pool, sized to the host.
fn global_registry() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Registry::new(host_parallelism()))
}

/// The concurrency limit in effect on this thread: the owning pool's
/// worker count on a pool thread, or the host's available parallelism
/// outside any pool.
pub fn current_num_threads() -> usize {
    match current_worker() {
        Some((reg, _)) => reg.num_threads(),
        None => global_registry().num_threads(),
    }
}

/// Wait-state counters of the **global** registry's workers (the pool
/// that serves `join`/`par_iter` outside any installed pool) — one
/// [`PoolWorkerStats`] per worker. Counters are monotone; callers diff
/// snapshots to attribute an interval. Instantiates the global registry
/// if nothing has used it yet.
pub fn global_pool_stats() -> Vec<PoolWorkerStats> {
    global_registry().stats()
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// On a pool worker this is a classic work-stealing fork: `b` is pushed
/// onto the worker's own deque, `a` runs inline, and then `b` is either
/// reclaimed and run inline (nobody stole it) or its completion is
/// awaited while *helping* — executing other pool jobs instead of
/// blocking. On a single-worker pool both closures run inline
/// sequentially. Outside any pool the call migrates into the global
/// registry first, so the fork lands on real workers.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if let Some((reg, index)) = current_worker() {
        if reg.num_threads() <= 1 {
            let ra = a();
            let rb = b();
            return (ra, rb);
        }
        return join_on_worker(&reg, index, a, b);
    }
    let reg = global_registry();
    if reg.num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    reg.in_worker(move || join(a, b))
}

fn join_on_worker<A, B, RA, RB>(reg: &Arc<Registry>, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let b_job = StackJob::new(b);
    let b_ref = b_job.as_job_ref();
    reg.push_local(index, b_ref);
    let ra = a();
    while !b_job.latch.probe() {
        // Fast path: our fork is still the newest thing in our deque —
        // reclaim and run it inline. (Nested forks inside `a` are fully
        // resolved before `a` returns, so the only job of ours that can
        // still be queued is `b` itself; anything else found here was
        // queued by work we executed while helping, and running it keeps
        // the pool making progress either way.)
        if let Some(job) = reg.pop_local(index) {
            // SAFETY: jobs run exactly once; forkers wait on latches.
            unsafe { job.execute() };
            continue;
        }
        // A thief has `b`: help with other pool work while it finishes.
        if let Some(job) = reg.find_work(index) {
            // SAFETY: as above.
            unsafe { job.execute() };
        } else {
            std::thread::yield_now();
        }
    }
    (ra, b_job.take_result())
}

/// Splits `items` by recursive [`join`] down to pieces of at most
/// `max_piece`, mapping each through `f`; concatenation preserves input
/// order by construction. Which worker runs which piece is decided by
/// stealing at run time.
fn map_split<'a, T, R, F>(items: &'a [T], f: &F, max_piece: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    if items.len() <= max_piece {
        return items.iter().map(f).collect();
    }
    let mid = items.len() / 2;
    let (left, right) = items.split_at(mid);
    let (mut lv, rv) = join(|| map_split(left, f, max_piece), || map_split(right, f, max_piece));
    lv.extend(rv);
    lv
}

/// Parallel-iterator traits and adaptors.
pub mod prelude {
    /// `.par_iter()` on slices (and, via deref, `Vec`).
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Creates a parallel iterator over `&self`.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        /// Maps each element through `f` (run in parallel at collect time).
        pub fn map<F, R>(self, f: F) -> ParMap<'a, T, F>
        where
            F: Fn(&'a T) -> R + Sync,
            R: Send,
        {
            ParMap { items: self.items, f }
        }
    }

    /// A mapped parallel iterator, consumed by [`ParMap::collect`].
    pub struct ParMap<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    impl<'a, T: Sync, F> ParMap<'a, T, F> {
        /// Runs the map across the pool's workers and collects in input
        /// order.
        ///
        /// The slice is split by recursive [`crate::join`] into a few
        /// pieces per worker, so the load balances by work stealing: a
        /// worker that finishes its half steals the biggest pending piece
        /// of another's. All execution stays on the owning pool's
        /// workers, so nested `par_iter`s are globally capped at the pool
        /// size by construction.
        pub fn collect<C, R>(self) -> C
        where
            F: Fn(&'a T) -> R + Sync,
            R: Send,
            C: FromIterator<R>,
        {
            let n = self.items.len();
            let threads = crate::current_num_threads().min(n.max(1));
            if n <= 1 || threads <= 1 {
                return self.items.iter().map(&self.f).collect();
            }
            // A few pieces per worker: enough slack for stealing to
            // rebalance, not so many that fork overhead dominates.
            let max_piece = n.div_ceil(threads * 4).max(1);
            crate::map_split(self.items, &self.f, max_piece).into_iter().collect()
        }
    }
}

/// Errors from [`ThreadPoolBuilder::build`]; never produced by this
/// stand-in.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`]. `num_threads(0)` (the default) means
/// "host parallelism", matching rayon.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a pool size: the number of persistent worker threads the
    /// built pool owns, and therefore the hard concurrency cap of every
    /// primitive of this crate that runs inside [`ThreadPool::install`].
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool, spawning its workers.
    ///
    /// # Errors
    /// Never fails in this stand-in (kept for API compatibility).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { host_parallelism() } else { self.num_threads };
        Ok(ThreadPool { registry: Registry::new(n) })
    }
}

/// A handle mimicking `rayon::ThreadPool`: owns persistent worker
/// threads, joined on drop.
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("num_threads", &self.registry.num_threads()).finish()
    }
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Runs `f` **on a pool worker** and returns its result. Every
    /// `join`/`par_iter` underneath schedules exclusively on this pool's
    /// workers, so the pool size caps total concurrency no matter how
    /// deeply the primitives nest.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        self.registry.in_worker(f)
    }

    /// Wait-state counters of this pool's workers, one
    /// [`PoolWorkerStats`] per worker: steals, failed-steal spins, and
    /// parked nanoseconds. Monotone since pool construction.
    pub fn worker_stats(&self) -> Vec<PoolWorkerStats> {
        self.registry.stats()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate.store(true, Ordering::Release);
        self.registry.notify();
        let handles =
            std::mem::take(&mut *self.registry.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::ThreadId;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_install_runs_on_its_own_thread() {
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let caller = std::thread::current().id();
        let (val, inner) = pool.install(|| (5, std::thread::current().id()));
        assert_eq!(val, 5);
        assert_ne!(caller, inner, "install must run on a pool thread");
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn single_thread_pool_runs_join_inline() {
        let pool = super::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let ids = pool.install(|| {
            let here = std::thread::current().id();
            let (ia, ib) =
                super::join(|| std::thread::current().id(), || std::thread::current().id());
            (here, ia, ib)
        });
        assert_eq!(ids.0, ids.1, "limit 1: first closure inline");
        assert_eq!(ids.0, ids.2, "limit 1: second closure inline too");
    }

    #[test]
    fn pool_limit_caps_par_iter_threads() {
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..64).collect();
        let out: Vec<usize> = pool.install(|| {
            v.par_iter()
                .map(|x| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    *x
                })
                .collect()
        });
        assert_eq!(out, v);
        let used = seen.lock().unwrap().len();
        assert!(used <= 2, "pool of 2 must not use {used} threads");
    }

    #[test]
    fn pool_limit_inherits_into_nested_spawns() {
        // The limit must hold on the *forked* side of a join too — with a
        // real pool that is automatic, because the fork can only ever run
        // on one of the pool's own workers.
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (outer, spawned) =
            pool.install(|| super::join(super::current_num_threads, super::current_num_threads));
        assert_eq!(outer, 2);
        assert_eq!(spawned, 2, "forked join arm must see the pool's limit");

        // And a limit of 1 forces joins inline on whatever thread runs them.
        let pool1 = super::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let ok = pool1.install(|| {
            let here = std::thread::current().id();
            let (a, b) =
                super::join(|| std::thread::current().id(), || std::thread::current().id());
            a == here && b == here
        });
        assert!(ok, "limit 1 must run both join arms inline");
    }

    #[test]
    fn outside_a_pool_the_host_limit_applies() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn nested_par_iters_share_one_global_budget() {
        // An installed limit of 2 must bound the *total* concurrent worker
        // count even when par_iters nest — the pool has exactly 2 worker
        // threads and all nested work runs on them, so 4x4 nested
        // par_iters cannot exceed 2 concurrent leaves.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let outer: Vec<usize> = (0..4).collect();
        let total: usize = pool.install(|| {
            outer
                .par_iter()
                .map(|&i| {
                    let inner: Vec<usize> = (0..4).collect();
                    let vals: Vec<usize> = inner
                        .par_iter()
                        .map(|&j| {
                            let now = active.fetch_add(1, Ordering::AcqRel) + 1;
                            peak.fetch_max(now, Ordering::AcqRel);
                            std::thread::sleep(std::time::Duration::from_millis(3));
                            active.fetch_sub(1, Ordering::AcqRel);
                            i * 4 + j
                        })
                        .collect();
                    vals.into_iter().sum::<usize>()
                })
                .collect::<Vec<usize>, usize>()
                .into_iter()
                .sum()
        });
        assert_eq!(total, (0..16).sum::<usize>(), "nesting must not drop or duplicate work");
        let p = peak.load(Ordering::Acquire);
        assert!(p <= 2, "pool of 2 ran {p} workers concurrently");
        assert!(p >= 1);
    }

    #[test]
    fn nested_joins_share_one_global_budget() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let leaf = || {
            let now = active.fetch_add(1, Ordering::AcqRel) + 1;
            peak.fetch_max(now, Ordering::AcqRel);
            std::thread::sleep(std::time::Duration::from_millis(3));
            active.fetch_sub(1, Ordering::AcqRel);
            1usize
        };
        let total = pool.install(|| {
            let pair = || {
                let (a, b) = super::join(leaf, leaf);
                a + b
            };
            let (l, r) = super::join(pair, pair);
            l + r
        });
        assert_eq!(total, 4);
        let p = peak.load(Ordering::Acquire);
        assert!(p <= 2, "pool of 2 ran {p} join arms concurrently");
    }

    #[test]
    fn work_stealing_rebalances_imbalanced_halves() {
        // One heavy element at the front: with static half/half chunking a
        // 2-worker pool would serialize behind it; stealing lets the other
        // worker drain the rest of the slice meanwhile. Correctness (order
        // preserved) is asserted; the rebalancing itself is what the pool
        // provides by construction.
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let v: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = pool.install(|| {
            v.par_iter()
                .map(|&x| {
                    if x == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                    x * 3
                })
                .collect()
        });
        assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn pool_workers_are_persistent_across_installs() {
        // Two installs on one pool must reuse the same worker threads —
        // the pool is persistent, not spawn-per-call.
        let pool = super::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let first = pool.install(|| std::thread::current().id());
        let second = pool.install(|| std::thread::current().id());
        assert_eq!(first, second, "installs must dispatch to the same persistent worker");
    }

    #[test]
    fn worker_stats_count_parks_and_cover_every_worker() {
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let stats = pool.worker_stats();
        assert_eq!(stats.len(), 2, "one stats row per worker");
        // Idle workers loop failed scans + 1ms parks; give them a beat.
        std::thread::sleep(std::time::Duration::from_millis(15));
        let idle = pool.worker_stats();
        assert!(
            idle.iter().map(|s| s.park_ns).sum::<u64>() > 0,
            "idle workers must accumulate park time"
        );
        assert!(idle.iter().map(|s| s.failed_steals).sum::<u64>() > 0);
        // Counters are monotone.
        let again = pool.worker_stats();
        for (a, b) in idle.iter().zip(&again) {
            assert!(b.steals >= a.steals);
            assert!(b.failed_steals >= a.failed_steals);
            assert!(b.park_ns >= a.park_ns);
        }
        // An imbalanced workload on 2 workers actually steals: one heavy
        // element up front, the rest drained by the sibling.
        let v: Vec<u64> = (0..256).collect();
        let _: Vec<u64> = pool.install(|| {
            v.par_iter()
                .map(|&x| {
                    if x == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    x
                })
                .collect()
        });
        let after = pool.worker_stats();
        assert!(
            after.iter().map(|s| s.steals).sum::<u64>() > 0,
            "an imbalanced par_iter on 2 workers must migrate work"
        );
        // The global registry exposes the same surface.
        assert_eq!(super::global_pool_stats().len(), super::global_registry().num_threads());
    }

    #[test]
    fn join_propagates_panics_from_the_forked_side() {
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = pool.install(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                super::join(|| 1, || -> usize { panic!("forked arm exploded") })
            }))
            .err()
        });
        let payload = caught.expect("panic must propagate to the join caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "forked arm exploded");
    }
}
