//! Offline stand-in for the subset of `rayon` this workspace uses:
//! [`join`], `prelude::*` (`par_iter().map(..).collect()`), and
//! `ThreadPoolBuilder` / `ThreadPool::install`.
//!
//! Parallelism is real (scoped OS threads), but primitive: `join` spawns
//! one thread for the second closure; `par_iter().map().collect()` chunks
//! the slice across up to [`current_num_threads`] threads. There is no
//! work stealing and no pool reuse — adequate for this workspace, where
//! the rayon paths are asserted *bitwise equal* to the sequential ones
//! and wall-clock scaling is informational only.
//!
//! # Pool-size semantics
//!
//! [`ThreadPool::install`] runs its closure on a fresh scoped thread with
//! a thread-local concurrency limit set to the builder's `num_threads`,
//! and the limit is **inherited** by every thread this crate spawns
//! underneath (nested `join`s and `par_iter`s included), so
//! `ThreadPoolBuilder::new().num_threads(n)` genuinely caps this crate's
//! primitives at `n` concurrent threads. With `num_threads(1)`, `join`
//! and `par_iter` degenerate to sequential inline execution on the
//! installing thread's child — useful for scaling studies.
//!
//! # Remaining gaps vs. real rayon
//!
//! * **No pool reuse**: every `install`/`join`/`par_iter` spawns fresh
//!   scoped threads rather than dispatching to persistent workers, so the
//!   per-call overhead is a thread spawn (~10 µs), not a queue push.
//! * **No work stealing**: `par_iter` splits into equal contiguous chunks
//!   up front; imbalanced workloads are not rebalanced. (The task-graph
//!   runtime in `calu-runtime` has its own shared-pool scheduler and does
//!   not rely on this crate.)
//! * `spawn`, `scope`, `ParallelSlice`, bridges, and the rest of rayon's
//!   surface are absent.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// An installed pool's context: the configured limit plus a census of
/// threads currently executing pool work (the installing thread counts as
/// one). The census is shared by every thread this crate spawns under the
/// install, so *nested* `join`s and `par_iter`s draw from one global
/// budget instead of each independently spawning up to the limit — a
/// depth-`d` nest of parallel calls stays at `limit` threads, not
/// `limit^d`.
#[derive(Clone)]
struct PoolCtx {
    limit: usize,
    active: Arc<AtomicUsize>,
}

impl PoolCtx {
    /// Tries to reserve one worker slot; on success the caller must
    /// [`Self::release`] it when the worker finishes.
    fn try_reserve(&self) -> bool {
        self.active
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |a| {
                if a < self.limit {
                    Some(a + 1)
                } else {
                    None
                }
            })
            .is_ok()
    }

    fn release(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

thread_local! {
    /// Pool context installed by [`ThreadPool::install`]; `None` means
    /// "no pool" (host parallelism, no census).
    static POOL: RefCell<Option<PoolCtx>> = const { RefCell::new(None) };
}

fn pool_ctx() -> Option<PoolCtx> {
    POOL.with_borrow(|p| p.clone())
}

/// The concurrency limit in effect on this thread: the installed pool
/// size, or the host's available parallelism outside any pool.
pub fn current_num_threads() -> usize {
    pool_ctx()
        .map(|c| c.limit)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1))
        .max(1)
}

/// Runs `f` on a scoped thread that inherits the caller's pool context
/// (`std::thread::scope` does not propagate thread-locals by itself).
fn spawn_inheriting<'scope, 'env, R: Send + 'scope>(
    s: &'scope std::thread::Scope<'scope, 'env>,
    f: impl FnOnce() -> R + Send + 'scope,
) -> std::thread::ScopedJoinHandle<'scope, R> {
    let ctx = pool_ctx();
    s.spawn(move || {
        POOL.set(ctx);
        f()
    })
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Under an installed pool the second closure is spawned only when the
/// pool's *global* worker budget has a free slot (the slot is returned
/// when the closure finishes); otherwise — including under a limit of 1 —
/// both run sequentially on the calling thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    if let Some(ctx) = pool_ctx() {
        if !ctx.try_reserve() {
            let ra = a();
            let rb = b();
            return (ra, rb);
        }
        let release = ctx.clone();
        return std::thread::scope(|s| {
            let hb = spawn_inheriting(s, move || {
                let r = b();
                release.release();
                r
            });
            let ra = a();
            (ra, hb.join().expect("rayon-compat join: task panicked"))
        });
    }
    std::thread::scope(|s| {
        let hb = spawn_inheriting(s, b);
        let ra = a();
        (ra, hb.join().expect("rayon-compat join: task panicked"))
    })
}

/// Parallel-iterator traits and adaptors.
pub mod prelude {
    /// `.par_iter()` on slices (and, via deref, `Vec`).
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Creates a parallel iterator over `&self`.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        /// Maps each element through `f` (run in parallel at collect time).
        pub fn map<F, R>(self, f: F) -> ParMap<'a, T, F>
        where
            F: Fn(&'a T) -> R + Sync,
            R: Send,
        {
            ParMap { items: self.items, f }
        }
    }

    /// A mapped parallel iterator, consumed by [`ParMap::collect`].
    pub struct ParMap<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    impl<'a, T: Sync, F> ParMap<'a, T, F> {
        /// Runs the map across threads and collects in input order.
        ///
        /// Under an installed pool the worker count is bounded by the
        /// pool's **global** budget, not just the per-call limit: the
        /// caller keeps the first chunk, each further chunk spawns only
        /// if a budget slot is free (returned when the chunk finishes),
        /// and chunks that find the budget exhausted run inline on the
        /// caller — so nested `par_iter`s never multiply past the limit.
        pub fn collect<C, R>(self) -> C
        where
            F: Fn(&'a T) -> R + Sync,
            R: Send,
            C: FromIterator<R>,
        {
            let n = self.items.len();
            let threads = crate::current_num_threads().min(n);
            if n <= 1 || threads <= 1 {
                return self.items.iter().map(&self.f).collect();
            }
            let chunk = n.div_ceil(threads);
            let f = &self.f;
            let ctx = crate::pool_ctx();
            let mut out: Vec<Vec<R>> = std::thread::scope(|s| {
                // (chunk index, handle) for spawned chunks; inline results
                // are computed on the caller after the spawns are in flight.
                let mut handles = Vec::new();
                let mut inline = Vec::new();
                for (i, c) in self.items.chunks(chunk).enumerate() {
                    let reserved = if i == 0 {
                        false // the caller works too; it holds its own slot
                    } else {
                        match &ctx {
                            Some(ctx) => ctx.try_reserve(),
                            None => true,
                        }
                    };
                    if reserved {
                        let release = ctx.clone();
                        handles.push((
                            i,
                            crate::spawn_inheriting(s, move || {
                                let r = c.iter().map(f).collect::<Vec<R>>();
                                if let Some(ctx) = release {
                                    ctx.release();
                                }
                                r
                            }),
                        ));
                    } else {
                        inline.push((i, c));
                    }
                }
                let mut parts: Vec<(usize, Vec<R>)> = inline
                    .into_iter()
                    .map(|(i, c)| (i, c.iter().map(f).collect::<Vec<R>>()))
                    .collect();
                for (i, h) in handles {
                    parts.push((i, h.join().expect("rayon-compat map: task panicked")));
                }
                parts.sort_by_key(|(i, _)| *i);
                parts.into_iter().map(|(_, v)| v).collect()
            });
            out.drain(..).flatten().collect()
        }
    }
}

/// Errors from [`ThreadPoolBuilder::build`]; never produced by this
/// stand-in.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`]. `num_threads(0)` (the default) means
/// "host parallelism", matching rayon.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a pool size, enforced as the concurrency limit of every
    /// primitive of this crate that runs inside [`ThreadPool::install`].
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    /// Never fails in this stand-in (kept for API compatibility).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A handle mimicking `rayon::ThreadPool`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's configured concurrency limit.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
        } else {
            self.num_threads
        }
    }

    /// Runs `f` inside the pool: on a fresh scoped thread carrying a pool
    /// context (size limit + shared worker census, inherited by every
    /// nested `join`/`par_iter` spawn), so this crate's primitives are
    /// globally capped at the pool size no matter how deeply they nest
    /// (see the crate docs for the remaining gaps vs. real rayon).
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let ctx = PoolCtx {
            limit: self.current_num_threads(),
            // The installing thread itself occupies one slot.
            active: Arc::new(AtomicUsize::new(1)),
        };
        std::thread::scope(|s| {
            s.spawn(|| {
                POOL.set(Some(ctx));
                f()
            })
            .join()
            .expect("rayon-compat install: task panicked")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::ThreadId;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_install_runs_on_its_own_thread() {
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let caller = std::thread::current().id();
        let (val, inner) = pool.install(|| (5, std::thread::current().id()));
        assert_eq!(val, 5);
        assert_ne!(caller, inner, "install must run on a pool thread");
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn single_thread_pool_runs_join_inline() {
        let pool = super::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let ids = pool.install(|| {
            let here = std::thread::current().id();
            let (ia, ib) =
                super::join(|| std::thread::current().id(), || std::thread::current().id());
            (here, ia, ib)
        });
        assert_eq!(ids.0, ids.1, "limit 1: first closure inline");
        assert_eq!(ids.0, ids.2, "limit 1: second closure inline too");
    }

    #[test]
    fn pool_limit_caps_par_iter_threads() {
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..64).collect();
        let out: Vec<usize> = pool.install(|| {
            v.par_iter()
                .map(|x| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    *x
                })
                .collect()
        });
        assert_eq!(out, v);
        let used = seen.lock().unwrap().len();
        assert!(used <= 2, "pool of 2 must not use {used} threads");
    }

    #[test]
    fn pool_limit_inherits_into_nested_spawns() {
        // The limit must survive into the *spawned* side of a join (the
        // thread-local does not propagate by itself) and keep capping
        // nested primitives there.
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (outer, spawned) =
            pool.install(|| super::join(super::current_num_threads, super::current_num_threads));
        assert_eq!(outer, 2);
        assert_eq!(spawned, 2, "spawned join arm must inherit the installed limit");

        // And a limit of 1 forces joins inline on whatever thread runs them.
        let pool1 = super::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let ok = pool1.install(|| {
            let here = std::thread::current().id();
            let (a, b) =
                super::join(|| std::thread::current().id(), || std::thread::current().id());
            a == here && b == here
        });
        assert!(ok, "limit 1 must run both join arms inline");
    }

    #[test]
    fn outside_a_pool_the_host_limit_applies() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn nested_par_iters_share_one_global_budget() {
        // Regression: an installed limit of 2 must bound the *total*
        // concurrent worker count even when par_iters nest — before the
        // shared census, each nesting level independently spawned up to
        // the limit (4x4 -> up to 4 concurrent workers here).
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let outer: Vec<usize> = (0..4).collect();
        let total: usize = pool.install(|| {
            outer
                .par_iter()
                .map(|&i| {
                    let inner: Vec<usize> = (0..4).collect();
                    let vals: Vec<usize> = inner
                        .par_iter()
                        .map(|&j| {
                            let now = active.fetch_add(1, Ordering::AcqRel) + 1;
                            peak.fetch_max(now, Ordering::AcqRel);
                            std::thread::sleep(std::time::Duration::from_millis(3));
                            active.fetch_sub(1, Ordering::AcqRel);
                            i * 4 + j
                        })
                        .collect();
                    vals.into_iter().sum::<usize>()
                })
                .collect::<Vec<usize>, usize>()
                .into_iter()
                .sum()
        });
        assert_eq!(total, (0..16).sum::<usize>(), "nesting must not drop or duplicate work");
        let p = peak.load(Ordering::Acquire);
        assert!(p <= 2, "pool of 2 ran {p} workers concurrently");
        assert!(p >= 1);
    }

    #[test]
    fn nested_joins_share_one_global_budget() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let leaf = || {
            let now = active.fetch_add(1, Ordering::AcqRel) + 1;
            peak.fetch_max(now, Ordering::AcqRel);
            std::thread::sleep(std::time::Duration::from_millis(3));
            active.fetch_sub(1, Ordering::AcqRel);
            1usize
        };
        let total = pool.install(|| {
            let pair = || {
                let (a, b) = super::join(leaf, leaf);
                a + b
            };
            let (l, r) = super::join(pair, pair);
            l + r
        });
        assert_eq!(total, 4);
        let p = peak.load(Ordering::Acquire);
        assert!(p <= 2, "pool of 2 ran {p} join arms concurrently");
    }
}
