//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: `Rng::{gen, gen_range}`, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed and statistically solid for the matrix ensembles here, but a
//! *different stream* than the real `rand`'s `StdRng` (ChaCha12). Nothing
//! in this workspace depends on the exact stream, only on determinism.

#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Half-open ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! uint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end as u64 - self.start as u64;
                // Modulo bias is negligible for the spans used here
                // (all far below 2^32) and irrelevant to correctness.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
uint_sample_range!(usize, u64, u32, u8);

macro_rules! sint_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Widen through i128 so spans wider than the type's
                // positive half (e.g. i64::MIN..i64::MAX) cannot overflow.
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
sint_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// A source of randomness (the subset of `rand::Rng` used here).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from the standard distribution
    /// (uniform `[0, 1)` for `f64`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a half-open range.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256++ (SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            StdRng { s }
        }
    }

    impl crate::Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for lo in 0usize..20 {
            let v = r.gen_range(lo..lo + 7);
            assert!((lo..lo + 7).contains(&v));
        }
        for _ in 0..1000 {
            let x = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn signed_full_width_ranges_do_not_overflow() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = r.gen_range(i64::MIN..i64::MAX);
            assert!(v < i64::MAX);
            let w = r.gen_range(i32::MIN..i32::MAX);
            assert!(w < i32::MAX);
            let n = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn unit_mean_roughly_half() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
