//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!` macro with `#![proptest_config(ProptestConfig::with_cases(N))]`,
//! range strategies (`lo..hi` on integers and `f64`), and
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Case generation is deterministic (an FNV hash of the test name seeds a
//! xorshift stream), so failures reproduce run to run. There is no
//! shrinking: a failing case reports its arguments and panics.

#![warn(missing_docs)]

use std::ops::Range;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` randomized cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Failure raised by `prop_assert!` family macros.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: String) -> Self {
        Self(msg)
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test random stream.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h | 1)
    }

    /// Next 64 random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A value generator (the subset of proptest's `Strategy` used here:
/// half-open ranges).
pub trait Strategy {
    /// Generated value type.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with its arguments reported) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Declares property tests. Supports the shape used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_prop(x in 0usize..10, y in -1.0f64..1.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}/{} with arguments {}:\n{}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            format!(concat!("(" $(, stringify!($arg), " = {:?}, ")*, ")") $(, $arg)*),
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $($arg in $strat),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(x in 3usize..9, y in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y), "y out of range: {y}");
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_reports_arguments() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0usize..5) {
                prop_assert!(x > 100, "x = {x} is never > 100");
            }
        }
        inner();
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("abc");
        let mut b = crate::TestRng::deterministic("abc");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
