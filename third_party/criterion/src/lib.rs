//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `Criterion`, `benchmark_group` / `bench_function`, `Bencher::{iter,
//! iter_batched}`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Each benchmark runs a short warmup plus a fixed number of timed
//! iterations and prints the mean time per iteration — enough to compare
//! kernels locally. There are no statistics, plots, or CLI filters.

#![warn(missing_docs)]

use std::hint::black_box;
use std::time::Instant;

/// How batched inputs are grouped between timings (accepted for API
/// compatibility; the stand-in re-runs setup before every iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Passed to each benchmark closure to drive timed iterations.
pub struct Bencher {
    iters: u32,
    /// Mean seconds per iteration of the last `iter*` call.
    last_mean: f64,
}

impl Bencher {
    /// Times `routine` over the configured iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warmup.
        black_box(routine());
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.last_mean = t0.elapsed().as_secs_f64() / self.iters as f64;
    }

    /// Times `routine` with a fresh `setup` input per iteration; only the
    /// routine is (approximately) counted.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut total = 0.0;
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed().as_secs_f64();
        }
        self.last_mean = total / self.iters as f64;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one(label: &str, iters: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters, last_mean: 0.0 };
    f(&mut b);
    println!("bench {label:<40} {:>12}/iter ({iters} iters)", fmt_time(b.last_mean));
}

/// Benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    default_iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_iters: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), iters: self.default_iters, _parent: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.into(), self.default_iters, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (used as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u32).max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.iters, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function from a list of `fn(&mut Criterion)`
/// targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from a list of groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut count = 0u32;
        g.sample_size(5).bench_function("inc", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        g.finish();
        assert!(count >= 5, "warmup + 5 timed iters, got {count}");
    }

    #[test]
    fn batched_reruns_setup() {
        let mut c = Criterion::default();
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert!(setups >= 10);
    }
}
