//! Stability instrumentation: the statistics the paper reports in
//! Section 6.1 (Figure 2, Tables 1-2), collected through the
//! [`PivotObserver`] hooks of the factorization kernels.

use calu_matrix::{MatView, PivotObserver, Scalar};

/// Collects growth, threshold, and multiplier statistics during a
/// factorization.
///
/// * **Growth**: `max_elem` tracks `max_{i,j,k} |a_ij^(k)|` over every
///   elimination stage (seed it with `max |A|` so `k = 0` counts). The
///   Trefethen-Schreiber growth factor is `gT = max_elem / σ_A`.
/// * **Thresholds**: for each elimination step, `τ = |pivot| / max|column|`
///   at the moment of elimination. Partial pivoting gives `τ ≡ 1`;
///   ca-pivoting gives `τ_min ≥ 0.33` in the paper's experiments
///   (equivalently `|L| ≤ 3`).
/// * **Multipliers**: `max |L|` observed.
#[derive(Debug, Clone, Default)]
pub struct PivotStats {
    /// Maximum `|a_ij^(k)]|` over all stages (including the input).
    pub max_elem: f64,
    /// Per-step pivot thresholds `τ_i ∈ (0, 1]`.
    pub thresholds: Vec<f64>,
    /// Maximum `|L|` entry observed.
    pub max_l: f64,
}

impl PivotStats {
    /// Starts tracking; `initial_max` should be `max |A|` of the input.
    pub fn new(initial_max: f64) -> Self {
        Self { max_elem: initial_max, thresholds: Vec::new(), max_l: 0.0 }
    }

    /// Trefethen-Schreiber growth factor `gT = max_k |a^(k)| / σ_A`, where
    /// `σ_A` is the standard deviation of the initial element distribution
    /// (1 for standard normal matrices).
    pub fn growth_factor(&self, sigma: f64) -> f64 {
        assert!(sigma > 0.0);
        self.max_elem / sigma
    }

    /// Minimum threshold over all steps (paper Figure 2 right; 1.0 if no
    /// steps were recorded).
    pub fn tau_min(&self) -> f64 {
        self.thresholds.iter().copied().fold(f64::INFINITY, f64::min).min(1.0)
    }

    /// Average threshold (paper Tables 1-2 column `τ_ave`).
    pub fn tau_ave(&self) -> f64 {
        if self.thresholds.is_empty() {
            1.0
        } else {
            self.thresholds.iter().sum::<f64>() / self.thresholds.len() as f64
        }
    }

    /// Number of elimination steps observed.
    pub fn steps(&self) -> usize {
        self.thresholds.len()
    }
}

/// `PivotStats` observes factorizations at *any* precision: event values
/// are widened to `f64` on arrival (exact for `f32`), so one stats type
/// serves the whole mixed-precision stack and cross-precision growth
/// comparisons read apples-to-apples.
impl<T: Scalar> PivotObserver<T> for PivotStats {
    fn on_pivot(&mut self, _step: usize, pivot: T, col_max: T) {
        if col_max > T::ZERO {
            self.thresholds.push(pivot.to_f64() / col_max.to_f64());
        }
        self.max_elem = self.max_elem.max(pivot.to_f64());
    }

    fn on_stage(&mut self, changed: &MatView<'_, T>) {
        self.max_elem = self.max_elem.max(changed.max_abs().to_f64());
    }

    fn on_multipliers(&mut self, col_below_diag: &[T]) {
        self.max_l = self.max_l.max(calu_matrix::blas1::amax(col_below_diag).to_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::gen;
    use calu_matrix::lapack::getf2;
    use calu_matrix::NoObs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn partial_pivoting_has_unit_thresholds_and_bounded_l() {
        let mut rng = StdRng::seed_from_u64(81);
        let a0 = gen::randn(&mut rng, 60, 60);
        let mut a = a0.clone();
        let mut stats = PivotStats::new(a0.max_abs());
        let mut ipiv = vec![0usize; 60];
        getf2(a.view_mut(), &mut ipiv, &mut stats).unwrap();
        assert_eq!(stats.steps(), 60);
        assert!((stats.tau_min() - 1.0).abs() < 1e-15, "GEPP tau must be 1");
        assert!((stats.tau_ave() - 1.0).abs() < 1e-15);
        assert!(stats.max_l <= 1.0 + 1e-15, "GEPP |L| <= 1");
        assert!(stats.max_elem >= a0.max_abs());
    }

    #[test]
    fn growth_factor_scales_by_sigma() {
        let mut s = PivotStats::new(10.0);
        s.max_elem = 50.0;
        assert_eq!(s.growth_factor(1.0), 50.0);
        assert_eq!(s.growth_factor(2.0), 25.0);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = PivotStats::new(0.0);
        assert_eq!(s.tau_min(), 1.0);
        assert_eq!(s.tau_ave(), 1.0);
        assert_eq!(s.steps(), 0);
    }

    #[test]
    fn growth_detects_wilkinson_blowup() {
        // Wilkinson's matrix forces 2^(n-1) growth under partial pivoting.
        let n = 20;
        let a0 = gen::wilkinson(n);
        let mut a = a0.clone();
        let mut stats = PivotStats::new(a0.max_abs());
        let mut ipiv = vec![0usize; n];
        getf2(a.view_mut(), &mut ipiv, &mut stats).unwrap();
        let expect = 2.0_f64.powi(n as i32 - 1);
        assert!(
            stats.max_elem >= expect * 0.99,
            "growth {} must reach 2^(n-1) = {expect}",
            stats.max_elem
        );
        // NoObs path still factors identically (smoke check).
        let mut a2 = a0.clone();
        let mut ipiv2 = vec![0usize; n];
        getf2(a2.view_mut(), &mut ipiv2, &mut NoObs).unwrap();
        assert_eq!(ipiv, ipiv2);
    }
}
