//! The communicator seam: where distributed payloads cross ranks.
//!
//! `dist_rt` moves every cross-rank payload — TSLU candidate sets, pivot
//! lists, packed panels, `W`/`U₁₂` blocks, pivot-row segments — as keyed
//! `f64`-word messages. This module cuts that boundary as a trait,
//! [`Communicator`], with three implementations:
//!
//! * [`InProcessComm`] — the original shared mailbox: one
//!   `Mutex<HashMap>` all ranks read and write. Posts are visible to
//!   every rank immediately; the DAG's edges are the wire. This is the
//!   behavior-preserving default, and the only backend under which task
//!   bodies may *also* touch other ranks' tile storage directly (the
//!   shared-memory simulation).
//! * [`ThreadedComm`] — ranks as real OS threads: each rank owns a
//!   `std::sync::mpsc` receiver plus a local stash, sends are
//!   point-to-point, and [`Communicator::fetch`] *blocks* until the
//!   payload arrives. Nothing but messages crosses the seam — each rank
//!   thread touches only its own local matrix.
//! * [`MpiComm`] — an MPI-shaped stub documenting the off-box path. Every
//!   operation returns [`Error::Unsupported`]; the type exists so the
//!   driver's dispatch (`&dyn Communicator`) already has the third arm an
//!   MPI build would fill in.
//!
//! # Invariants at the seam
//!
//! * Every key is posted **exactly once** per run; the DAG (or the
//!   per-rank schedule projection) orders every post before its fetches.
//! * Payloads are `f64` words; `T ↔ f64` round trips are exact for every
//!   [`calu_matrix::Scalar`], so moving data through the seam never
//!   perturbs bits.
//! * Consumers never mutate a fetched payload (shared `Arc`).
//! * Payloads of steps older than the lookahead window are dead and may
//!   be evicted ([`Communicator::evict_before`]).
//! * Matrix elements and pivot slots never cross the seam except as
//!   posted payloads — under [`ThreadedComm`] there is no other channel.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use calu_matrix::{Error, Result};

/// Mailbox message key: `(class, k, j, rank-or-prow)`. The `class` is one
/// of the `MAIL_*` constants; `k` is the elimination step the payload
/// belongs to (the eviction horizon key); `j` and the final slot
/// disambiguate within a step (leg index, block column, sender).
pub type MailKey = (u8, u32, u32, u32);

/// Butterfly accumulator slots (`j` = slot index, slot `l+1` written by
/// leg `l`; slot 0 is the local election).
pub const MAIL_ACC: u8 = 0;
/// Swap list of step `k` (canonical slot: `who` = the diagonal process
/// row).
pub const MAIL_PIV: u8 = 1;
/// Post-swap `W` block of step `k`.
pub const MAIL_WBK: u8 = 2;
/// Packed panel rows of one process row (`who` = prow).
pub const MAIL_PAN: u8 = 3;
/// `U₁₂` of block column `j`.
pub const MAIL_U12: u8 = 4;
/// Trailing-swap row segment (`j` = block column, `who` = `i·Pr + sender
/// prow` for pivot item `i`) — only the threaded backend sends these;
/// the in-process mailbox swaps rows in place.
pub const MAIL_SWP: u8 = 5;
/// `PDGETF2` per-column pivot candidate (`j` = panel column, `who` =
/// sender prow): 3 words `[|v|, global row (−1 = none), v]`.
pub const MAIL_GCD: u8 = 6;
/// `PDGETF2` winner's trailing row of one panel column (`j` = panel
/// column).
pub const MAIL_GUR: u8 = 7;
/// `PDGETF2` pivot-row exchange segment (`j` = panel column, `who` =
/// sender prow).
pub const MAIL_GRX: u8 = 8;

/// Number of mail classes (`MAIL_ACC..=MAIL_GRX`) — sizes the per-class
/// wait counters.
const MAIL_CLASSES: usize = 9;

/// The [`CommLedger`](calu_obs::CommLedger) term a mail class's traffic is
/// accounted under — the same attribution the senders/receivers use for
/// word counts, so blocked-fetch wait time lands next to the words that
/// explain it.
pub fn mail_class_term(class: u8) -> &'static str {
    match class {
        MAIL_ACC => "tslu_leg",
        MAIL_PIV => "piv_bcast",
        MAIL_WBK => "w_bcast",
        MAIL_PAN => "panel_bcast",
        MAIL_U12 => "u_bcast",
        MAIL_SWP => "swap",
        MAIL_GCD | MAIL_GUR | MAIL_GRX => "panel_getf2",
        _ => unreachable!("unknown mail class {class}"),
    }
}

/// Which communicator backend a distributed run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommKind {
    /// Shared in-process mailbox (the behavior-preserving default).
    #[default]
    InProcess,
    /// Ranks as OS threads over per-rank channels; point-to-point sends.
    Threaded,
    /// MPI-shaped stub — always fails with [`Error::Unsupported`].
    Mpi,
}

impl CommKind {
    /// Stable label, used in bench records and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            CommKind::InProcess => "in_process",
            CommKind::Threaded => "threaded",
            CommKind::Mpi => "mpi",
        }
    }

    /// Parses a CLI flag value (`in_process` | `threaded` | `mpi`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "in_process" | "in-process" | "inprocess" => Some(CommKind::InProcess),
            "threaded" => Some(CommKind::Threaded),
            "mpi" => Some(CommKind::Mpi),
            _ => None,
        }
    }
}

/// The transport behind `dist_rt`'s keyed-payload mailbox. Object-safe:
/// the driver holds a `&dyn Communicator` and never knows which backend
/// moves the words.
///
/// `from`/`at` are flat grid ranks. Backends with one shared address
/// space ([`InProcessComm`]) may ignore them and `dests`; point-to-point
/// backends route on them.
pub trait Communicator: Send + Sync {
    /// Stable backend name (`"in_process"`, `"threaded"`, `"mpi"`).
    fn name(&self) -> &'static str;

    /// Posts one payload under `key` from rank `from` to every rank in
    /// `dests` (`from` itself included means "stash locally"). Keys are
    /// unique per run; posting a key twice to one destination is a
    /// schedule bug.
    ///
    /// # Errors
    /// Backends that cannot send (the MPI stub) return
    /// [`Error::Unsupported`].
    fn post(&self, from: usize, key: MailKey, data: Vec<f64>, dests: &[usize]) -> Result<()>;

    /// The payload posted under `key`, as visible to rank `at`.
    /// Synchronous backends ([`InProcessComm`]) expect the post to have
    /// happened-before (a missing slot is a DAG edge bug and panics);
    /// asynchronous backends ([`ThreadedComm`]) block until the payload
    /// arrives.
    ///
    /// # Errors
    /// [`Error::Canceled`] once the run is canceled;
    /// [`Error::Unsupported`] from the MPI stub.
    fn fetch(&self, at: usize, key: MailKey) -> Result<Arc<Vec<f64>>>;

    /// Words of the payload under `key` as visible to rank `at` — 0 if
    /// absent. Never blocks; used for ledger peeks of already-ordered
    /// payloads.
    fn peek_words(&self, at: usize, key: MailKey) -> usize;

    /// Drops every payload of steps `<= cutoff` visible to rank `at` —
    /// the lookahead window proves them dead.
    fn evict_before(&self, at: usize, cutoff: u32);

    /// Cancels the run: every blocked and future [`Communicator::fetch`]
    /// on any rank returns [`Error::Canceled`] (payloads already
    /// delivered may still be served first).
    fn cancel(&self, from: usize);

    /// Empties every mailbox/stash/channel and returns how many payload
    /// words were still posted. Called once by the driver after the run.
    fn drain(&self) -> usize;

    /// Payload words still visible after [`Communicator::drain`] — the
    /// leak detector, 0 in the happy path.
    fn residual_words(&self) -> usize;
}

// ---------------------------------------------------------------------------
// InProcess
// ---------------------------------------------------------------------------

/// The original shared mailbox: one locked map every rank reads and
/// writes. Routing is implicit — the DAG's edges are the wire — so
/// `from`/`at`/`dests` are ignored.
///
/// All four lock sites recover from poisoning with
/// [`PoisonError::into_inner`]: the map holds plain `Arc`d payloads whose
/// invariants don't depend on the panicking task, so one poisoned task
/// must not cascade into every other rank's mailbox access (the same
/// hardening the threaded executor's pool uses).
#[derive(Debug, Default)]
pub struct InProcessComm {
    mail: Mutex<HashMap<MailKey, Arc<Vec<f64>>>>,
}

impl InProcessComm {
    /// An empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Communicator for InProcessComm {
    fn name(&self) -> &'static str {
        "in_process"
    }

    fn post(&self, _from: usize, key: MailKey, data: Vec<f64>, _dests: &[usize]) -> Result<()> {
        let prev =
            self.mail.lock().unwrap_or_else(PoisonError::into_inner).insert(key, Arc::new(data));
        debug_assert!(prev.is_none(), "mail slot {key:?} posted twice");
        Ok(())
    }

    fn fetch(&self, _at: usize, key: MailKey) -> Result<Arc<Vec<f64>>> {
        Ok(self
            .mail
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .unwrap_or_else(|| panic!("mail slot {key:?} missing — DAG edge bug"))
            .clone())
    }

    fn peek_words(&self, _at: usize, key: MailKey) -> usize {
        self.mail.lock().unwrap_or_else(PoisonError::into_inner).get(&key).map_or(0, |v| v.len())
    }

    fn evict_before(&self, _at: usize, cutoff: u32) {
        self.mail.lock().unwrap_or_else(PoisonError::into_inner).retain(|key, _| key.1 > cutoff);
    }

    fn cancel(&self, _from: usize) {
        // The executor cancels unstarted tasks itself; the shared mailbox
        // has no blocked fetches to wake.
    }

    fn drain(&self) -> usize {
        let mut mail = self.mail.lock().unwrap_or_else(PoisonError::into_inner);
        let words = mail.values().map(|v| v.len()).sum();
        mail.clear();
        words
    }

    fn residual_words(&self) -> usize {
        self.mail.lock().unwrap_or_else(PoisonError::into_inner).values().map(|v| v.len()).sum()
    }
}

// ---------------------------------------------------------------------------
// Threaded
// ---------------------------------------------------------------------------

/// How long a blocked [`ThreadedComm::fetch`] waits between cancel-flag
/// checks.
const POLL: Duration = Duration::from_millis(20);
/// A fetch outstanding this long is a schedule bug, not a slow sender.
const STUCK: Duration = Duration::from_secs(60);

struct RankBox {
    /// Point-to-point inbox of this rank.
    rx: Mutex<Receiver<(MailKey, Arc<Vec<f64>>)>>,
    /// Payloads already received (or self-posted), keyed like the shared
    /// mailbox. Fetches never remove — later tasks of the same rank may
    /// re-read — eviction and the final drain clean up.
    stash: Mutex<HashMap<MailKey, Arc<Vec<f64>>>>,
    /// Set by [`Communicator::cancel`]; checked by every blocked fetch.
    canceled: AtomicBool,
    /// Nanoseconds this rank spent blocked in [`Communicator::fetch`],
    /// per mail class. Only misses pay: a fetch whose key is already
    /// stashed records nothing.
    wait_ns: [AtomicU64; MAIL_CLASSES],
}

/// Ranks as real OS threads: rank `r`'s thread owns inbox `r`, sends are
/// point-to-point `mpsc` messages, and a fetch blocks (draining the
/// inbox into the stash) until its key arrives. No shared matrix state —
/// this backend is what makes the distributed execution *physically*
/// parallel.
pub struct ThreadedComm {
    senders: Vec<Sender<(MailKey, Arc<Vec<f64>>)>>,
    boxes: Vec<RankBox>,
}

impl std::fmt::Debug for ThreadedComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedComm").field("ranks", &self.boxes.len()).finish()
    }
}

impl ThreadedComm {
    /// A communicator for `ranks` ranks with empty inboxes.
    pub fn new(ranks: usize) -> Self {
        let mut senders = Vec::with_capacity(ranks);
        let mut boxes = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            let (tx, rx) = std::sync::mpsc::channel();
            senders.push(tx);
            boxes.push(RankBox {
                rx: Mutex::new(rx),
                stash: Mutex::new(HashMap::new()),
                canceled: AtomicBool::new(false),
                wait_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            });
        }
        Self { senders, boxes }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.boxes.len()
    }

    /// Nanoseconds rank `rank` spent blocked in [`Communicator::fetch`],
    /// aggregated per ledger term ([`mail_class_term`]); zero-wait terms
    /// are omitted, terms sorted. The driver folds these into the
    /// [`CommLedger`](calu_obs::CommLedger) after the run.
    pub fn wait_ns(&self, rank: usize) -> Vec<(&'static str, u64)> {
        let mut terms: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for (class, w) in self.boxes[rank].wait_ns.iter().enumerate() {
            let nanos = w.load(Ordering::Relaxed);
            if nanos > 0 {
                *terms.entry(mail_class_term(class as u8)).or_default() += nanos;
            }
        }
        terms.into_iter().collect()
    }

    fn stash_insert(
        stash: &Mutex<HashMap<MailKey, Arc<Vec<f64>>>>,
        key: MailKey,
        v: Arc<Vec<f64>>,
    ) {
        let prev = stash.lock().unwrap_or_else(PoisonError::into_inner).insert(key, v);
        debug_assert!(prev.is_none(), "mail slot {key:?} delivered twice");
    }
}

impl Communicator for ThreadedComm {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn post(&self, from: usize, key: MailKey, data: Vec<f64>, dests: &[usize]) -> Result<()> {
        let arc = Arc::new(data);
        for &d in dests {
            if d == from {
                Self::stash_insert(&self.boxes[d].stash, key, arc.clone());
            } else {
                // The receivers live inside `self`, so a send can only
                // fail after teardown has begun; dropping the payload
                // then is exactly right.
                let _ = self.senders[d].send((key, arc.clone()));
            }
        }
        Ok(())
    }

    fn fetch(&self, at: usize, key: MailKey) -> Result<Arc<Vec<f64>>> {
        let rb = &self.boxes[at];
        // Fast path: already stashed means no waiting — and no wait-clock
        // entry, so the ledger's wait rows measure only genuine blocking.
        if let Some(v) = rb.stash.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
            return Ok(v.clone());
        }
        let start = Instant::now();
        let res = loop {
            if let Some(v) = rb.stash.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
                break Ok(v.clone());
            }
            if rb.canceled.load(Ordering::Acquire) {
                break Err(Error::Canceled);
            }
            let rx = rb.rx.lock().unwrap_or_else(PoisonError::into_inner);
            match rx.recv_timeout(POLL) {
                Ok((k, v)) => {
                    Self::stash_insert(&rb.stash, k, v);
                    // Opportunistically drain whatever else already
                    // arrived so the stash stays warm for stash-only
                    // consumers. The loop re-reads from the stash
                    // (single exit path).
                    while let Ok((k2, v2)) = rx.try_recv() {
                        Self::stash_insert(&rb.stash, k2, v2);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    assert!(
                        start.elapsed() < STUCK,
                        "rank {at}: mail slot {key:?} never delivered — schedule bug"
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // All senders dropped: only possible during teardown.
                    break Err(Error::Canceled);
                }
            }
        };
        rb.wait_ns[key.0 as usize].fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        res
    }

    fn peek_words(&self, at: usize, key: MailKey) -> usize {
        self.boxes[at]
            .stash
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .map_or(0, |v| v.len())
    }

    fn evict_before(&self, at: usize, cutoff: u32) {
        self.boxes[at]
            .stash
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|key, _| key.1 > cutoff);
    }

    fn cancel(&self, _from: usize) {
        for rb in &self.boxes {
            rb.canceled.store(true, Ordering::Release);
        }
    }

    fn drain(&self) -> usize {
        let mut words = 0usize;
        for rb in &self.boxes {
            let mut stash = rb.stash.lock().unwrap_or_else(PoisonError::into_inner);
            words += stash.values().map(|v| v.len()).sum::<usize>();
            stash.clear();
            let rx = rb.rx.lock().unwrap_or_else(PoisonError::into_inner);
            while let Ok((_, v)) = rx.try_recv() {
                words += v.len();
            }
        }
        words
    }

    fn residual_words(&self) -> usize {
        self.boxes
            .iter()
            .map(|rb| {
                rb.stash
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .map(|v| v.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

// ---------------------------------------------------------------------------
// MPI stub
// ---------------------------------------------------------------------------

/// MPI-shaped communicator stub: the third arm of the seam, shaped like
/// the off-box path (rank-addressed posts, blocking fetches) but not
/// linked against any MPI library. Every data operation returns
/// [`Error::Unsupported`] so callers exercise the fallible dispatch an
/// MPI build would need.
#[derive(Debug, Clone, Copy, Default)]
pub struct MpiComm;

impl MpiComm {
    /// The stub.
    pub fn new() -> Self {
        Self
    }

    fn unsupported<T>() -> Result<T> {
        Err(Error::Unsupported { what: "MPI communicator: no MPI library linked in this build" })
    }
}

impl Communicator for MpiComm {
    fn name(&self) -> &'static str {
        "mpi"
    }

    fn post(&self, _from: usize, _key: MailKey, _data: Vec<f64>, _dests: &[usize]) -> Result<()> {
        Self::unsupported()
    }

    fn fetch(&self, _at: usize, _key: MailKey) -> Result<Arc<Vec<f64>>> {
        Self::unsupported()
    }

    fn peek_words(&self, _at: usize, _key: MailKey) -> usize {
        0
    }

    fn evict_before(&self, _at: usize, _cutoff: u32) {}

    fn cancel(&self, _from: usize) {}

    fn drain(&self) -> usize {
        0
    }

    fn residual_words(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: MailKey = (MAIL_PIV, 3, 0, 1);

    #[test]
    fn in_process_round_trips_and_drains() {
        let c = InProcessComm::new();
        c.post(0, KEY, vec![1.0, 2.0], &[]).unwrap();
        assert_eq!(*c.fetch(5, KEY).unwrap(), vec![1.0, 2.0]);
        assert_eq!(c.peek_words(0, KEY), 2);
        c.post(0, (MAIL_ACC, 1, 0, 0), vec![9.0], &[]).unwrap();
        c.evict_before(0, 2);
        assert_eq!(c.peek_words(0, (MAIL_ACC, 1, 0, 0)), 0, "old step evicted");
        assert_eq!(c.peek_words(0, KEY), 2, "current step kept");
        assert_eq!(c.drain(), 2);
        assert_eq!(c.residual_words(), 0);
    }

    /// Satellite regression: one panicking task must not cascade — a
    /// poisoned mailbox lock stays usable for every subsequent post,
    /// fetch, peek, evict, and drain.
    #[test]
    fn in_process_survives_a_poisoned_lock_without_cascading() {
        let c = InProcessComm::new();
        c.post(0, KEY, vec![4.0], &[]).unwrap();
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = c.mail.lock().unwrap();
            panic!("task died holding the mailbox");
        }));
        assert!(poison.is_err());
        assert!(c.mail.is_poisoned(), "the lock must actually be poisoned for this test to bite");
        // Every op still works on the poisoned lock.
        c.post(0, (MAIL_WBK, 3, 0, 0), vec![1.0, 2.0, 3.0], &[]).unwrap();
        assert_eq!(*c.fetch(0, KEY).unwrap(), vec![4.0]);
        assert_eq!(c.peek_words(0, (MAIL_WBK, 3, 0, 0)), 3);
        c.evict_before(0, 0);
        assert_eq!(c.drain(), 4);
        assert_eq!(c.residual_words(), 0);
    }

    #[test]
    fn threaded_routes_point_to_point_and_blocks_until_delivery() {
        let c = ThreadedComm::new(4);
        // Self-post goes straight to the stash.
        c.post(2, KEY, vec![7.0], &[2]).unwrap();
        assert_eq!(c.peek_words(2, KEY), 1);
        assert_eq!(c.peek_words(1, KEY), 0, "not addressed to rank 1");
        // Cross-rank: rank 3 blocks until rank 0 posts.
        std::thread::scope(|s| {
            let c = &c;
            let h = s.spawn(move || c.fetch(3, (MAIL_U12, 0, 1, 0)).unwrap());
            std::thread::sleep(Duration::from_millis(30));
            c.post(0, (MAIL_U12, 0, 1, 0), vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
            assert_eq!(*h.join().unwrap(), vec![1.0, 2.0, 3.0]);
        });
        // Rank 1's copy sits in its channel until something looks for it.
        assert_eq!(*c.fetch(1, (MAIL_U12, 0, 1, 0)).unwrap(), vec![1.0, 2.0, 3.0]);
        // Repeated fetches re-read the stash.
        assert_eq!(c.fetch(3, (MAIL_U12, 0, 1, 0)).unwrap().len(), 3);
        assert_eq!(c.drain(), 1 + 3 + 3);
        assert_eq!(c.residual_words(), 0);
    }

    #[test]
    fn threaded_cancel_unblocks_fetches_everywhere() {
        let c = ThreadedComm::new(2);
        std::thread::scope(|s| {
            let c = &c;
            let h = s.spawn(move || c.fetch(1, (MAIL_PAN, 9, 0, 0)));
            std::thread::sleep(Duration::from_millis(30));
            c.cancel(0);
            assert_eq!(h.join().unwrap(), Err(Error::Canceled));
        });
        // New fetches fail fast too; already-stashed payloads still serve.
        c.post(0, KEY, vec![5.0], &[0]).unwrap();
        assert_eq!(*c.fetch(0, KEY).unwrap(), vec![5.0]);
        assert_eq!(c.fetch(0, (MAIL_PAN, 9, 0, 0)), Err(Error::Canceled));
    }

    #[test]
    fn threaded_evicts_old_steps_per_rank() {
        let c = ThreadedComm::new(2);
        c.post(0, (MAIL_ACC, 1, 0, 0), vec![1.0], &[0]).unwrap();
        c.post(0, (MAIL_ACC, 5, 0, 0), vec![2.0], &[0, 1]).unwrap();
        c.evict_before(0, 3);
        assert_eq!(c.peek_words(0, (MAIL_ACC, 1, 0, 0)), 0);
        assert_eq!(c.peek_words(0, (MAIL_ACC, 5, 0, 0)), 1);
        // Rank 1 evicts independently; its in-flight copy is untouched.
        c.evict_before(1, 3);
        assert_eq!(*c.fetch(1, (MAIL_ACC, 5, 0, 0)).unwrap(), vec![2.0]);
    }

    #[test]
    fn threaded_wait_clocks_charge_blocking_fetches_only() {
        let c = ThreadedComm::new(2);
        // Stash hit: no wait recorded.
        c.post(0, KEY, vec![1.0], &[0]).unwrap();
        assert_eq!(*c.fetch(0, KEY).unwrap(), vec![1.0]);
        assert!(c.wait_ns(0).is_empty(), "stash hits must not charge the wait clock");
        // Blocked fetch: the wait lands on the key's ledger term.
        std::thread::scope(|s| {
            let c = &c;
            let h = s.spawn(move || c.fetch(1, (MAIL_U12, 0, 2, 0)).unwrap());
            std::thread::sleep(Duration::from_millis(30));
            c.post(0, (MAIL_U12, 0, 2, 0), vec![2.0], &[1]).unwrap();
            assert_eq!(*h.join().unwrap(), vec![2.0]);
        });
        let waits = c.wait_ns(1);
        assert_eq!(waits.len(), 1);
        assert_eq!(waits[0].0, "u_bcast");
        assert!(waits[0].1 >= 10_000_000, "~30ms of blocking must register (got {})", waits[0].1);
        assert!(c.wait_ns(0).is_empty(), "only the blocked rank pays");
        // All nine mail classes map onto the ledger vocabulary.
        for class in 0..9u8 {
            assert!(!mail_class_term(class).is_empty());
        }
        assert_eq!(mail_class_term(MAIL_GCD), mail_class_term(MAIL_GRX));
    }

    #[test]
    fn mpi_stub_refuses_data_operations() {
        let c = MpiComm::new();
        assert_eq!(c.name(), "mpi");
        let err = c.post(0, KEY, vec![], &[1]).unwrap_err();
        assert!(matches!(err, Error::Unsupported { .. }));
        assert!(c.fetch(0, KEY).is_err());
        assert_eq!(c.peek_words(0, KEY), 0);
        assert_eq!(c.drain(), 0);
        // And the trait-object path the driver uses dispatches to it.
        let dynamic: &dyn Communicator = &c;
        assert!(dynamic.fetch(0, KEY).is_err());
    }

    #[test]
    fn comm_kind_labels_and_parsing_round_trip() {
        for kind in [CommKind::InProcess, CommKind::Threaded, CommKind::Mpi] {
            assert_eq!(CommKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(CommKind::default(), CommKind::InProcess);
        assert_eq!(CommKind::parse("in-process"), Some(CommKind::InProcess));
        assert_eq!(CommKind::parse("carrier-pigeon"), None);
    }
}
