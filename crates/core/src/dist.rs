//! Simulated-distributed CALU — the paper's actual setting.
//!
//! Two modes over `calu-netsim`:
//!
//! * **Real-data** ([`dist_calu_factor`], [`dist_pdgetrf_factor`],
//!   [`sim_tslu_panel`], [`sim_pdgetf2_panel`]) — the distributed algorithm
//!   executes its actual data flow (2D block-cyclic `Pr x Pc` layout, TSLU
//!   as a butterfly all-reduce of [`Candidates`]), so the factors can be
//!   checked against the sequential references — bitwise for the
//!   partial-pivoting baselines, and to rounding for CALU. The default
//!   entry points are **runtime-driven**: each rank's per-step work runs
//!   as a `calu-runtime` task DAG (see [`crate::dist_rt`], which also
//!   exposes lookahead depth and executor choice); the hand-written SPMD
//!   step loops are kept verbatim as [`dist_calu_factor_spmd`] /
//!   [`dist_pdgetrf_factor_spmd`] — the pre-refactor references the DAG
//!   path is asserted bitwise equal to.
//! * **Cost-skeleton** ([`skeleton_tslu`], [`skeleton_pdgetf2`],
//!   [`skeleton_calu`], [`skeleton_pdgetrf`], [`skeleton_calu_lookahead`])
//!   — full control flow with [`Payload::Empty`] messages and modeled word
//!   counts, so paper-scale problems (a 10^6-row panel on 64 ranks)
//!   simulate in milliseconds. These regenerate Tables 3-7.
//!
//! The row-swap scheme ablation ([`RowSwapScheme`]) and the
//! tournament-tree ablation ([`TsluTree`]) are skeleton-only knobs; the
//! real-data mode always performs pairwise exchanges and the butterfly.

use crate::tournament::{reduce_pair, Candidates};
use crate::tslu::{local_candidates, partition_rows, winners_to_ipiv, LocalLu};
use calu_matrix::blas1::scal;
use calu_matrix::blas2::ger;
use calu_matrix::blas3::{gemm, trsm};
use calu_matrix::lapack::lu_nopiv;
use calu_matrix::perm::ipiv_to_perm;
use calu_matrix::scalar::cast_slice;
use calu_matrix::{Diag, Matrix, NoObs, Scalar, Side, TileLayout, TileMatrix, Uplo};
use calu_netsim::collectives::ceil_log2;
use calu_netsim::machine::{flops_gemm, flops_ger, flops_getf2, flops_trsm_left, flops_trsm_right};
use calu_netsim::{run_sim, Grid, Group, Link, MachineConfig, Payload, SimComm, SimReport};

// ---------------------------------------------------------------------------
// Configuration types
// ---------------------------------------------------------------------------

/// Configuration for the real-data distributed CALU.
#[derive(Debug, Clone, Copy)]
pub struct DistCaluConfig {
    /// Block size `b` (algorithmic panel width *and* distribution block).
    pub b: usize,
    /// Process rows `Pr`.
    pub pr: usize,
    /// Process columns `Pc`.
    pub pc: usize,
    /// Local LU used in TSLU's candidate elections.
    pub local: LocalLu,
}

/// Configuration for the real-data distributed `PDGETRF` baseline.
#[derive(Debug, Clone, Copy)]
pub struct DistPdgetrfConfig {
    /// Block size `b`.
    pub b: usize,
    /// Process rows `Pr`.
    pub pr: usize,
    /// Process columns `Pc`.
    pub pc: usize,
}

/// Packed factors produced by a real-data distributed factorization,
/// assembled from the block-cyclic pieces.
#[derive(Debug, Clone)]
pub struct DistFactors<T = f64> {
    /// Packed `L\U` (unit lower implicit), assembled to one matrix.
    pub lu: Matrix<T>,
    /// LAPACK-style global swap sequence (absolute row indices).
    pub ipiv: Vec<usize>,
    /// LAPACK `INFO`-style singularity report: `Some(step)` records the
    /// first elimination step with an exactly zero (or non-finite) pivot,
    /// matching the `step` of the sequential reference's
    /// [`calu_matrix::Error::SingularPivot`]. Factors at and beyond that
    /// step are not meaningful (the leading part still is, as in LAPACK).
    pub first_singular: Option<usize>,
}

/// Result of a real-data distributed panel factorization.
#[derive(Debug, Clone)]
pub struct DistPanel<T = f64> {
    /// The factored panel (packed `L\U`), assembled at rank 0.
    pub panel: Matrix<T>,
    /// LAPACK-style swap sequence, local to the panel.
    pub ipiv: Vec<usize>,
    /// Pivot row indices in pivot order (original panel rows).
    pub pivot_rows: Vec<usize>,
    /// First elimination step with a zero/non-finite pivot, if any
    /// (LAPACK `INFO` semantics — see [`DistFactors::first_singular`]).
    pub first_singular: Option<usize>,
}

/// How a skeleton models the application of a panel's row swaps to the
/// rest of the matrix (paper Section 4 discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSwapScheme {
    /// The paper's CALU scheme: all `b` swaps move in one
    /// reduce-then-broadcast sweep over the process column
    /// (`2 log2 Pr` message rounds of `b x` local-width words).
    ReduceBcast,
    /// ScaLAPACK's `PDLASWP`: one serialized exchange round per pivot row
    /// (`b` rounds of local-width words) — the per-row picket fence.
    PdLaswp,
}

/// Reduction-tree shape for the TSLU tournament skeleton ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TsluTree {
    /// Butterfly all-reduce (the paper's TSLU; `log2 P` exchange steps,
    /// result known everywhere).
    Butterfly,
    /// Binomial reduce to rank 0 followed by a binomial broadcast
    /// (`2 log2 P` steps).
    ReduceBcast,
    /// Flat gather to the root, one big local election, broadcast back —
    /// the strawman whose combine work grows linearly in `P`.
    Flat,
}

/// Configuration for the 2D cost skeletons.
#[derive(Debug, Clone, Copy)]
pub struct SkelCfg {
    /// Global rows.
    pub m: usize,
    /// Global columns.
    pub n: usize,
    /// Block size `b` (panel width and distribution block).
    pub b: usize,
    /// Process rows `Pr`.
    pub pr: usize,
    /// Process columns `Pc`.
    pub pc: usize,
    /// Local LU inside TSLU (CALU) / panel rate class (`PDGETRF` ignores
    /// it — its panel is always the classic per-column `PDGETF2`).
    pub local: LocalLu,
    /// Row-swap scheme for the trailing-matrix pivot application.
    pub swap: RowSwapScheme,
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Local LU time for an `m x n` block under `local`.
#[inline]
fn t_local_lu(mch: &MachineConfig, local: LocalLu, m: usize, n: usize) -> f64 {
    match local {
        LocalLu::Classic => mch.t_getf2(m, n),
        LocalLu::Recursive => mch.t_rgetf2(m, n),
    }
}

/// Candidate-set payload size in 8-byte words for a width-`b` tournament.
#[inline]
fn cand_words(b: usize) -> usize {
    2 + b + b * b
}

/// The tournament combine charged as compute on `cm`: a `2b x b` GEPP.
fn charge_combine(cm: &mut SimComm, b: usize) {
    let t = cm.machine().t_getf2(2 * b, b);
    cm.compute(t, flops_getf2(2 * b, b));
}

// ---------------------------------------------------------------------------
// Real-data 1D panel drivers
// ---------------------------------------------------------------------------

/// Real-data TSLU of the `m x b` panel `a` over `p` simulated ranks
/// (contiguous block-rows, matching [`crate::tslu::tslu_pivots`]'s
/// partition): local candidate elections, butterfly all-reduce of
/// [`Candidates`] with [`reduce_pair`], redundant factorization of the
/// winner block, and a local `trsm` second pass.
///
/// The elected pivots are identical to the sequential tournament's — the
/// butterfly's combination tree is the one [`crate::tournament::tournament`]
/// replicates — which the tests assert.
pub fn sim_tslu_panel<T: Scalar>(
    a: &Matrix<T>,
    p: usize,
    local: LocalLu,
    mch: MachineConfig,
) -> (SimReport, DistPanel<T>) {
    let (m, b) = (a.rows(), a.cols());
    let kn = m.min(b);
    let parts = partition_rows(m, p);
    let p_eff = parts.len();

    let (report, results) = run_sim(p_eff, mch, |cm| {
        let r = cm.rank();
        let mach = cm.machine().clone();
        let range = parts[r].clone();
        let rows = range.len();
        let group = Group::new((0..p_eff).collect(), r, Link::Col, 41);

        // Phase 1a: local candidate election.
        let block = a.view().submatrix(range.start, 0, rows, b).to_matrix();
        let idx: Vec<usize> = range.clone().collect();
        cm.compute(t_local_lu(&mach, local, rows, b), flops_getf2(rows, b));
        let cand = local_candidates(&block, &idx, local);

        // Phase 1b: butterfly all-reduce — TSLU's communication pattern.
        let words = cand_words(b);
        let win_pl = group.allreduce(cm, Payload::Data(cand.to_payload()), words, |cm, lo, hi| {
            let lo: Candidates<T> = Candidates::from_payload(&lo.into_data());
            let hi: Candidates<T> = Candidates::from_payload(&hi.into_data());
            charge_combine(cm, b);
            Payload::Data(reduce_pair(&lo, &hi).to_payload())
        });
        let winners: Candidates<T> = Candidates::from_payload(&win_pl.into_data());

        // Phase 2: redundant factorization of the winner block W = L11 U11.
        // An exactly singular panel is reported LAPACK-INFO-style (the
        // sequential reference returns `Error::SingularPivot` at the same
        // step); factors beyond the step are not meaningful.
        let mut w = winners.block.clone();
        cm.compute(mach.t_getf2(kn, b), flops_getf2(kn, b));
        let first_singular = match lu_nopiv(w.view_mut(), &mut NoObs) {
            Ok(()) => None,
            Err(calu_matrix::Error::SingularPivot { step }) => Some(step),
            Err(other) => panic!("unexpected lu_nopiv failure: {other:?}"),
        };

        // Second pass: L rows for my *non-winner* originals, A_i U11^{-1}.
        let mine: Vec<usize> = idx.iter().copied().filter(|g| !winners.rows.contains(g)).collect();
        let mut lblk = Matrix::from_fn(mine.len(), b, |i, j| a[(mine[i], j)]);
        cm.compute(mach.t_trsm_right(rows, kn), flops_trsm_right(rows, kn));
        if !mine.is_empty() {
            let u11 = w.view().submatrix(0, 0, kn, kn);
            trsm(Side::Right, Uplo::Upper, Diag::NonUnit, T::ONE, u11, lblk.view_mut());
        }

        // Gather the L blocks (with their original row ids) to rank 0.
        let mine_pl = Candidates::new(lblk, mine).to_payload();
        let gathered = group.gather(cm, 0, Payload::Data(mine_pl), rows * b + rows + 2);
        gathered.map(|items| {
            let ipiv = winners_to_ipiv(&winners.rows, m);
            let perm = ipiv_to_perm(&ipiv, m);
            let mut panel = Matrix::zeros(m, b);
            for i in 0..kn {
                for j in 0..b {
                    panel[(i, j)] = w[(i, j)];
                }
            }
            // Map original row -> (gathered block, row) and fill the
            // below-diagonal positions with each original row's L values.
            let blocks: Vec<Candidates<T>> =
                items.into_iter().map(|pl| Candidates::from_payload(&pl.into_data())).collect();
            let mut by_orig: Vec<Option<(usize, usize)>> = vec![None; m];
            for (bi, blk) in blocks.iter().enumerate() {
                for (ri, &orig) in blk.rows.iter().enumerate() {
                    by_orig[orig] = Some((bi, ri));
                }
            }
            for q in kn..m {
                let orig = perm[q];
                let (bi, ri) = by_orig[orig].expect("non-winner row must be gathered");
                for j in 0..b {
                    panel[(q, j)] = blocks[bi].block[(ri, j)];
                }
            }
            DistPanel { panel, ipiv, pivot_rows: winners.rows.clone(), first_singular }
        })
    });
    let panel = results.into_iter().flatten().next().expect("rank 0 assembles the panel");
    (report, panel)
}

/// Real-data `PDGETF2` of the `m x b` panel over `p` ranks (contiguous
/// block-rows): per column, a local pivot scan, a reduce+broadcast of the
/// winning candidate (value, index, and trailing row — ScaLAPACK's
/// combine), a physical row exchange between the two owners, then local
/// scaling and rank-1 update.
///
/// Every arithmetic operation is elementwise identical to the sequential
/// [`calu_matrix::lapack::getf2`], so the factors match **bitwise** —
/// asserted by the tests.
pub fn sim_pdgetf2_panel<T: Scalar>(
    a: &Matrix<T>,
    p: usize,
    mch: MachineConfig,
) -> (SimReport, DistPanel<T>) {
    let (m, b) = (a.rows(), a.cols());
    let kn = m.min(b);
    let parts = partition_rows(m, p);
    let p_eff = parts.len();
    let owner_of = |g: usize| parts.iter().position(|r| r.contains(&g)).expect("row in range");

    let (report, results) = run_sim(p_eff, mch, |cm| {
        let r = cm.rank();
        let mach = cm.machine().clone();
        let range = parts[r].clone();
        let rows = range.len();
        let group = Group::new((0..p_eff).collect(), r, Link::Col, 43);
        let mut local = a.view().submatrix(range.start, 0, rows, b).to_matrix();
        let mut ipiv = vec![0usize; kn];
        let mut first_singular = None;

        for j in 0..kn {
            // Local pivot scan over my rows with global index >= j
            // (IDAMAX semantics: strictly-greater keeps the first max).
            let lo = range.start.max(j);
            let active = range.end.saturating_sub(lo);
            cm.compute(active as f64 * mach.gamma1, 0.0);
            let (mut best, mut best_g, mut best_v) = (T::NEG_INFINITY, usize::MAX, T::ZERO);
            for g in lo..range.end {
                let v = local[(g - range.start, j)];
                if v.abs() > best {
                    best = v.abs();
                    best_g = g;
                    best_v = v;
                }
            }
            // Candidate payload: [abs, index, value, trailing row j+1..b]
            // as f64 words (exact for f32 values — see Candidates).
            let mut pl = vec![best.to_f64(), best_g as f64, best_v.to_f64()];
            if best_g != usize::MAX {
                let li = best_g - range.start;
                pl.extend((j + 1..b).map(|jj| local[(li, jj)].to_f64()));
            } else {
                pl.extend(std::iter::repeat_n(0.0, b - j - 1));
            }
            let words = b + 2;
            // Combine toward member 0, ties resolve to the lower-rank
            // (= lower-global-index) side — first-max semantics globally.
            let red = group.reduce(cm, Payload::Data(pl), words, |_cm, lo_pl, hi_pl| {
                let lo_v = lo_pl.into_data();
                let hi_v = hi_pl.into_data();
                if hi_v[0] > lo_v[0] {
                    Payload::Data(hi_v)
                } else {
                    Payload::Data(lo_v)
                }
            });
            let win = group.bcast(cm, 0, red.unwrap_or(Payload::Empty), words).into_data();
            let (piv_abs, piv_g, piv_v) =
                (T::from_f64(win[0]), win[1] as usize, T::from_f64(win[2]));
            ipiv[j] = piv_g;
            let eliminate = piv_abs != T::ZERO && piv_abs.is_finite();
            if !eliminate {
                // DGETF2's INFO path: record the first zero pivot, skip
                // the (vacuous) elimination, and keep going.
                first_singular = first_singular.or(Some(j));
            }
            if eliminate {
                // Physical swap of full rows j <-> piv_g between owners.
                if piv_g != j {
                    let (o1, o2) = (owner_of(j), owner_of(piv_g));
                    let tag = 0x5A00_0000 + j as u64;
                    if o1 == o2 {
                        if r == o1 {
                            local.view_mut().swap_rows(j - range.start, piv_g - range.start);
                        }
                    } else if r == o1 {
                        let row: Vec<f64> =
                            (0..b).map(|jj| local[(j - range.start, jj)].to_f64()).collect();
                        let (got, _w) = cm.sendrecv(o2, tag, b, Payload::Data(row), Link::Col);
                        let got = got.into_data();
                        for (jj, v) in got.into_iter().enumerate() {
                            local[(j - range.start, jj)] = T::from_f64(v);
                        }
                    } else if r == o2 {
                        let li = piv_g - range.start;
                        let row: Vec<f64> = (0..b).map(|jj| local[(li, jj)].to_f64()).collect();
                        let (got, _w) = cm.sendrecv(o1, tag, b, Payload::Data(row), Link::Col);
                        let got = got.into_data();
                        for (jj, v) in got.into_iter().enumerate() {
                            local[(li, jj)] = T::from_f64(v);
                        }
                    }
                }
                // Scale my sub-pivot rows and apply the rank-1 update.
                let lo1 = range.start.max(j + 1);
                let below = range.end.saturating_sub(lo1);
                if below > 0 {
                    let inv = piv_v.recip();
                    let l0 = lo1 - range.start;
                    cm.compute(mach.gamma_div + below as f64 * mach.gamma1, below as f64);
                    scal(inv, &mut local.col_mut(j)[l0..]);
                    if j + 1 < b {
                        cm.compute(mach.t_ger(below, b - j - 1), flops_ger(below, b - j - 1));
                        let urow: Vec<T> = cast_slice(&win[3..3 + (b - j - 1)]);
                        let mut v = local.view_mut();
                        let (left, mut right) = v.rb_mut().split_at_col_mut(j + 1);
                        let l_col = &left.col(j)[l0..];
                        let trailing = right.submatrix_mut(l0, 0, below, b - j - 1);
                        ger(-T::ONE, l_col, &urow, trailing);
                    }
                }
            }
        }

        // Gather the final local blocks to rank 0 and assemble.
        let idx: Vec<usize> = range.clone().collect();
        let pl = Candidates::new(local, idx).to_payload();
        let gathered = group.gather(cm, 0, Payload::Data(pl), rows * b + rows + 2);
        gathered.map(|items| {
            let mut panel = Matrix::zeros(m, b);
            for pl in items {
                let blk = Candidates::from_payload(&pl.into_data());
                for (ri, &g) in blk.rows.iter().enumerate() {
                    for j in 0..b {
                        panel[(g, j)] = blk.block[(ri, j)];
                    }
                }
            }
            let pivot_rows = ipiv_to_perm(&ipiv, m)[..kn].to_vec();
            DistPanel { panel, ipiv: ipiv.clone(), pivot_rows, first_singular }
        })
    });
    let panel = results.into_iter().flatten().next().expect("rank 0 assembles the panel");
    (report, panel)
}

// ---------------------------------------------------------------------------
// Real-data 2D block-cyclic factorizations
// ---------------------------------------------------------------------------

/// Per-rank state for the 2D real-data sweeps.
///
/// Local storage is a [`TileMatrix`]: the tiles this rank owns under the
/// block-cyclic deal, packed dense — local tile `(lti, ltj)` *is* global
/// tile `(lti·Pr + prow, ltj·Pc + pcol)`, so the data a `Gemm(k,i,j)`
/// runtime task would touch in shared memory and the data this rank
/// updates in the distributed sweep are the same contiguous tiles. All
/// owner / local-index arithmetic goes through the global
/// [`TileLayout`]'s ownership map (one source of truth with the
/// shared-memory layer; the hand-rolled copies this module used to carry
/// are gone).
struct Rank2d<T> {
    prow: usize,
    pcol: usize,
    b: usize,
    /// Global tile layout with the block-cyclic `(Pr, Pc)` ownership map.
    layout: TileLayout,
    /// Local block-cyclic storage (owned rows x owned cols, `b x b` tiles).
    local: TileMatrix<T>,
}

impl<T: Scalar> Rank2d<T> {
    fn new(a: &Matrix<T>, b: usize, pr: usize, pc: usize, rank: usize) -> Self {
        let grid = Grid::new(pr, pc);
        let (prow, pcol) = grid.coords(rank);
        let layout = TileLayout::new(a.rows(), a.cols(), b, b).with_grid(pr, pc);
        let local = TileMatrix::from_fn(layout.local_layout(prow, pcol), |li, lj| {
            a[(layout.global_row(prow, li), layout.global_col(pcol, lj))]
        });
        Self { prow, pcol, b, layout, local }
    }

    /// Local index of the first owned row with global index `>= g`.
    #[inline]
    fn lrow_at(&self, g: usize) -> usize {
        self.layout.local_rows_below(self.prow, g)
    }

    /// Local index of the first owned column with global index `>= g`.
    #[inline]
    fn lcol_at(&self, g: usize) -> usize {
        self.layout.local_cols_below(self.pcol, g)
    }

    /// Global index of owned row `li`.
    #[inline]
    fn grow(&self, li: usize) -> usize {
        self.layout.global_row(self.prow, li)
    }

    /// Exchanges (or locally swaps) the values of global rows `r1 != r2`
    /// across local columns `[c0, c1)`. Both owner ranks call this; other
    /// ranks in the process column return immediately.
    fn swap_global_rows(
        &mut self,
        cm: &mut SimComm,
        grid: &Grid,
        (r1, r2): (usize, usize),
        (c0, c1): (usize, usize),
        tag: u64,
    ) {
        debug_assert!(r1 != r2);
        let o1 = self.layout.row_owner(r1);
        let o2 = self.layout.row_owner(r2);
        let width = c1 - c0;
        if o1 == o2 {
            if self.prow == o1 {
                let (l1, l2) = (self.layout.local_row(r1), self.layout.local_row(r2));
                self.local.swap_rows_in_cols(l1, l2, c0..c1);
            }
            return;
        }
        let (my_g, peer_prow) = if self.prow == o1 {
            (r1, o2)
        } else if self.prow == o2 {
            (r2, o1)
        } else {
            return;
        };
        if width == 0 {
            return;
        }
        let peer = grid.rank_of(peer_prow, self.pcol);
        let li = self.layout.local_row(my_g);
        let row: Vec<f64> = (c0..c1).map(|lj| self.local[(li, lj)].to_f64()).collect();
        let (got, _w) = cm.sendrecv(peer, tag, width, Payload::Data(row), Link::Col);
        for (o, v) in got.into_data().into_iter().enumerate() {
            self.local[(li, c0 + o)] = T::from_f64(v);
        }
    }

    /// Shared trailing update for both real-data 2D sweeps: broadcast the
    /// packed panel along process rows, `trsm` the `U12` block row on the
    /// diagonal process row, broadcast it down process columns, and `gemm`
    /// the local trailing block — tile by tile. The per-tile loops are
    /// element-for-element the flat kernels' arithmetic: column splits of
    /// the left `trsm` solve each right-hand-side column independently,
    /// and `gemm`'s per-element accumulation over the shared inner
    /// dimension `jb` is unchanged by any `m`/`n` partition, so the
    /// factors stay bitwise identical to the flat-storage sweeps.
    #[allow(clippy::too_many_arguments)]
    fn trailing_update(
        &mut self,
        cm: &mut SimComm,
        rowg: &Group,
        colg: &Group,
        k: usize,
        jb: usize,
        cprow: usize,
        cpcol: usize,
    ) {
        let mach = cm.machine().clone();
        let (lr, lc) = (self.local.rows(), self.local.cols());
        let lr_k = self.lrow_at(k);
        let lr_panel = lr - lr_k;
        let lc_right0 = self.lcol_at(k + jb);
        let lc_right = lc - lc_right0;

        // Panel broadcast along process rows (each process row carries its
        // own rows of the panel, so the payload matches the local rows).
        let panel_words = lr_panel * jb;
        let mine = if self.pcol == cpcol {
            let pl0 = self.lcol_at(k);
            let mut v = Vec::with_capacity(panel_words);
            for lj in pl0..pl0 + jb.min(lc - pl0) {
                v.extend((lr_k..lr).map(|li| self.local[(li, lj)].to_f64()));
            }
            Payload::Data(v)
        } else {
            Payload::Empty
        };
        let panel_pl = rowg.bcast(cm, cpcol, mine, panel_words);
        let panel_l: Matrix<T> =
            Matrix::from_col_major(lr_panel, jb, cast_slice(&panel_pl.into_data()));

        if lc_right == 0 {
            return;
        }
        let lay = self.local.layout();

        // U12 on the diagonal process row, one column tile at a time.
        let diag_l0 = self.lrow_at(k); // first jb local rows are k..k+jb on cprow
        if self.prow == cprow {
            cm.compute(mach.t_trsm_left(jb, lc_right), flops_trsm_left(jb, lc_right));
            let l11 = panel_l.view().submatrix(0, 0, jb, jb);
            let (ti_d, i0) = (diag_l0 / self.b, diag_l0 % self.b);
            for (tj, cr) in lay.col_tile_span(lc_right0..lc) {
                let mut t = self.local.tile_mut(ti_d, tj);
                let u12 = t.submatrix_mut(i0, cr.start, jb, cr.len());
                trsm(Side::Left, Uplo::Lower, Diag::Unit, T::ONE, l11, u12);
            }
        }

        // Broadcast U12 down process columns.
        let u_words = jb * lc_right;
        let mine = if self.prow == cprow {
            let mut v = Vec::with_capacity(u_words);
            for lj in lc_right0..lc {
                v.extend((diag_l0..diag_l0 + jb).map(|li| self.local[(li, lj)].to_f64()));
            }
            Payload::Data(v)
        } else {
            Payload::Empty
        };
        let u12: Matrix<T> = Matrix::from_col_major(
            jb,
            lc_right,
            cast_slice(&colg.bcast(cm, cprow, mine, u_words).into_data()),
        );

        // Local trailing gemm, tile by tile: rows with global >= k + jb.
        let lr_b0 = self.lrow_at(k + jb);
        let lr_below = lr - lr_b0;
        if lr_below > 0 {
            cm.compute(mach.t_gemm(lr_below, lc_right, jb), flops_gemm(lr_below, lc_right, jb));
            for (ti, rr) in lay.row_tile_span(lr_b0..lr) {
                let l21 = panel_l.view().submatrix(ti * self.b + rr.start - lr_k, 0, rr.len(), jb);
                for (tj, cr) in lay.col_tile_span(lc_right0..lc) {
                    let u12v =
                        u12.view().submatrix(0, tj * self.b + cr.start - lc_right0, jb, cr.len());
                    let mut t = self.local.tile_mut(ti, tj);
                    let a22 = t.submatrix_mut(rr.start, cr.start, rr.len(), cr.len());
                    gemm(-T::ONE, l21, u12v, T::ONE, a22);
                }
            }
        }
    }
}

/// Assembles per-rank results into [`DistFactors`]. The singularity
/// report is the minimum over ranks: only the panel-owning process column
/// observes a given panel's zero pivot, so rank 0 alone is not enough.
fn assemble_factors<T: Scalar>(
    layout: TileLayout,
    results: Vec<(TileMatrix<T>, Vec<usize>, Option<usize>)>,
) -> DistFactors<T> {
    let first_singular = results.iter().filter_map(|r| r.2).min();
    let ipiv = results[0].1.clone();
    let parts: Vec<TileMatrix<T>> = results.into_iter().map(|r| r.0).collect();
    let lu = assemble_2d(layout, &parts);
    DistFactors { lu, ipiv, first_singular }
}

/// Assembles per-rank block-cyclic pieces into one global matrix, reading
/// owners and local indices off the layout's ownership map (shared with
/// the runtime-driven drivers in [`crate::dist_rt`]).
pub(crate) fn assemble_2d<T: Scalar>(layout: TileLayout, parts: &[TileMatrix<T>]) -> Matrix<T> {
    Matrix::from_fn(layout.rows(), layout.cols(), |i, j| {
        let owner = layout.owner(i / layout.mb(), j / layout.nb());
        parts[owner][(layout.local_row(i), layout.local_col(j))]
    })
}

/// Runtime-driven distributed CALU — the default path: delegates to
/// [`crate::dist_rt::dist_calu_factor_rt`] at lookahead depth 1 on the
/// deterministic serial executor, returning the modeled per-rank
/// accounting in the familiar [`SimReport`] form. Factors are bitwise
/// identical to the SPMD reference [`dist_calu_factor_spmd`] (the
/// pre-refactor implementation, kept as the equality baseline).
pub fn dist_calu_factor<T: Scalar>(
    a: &Matrix<T>,
    cfg: DistCaluConfig,
    mch: MachineConfig,
) -> (SimReport, DistFactors<T>) {
    let (rep, f) = crate::dist_rt::dist_calu_factor_rt(a, cfg, Default::default(), mch);
    (rep.sim, f)
}

/// Runtime-driven ScaLAPACK-style `PDGETRF` — the default path: delegates
/// to [`crate::dist_rt::dist_pdgetrf_factor_rt`] (depth 1, serial
/// executor). Factors stay bitwise identical to the sequential blocked
/// [`calu_matrix::lapack::getrf`] and to the SPMD reference
/// [`dist_pdgetrf_factor_spmd`].
pub fn dist_pdgetrf_factor<T: Scalar>(
    a: &Matrix<T>,
    cfg: DistPdgetrfConfig,
    mch: MachineConfig,
) -> (SimReport, DistFactors<T>) {
    let (rep, f) = crate::dist_rt::dist_pdgetrf_factor_rt(a, cfg, Default::default(), mch);
    (rep.sim, f)
}

/// Real-data distributed CALU on a 2D block-cyclic `Pr x Pc` grid: per
/// panel, TSLU over the owning process column (butterfly all-reduce of
/// [`Candidates`]), a global pairwise row interchange, redundant
/// factorization of the winner block plus a local `trsm` second pass, then
/// the ScaLAPACK-style `trsm`/`gemm` trailing update with row and column
/// broadcasts.
///
/// This is the hand-written SPMD step loop over `calu-netsim` ranks — the
/// **pre-refactor reference implementation**, kept verbatim so the
/// runtime-driven path ([`crate::dist_rt`]) can be asserted bitwise equal
/// to it. New code should call [`dist_calu_factor`].
///
/// With `pr == 1` the elected pivots equal sequential CALU's with `p == 1`
/// (both are one local election over the whole panel) — asserted in the
/// integration tests.
pub fn dist_calu_factor_spmd<T: Scalar>(
    a: &Matrix<T>,
    cfg: DistCaluConfig,
    mch: MachineConfig,
) -> (SimReport, DistFactors<T>) {
    let (m, n) = (a.rows(), a.cols());
    let kn = m.min(n);
    let DistCaluConfig { b, pr, pc, local } = cfg;
    assert!(b > 0 && pr > 0 && pc > 0, "block and grid must be positive");
    let grid = Grid::new(pr, pc);

    let (report, results) = run_sim(grid.size(), mch, |cm| {
        let rank = cm.rank();
        let mach = cm.machine().clone();
        let mut st = Rank2d::new(a, b, pr, pc, rank);
        let colg = grid.col_group(rank);
        let rowg = grid.row_group(rank);
        let mut ipiv = vec![0usize; kn];
        let mut first_singular: Option<usize> = None;

        let mut k = 0;
        let mut ib = 0u64;
        while k < kn {
            let jb = b.min(kn - k);
            let cprow = (ib as usize) % pr;
            let cpcol = (ib as usize) % pc;

            // --- TSLU over the panel-owning process column.
            let local_ipiv: Vec<usize> = if st.pcol == cpcol {
                let lr_k = st.lrow_at(k);
                let lrows = st.local.rows() - lr_k;
                let pl0 = st.lcol_at(k);
                let block = st.local.submatrix_copy(lr_k, pl0, lrows, jb);
                let idx: Vec<usize> = (lr_k..st.local.rows()).map(|li| st.grow(li) - k).collect();
                cm.compute(t_local_lu(&mach, local, lrows.max(1), jb), flops_getf2(lrows, jb));
                let cand = if lrows > 0 {
                    local_candidates(&block, &idx, local)
                } else {
                    Candidates::new(Matrix::zeros(0, jb), vec![])
                };
                let words = cand_words(jb);
                let win_pl =
                    colg.allreduce(cm, Payload::Data(cand.to_payload()), words, |cm, lo, hi| {
                        let lo: Candidates<T> = Candidates::from_payload(&lo.into_data());
                        let hi: Candidates<T> = Candidates::from_payload(&hi.into_data());
                        charge_combine(cm, jb);
                        Payload::Data(reduce_pair(&lo, &hi).to_payload())
                    });
                let winners: Candidates<T> = Candidates::from_payload(&win_pl.into_data());
                let li = winners_to_ipiv(&winners.rows, m - k);
                // Share the swap list with the other process columns.
                let pl: Vec<f64> = li.iter().map(|&x| x as f64).collect();
                rowg.bcast(cm, cpcol, Payload::Data(pl), jb);
                li
            } else {
                let pl = rowg.bcast(cm, cpcol, Payload::Empty, jb).into_data();
                pl.into_iter().map(|x| x as usize).collect()
            };
            for (i, &p) in local_ipiv.iter().enumerate() {
                ipiv[k + i] = k + p;
            }

            // --- Apply the panel's swaps to every local column.
            for (i, &p) in local_ipiv.iter().enumerate() {
                if p != i {
                    let (r1, r2) = (k + i, k + p);
                    let tag = 0x4341_0000_0000 + ib * 4096 + i as u64;
                    let ncols = st.local.cols();
                    st.swap_global_rows(cm, &grid, (r1, r2), (0, ncols), tag);
                }
            }

            // --- Second pass on the panel: W = L11 U11 redundantly, then
            //     local L21 = A21 U11^{-1}.
            if st.pcol == cpcol {
                let pl0 = st.lcol_at(k);
                // After the swaps the winner block sits in global rows
                // k..k+jb; its values are the all-reduce result, but we
                // read them from the (now permuted) local storage of the
                // diagonal owner and broadcast — simpler: refactor W
                // redundantly from the diagonal owner's rows.
                let w_words = jb * jb;
                let mine = if st.prow == cprow {
                    let d0 = st.lrow_at(k);
                    let mut v = Vec::with_capacity(w_words);
                    for lj in pl0..pl0 + jb {
                        v.extend((d0..d0 + jb).map(|li| st.local[(li, lj)].to_f64()));
                    }
                    Payload::Data(v)
                } else {
                    Payload::Empty
                };
                let mut w: Matrix<T> = Matrix::from_col_major(
                    jb,
                    jb,
                    cast_slice(&colg.bcast(cm, cprow, mine, w_words).into_data()),
                );
                cm.compute(mach.t_getf2(jb, jb), flops_getf2(jb, jb));
                // A genuinely singular panel is recorded INFO-style (the
                // sequential reference errors at the same absolute step);
                // factors at and beyond it are not meaningful.
                if let Err(calu_matrix::Error::SingularPivot { step }) =
                    lu_nopiv(w.view_mut(), &mut NoObs)
                {
                    first_singular = first_singular.or(Some(k + step));
                }
                if st.prow == cprow {
                    let d0 = st.lrow_at(k);
                    for lj in 0..jb {
                        for li in 0..jb {
                            st.local[(d0 + li, pl0 + lj)] = w[(li, lj)];
                        }
                    }
                }
                let lb0 = st.lrow_at(k + jb);
                let lr_below = st.local.rows() - lb0;
                cm.compute(mach.t_trsm_right(lr_below, jb), flops_trsm_right(lr_below, jb));
                if lr_below > 0 {
                    // Per row tile: a right-side solve works row by row,
                    // so row splits are element-exact.
                    let u11 = w.view().submatrix(0, 0, jb, jb);
                    let lay = st.local.layout();
                    let (tjc, jc) = (pl0 / b, pl0 % b);
                    for (ti, rr) in lay.row_tile_span(lb0..st.local.rows()) {
                        let mut t = st.local.tile_mut(ti, tjc);
                        let l21 = t.submatrix_mut(rr.start, jc, rr.len(), jb);
                        trsm(Side::Right, Uplo::Upper, Diag::NonUnit, T::ONE, u11, l21);
                    }
                }
            }

            // --- Trailing update.
            st.trailing_update(cm, &rowg, &colg, k, jb, cprow, cpcol);

            k += jb;
            ib += 1;
        }
        (st.local, ipiv, first_singular)
    });

    (report, assemble_factors(TileLayout::new(m, n, b, b).with_grid(pr, pc), results))
}

/// Real-data ScaLAPACK-style `PDGETRF` on the same 2D block-cyclic layout:
/// the panel is factored column by column (`PDGETF2` — local scan, combine
/// along the process column, physical pivot-row exchange, local rank-1
/// update), then the swaps are applied to the rest of the matrix
/// (`PDLASWP`) and the `trsm`/`gemm` trailing update runs.
///
/// The hand-written SPMD step loop — the **pre-refactor reference**; see
/// [`dist_calu_factor_spmd`]. New code should call [`dist_pdgetrf_factor`].
///
/// Bitwise identical to the sequential blocked
/// [`calu_matrix::lapack::getrf`] — asserted by the property tests.
pub fn dist_pdgetrf_factor_spmd<T: Scalar>(
    a: &Matrix<T>,
    cfg: DistPdgetrfConfig,
    mch: MachineConfig,
) -> (SimReport, DistFactors<T>) {
    let (m, n) = (a.rows(), a.cols());
    let kn = m.min(n);
    let DistPdgetrfConfig { b, pr, pc } = cfg;
    assert!(b > 0 && pr > 0 && pc > 0, "block and grid must be positive");
    let grid = Grid::new(pr, pc);

    let (report, results) = run_sim(grid.size(), mch, |cm| {
        let rank = cm.rank();
        let mach = cm.machine().clone();
        let mut st = Rank2d::new(a, b, pr, pc, rank);
        let colg = grid.col_group(rank);
        let rowg = grid.row_group(rank);
        let mut ipiv = vec![0usize; kn];
        let mut first_singular: Option<usize> = None;

        let mut k = 0;
        let mut ib = 0u64;
        while k < kn {
            let jb = b.min(kn - k);
            let cprow = (ib as usize) % pr;
            let cpcol = (ib as usize) % pc;

            // --- PDGETF2 panel over the owning process column.
            let local_ipiv: Vec<usize> = if st.pcol == cpcol {
                let pl0 = st.lcol_at(k);
                let mut li_piv = vec![0usize; jb];
                for jj in 0..jb {
                    let gc = k + jj;
                    // Local scan (first strict max, ascending global order).
                    let r0 = st.lrow_at(gc);
                    let active = st.local.rows() - r0;
                    cm.compute(active as f64 * mach.gamma1, 0.0);
                    let (mut best, mut best_g, mut best_v) = (T::NEG_INFINITY, usize::MAX, T::ZERO);
                    for li in r0..st.local.rows() {
                        let v = st.local[(li, pl0 + jj)];
                        if v.abs() > best {
                            best = v.abs();
                            best_g = st.grow(li);
                            best_v = v;
                        }
                    }
                    let mut pl = vec![best.to_f64(), best_g as f64, best_v.to_f64()];
                    if best_g != usize::MAX && jj + 1 < jb {
                        let li = st.layout.local_row(best_g);
                        pl.extend((jj + 1..jb).map(|c| st.local[(li, pl0 + c)].to_f64()));
                    } else {
                        pl.extend(std::iter::repeat_n(0.0, jb - jj - 1));
                    }
                    let words = jb + 2;
                    let red = colg.reduce(cm, Payload::Data(pl), words, |_cm, lo, hi| {
                        let lo_v = lo.into_data();
                        let hi_v = hi.into_data();
                        // Ties resolve to the lower process row, whose
                        // candidate has the smaller global index within
                        // its block — but across blocks the global order
                        // interleaves, so compare indices explicitly.
                        if hi_v[0] > lo_v[0]
                            || (hi_v[0] == lo_v[0] && (hi_v[1] as usize) < (lo_v[1] as usize))
                        {
                            Payload::Data(hi_v)
                        } else {
                            Payload::Data(lo_v)
                        }
                    });
                    let win = colg.bcast(cm, 0, red.unwrap_or(Payload::Empty), words).into_data();
                    let (piv_abs, piv_g, piv_v) =
                        (T::from_f64(win[0]), win[1] as usize, T::from_f64(win[2]));
                    li_piv[jj] = piv_g - k;
                    let eliminate = piv_abs != T::ZERO && piv_abs.is_finite();
                    if !eliminate {
                        // DGETF2's INFO path: first zero pivot recorded,
                        // elimination skipped, sweep continues.
                        first_singular = first_singular.or(Some(k + jj));
                    }
                    if eliminate {
                        // Swap rows gc <-> piv_g across the panel columns.
                        if piv_g != gc {
                            let tag = 0x5046_0000_0000 + ib * 4096 + jj as u64;
                            st.swap_global_rows(cm, &grid, (gc, piv_g), (pl0, pl0 + jb), tag);
                        }
                        // Scale + rank-1 update on my sub-pivot rows,
                        // walking the column's tile segments (elementwise
                        // identical to the flat column sweep).
                        let r1 = st.lrow_at(gc + 1);
                        let lr = st.local.rows();
                        let below = lr - r1;
                        if below > 0 {
                            let inv = piv_v.recip();
                            cm.compute(mach.gamma_div + below as f64 * mach.gamma1, below as f64);
                            st.local.for_each_col_segment_mut(pl0 + jj, r1..lr, |_, seg| {
                                scal(inv, seg);
                            });
                            if jj + 1 < jb {
                                cm.compute(
                                    mach.t_ger(below, jb - jj - 1),
                                    flops_ger(below, jb - jj - 1),
                                );
                                let urow: Vec<T> = cast_slice(&win[3..3 + (jb - jj - 1)]);
                                // The panel's columns live in one column
                                // tile (pl0 is tile-aligned, jb <= b); the
                                // rank-1 update runs per row tile, with
                                // the multiplier column and the trailing
                                // block split out of the same tile view.
                                let lay = st.local.layout();
                                let (tjc, jc) = (pl0 / b, pl0 % b);
                                for (ti, rr) in lay.row_tile_span(r1..lr) {
                                    let t = st.local.tile_mut(ti, tjc);
                                    let (left, mut right) = t.split_at_col_mut(jc + jj + 1);
                                    let l_col = &left.col(jc + jj)[rr.clone()];
                                    let trailing =
                                        right.submatrix_mut(rr.start, 0, rr.len(), jb - jj - 1);
                                    ger(-T::ONE, l_col, &urow, trailing);
                                }
                            }
                        }
                    }
                }
                let pl: Vec<f64> = li_piv.iter().map(|&x| x as f64).collect();
                rowg.bcast(cm, cpcol, Payload::Data(pl), jb);
                li_piv
            } else {
                let pl = rowg.bcast(cm, cpcol, Payload::Empty, jb).into_data();
                pl.into_iter().map(|x| x as usize).collect()
            };
            for (i, &p) in local_ipiv.iter().enumerate() {
                ipiv[k + i] = k + p;
            }

            // --- PDLASWP: apply the panel's swaps to the non-panel columns.
            let (pl0, pl1) = if st.pcol == cpcol {
                let c = st.lcol_at(k);
                (c, c + jb)
            } else {
                (0, 0)
            };
            for (i, &p) in local_ipiv.iter().enumerate() {
                if p != i {
                    let (r1, r2) = (k + i, k + p);
                    let tag = 0x4C57_0000_0000 + ib * 4096 + i as u64;
                    if pl0 > 0 {
                        st.swap_global_rows(cm, &grid, (r1, r2), (0, pl0), tag);
                    }
                    let ncols = st.local.cols();
                    if pl1 < ncols || (pl0 == 0 && pl1 == 0 && ncols > 0) {
                        st.swap_global_rows(cm, &grid, (r1, r2), (pl1, ncols), tag + 1);
                    }
                }
            }

            // --- Trailing update (identical to CALU's).
            st.trailing_update(cm, &rowg, &colg, k, jb, cprow, cpcol);

            k += jb;
            ib += 1;
        }
        (st.local, ipiv, first_singular)
    });

    (report, assemble_factors(TileLayout::new(m, n, b, b).with_grid(pr, pc), results))
}

// ---------------------------------------------------------------------------
// Cost skeletons — paper-scale sweeps in milliseconds
// ---------------------------------------------------------------------------

/// Cost skeleton of TSLU on an `m x b` panel over `p` ranks with the given
/// reduction-tree shape.
pub fn skeleton_tslu_tree(
    m: usize,
    b: usize,
    p: usize,
    local: LocalLu,
    tree: TsluTree,
    mch: MachineConfig,
) -> SimReport {
    let parts = partition_rows(m, p);
    let p_eff = parts.len();
    let (report, _) = run_sim(p_eff, mch, |cm| {
        let r = cm.rank();
        let mach = cm.machine().clone();
        let rows = parts[r].len();
        let group = Group::new((0..p_eff).collect(), r, Link::Col, 47);
        let words = cand_words(b);

        cm.compute(t_local_lu(&mach, local, rows, b), flops_getf2(rows, b));
        match tree {
            TsluTree::Butterfly => {
                group.allreduce(cm, Payload::Empty, words, |cm, a, _b| {
                    charge_combine(cm, b);
                    a
                });
            }
            TsluTree::ReduceBcast => {
                let red = group.reduce(cm, Payload::Empty, words, |cm, a, _b| {
                    charge_combine(cm, b);
                    a
                });
                group.bcast(cm, 0, red.unwrap_or(Payload::Empty), words);
            }
            TsluTree::Flat => {
                let items = group.gather(cm, 0, Payload::Empty, words);
                if items.is_some() {
                    // One big election over the p stacked candidate sets.
                    cm.compute(mach.t_getf2(p_eff * b, b), flops_getf2(p_eff * b, b));
                }
                group.bcast(cm, 0, Payload::Empty, words);
            }
        }
        // Second pass: redundant W factorization + local trsm.
        cm.compute(mach.t_getf2(b, b), flops_getf2(b, b));
        cm.compute(mach.t_trsm_right(rows, b), flops_trsm_right(rows, b));
    });
    report
}

/// Cost skeleton of TSLU with the butterfly tree (the paper's algorithm).
pub fn skeleton_tslu(
    m: usize,
    b: usize,
    p: usize,
    local: LocalLu,
    mch: MachineConfig,
) -> SimReport {
    skeleton_tslu_tree(m, b, p, local, TsluTree::Butterfly, mch)
}

/// Cost skeleton of ScaLAPACK `PDGETF2` on an `m x b` panel over `p`
/// ranks: per column, a local scan, a reduce+broadcast of the pivot
/// candidate (`b + 2` words), one pivot-row exchange round, then the local
/// scale and rank-1 update — the per-column picket fence of messages that
/// TSLU's single all-reduce replaces.
pub fn skeleton_pdgetf2(m: usize, b: usize, p: usize, mch: MachineConfig) -> SimReport {
    let parts = partition_rows(m, p);
    let p_eff = parts.len();
    let (report, _) = run_sim(p_eff, mch, |cm| {
        let r = cm.rank();
        let mach = cm.machine().clone();
        let range = parts[r].clone();
        let group = Group::new((0..p_eff).collect(), r, Link::Col, 53);
        let words = b + 2;
        for j in 0..b {
            let lo = range.start.max(j);
            let active = range.end.saturating_sub(lo);
            cm.compute(active as f64 * mach.gamma1, 0.0);
            let red = group.reduce(cm, Payload::Empty, words, |_cm, a, _b| a);
            group.bcast(cm, 0, red.unwrap_or(Payload::Empty), words);
            if p_eff > 1 {
                // Pivot-row exchange between the two owners.
                cm.charge_rounds(1, b, Link::Col);
            }
            let below = range.end.saturating_sub(range.start.max(j + 1));
            if below > 0 {
                cm.compute(mach.gamma_div + below as f64 * mach.gamma1, below as f64);
                if j + 1 < b {
                    cm.compute(mach.t_ger(below, b - j - 1), flops_ger(below, b - j - 1));
                }
            }
        }
    });
    report
}

/// Which 2D algorithm a skeleton models.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Alg2d {
    Calu,
    Pdgetrf,
}

fn skeleton_2d(cfg: SkelCfg, mch: MachineConfig, alg: Alg2d, lookahead: bool) -> SimReport {
    let SkelCfg { m, n, b, pr, pc, local, swap } = cfg;
    assert!(b > 0 && pr > 0 && pc > 0, "block and grid must be positive");
    let grid = Grid::new(pr, pc);
    let layout = TileLayout::new(m, n, b, b).with_grid(pr, pc);
    let kn = m.min(n);

    let (report, _) = run_sim(grid.size(), mch, |cm| {
        let rank = cm.rank();
        let mach = cm.machine().clone();
        let (prow, pcol) = grid.coords(rank);
        let colg = grid.col_group(rank);
        let rowg = grid.row_group(rank);
        let lr_total = layout.local_rows(prow);
        let lc_total = layout.local_cols(pcol);

        let mut k = 0;
        let mut ib = 0usize;
        while k < kn {
            let jb = b.min(kn - k);
            let cprow = ib % pr;
            let cpcol = ib % pc;
            let lr_panel = lr_total - layout.local_rows_below(prow, k);
            let lr_below = lr_total - layout.local_rows_below(prow, k + jb);
            let lc_right = lc_total - layout.local_cols_below(pcol, k + jb);

            // --- Panel factorization on the owning process column. Under
            // look-ahead the election needs no flush: the previous
            // iteration updated this panel's columns eagerly.
            if pcol == cpcol {
                match alg {
                    Alg2d::Calu => {
                        cm.compute(
                            t_local_lu(&mach, local, lr_panel.max(1), jb),
                            flops_getf2(lr_panel, jb),
                        );
                        colg.allreduce(cm, Payload::Empty, cand_words(jb), |cm, a, _b| {
                            charge_combine(cm, jb);
                            a
                        });
                        cm.compute(mach.t_getf2(jb, jb), flops_getf2(jb, jb));
                        cm.compute(mach.t_trsm_right(lr_below, jb), flops_trsm_right(lr_below, jb));
                    }
                    Alg2d::Pdgetrf => {
                        // One real reduce+bcast couples the column; the
                        // remaining jb-1 identical column rounds are
                        // charged (the paper's "log2 P identical steps").
                        let words = jb + 2;
                        let red = colg.reduce(cm, Payload::Empty, words, |_cm, a, _b| a);
                        colg.bcast(cm, 0, red.unwrap_or(Payload::Empty), words);
                        if jb > 1 && pr > 1 {
                            cm.charge_rounds(2 * (jb - 1) * ceil_log2(pr), words, Link::Col);
                        }
                        if pr > 1 {
                            // Per-column pivot-row exchanges within the panel.
                            cm.charge_rounds(jb, jb, Link::Col);
                        }
                        let mut t = 0.0;
                        let mut fl = 0.0;
                        for jj in 0..jb {
                            let active = lr_total - layout.local_rows_below(prow, k + jj);
                            t += active as f64 * mach.gamma1;
                            let below = lr_total - layout.local_rows_below(prow, k + jj + 1);
                            if below > 0 {
                                t += mach.gamma_div + below as f64 * mach.gamma1;
                                fl += below as f64;
                                if jj + 1 < jb {
                                    t += mach.t_ger(below, jb - jj - 1);
                                    fl += flops_ger(below, jb - jj - 1);
                                }
                            }
                        }
                        cm.compute(t, fl);
                    }
                }
            }

            // --- Swap list travels along process rows.
            rowg.bcast(cm, cpcol, Payload::Empty, jb);

            // --- Row interchanges on the trailing/leading columns.
            let swap_width = match alg {
                // CALU swaps all columns after the tournament.
                Alg2d::Calu => lc_total,
                // PDGETRF already swapped the panel block during PDGETF2.
                Alg2d::Pdgetrf => {
                    if pcol == cpcol {
                        lc_total.saturating_sub(jb)
                    } else {
                        lc_total
                    }
                }
            };
            if pr > 1 && swap_width > 0 {
                match swap {
                    RowSwapScheme::ReduceBcast => {
                        cm.charge_rounds(2 * ceil_log2(pr), jb * swap_width, Link::Col);
                    }
                    RowSwapScheme::PdLaswp => {
                        cm.charge_rounds(jb, swap_width, Link::Col);
                    }
                }
            }

            // --- Trailing update with panel/U12 broadcasts.
            rowg.bcast(cm, cpcol, Payload::Empty, lr_panel * jb);
            if lc_right > 0 {
                if prow == cprow {
                    if lookahead {
                        cm.flush_deferred();
                    }
                    cm.compute(mach.t_trsm_left(jb, lc_right), flops_trsm_left(jb, lc_right));
                }
                colg.bcast(cm, cprow, Payload::Empty, jb * lc_right);
                let t = mach.t_gemm(lr_below, lc_right, jb);
                let fl = flops_gemm(lr_below, lc_right, jb);
                if lookahead {
                    // HPL-style depth-1 look-ahead: charge whatever is
                    // still deferred from the previous update (its results
                    // feed this gemm), update the *next panel's* columns
                    // eagerly if this rank owns them, and defer the bulk —
                    // it hides in the next panel's election and broadcast
                    // waits instead of sitting on the critical path.
                    cm.flush_deferred();
                    let next_is_mine = (ib + 1) % pc == pcol;
                    if next_is_mine && lc_right > jb {
                        let frac = jb as f64 / lc_right as f64;
                        cm.compute(t * frac, fl * frac);
                        cm.defer_compute(t * (1.0 - frac), fl * (1.0 - frac));
                    } else {
                        cm.defer_compute(t, fl);
                    }
                } else {
                    cm.compute(t, fl);
                }
            }

            k += jb;
            ib += 1;
        }
        cm.flush_deferred();
    });
    report
}

/// Cost skeleton of 2D block-cyclic CALU (regenerates Tables 5-6 cells).
pub fn skeleton_calu(cfg: SkelCfg, mch: MachineConfig) -> SimReport {
    skeleton_2d(cfg, mch, Alg2d::Calu, false)
}

/// [`skeleton_calu`] with depth-1 HPL-style look-ahead: trailing updates
/// are deferred so they overlap the next panel's communication (paper
/// Section 4 names the technique as compatible with CALU).
pub fn skeleton_calu_lookahead(cfg: SkelCfg, mch: MachineConfig) -> SimReport {
    skeleton_2d(cfg, mch, Alg2d::Calu, true)
}

/// Cost skeleton of ScaLAPACK `PDGETRF` (the Tables 5-6 baseline). The
/// `local` field of the config is ignored; the panel is always the
/// classic per-column `PDGETF2`.
pub fn skeleton_pdgetrf(cfg: SkelCfg, mch: MachineConfig) -> SimReport {
    skeleton_2d(cfg, mch, Alg2d::Pdgetrf, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calu::{calu_factor, CaluOpts};
    use crate::tslu::tslu_pivots;
    use calu_matrix::gen;
    use calu_matrix::lapack::{getf2, getrf, GetrfOpts};
    use calu_matrix::perm::permute_rows;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tslu_panel_matches_sequential_pivots() {
        let mut rng = StdRng::seed_from_u64(301);
        let a: Matrix = gen::randn(&mut rng, 96, 8);
        for p in [1usize, 2, 4, 8] {
            let seq = tslu_pivots(a.view(), p, LocalLu::Classic);
            let (_rep, d) = sim_tslu_panel(&a, p, LocalLu::Classic, MachineConfig::ideal());
            assert_eq!(d.pivot_rows, seq, "p={p}");
            assert_eq!(d.ipiv, winners_to_ipiv(&seq, 96));
        }
    }

    #[test]
    fn tslu_panel_reconstructs() {
        let mut rng = StdRng::seed_from_u64(302);
        let a = gen::randn(&mut rng, 64, 8);
        let (_rep, d) = sim_tslu_panel(&a, 4, LocalLu::Recursive, MachineConfig::power5());
        let perm = ipiv_to_perm(&d.ipiv, 64);
        let pa = permute_rows(&a, &perm);
        let l = d.panel.unit_lower();
        let u = d.panel.upper();
        let mut prod = Matrix::zeros(64, 8);
        gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
        assert!(pa.max_abs_diff(&prod) < 1e-10);
    }

    #[test]
    fn pdgetf2_panel_is_bitwise_partial_pivoting() {
        let mut rng = StdRng::seed_from_u64(303);
        let a: Matrix = gen::randn(&mut rng, 48, 8);
        for p in [1usize, 2, 3, 5] {
            let (_rep, d) = sim_pdgetf2_panel(&a, p, MachineConfig::ideal());
            let mut seq = a.clone();
            let mut ipiv = vec![0usize; 8];
            getf2(seq.view_mut(), &mut ipiv, &mut NoObs).unwrap();
            assert_eq!(d.ipiv, ipiv, "p={p}");
            assert_eq!(d.panel.max_abs_diff(&seq), 0.0, "p={p}");
        }
    }

    #[test]
    fn dist_pdgetrf_is_bitwise_sequential_getrf() {
        let mut rng = StdRng::seed_from_u64(304);
        let a: Matrix = gen::randn(&mut rng, 40, 40);
        for &(pr, pc) in &[(1usize, 1usize), (2, 2), (2, 1), (1, 3), (3, 2)] {
            let (_rep, d) =
                dist_pdgetrf_factor(&a, DistPdgetrfConfig { b: 8, pr, pc }, MachineConfig::ideal());
            let mut lu = a.clone();
            let mut ipiv = vec![0usize; 40];
            getrf(
                lu.view_mut(),
                &mut ipiv,
                GetrfOpts { block: 8, ..Default::default() },
                &mut NoObs,
            )
            .unwrap();
            assert_eq!(d.ipiv, ipiv, "{pr}x{pc}");
            assert_eq!(d.lu.max_abs_diff(&lu), 0.0, "{pr}x{pc}");
        }
    }

    #[test]
    fn dist_calu_reconstructs_on_grids() {
        let mut rng = StdRng::seed_from_u64(305);
        let n = 48;
        let a = gen::randn(&mut rng, n, n);
        for &(pr, pc) in &[(1usize, 1usize), (2, 2), (4, 1), (2, 3)] {
            let (_rep, d) = dist_calu_factor(
                &a,
                DistCaluConfig { b: 8, pr, pc, local: LocalLu::Recursive },
                MachineConfig::ideal(),
            );
            let perm = ipiv_to_perm(&d.ipiv, n);
            let pa = permute_rows(&a, &perm);
            let l = d.lu.unit_lower();
            let u = d.lu.upper();
            let mut prod = Matrix::zeros(n, n);
            gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
            assert!(pa.max_abs_diff(&prod) < 1e-9, "{pr}x{pc}");
        }
    }

    #[test]
    fn dist_calu_pr1_matches_sequential_p1() {
        let mut rng = StdRng::seed_from_u64(306);
        let a: Matrix = gen::randn(&mut rng, 32, 32);
        let (_rep, d) = dist_calu_factor(
            &a,
            DistCaluConfig { b: 8, pr: 1, pc: 2, local: LocalLu::Classic },
            MachineConfig::ideal(),
        );
        let f = calu_factor(
            &a,
            CaluOpts { block: 8, p: 1, local: LocalLu::Classic, ..Default::default() },
        )
        .unwrap();
        assert_eq!(d.ipiv, f.ipiv);
        assert!(d.lu.max_abs_diff(&f.lu) < 1e-11);
    }

    #[test]
    fn singular_inputs_are_reported_info_style_not_panics() {
        // Exact rank deficiency: distributed runs must complete and report
        // the same first singular step the sequential references error at.
        let mut rng = StdRng::seed_from_u64(307);
        let n = 24;
        let r = 10;
        let base = gen::randn(&mut rng, n, r);
        let a = Matrix::from_fn(n, n, |i, j| if j < r { base[(i, j)] } else { 0.0 });

        // Sequential references.
        let seq_getrf_step = {
            let mut lu = a.clone();
            let mut ipiv = vec![0usize; n];
            match getrf(
                lu.view_mut(),
                &mut ipiv,
                GetrfOpts { block: 4, ..Default::default() },
                &mut NoObs,
            ) {
                Err(calu_matrix::Error::SingularPivot { step }) => step,
                other => panic!("sequential getrf must fail: {other:?}"),
            }
        };
        let seq_calu_step = {
            match calu_factor(&a, CaluOpts { block: 4, p: 2, ..Default::default() }) {
                Err(calu_matrix::Error::SingularPivot { step }) => step,
                other => panic!("sequential calu must fail: {other:?}"),
            }
        };

        let (_rep, d) = dist_pdgetrf_factor(
            &a,
            DistPdgetrfConfig { b: 4, pr: 2, pc: 2 },
            MachineConfig::ideal(),
        );
        assert_eq!(d.first_singular, Some(seq_getrf_step));

        let (_rep, d) = dist_calu_factor(
            &a,
            DistCaluConfig { b: 4, pr: 2, pc: 2, local: LocalLu::Classic },
            MachineConfig::ideal(),
        );
        assert_eq!(d.first_singular, Some(seq_calu_step));

        // Panel drivers on an exactly-zero trailing column.
        let mut panel = gen::randn(&mut rng, 16, 4);
        for i in 0..16 {
            panel[(i, 3)] = 0.0;
        }
        let (_rep, d) = sim_pdgetf2_panel(&panel, 2, MachineConfig::ideal());
        assert!(d.first_singular.is_some());
        let (_rep, d) = sim_tslu_panel(&panel, 2, LocalLu::Classic, MachineConfig::ideal());
        assert!(d.first_singular.is_some());

        // And nonsingular inputs report None.
        let good: Matrix = gen::randn(&mut rng, n, n);
        let (_rep, d) = dist_pdgetrf_factor(
            &good,
            DistPdgetrfConfig { b: 4, pr: 2, pc: 2 },
            MachineConfig::ideal(),
        );
        assert_eq!(d.first_singular, None);
    }

    #[test]
    fn tile_layout_ownership_map_matches_netsim_grid_math() {
        // The hand-rolled owner/local-index helpers this module used to
        // carry were thin wrappers over calu-netsim's ScaLAPACK functions;
        // they now route through TileLayout. Assert the two formulations
        // agree everywhere so the dedupe is behavior-preserving.
        use calu_netsim::grid::{global_to_local, local_to_global, numroc};
        let (m, n, b, pr, pc) = (131, 77, 8, 3, 2);
        let layout = TileLayout::new(m, n, b, b).with_grid(pr, pc);
        for i in 0..m {
            let (owner, li) = global_to_local(i, b, pr);
            assert_eq!(layout.row_owner(i), owner);
            assert_eq!(layout.local_row(i), li);
        }
        for j in 0..n {
            let (owner, lj) = global_to_local(j, b, pc);
            assert_eq!(layout.col_owner(j), owner);
            assert_eq!(layout.local_col(j), lj);
        }
        for prow in 0..pr {
            assert_eq!(layout.local_rows(prow), numroc(m, b, prow, pr));
            for hi in 0..=m {
                assert_eq!(layout.local_rows_below(prow, hi), numroc(hi, b, prow, pr), "hi={hi}");
            }
            for li in 0..layout.local_rows(prow) {
                assert_eq!(layout.global_row(prow, li), local_to_global(li, b, prow, pr));
            }
        }
        // Tile owners follow the grid's column-major rank order.
        let grid = Grid::new(pr, pc);
        for ti in 0..layout.tile_rows() {
            for tj in 0..layout.tile_cols() {
                assert_eq!(layout.owner(ti, tj), grid.rank_of(ti % pr, tj % pc));
            }
        }
    }

    #[test]
    fn skeletons_are_deterministic_and_move_words() {
        let cfg = SkelCfg {
            m: 2_000,
            n: 2_000,
            b: 50,
            pr: 2,
            pc: 2,
            local: LocalLu::Recursive,
            swap: RowSwapScheme::ReduceBcast,
        };
        let a = skeleton_calu(cfg, MachineConfig::power5());
        let b = skeleton_calu(cfg, MachineConfig::power5());
        assert_eq!(a.makespan(), b.makespan());
        assert!(a.total_words() > 0, "cost skeleton must move simulated words");
        assert!(a.total_msgs() > 0);
        assert!(a.total_flops() > 0.0);
        let p = skeleton_pdgetrf(
            SkelCfg { local: LocalLu::Classic, swap: RowSwapScheme::PdLaswp, ..cfg },
            MachineConfig::power5(),
        );
        assert!(p.total_words() > 0);
    }

    #[test]
    fn pdgetf2_skeleton_sends_order_b_more_messages_than_tslu() {
        let mch = MachineConfig::power5();
        let (m, b, p) = (10_000, 50, 8);
        let t = skeleton_tslu(m, b, p, LocalLu::Recursive, mch.clone());
        let g = skeleton_pdgetf2(m, b, p, mch);
        assert!(
            g.total_msgs() > 10 * t.total_msgs(),
            "PDGETF2 {} vs TSLU {} messages",
            g.total_msgs(),
            t.total_msgs()
        );
        assert!(g.makespan() > t.makespan(), "TSLU must win this latency-bound cell");
    }

    #[test]
    fn lookahead_never_slower_and_sometimes_faster() {
        let mch = MachineConfig::power5();
        let cfg = SkelCfg {
            m: 2_000,
            n: 2_000,
            b: 50,
            pr: 4,
            pc: 4,
            local: LocalLu::Recursive,
            swap: RowSwapScheme::ReduceBcast,
        };
        let plain = skeleton_calu(cfg, mch.clone()).makespan();
        let la = skeleton_calu_lookahead(cfg, mch).makespan();
        assert!(la <= plain * (1.0 + 1e-9), "lookahead {la} vs plain {plain}");
        // On a latency-heavy cell the overlap must buy a real gain.
        assert!(plain / la > 1.03, "expected >3% gain, got {}", plain / la);
    }

    #[test]
    fn tslu_tree_shapes_rank_as_expected() {
        // Flat pays a serial p*b x b election; butterfly and reduce+bcast
        // stay logarithmic. On many ranks flat must lose.
        let mch = MachineConfig::power5();
        let (m, b, p) = (100_000, 100, 32);
        let bf = skeleton_tslu_tree(m, b, p, LocalLu::Recursive, TsluTree::Butterfly, mch.clone());
        let rb =
            skeleton_tslu_tree(m, b, p, LocalLu::Recursive, TsluTree::ReduceBcast, mch.clone());
        let fl = skeleton_tslu_tree(m, b, p, LocalLu::Recursive, TsluTree::Flat, mch);
        assert!(
            fl.makespan() > bf.makespan(),
            "flat {} vs butterfly {}",
            fl.makespan(),
            bf.makespan()
        );
        // Reduce+bcast pays ~2x the tree latency of the butterfly but the
        // same combine work; it should land within a modest factor.
        assert!(rb.makespan() < 2.5 * bf.makespan());
    }
}
