//! CALU — the full blocked right-looking factorization with tournament
//! pivoting (paper Sections 2 and 4), sequential reference implementation.
//!
//! Identical sweep structure to `getrf` (and to ScaLAPACK's `PDGETRF`):
//! factor a panel, swap rows across the whole matrix, `trsm` the `U` block
//! row, `gemm` the trailing matrix. The only difference — and the paper's
//! whole point — is that the panel is factored by TSLU, so the panel's
//! latency cost drops by a factor `b` in the distributed setting. The
//! sequential implementation here defines the *numerics* (which the
//! distributed one must and does match bit for bit) and powers the
//! stability study.

use crate::tslu::{tslu_factor, LocalLu};
use calu_matrix::blas3::{gemm, par_gemm, trsm};
use calu_matrix::perm::apply_ipiv;
use calu_matrix::{Diag, MatViewMut, Matrix, NoObs, PivotObserver, Result, Scalar, Side, Uplo};
use calu_runtime::PanelMode;

/// CALU tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct CaluOpts {
    /// Panel width `b` (the paper sweeps 50/100/150).
    pub block: usize,
    /// Tournament height: the number of block-rows each panel is split
    /// into (`Pr` in the distributed algorithm). `p == 1` degenerates to
    /// GEPP.
    pub p: usize,
    /// Local LU used inside TSLU's preprocessing.
    pub local: LocalLu,
    /// Run trailing updates on the rayon pool.
    pub parallel_update: bool,
    /// How the runtime engines factor panels ([`PanelMode::Gathered`] is
    /// the bitwise sequential reference; [`PanelMode::Resident`] is the
    /// per-tile tournament subgraph). The sequential sweeps here
    /// ([`calu_inplace`]/[`calu_factor`]) always run gathered and ignore
    /// this knob.
    pub panel_mode: PanelMode,
}

impl Default for CaluOpts {
    fn default() -> Self {
        Self {
            block: 64,
            p: 4,
            local: LocalLu::Recursive,
            parallel_update: false,
            panel_mode: PanelMode::Gathered,
        }
    }
}

/// Packed LU factors with their pivot sequence, as produced by
/// [`calu_factor`] or the baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct LuFactors<T = f64> {
    /// Packed `L\U` (unit lower implicit).
    pub lu: Matrix<T>,
    /// LAPACK-style global swap sequence.
    pub ipiv: Vec<usize>,
}

/// Factors a copy of `a` with CALU and returns the packed factors.
///
/// ```
/// use calu_core::{calu_factor, CaluOpts};
/// use calu_matrix::gen;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let a = gen::randn(&mut rng, 128, 128);
/// let f = calu_factor(&a, CaluOpts { block: 32, p: 4, ..Default::default() }).unwrap();
///
/// // Solve A x = b and check the residual.
/// let x_true = vec![1.0_f64; 128];
/// let b = gen::rhs_for_solution(&a, &x_true);
/// let x = f.solve(&b);
/// assert!(x.iter().zip(&x_true).all(|(a, b)| (a - b).abs() < 1e-8));
/// ```
///
/// # Errors
/// Singular pivot (exact zero) — see [`calu_inplace`].
pub fn calu_factor<T: Scalar>(a: &Matrix<T>, opts: CaluOpts) -> Result<LuFactors<T>> {
    let mut lu = a.clone();
    let ipiv = calu_inplace(lu.view_mut(), opts, &mut NoObs)?;
    Ok(LuFactors { lu, ipiv })
}

/// In-place CALU over a view; returns the swap sequence. The observer sees
/// every panel's unpivoted factorization (thresholds `τ`) and every trailing
/// update (growth tracking).
///
/// # Errors
/// [`calu_matrix::Error::SingularPivot`] with the absolute elimination step.
pub fn calu_inplace<T: Scalar, O: PivotObserver<T>>(
    mut a: MatViewMut<'_, T>,
    opts: CaluOpts,
    obs: &mut O,
) -> Result<Vec<usize>> {
    let (m, n) = (a.rows(), a.cols());
    let kn = m.min(n);
    assert!(opts.block > 0 && opts.p > 0, "block and p must be positive");
    let nb = opts.block;
    let mut ipiv = vec![0usize; kn];

    let mut k = 0;
    while k < kn {
        let jb = nb.min(kn - k);

        // TSLU panel factorization (tournament + unpivoted LU).
        {
            let panel = a.submatrix_mut(k, k, m - k, jb);
            let r = tslu_factor(panel, opts.p, opts.local, obs).map_err(|e| match e {
                calu_matrix::Error::SingularPivot { step } => {
                    calu_matrix::Error::SingularPivot { step: step + k }
                }
                other => other,
            })?;
            ipiv[k..k + jb].copy_from_slice(&r.ipiv);
        }

        // Apply the panel's swaps to the columns left and right of it.
        let local: Vec<usize> = ipiv[k..k + jb].to_vec();
        if k > 0 {
            let left = a.submatrix_mut(k, 0, m - k, k);
            apply_ipiv(left, &local);
        }
        if k + jb < n {
            let right = a.submatrix_mut(k, k + jb, m - k, n - k - jb);
            apply_ipiv(right, &local);
        }
        for p in ipiv[k..k + jb].iter_mut() {
            *p += k;
        }

        // U block row and trailing update (identical to classic LU —
        // "the update of the trailing matrix is the same as in the classic
        // LU factorization", paper Section 1).
        if k + jb < n {
            let (left, right) = a.rb_mut().split_at_col_mut(k + jb);
            let right = right.into_submatrix(k, 0, m - k, n - k - jb);
            let (mut u12, mut a22) = right.split_at_row_mut(jb);
            let l11 = left.submatrix(k, k, jb, jb);
            trsm(Side::Left, Uplo::Lower, Diag::Unit, T::ONE, l11, u12.rb_mut());
            if k + jb < m {
                let l21 = left.submatrix(k + jb, k, m - k - jb, jb);
                if opts.parallel_update {
                    par_gemm(-T::ONE, l21, u12.as_view(), T::ONE, a22.rb_mut());
                } else {
                    gemm(-T::ONE, l21, u12.as_view(), T::ONE, a22.rb_mut());
                }
                obs.on_stage(&a22.as_view());
            }
        }
        k += jb;
    }
    Ok(ipiv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::PivotStats;
    use calu_matrix::gen;
    use calu_matrix::lapack::{getrf, GetrfOpts};
    use calu_matrix::perm::{ipiv_to_perm, permute_rows};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_plu(orig: &Matrix, lu: &Matrix, ipiv: &[usize], tol: f64) {
        let perm = ipiv_to_perm(ipiv, orig.rows());
        let pa = permute_rows(orig, &perm);
        let l = lu.unit_lower();
        let u = lu.upper();
        let mut prod = Matrix::zeros(orig.rows(), orig.cols());
        gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
        let d = pa.max_abs_diff(&prod);
        assert!(d < tol, "||P A - L U||_max = {d} > {tol}");
    }

    #[test]
    fn calu_reconstructs_random_matrices() {
        let mut rng = StdRng::seed_from_u64(91);
        for &(m, n, b, p) in &[
            (64, 64, 8, 4),
            (100, 100, 16, 4),
            (96, 96, 32, 8),
            (80, 50, 10, 4),
            (120, 120, 50, 2),
            (65, 65, 8, 4), // non-divisible shapes
        ] {
            let a0 = gen::randn(&mut rng, m, n);
            let f = calu_factor(&a0, CaluOpts { block: b, p, ..Default::default() }).unwrap();
            check_plu(&a0, &f.lu, &f.ipiv, 1e-8 * m as f64);
        }
    }

    #[test]
    fn calu_p1_matches_gepp_exactly() {
        // With a one-way tournament every panel's pivots are partial
        // pivoting's, so CALU == GETRF bit for bit.
        let mut rng = StdRng::seed_from_u64(92);
        let a0: Matrix = gen::randn(&mut rng, 72, 72);
        let f = calu_factor(
            &a0,
            CaluOpts { block: 12, p: 1, local: LocalLu::Classic, ..Default::default() },
        )
        .unwrap();
        let mut g = a0.clone();
        let mut ipiv = vec![0usize; 72];
        getrf(g.view_mut(), &mut ipiv, GetrfOpts { block: 12, ..Default::default() }, &mut NoObs)
            .unwrap();
        assert_eq!(f.ipiv, ipiv);
        assert!(f.lu.max_abs_diff(&g) < 1e-12);
    }

    #[test]
    fn calu_thresholds_respect_paper_bound() {
        // The headline stability claim: tau_min >= ~0.33 ("|L| bounded by
        // 3") on normal matrices. On these sizes tau_min is comfortably
        // above; we assert the weaker |L| <= 10 + tau recorded for every
        // elimination step.
        let mut rng = StdRng::seed_from_u64(93);
        let a0 = gen::randn(&mut rng, 128, 128);
        let mut a = a0.clone();
        let mut stats = PivotStats::new(a0.max_abs());
        let opts = CaluOpts { block: 16, p: 8, ..Default::default() };
        let _ipiv = calu_inplace(a.view_mut(), opts, &mut stats).unwrap();
        assert_eq!(stats.steps(), 128, "one threshold per elimination step");
        assert!(stats.tau_min() > 0.2, "tau_min = {}", stats.tau_min());
        assert!(stats.tau_ave() > 0.7, "tau_ave = {}", stats.tau_ave());
        assert!(stats.max_l < 5.0, "max |L| = {}", stats.max_l);
    }

    #[test]
    fn calu_growth_comparable_to_gepp() {
        let mut rng = StdRng::seed_from_u64(94);
        let a0 = gen::randn(&mut rng, 96, 96);

        let mut s_calu = PivotStats::new(a0.max_abs());
        let mut a1 = a0.clone();
        calu_inplace(
            a1.view_mut(),
            CaluOpts { block: 16, p: 4, ..Default::default() },
            &mut s_calu,
        )
        .unwrap();

        let mut s_gepp = PivotStats::new(a0.max_abs());
        let mut a2 = a0.clone();
        let mut ipiv = vec![0usize; 96];
        getrf(a2.view_mut(), &mut ipiv, GetrfOpts { block: 16, ..Default::default() }, &mut s_gepp)
            .unwrap();

        let g_calu = s_calu.growth_factor(1.0);
        let g_gepp = s_gepp.growth_factor(1.0);
        assert!(g_calu < 8.0 * g_gepp, "CALU growth {g_calu} wildly exceeds GEPP growth {g_gepp}");
    }

    #[test]
    fn parallel_update_bitwise_matches_serial() {
        let mut rng = StdRng::seed_from_u64(95);
        let a0: Matrix = gen::randn(&mut rng, 150, 150);
        let f1 = calu_factor(
            &a0,
            CaluOpts { block: 32, p: 4, parallel_update: false, ..Default::default() },
        )
        .unwrap();
        let f2 = calu_factor(
            &a0,
            CaluOpts { block: 32, p: 4, parallel_update: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(f1.ipiv, f2.ipiv);
        assert!(f1.lu.max_abs_diff(&f2.lu) < 1e-13);
    }

    #[test]
    fn calu_ipiv_always_yields_a_valid_permutation() {
        // The tournament's swap sequences, composed across panels, must
        // always extend to a permutation of the rows — for square, tall,
        // and wide shapes and every tournament height.
        use calu_matrix::perm::is_permutation;
        let mut rng = StdRng::seed_from_u64(97);
        for &(m, n, b, p) in
            &[(48usize, 48usize, 8usize, 4usize), (64, 32, 8, 8), (40, 56, 16, 2), (33, 33, 5, 3)]
        {
            let a0: Matrix = gen::randn(&mut rng, m, n);
            let f = calu_factor(&a0, CaluOpts { block: b, p, ..Default::default() }).unwrap();
            assert_eq!(f.ipiv.len(), m.min(n));
            for (i, &pv) in f.ipiv.iter().enumerate() {
                assert!(pv >= i && pv < m, "swap {i} <-> {pv} out of range (m={m})");
            }
            let perm = ipiv_to_perm(&f.ipiv, m);
            assert!(is_permutation(&perm), "m={m} n={n} b={b} p={p}");
        }
    }

    #[test]
    fn block_larger_than_matrix_is_one_tslu() {
        let mut rng = StdRng::seed_from_u64(96);
        let a0 = gen::randn(&mut rng, 40, 40);
        let f = calu_factor(&a0, CaluOpts { block: 64, p: 4, ..Default::default() }).unwrap();
        check_plu(&a0, &f.lu, &f.ipiv, 1e-9);
    }
}
