//! GEPP baseline: blocked Gaussian elimination with partial pivoting, the
//! algorithm ScaLAPACK's `PDGETRF` parallelizes and the stability yardstick
//! of Tables 1-2.

use crate::calu::LuFactors;
use calu_matrix::lapack::{getrf, GetrfOpts, PanelAlg};
use calu_matrix::{MatViewMut, Matrix, NoObs, PivotObserver, Result, Scalar};

/// Factors a copy of `a` with blocked GEPP.
///
/// # Errors
/// Singular pivot.
pub fn gepp_factor<T: Scalar>(a: &Matrix<T>, block: usize) -> Result<LuFactors<T>> {
    let mut lu = a.clone();
    let ipiv = gepp_inplace(lu.view_mut(), block, &mut NoObs)?;
    Ok(LuFactors { lu, ipiv })
}

/// In-place blocked GEPP with an observer (for the Table 2 statistics).
///
/// # Errors
/// Singular pivot.
pub fn gepp_inplace<T: Scalar, O: PivotObserver<T>>(
    a: MatViewMut<'_, T>,
    block: usize,
    obs: &mut O,
) -> Result<Vec<usize>> {
    let kn = a.rows().min(a.cols());
    let mut ipiv = vec![0usize; kn];
    getrf(a, &mut ipiv, GetrfOpts { block, panel: PanelAlg::Classic, parallel: false }, obs)?;
    Ok(ipiv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::blas3::gemm;
    use calu_matrix::gen;
    use calu_matrix::perm::{ipiv_to_perm, permute_rows};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gepp_factor_reconstructs() {
        let mut rng = StdRng::seed_from_u64(101);
        let a0 = gen::randn(&mut rng, 77, 77);
        let f = gepp_factor(&a0, 16).unwrap();
        let perm = ipiv_to_perm(&f.ipiv, 77);
        let pa = permute_rows(&a0, &perm);
        let l = f.lu.unit_lower();
        let u = f.lu.upper();
        let mut prod = Matrix::zeros(77, 77);
        gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
        assert!(pa.max_abs_diff(&prod) < 1e-9);
    }

    #[test]
    fn gepp_block_size_does_not_change_factors() {
        // Blocked GEPP is a reorganization of unblocked GEPP: any block
        // size gives the same pivots and (numerically) the same factors.
        let mut rng = StdRng::seed_from_u64(102);
        let a0: Matrix = gen::randn(&mut rng, 60, 60);
        let f1 = gepp_factor(&a0, 1).unwrap();
        let f8 = gepp_factor(&a0, 8).unwrap();
        let f60 = gepp_factor(&a0, 60).unwrap();
        assert_eq!(f1.ipiv, f8.ipiv);
        assert_eq!(f8.ipiv, f60.ipiv);
        assert!(f1.lu.max_abs_diff(&f8.lu) < 1e-10);
        assert!(f8.lu.max_abs_diff(&f60.lu) < 1e-10);
    }

    #[test]
    fn gepp_observer_sees_partial_pivoting_invariants() {
        use crate::instrument::PivotStats;
        let mut rng = StdRng::seed_from_u64(103);
        let a0 = gen::randn(&mut rng, 48, 48);
        let mut a = a0.clone();
        let mut stats = PivotStats::new(a0.max_abs());
        gepp_inplace(a.view_mut(), 12, &mut stats).unwrap();
        assert_eq!(stats.steps(), 48);
        assert!((stats.tau_min() - 1.0).abs() < 1e-14, "GEPP tau is identically 1");
        assert!(stats.max_l <= 1.0 + 1e-14);
    }

    #[test]
    fn gepp_rectangular_shapes() {
        let mut rng = StdRng::seed_from_u64(104);
        for &(m, n) in &[(40usize, 24usize), (24, 40)] {
            let a0 = gen::randn(&mut rng, m, n);
            let f = gepp_factor(&a0, 8).unwrap();
            assert_eq!(f.ipiv.len(), m.min(n));
            let perm = ipiv_to_perm(&f.ipiv, m);
            let pa = permute_rows(&a0, &perm);
            let l = f.lu.unit_lower();
            let u = f.lu.upper();
            let mut prod = Matrix::zeros(m, n);
            gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
            assert!(pa.max_abs_diff(&prod) < 1e-10, "{m}x{n}");
        }
    }
}
