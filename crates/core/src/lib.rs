//! # calu-core — CALU and TSLU with tournament pivoting
//!
//! The paper's primary contribution, in three execution flavors sharing one
//! set of numerics:
//!
//! * **Sequential reference** ([`calu`], [`tslu`], [`mod@tournament`]) — defines
//!   the algorithm: per panel, each of `p` block-rows elects `b` candidate
//!   pivot rows by GEPP, a binary tournament elects the `b` winners, the
//!   winners are swapped on top and the panel is factored *without*
//!   pivoting; then the usual `trsm`/`gemm` trailing update.
//! * **Shared-memory parallel** ([`par`], [`tiled`], [`rt`]) — both
//!   front-ends schedule on the `calu-runtime` task DAG (work-stealing
//!   executor, critical-path-first priorities); [`rt`] exposes the full
//!   engine with any lookahead depth, so the next panels' TSLUs overlap
//!   the bulk trailing updates (the paper's "multicore" future-work
//!   direction and HPL's look-ahead technique, Section 4); bitwise
//!   identical factors on every schedule.
//! * **Simulated-distributed** ([`dist`]) — the paper's actual setting: the
//!   2D block-cyclic layout on a `Pr x Pc` grid over `calu-netsim`, with
//!   TSLU as a butterfly all-reduce, plus the ScaLAPACK `PDGETRF`/`PDGETF2`
//!   baseline models, in both real-data and cost-skeleton modes.
//!
//! [`instrument::PivotStats`] plugs into any of them to collect the growth
//! factor, pivot thresholds, and `|L|` bounds of the stability study
//! (Section 6.1).
//!
//! Every flavor is generic over [`calu_matrix::Scalar`] (`f32`/`f64`,
//! default `f64`), and [`solve::ir_solve`] combines the two: CALU-factor
//! in `f32` on the task-graph runtime, then iteratively refine residuals
//! in `f64` until the HPL accuracy gate passes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calu;
pub mod comm;
pub mod dist;
pub mod dist_rt;
pub mod dist_threaded;
pub mod gepp;
pub mod instrument;
pub mod par;
pub mod rt;
pub mod serve;
pub mod solve;
pub mod tiled;
pub mod tournament;
pub mod tslu;

pub use calu::{calu_factor, calu_inplace, CaluOpts, LuFactors};
pub use calu_runtime::PanelMode;
pub use comm::{CommKind, Communicator, InProcessComm, MpiComm, ThreadedComm};
pub use dist_rt::{
    dist_calu_factor_rt, dist_pdgetrf_factor_rt, try_dist_calu_factor_rt,
    try_dist_pdgetrf_factor_rt, DistRtOpts, DistRtReport,
};
pub use gepp::{gepp_factor, gepp_inplace};
pub use instrument::PivotStats;
pub use par::{par_calu_factor, par_calu_inplace};
pub use rt::{
    runtime_calu_factor, runtime_calu_inplace, runtime_calu_tiles, runtime_calu_tiles_factor,
    RuntimeOpts,
};
pub use serve::{
    runtime_solve_mat, CacheStats, MatrixKey, ProcessReport, ServeOpts, SolverService, SubmitError,
    Ticket,
};
pub use solve::{ir_solve, ir_solve_batch, IrBatchReport, IrOpts, IrReport, IrStep, RefineInfo};
pub use tiled::{tiled_calu_factor, tiled_calu_inplace, tiled_calu_tiles};
pub use tournament::{reduce_pair, tournament, tournament_flat, Candidates};
pub use tslu::{tslu_factor, tslu_pivots, LocalLu, TsluResult};
