//! Tiled shared-memory CALU with lookahead — a thin front-end over the
//! [`calu-runtime`](calu_runtime) task DAG.
//!
//! The paper's future-work section (Section 7) asks about "the suitability
//! of the new ca-pivoting strategy for parallel LU on multicore
//! architectures"; the HPL benchmark it wants to adopt ca-pivoting uses a
//! *look-ahead* schedule. Historically this module hardwired a depth-1
//! lookahead around one `rayon::join`; it now builds the dependency DAG
//! (`Panel`/`Swap`/`Trsm`/`Gemm` tasks) and hands it to the runtime's
//! work-stealing executor with lookahead depth 1, which reproduces the
//! same schedule — while the bulk of the trailing matrix is still being
//! updated for panel `k`, the *next* panel's slice is updated first and
//! its TSLU runs concurrently, hiding the critical path behind the
//! `gemm` — and generalizes it (see [`crate::rt`] for deeper lookahead).
//!
//! Correctness hinges on one commutation: panel `k+1` elects its pivots
//! *before* the rest of the trailing matrix has them applied; applying
//! the row swaps to a block after its update is identical to updating the
//! permuted block, because the update `A22 -= L21·U12` touches rows
//! independently. In DAG form that is the anti-dependence edge from every
//! `Gemm(k, ·, ·)` to the first left-`Swap` of column `k`. The factors
//! are **bitwise identical** to sequential CALU (same tournament tree,
//! same per-column accumulation order), which the tests assert.

use crate::calu::{CaluOpts, LuFactors};
use crate::rt::{runtime_calu_inplace, runtime_calu_tiles, RuntimeOpts};
use calu_matrix::{MatViewMut, Matrix, NoObs, PivotObserver, Result, Scalar, TileMatrix};
use calu_runtime::ExecutorKind;

/// Factors a copy of `a` with lookahead-tiled CALU.
///
/// # Errors
/// Singular pivot (exact zero) at the reported absolute step.
pub fn tiled_calu_factor<T: Scalar>(a: &Matrix<T>, opts: CaluOpts) -> Result<LuFactors<T>> {
    let mut lu = a.clone();
    let ipiv = tiled_calu_inplace(lu.view_mut(), opts, &mut NoObs)?;
    Ok(LuFactors { lu, ipiv })
}

/// In-place lookahead-tiled CALU; same contract as
/// [`calu_inplace`](crate::calu::calu_inplace) (the observer's recorded
/// statistics are identical, though events for panel `k+1` may precede the
/// `on_stage` for panel `k`'s bulk update — [`crate::instrument::PivotStats`]
/// is order-free).
///
/// # Errors
/// [`Error::SingularPivot`](calu_matrix::Error::SingularPivot) with the
/// absolute elimination step.
pub fn tiled_calu_inplace<T: Scalar, O: PivotObserver<T> + Send>(
    a: MatViewMut<'_, T>,
    opts: CaluOpts,
    obs: &mut O,
) -> Result<Vec<usize>> {
    let rt = RuntimeOpts {
        lookahead: 1,
        executor: ExecutorKind::Threaded { threads: 0 },
        parallel_panel: false,
    };
    let (ipiv, _report) = runtime_calu_inplace(a, opts, rt, obs)?;
    Ok(ipiv)
}

/// [`tiled_calu_inplace`] over **tile-major** storage: the same depth-1
/// lookahead schedule on the threaded executor, with task bodies
/// addressing cache-contained tiles of a [`TileMatrix`] instead of
/// strided slices of a flat matrix (see
/// [`runtime_calu_tiles`] for the full
/// engine with executor/depth control). Factors convert back bitwise
/// identical to [`calu_inplace`](crate::calu::calu_inplace).
///
/// # Panics
/// If `a`'s tile dimensions differ from `opts.block`.
///
/// # Errors
/// [`Error::SingularPivot`](calu_matrix::Error::SingularPivot) with the
/// absolute elimination step.
pub fn tiled_calu_tiles<T: Scalar, O: PivotObserver<T> + Send>(
    a: &mut TileMatrix<T>,
    opts: CaluOpts,
    obs: &mut O,
) -> Result<Vec<usize>> {
    let rt = RuntimeOpts {
        lookahead: 1,
        executor: ExecutorKind::Threaded { threads: 0 },
        parallel_panel: false,
    };
    let (ipiv, _report) = runtime_calu_tiles(a, opts, rt, obs)?;
    Ok(ipiv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calu::calu_factor;
    use crate::instrument::PivotStats;
    use calu_matrix::{gen, Error};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tiled_matches_sequential_bitwise() {
        let mut rng = StdRng::seed_from_u64(131);
        for &(m, n, b, p) in &[
            (96usize, 96usize, 16usize, 4usize),
            (130, 130, 32, 8),
            (64, 64, 64, 4), // single panel: no lookahead at all
            (100, 60, 16, 4),
            (60, 100, 16, 4),
            (97, 97, 16, 3), // ragged tiles
        ] {
            let a0: Matrix = gen::randn(&mut rng, m, n);
            let opts = CaluOpts { block: b, p, ..Default::default() };
            let seq = calu_factor(&a0, opts).unwrap();
            let tiled = tiled_calu_factor(&a0, opts).unwrap();
            assert_eq!(seq.ipiv, tiled.ipiv, "{m}x{n} b={b} p={p}");
            assert_eq!(
                seq.lu.max_abs_diff(&tiled.lu),
                0.0,
                "{m}x{n} b={b} p={p}: factors must be bitwise identical"
            );
        }
    }

    #[test]
    fn tiled_tiles_matches_sequential_bitwise() {
        let mut rng = StdRng::seed_from_u64(135);
        for &(m, n, b, p) in
            &[(96usize, 96usize, 16usize, 4usize), (97, 97, 16, 3), (60, 100, 16, 4)]
        {
            let a0: Matrix = gen::randn(&mut rng, m, n);
            let opts = CaluOpts { block: b, p, ..Default::default() };
            let seq = calu_factor(&a0, opts).unwrap();
            let mut tiles = TileMatrix::from_matrix(&a0, b, b);
            let ipiv = tiled_calu_tiles(&mut tiles, opts, &mut NoObs).unwrap();
            assert_eq!(seq.ipiv, ipiv, "{m}x{n} b={b} p={p}");
            assert_eq!(seq.lu.max_abs_diff(&tiles.to_matrix()), 0.0, "{m}x{n} b={b} p={p}");
        }
    }

    #[test]
    fn tiled_observer_stats_match_sequential() {
        let mut rng = StdRng::seed_from_u64(132);
        let a0 = gen::randn(&mut rng, 120, 120);
        let opts = CaluOpts { block: 24, p: 4, ..Default::default() };

        let mut s_seq = PivotStats::new(a0.max_abs());
        let mut w = a0.clone();
        crate::calu::calu_inplace(w.view_mut(), opts, &mut s_seq).unwrap();

        let mut s_tiled = PivotStats::new(a0.max_abs());
        let mut w2 = a0.clone();
        tiled_calu_inplace(w2.view_mut(), opts, &mut s_tiled).unwrap();

        assert_eq!(s_seq.steps(), s_tiled.steps());
        assert_eq!(s_seq.tau_min(), s_tiled.tau_min(), "order-free stats must agree exactly");
        assert_eq!(s_seq.max_elem, s_tiled.max_elem);
        assert_eq!(s_seq.max_l, s_tiled.max_l);
    }

    #[test]
    fn tiled_solves_correctly() {
        let mut rng = StdRng::seed_from_u64(133);
        let n = 150;
        let a = gen::randn(&mut rng, n, n);
        let xt: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let b = gen::rhs_for_solution(&a, &xt);
        let f = tiled_calu_factor(&a, CaluOpts { block: 32, p: 4, ..Default::default() }).unwrap();
        let x = f.solve(&b);
        for (got, want) in x.iter().zip(&xt) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn tiled_singular_reports_absolute_step() {
        // Rank-1 matrix: the second elimination step must fail whether it
        // is discovered in the looked-ahead panel or the first one.
        let n = 32;
        let a = Matrix::from_fn(n, n, |i, j| ((i + 1) * (j + 1)) as f64);
        let err =
            tiled_calu_factor(&a, CaluOpts { block: 8, p: 4, ..Default::default() }).unwrap_err();
        match err {
            Error::SingularPivot { step } => assert!(step >= 1 && step < n, "step {step}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn tiled_block_bigger_than_matrix() {
        let mut rng = StdRng::seed_from_u64(134);
        let a0: Matrix = gen::randn(&mut rng, 40, 40);
        let opts = CaluOpts { block: 64, p: 4, ..Default::default() };
        let seq = calu_factor(&a0, opts).unwrap();
        let tiled = tiled_calu_factor(&a0, opts).unwrap();
        assert_eq!(seq.ipiv, tiled.ipiv);
        assert_eq!(seq.lu.max_abs_diff(&tiled.lu), 0.0);
    }
}
