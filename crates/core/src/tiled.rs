//! Tiled shared-memory CALU with depth-1 lookahead.
//!
//! The paper's future-work section (Section 7) asks about "the suitability
//! of the new ca-pivoting strategy for parallel LU on multicore
//! architectures"; the HPL benchmark it wants to adopt ca-pivoting uses a
//! *look-ahead* schedule. This module combines both: while the bulk of the
//! trailing matrix is still being updated for panel `k`, the *next* panel's
//! slice is updated first and its TSLU runs concurrently, so the panel
//! factorization — the critical path of right-looking LU (paper Section 7)
//! — is hidden behind the `gemm`.
//!
//! Correctness hinges on one commutation: panel `k+1` elects and applies
//! its pivots *before* the rest of the trailing matrix has them applied;
//! applying the row swaps to a block after its update is identical to
//! updating the permuted block, because the update `A22 -= L21·U12`
//! touches rows independently. The factors are **bitwise identical** to
//! sequential CALU (same tournament tree, same per-column accumulation
//! order), which the tests assert.

use crate::calu::{CaluOpts, LuFactors};
use crate::tslu::{tslu_factor, TsluResult};
use calu_matrix::blas3::{gemm, par_gemm, trsm};
use calu_matrix::perm::apply_ipiv;
use calu_matrix::{Diag, Error, MatViewMut, Matrix, NoObs, PivotObserver, Result, Side, Uplo};

/// Factors a copy of `a` with lookahead-tiled CALU.
///
/// # Errors
/// Singular pivot (exact zero) at the reported absolute step.
pub fn tiled_calu_factor(a: &Matrix, opts: CaluOpts) -> Result<LuFactors> {
    let mut lu = a.clone();
    let ipiv = tiled_calu_inplace(lu.view_mut(), opts, &mut NoObs)?;
    Ok(LuFactors { lu, ipiv })
}

fn shift_step(k: usize) -> impl Fn(Error) -> Error {
    move |e| match e {
        Error::SingularPivot { step } => Error::SingularPivot { step: step + k },
        other => other,
    }
}

/// In-place lookahead-tiled CALU; same contract as
/// [`calu_inplace`](crate::calu::calu_inplace) (the observer's recorded
/// statistics are identical, though events for panel `k+1` may precede the
/// `on_stage` for panel `k`'s bulk update — [`crate::instrument::PivotStats`]
/// is order-free).
///
/// # Errors
/// [`Error::SingularPivot`] with the absolute elimination step.
pub fn tiled_calu_inplace<O: PivotObserver + Send>(
    mut a: MatViewMut<'_>,
    opts: CaluOpts,
    obs: &mut O,
) -> Result<Vec<usize>> {
    let (m, n) = (a.rows(), a.cols());
    let kn = m.min(n);
    assert!(opts.block > 0 && opts.p > 0, "block and p must be positive");
    let nb = opts.block;
    let mut ipiv = vec![0usize; kn];

    // Panel factored ahead during the previous iteration's join.
    let mut pending: Option<TsluResult> = None;

    let mut k = 0;
    while k < kn {
        let jb = nb.min(kn - k);

        // --- 1. Panel k: either looked-ahead already, or factor now.
        let r = match pending.take() {
            Some(r) => r,
            None => {
                let panel = a.submatrix_mut(k, k, m - k, jb);
                tslu_factor(panel, opts.p, opts.local, obs).map_err(shift_step(k))?
            }
        };
        ipiv[k..k + jb].copy_from_slice(&r.ipiv);

        // --- 2. Apply the panel's swaps to every other column. All of them
        // are fully updated through panel k-1 at this point (the previous
        // join completed), so the deferred application is exact.
        let local = r.ipiv;
        if k > 0 {
            apply_ipiv(a.submatrix_mut(k, 0, m - k, k), &local);
        }
        if k + jb < n {
            apply_ipiv(a.submatrix_mut(k, k + jb, m - k, n - k - jb), &local);
        }
        for p in ipiv[k..k + jb].iter_mut() {
            *p += k;
        }

        // --- 3. U12 row + trailing update, with the next panel's slice
        // updated first and its TSLU overlapped with the bulk gemm.
        if k + jb < n {
            let (left, right) = a.rb_mut().split_at_col_mut(k + jb);
            let right = right.into_submatrix(k, 0, m - k, n - k - jb);
            let (mut u12, mut a22) = right.split_at_row_mut(jb);
            let l11 = left.submatrix(k, k, jb, jb);
            trsm(Side::Left, Uplo::Lower, Diag::Unit, 1.0, l11, u12.rb_mut());

            if k + jb < m {
                let l21 = left.submatrix(k + jb, k, m - k - jb, jb);
                let u12v = u12.as_view();

                // Width of panel k+1 (0 when this is the last panel).
                let next_jb = if k + jb < kn { nb.min(kn - k - jb) } else { 0 };
                let lookahead = next_jb > 0 && a22.cols() > next_jb;

                if lookahead {
                    let (next_u, rest_u) = u12v.split_at_col(next_jb);
                    let (mut next_c, mut rest_c) = a22.rb_mut().split_at_col_mut(next_jb);
                    let next_k = k + jb;
                    let (ahead, ()) = rayon::join(
                        || -> Result<TsluResult> {
                            // Critical path: bring panel k+1 up to date,
                            // observe the stage, factor it.
                            gemm(-1.0, l21, next_u, 1.0, next_c.rb_mut());
                            obs.on_stage(&next_c.as_view());
                            tslu_factor(next_c.rb_mut(), opts.p, opts.local, obs)
                                .map_err(shift_step(next_k))
                        },
                        || par_gemm(-1.0, l21, rest_u, 1.0, rest_c.rb_mut()),
                    );
                    obs.on_stage(&rest_c.as_view());
                    pending = Some(ahead?);
                } else {
                    // Last panel or no "rest": plain update.
                    if opts.parallel_update {
                        par_gemm(-1.0, l21, u12v, 1.0, a22.rb_mut());
                    } else {
                        gemm(-1.0, l21, u12v, 1.0, a22.rb_mut());
                    }
                    obs.on_stage(&a22.as_view());
                }
            }
        }
        k += jb;
    }
    Ok(ipiv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calu::calu_factor;
    use crate::instrument::PivotStats;
    use crate::tslu::LocalLu;
    use calu_matrix::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tiled_matches_sequential_bitwise() {
        let mut rng = StdRng::seed_from_u64(131);
        for &(m, n, b, p) in &[
            (96usize, 96usize, 16usize, 4usize),
            (130, 130, 32, 8),
            (64, 64, 64, 4), // single panel: no lookahead at all
            (100, 60, 16, 4),
            (60, 100, 16, 4),
            (97, 97, 16, 3), // ragged tiles
        ] {
            let a0 = gen::randn(&mut rng, m, n);
            let opts = CaluOpts { block: b, p, local: LocalLu::Recursive, parallel_update: false };
            let seq = calu_factor(&a0, opts).unwrap();
            let tiled = tiled_calu_factor(&a0, opts).unwrap();
            assert_eq!(seq.ipiv, tiled.ipiv, "{m}x{n} b={b} p={p}");
            assert_eq!(
                seq.lu.max_abs_diff(&tiled.lu),
                0.0,
                "{m}x{n} b={b} p={p}: factors must be bitwise identical"
            );
        }
    }

    #[test]
    fn tiled_observer_stats_match_sequential() {
        let mut rng = StdRng::seed_from_u64(132);
        let a0 = gen::randn(&mut rng, 120, 120);
        let opts = CaluOpts { block: 24, p: 4, ..Default::default() };

        let mut s_seq = PivotStats::new(a0.max_abs());
        let mut w = a0.clone();
        crate::calu::calu_inplace(w.view_mut(), opts, &mut s_seq).unwrap();

        let mut s_tiled = PivotStats::new(a0.max_abs());
        let mut w2 = a0.clone();
        tiled_calu_inplace(w2.view_mut(), opts, &mut s_tiled).unwrap();

        assert_eq!(s_seq.steps(), s_tiled.steps());
        assert_eq!(s_seq.tau_min(), s_tiled.tau_min(), "order-free stats must agree exactly");
        assert_eq!(s_seq.max_elem, s_tiled.max_elem);
        assert_eq!(s_seq.max_l, s_tiled.max_l);
    }

    #[test]
    fn tiled_solves_correctly() {
        let mut rng = StdRng::seed_from_u64(133);
        let n = 150;
        let a = gen::randn(&mut rng, n, n);
        let xt: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let b = gen::rhs_for_solution(&a, &xt);
        let f = tiled_calu_factor(&a, CaluOpts { block: 32, p: 4, ..Default::default() }).unwrap();
        let x = f.solve(&b);
        for (got, want) in x.iter().zip(&xt) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn tiled_singular_reports_absolute_step() {
        // Rank-1 matrix: the second elimination step must fail whether it
        // is discovered in the looked-ahead panel or the first one.
        let n = 32;
        let a = Matrix::from_fn(n, n, |i, j| ((i + 1) * (j + 1)) as f64);
        let err =
            tiled_calu_factor(&a, CaluOpts { block: 8, p: 4, ..Default::default() }).unwrap_err();
        match err {
            Error::SingularPivot { step } => assert!(step >= 1 && step < n, "step {step}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn tiled_block_bigger_than_matrix() {
        let mut rng = StdRng::seed_from_u64(134);
        let a0 = gen::randn(&mut rng, 40, 40);
        let opts = CaluOpts { block: 64, p: 4, ..Default::default() };
        let seq = calu_factor(&a0, opts).unwrap();
        let tiled = tiled_calu_factor(&a0, opts).unwrap();
        assert_eq!(seq.ipiv, tiled.ipiv);
        assert_eq!(seq.lu.max_abs_diff(&tiled.lu), 0.0);
    }
}
