//! Runtime-driven distributed CALU / `PDGETRF`: each rank's per-step work
//! is emitted as a `calu-runtime` DAG ([`LuDag::build_dist`]) instead of
//! the hand-written SPMD step loop, so lookahead depth and critical-path
//! scheduling — long available to the shared-memory layer — apply to the
//! distributed setting too.
//!
//! The runner binds real kernels over **all** ranks' block-cyclic
//! [`TileMatrix`] storage at once (the simulation's shared memory): every
//! task touches exactly the tiles its owning rank would touch, cross-rank
//! data flows through a mailbox of `f64`-word payloads keyed per message
//! (the same payload convention `calu-netsim` sends over channels —
//! `T ↔ f64` round trips are exact for every [`Scalar`]), and the DAG's
//! edges are the proof that concurrently running tasks touch disjoint
//! elements. Because each task replays the exact arithmetic of the SPMD
//! sweep ([`dist_calu_factor_spmd`](crate::dist::dist_calu_factor_spmd) /
//! [`dist_pdgetrf_factor_spmd`](crate::dist::dist_pdgetrf_factor_spmd)),
//! factors are **bitwise identical** to the pre-refactor distributed
//! implementations on any schedule, any executor, any lookahead depth —
//! the property tests assert it.
//!
//! # Failure semantics
//!
//! A singular pivot (exactly zero, or non-finite) on any rank fails its
//! task; the executor cancels every dependent task **across ranks** (no
//! hang — dependents simply never start) and the driver surfaces the
//! absolute elimination step as [`DistFactors::first_singular`], matching
//! the step the sequential references error at. Unlike the SPMD loop,
//! which marches on LAPACK-INFO-style, the canceled factors beyond that
//! step are untouched — the leading part is still meaningful.
//!
//! # Reports
//!
//! Execution is instant shared-memory compute; the *communication* story
//! is modeled: [`DistRtReport`] carries the per-rank modeled schedule
//! ([`simulate_dist_schedule`] under a [`DistCostModel`]) as netsim
//! [`RankTrace`]s — compute and communication of all ranks in one Gantt —
//! plus a synthesized [`SimReport`] and the wall-clock [`ExecReport`] of
//! whichever executor actually ran the tasks.

use std::sync::Arc;

use crate::comm::{
    CommKind, Communicator, InProcessComm, MpiComm, MAIL_ACC as ACC, MAIL_PAN as PAN,
    MAIL_PIV as PIV, MAIL_U12 as U12, MAIL_WBK as WBK,
};
use crate::dist::{assemble_2d, DistCaluConfig, DistFactors, DistPdgetrfConfig};
use crate::tournament::{reduce_pair, Candidates};
use crate::tslu::{local_candidates, winners_to_ipiv, LocalLu};
use calu_matrix::blas1::scal;
use calu_matrix::blas2::ger;
use calu_matrix::blas3::{gemm, trsm};
use calu_matrix::lapack::lu_nopiv;
use calu_matrix::scalar::cast_slice;
use calu_matrix::{
    Diag, Error, MatViewMut, Matrix, NoObs, Result, Scalar, Side, TileLayout, TileMatrix, Uplo,
};
use calu_netsim::{MachineConfig, RankTrace, SimReport};
use calu_obs::{CommDelta, CommLedger, CommLedgerReport, CommTerm, Recorder, Span};
use calu_runtime::{
    expected_mailbox_comm, modeled_comm_terms, simulate_dist_schedule, tslu_acc_slot,
    tslu_leg_count, tslu_leg_role, DistCostModel, DistGeom, DistKind, DistPanelAlg, DistTask,
    ExecReport, ExecutorKind, LegRole, LuDag, LuShape, Task, TaskRunner,
};

/// How a runtime-driven distributed factorization should execute.
#[derive(Debug, Clone, Copy)]
pub struct DistRtOpts {
    /// Panel lookahead depth `d ≥ 1` — for the first time a real parameter
    /// of the distributed algorithm (depth 1 reproduces the step-coupled
    /// schedule of the SPMD loop's data flow).
    pub lookahead: usize,
    /// Which executor drives the DAG. The serial executor replays the
    /// deterministic critical-path order; the threaded executor runs
    /// ranks' tasks concurrently (factors are bitwise identical either
    /// way). Under the [`CommKind::Threaded`] communicator the rank
    /// threads *are* the parallelism and this field is ignored.
    pub executor: ExecutorKind,
    /// Which [`Communicator`] moves cross-rank payloads:
    /// [`CommKind::InProcess`] (the shared mailbox, behavior-preserving
    /// default), [`CommKind::Threaded`] (ranks as OS threads over
    /// per-rank channels), or [`CommKind::Mpi`] (the error-returning
    /// stub). Factors are bitwise identical under every supported
    /// backend.
    pub communicator: CommKind,
}

impl Default for DistRtOpts {
    fn default() -> Self {
        Self { lookahead: 1, executor: ExecutorKind::Serial, communicator: CommKind::InProcess }
    }
}

/// What a runtime-driven distributed factorization did: the modeled
/// per-rank communication schedule plus the real execution record.
#[derive(Debug, Clone)]
pub struct DistRtReport {
    /// Synthesized per-rank accounting (modeled compute / α / β / idle
    /// times, message and word counts) in `run_sim` report form.
    pub sim: SimReport,
    /// Modeled per-rank timelines — compute, communication, and idle of
    /// all ranks in one trace, ready for `calu_netsim::render_gantt`.
    pub traces: Vec<RankTrace>,
    /// Wall-clock record of the executor run (empty when a singular pivot
    /// canceled the run).
    pub exec: ExecReport,
    /// Modeled critical path of the DAG (infinite parallelism bound).
    pub critical_path: f64,
    /// Modeled makespan of the per-rank schedule (what the Gantt shows).
    pub makespan: f64,
    /// Task count of the DAG.
    pub tasks: usize,
    /// **Measured** communication ledger: every mailbox post/arrival and
    /// cross-owner pivot-row exchange the runner actually performed,
    /// counted per rank and per term, plus the end-of-run drain counters
    /// (`drained_words` is nonzero on success — the lookahead eviction
    /// horizon keeps the last window's payloads alive; `residual_words`
    /// is the leak detector, always 0).
    pub comm: CommLedgerReport,
    /// **Exact** expected mailbox traffic of this DAG
    /// ([`expected_mailbox_comm`]): candidate counts simulated through the
    /// butterfly, broadcast payloads from geometry. The measured ledger
    /// equals it term-for-term — [`Self::mailbox_deltas`] asserts so in
    /// the reconciliation tests.
    pub expected_mailbox: Vec<CommTerm>,
    /// **First-order** skeleton predictions ([`modeled_comm_terms`]): the
    /// [`DistCostModel`] word/message counts the paper's closed forms
    /// price. [`Self::skeleton_deltas`] quantifies the gap to the wire.
    pub modeled_terms: Vec<CommTerm>,
    /// Wall-clock spans of every executed task (pid = rank, tid =
    /// worker), ready for [`calu_obs::chrome_trace`] export. On a
    /// canceled run (singular pivot) the tasks that completed before
    /// cancellation are still present.
    pub spans: Vec<Span>,
    /// Stable name of the [`Communicator`] that moved the payloads
    /// (`"in_process"` or `"threaded"`).
    pub communicator: &'static str,
}

impl DistRtReport {
    /// Measured mailbox ledger vs the exact predictor — every delta whose
    /// source is `"mailbox_exact"` is exact on a successful run; the
    /// `swap` term surfaces as unmodeled (pivot-row exchanges move
    /// elements directly between rank storages, never via the mailbox).
    pub fn mailbox_deltas(&self) -> Vec<CommDelta> {
        self.comm.reconcile(&self.expected_mailbox)
    }

    /// Measured ledger vs the paper's skeleton: per-term word/message
    /// gaps quantifying how far the first-order closed forms sit from
    /// the wire (full-width TSLU payloads on ragged steps, modeled
    /// `panel_getf2`/`swap` rounds vs data-dependent reality).
    pub fn skeleton_deltas(&self) -> Vec<CommDelta> {
        self.comm.reconcile(&self.modeled_terms)
    }

    /// This report's headline numbers in the standard [`calu_obs::Metrics`]
    /// snapshot form (the same vocabulary `SolverService` reports in):
    /// mailbox drain counters, total words/messages, fetch-wait totals
    /// (overall and per ledger term), and a per-rank wait-seconds
    /// histogram. Deterministic for a deterministic report.
    pub fn metrics_snapshot(&self) -> calu_obs::JsonValue {
        let m = calu_obs::Metrics::new();
        m.counter_add("dist.tasks", self.tasks as u64);
        m.counter_add("dist.executed", self.exec.order.len() as u64);
        m.counter_add("dist.mailbox_drained_words", self.comm.drained_words);
        m.counter_add("dist.mailbox_residual_words", self.comm.residual_words);
        let total = self.comm.total();
        m.counter_add("dist.comm.words", total.words);
        m.counter_add("dist.comm.msgs", total.msgs);
        m.counter_add("dist.fetch_wait_ns", self.comm.wait_total_ns());
        for (term, nanos) in self.comm.wait_term_totals() {
            m.counter_add(&format!("dist.fetch_wait_ns.{term}"), nanos);
        }
        for (_rank, nanos) in self.comm.wait_rank_totals() {
            m.observe("dist.rank_fetch_wait_s", nanos as f64 / 1e9);
        }
        m.gauge_set("dist.workers", self.exec.workers as f64);
        m.gauge_set("dist.wall_s", self.exec.wall);
        m.snapshot()
    }
}

// ---------------------------------------------------------------------------
// Shared-mutable cells
// ---------------------------------------------------------------------------

/// Shared-mutable handle to one rank's local [`TileMatrix`] — the
/// per-rank counterpart of `rt`'s `SharedTiles`. The DAG's edges prove
/// that concurrently running tasks touch disjoint elements. (The
/// rank-thread driver in [`crate::dist_threaded`] reuses it with a
/// stronger guarantee: one thread owns the whole matrix.)
pub(crate) struct RankCell<T> {
    ptr: *mut T,
    pub(crate) lay: TileLayout,
}

unsafe impl<T: Send> Send for RankCell<T> {}
unsafe impl<T: Sync> Sync for RankCell<T> {}

impl<T: Scalar> RankCell<T> {
    pub(crate) fn new(a: &mut TileMatrix<T>) -> Self {
        Self { ptr: a.as_mut_slice().as_mut_ptr(), lay: a.layout() }
    }

    /// Local rows of this rank.
    pub(crate) fn rows(&self) -> usize {
        self.lay.rows()
    }

    /// # Safety
    /// The caller's task must hold (via DAG ordering) access to the
    /// element.
    pub(crate) unsafe fn get(&self, li: usize, lj: usize) -> T {
        unsafe { *self.ptr.add(self.lay.elem_offset(li, lj)) }
    }

    /// # Safety
    /// The caller's task must hold exclusive access to the element.
    pub(crate) unsafe fn set(&self, li: usize, lj: usize, v: T) {
        unsafe { *self.ptr.add(self.lay.elem_offset(li, lj)) = v };
    }

    /// Mutable view of the `nr × nc` block at `(i0, j0)` inside tile
    /// `(ti, tj)`; built from raw parts so logically disjoint blocks never
    /// materialize overlapping `&mut` slices.
    ///
    /// # Safety
    /// The caller's task must hold exclusive element access via DAG
    /// ordering, and the block must be in range of the tile.
    pub(crate) unsafe fn tile_block(
        &self,
        ti: usize,
        tj: usize,
        i0: usize,
        j0: usize,
        nr: usize,
        nc: usize,
    ) -> MatViewMut<'_, T> {
        let h = self.lay.tile_height(ti);
        debug_assert!(i0 + nr <= h && j0 + nc <= self.lay.tile_width(tj));
        let off = self.lay.tile_offset(ti, tj) + j0 * h + i0;
        unsafe { MatViewMut::from_raw_parts(self.ptr.add(off), nr, nc, h) }
    }
}

/// Shared pivot vector (the `rt` module's cell, re-stated): the single
/// designated panel task writes each step's slots exclusively; nothing
/// reads them until assembly.
pub(crate) struct IpivCell {
    pub(crate) ptr: *mut usize,
    pub(crate) len: usize,
}

unsafe impl Send for IpivCell {}
unsafe impl Sync for IpivCell {}

impl IpivCell {
    /// # Safety
    /// Only the designated panel task of the step owning `base..` may
    /// call this, and nothing else may access the range concurrently.
    pub(crate) unsafe fn publish(&self, base: usize, local: &[usize]) {
        debug_assert!(base + local.len() <= self.len);
        for (i, &p) in local.iter().enumerate() {
            unsafe { *self.ptr.add(base + i) = base + p };
        }
    }
}

// ---------------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------------

/// Binds the distributed kernels to runtime tasks over all ranks' tiles.
struct DistRunner<T> {
    geom: DistGeom,
    glayout: TileLayout,
    alg: DistPanelAlg,
    local: LocalLu,
    /// The DAG's lookahead depth — the eviction horizon of the mailbox.
    lookahead: usize,
    cells: Vec<RankCell<T>>,
    ipiv: IpivCell,
    /// The communicator seam, carrying cross-rank payloads `Arc`d so
    /// consumers read without copying. This runner drives the shared
    /// [`InProcessComm`] mailbox (held as a trait object so the seam the
    /// rank-thread driver crosses is exercised here too): keys are unique
    /// per message, the DAG orders every post before its fetches, no
    /// payload is read across steps, and the panel throttle proves old
    /// steps complete, so [`Self::evict_completed_steps`] bounds the
    /// mailbox to the lookahead window.
    comm: Box<dyn Communicator>,
    /// Measured communication: every mailbox send/arrival and cross-owner
    /// pivot-row exchange, counted per rank per term as it happens.
    ledger: CommLedger,
}

impl<T: Scalar> DistRunner<T> {
    fn cell(&self, prow: usize, pcol: usize) -> &RankCell<T> {
        &self.cells[pcol * self.geom.pr + prow]
    }

    fn nb(&self) -> usize {
        self.geom.shape.nb
    }

    /// Posts to the shared mailbox: `from`/destinations are implicit (the
    /// DAG is the wire), so the seam's routing arguments stay empty.
    fn post(&self, class: u8, k: usize, j: usize, who: usize, data: Vec<f64>) {
        let key = (class, k as u32, j as u32, who as u32);
        self.comm.post(0, key, data, &[]).expect("the in-process mailbox cannot refuse a post");
    }

    fn fetch(&self, class: u8, k: usize, j: usize, who: usize) -> Arc<Vec<f64>> {
        let key = (class, k as u32, j as u32, who as u32);
        self.comm.fetch(0, key).expect("the in-process mailbox cannot refuse a fetch")
    }

    /// The accumulator process row `r` reads after `l` butterfly legs —
    /// keyed by [`tslu_acc_slot`], the same slot algebra the DAG builder's
    /// edge endpoints use, so mailbox keys and edges cannot drift apart.
    fn fetch_acc(&self, k: usize, l: usize, r: usize) -> Candidates<T> {
        Candidates::from_payload(&self.fetch(ACC, k, tslu_acc_slot(self.geom.pr, l, r), r))
    }

    /// [`Self::fetch_acc`] for a *partner's* accumulator — the one fetch
    /// in the butterfly that crosses ranks, i.e. the wire. The transfer is
    /// ledgered here, at the consuming fetch (DAG-ordered after the
    /// producer's post, so the payload length is exact on any schedule),
    /// and attributed to the sending rank — which is precisely the leg's
    /// send-role side (`Exchange` partners fetch each other, a
    /// `FoldCombine` fetches its `FoldSend`, a `FoldRecv` its `FoldOut`),
    /// so per-rank totals match the cost model's send accounting. The
    /// send-half tasks themselves are no-op injection markers and cannot
    /// be measured directly: their only DAG ordering against the producer
    /// runs through this receiving task.
    fn fetch_acc_wire(&self, k: usize, l: usize, r: usize) -> Candidates<T> {
        let raw = self.fetch(ACC, k, tslu_acc_slot(self.geom.pr, l, r), r);
        let sender = self.geom.rank(r, self.geom.pcol_of(k));
        self.ledger.record_send(sender as u32, "tslu_leg", raw.len() as u64);
        Candidates::from_payload(&raw)
    }

    /// Exchanges (or locally swaps) global rows `r1 != r2` across the
    /// local columns `cols` of every rank in process column `pcol` — the
    /// same element moves as the SPMD `swap_global_rows` (whose `f64`
    /// round trip is exact, so direct copies are bitwise identical).
    ///
    /// # Safety
    /// The calling task must own both rows over `cols` on this process
    /// column (DAG-ordered against every other toucher).
    unsafe fn swap_rows(&self, pcol: usize, r1: usize, r2: usize, cols: std::ops::Range<usize>) {
        debug_assert!(r1 != r2);
        let o1 = self.glayout.row_owner(r1);
        let o2 = self.glayout.row_owner(r2);
        let (l1, l2) = (self.glayout.local_row(r1), self.glayout.local_row(r2));
        if o1 == o2 {
            let c = self.cell(o1, pcol);
            for lj in cols {
                unsafe {
                    let a = c.get(l1, lj);
                    c.set(l1, lj, c.get(l2, lj));
                    c.set(l2, lj, a);
                }
            }
        } else {
            let (c1, c2) = (self.cell(o1, pcol), self.cell(o2, pcol));
            for lj in cols {
                unsafe {
                    let a = c1.get(l1, lj);
                    c1.set(l1, lj, c2.get(l2, lj));
                    c2.set(l2, lj, a);
                }
            }
        }
    }

    /// Local column range of block column `j` on its owning process
    /// column, restricted to the columns step `k`'s swap touches.
    fn swap_cols(&self, k: usize, j: usize) -> std::ops::Range<usize> {
        let b = self.nb();
        let c0 = self.glayout.local_cols_below(self.geom.pcol_of(j), j * b);
        let wj = self.geom.wj(j);
        match self.alg {
            DistPanelAlg::Tslu => c0..c0 + wj,
            DistPanelAlg::Getf2 => {
                if j == k {
                    c0 + self.geom.jb(k)..c0 + wj
                } else {
                    c0..c0 + wj
                }
            }
        }
    }

    /// Packs local elements column-major as `f64` words, exactly like the
    /// SPMD payloads.
    ///
    /// # Safety
    /// The calling task must be ordered after the last writer of the
    /// range.
    unsafe fn pack(
        &self,
        cell: &RankCell<T>,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> Vec<f64> {
        let mut v = Vec::with_capacity(rows.len() * cols.len());
        for lj in cols {
            v.extend(rows.clone().map(|li| unsafe { cell.get(li, lj) }.to_f64()));
        }
        v
    }

    // -- task bodies --------------------------------------------------------

    /// Drops every payload of steps the lookahead throttle proves
    /// complete: a panel task of step `k` carries edges from *all* tasks
    /// of step `k − d − 1` (and, inductively through the panel chain, of
    /// every earlier step), and no task reads mail posted by another
    /// step — so payloads with step `≤ k − d − 1` are dead. Keeps the
    /// mailbox's footprint proportional to the lookahead window instead
    /// of the whole factorization.
    fn evict_completed_steps(&self, k: usize) {
        if k > self.lookahead {
            let cutoff = (k - self.lookahead - 1) as u32;
            self.comm.evict_before(0, cutoff);
        }
    }

    /// Empties the mailbox and returns how many payload words were still
    /// posted. Called by the driver once the executor returns — on the
    /// success path (the last lookahead window's payloads are still
    /// resident) and, crucially, after a cancellation, where payloads
    /// posted for recv tasks that were canceled have no remaining reader
    /// and would leak for the runner's lifetime. (Every [`Communicator`]
    /// lock site recovers from poisoning — drain runs during shutdown,
    /// where a panicked task must not block the cleanup.)
    fn drain_mailbox(&self) -> usize {
        self.comm.drain()
    }

    /// Payload words currently posted (the post-drain residual check).
    fn mailbox_words(&self) -> usize {
        self.comm.residual_words()
    }

    /// Words of one posted payload — 0 if the slot is absent. Used by the
    /// ledger to measure what actually sits in the mailbox (every peeked
    /// slot is a DAG ancestor of the peeking task, so it cannot race with
    /// its producer, and the current step is never evicted).
    fn mail_len(&self, class: u8, k: usize, j: usize, who: usize) -> usize {
        self.comm.peek_words(0, (class, k as u32, j as u32, who as u32))
    }

    /// Ledger entry for one completed communication task — the measured
    /// side of the reconciliation against [`expected_mailbox_comm`] /
    /// [`modeled_comm_terms`]. Terms mirror
    /// [`calu_runtime::dist_comm_term`] exactly: broadcast payloads are
    /// counted once per receiver, measured from the payload actually in
    /// the mailbox. Pure sends (`PivSend`/`WSend`/`PanelSend`/`USend`)
    /// are transit in the cost model and carry no mailbox arrival of
    /// their own, so — like the model — they add nothing here; the
    /// `tslu_leg` and `swap` terms are recorded where their transfers
    /// happen, in [`Self::fetch_acc_wire`] and [`Self::run_swap`].
    fn account(&self, kind: DistKind, k: usize, j: usize, rank: usize, prow: usize) {
        let g = &self.geom;
        let rank = rank as u32;
        match kind {
            DistKind::PivRecv => {
                // The canonical PIV slot may not be posted yet (this
                // receiver's only mailbox dependence is its own process
                // row's no-op send) — but the list is always jb entries.
                self.ledger.record_recv(rank, "piv_bcast", g.jb(k) as u64);
            }
            DistKind::PanelRecv => {
                let words = self.mail_len(PAN, k, 0, prow);
                self.ledger.record_recv(rank, "panel_bcast", words as u64);
            }
            DistKind::URecv => {
                let words = self.mail_len(U12, k, j, 0);
                self.ledger.record_recv(rank, "u_bcast", words as u64);
            }
            DistKind::Second if prow != g.cprow(k) => {
                let words = self.mail_len(WBK, k, 0, 0);
                self.ledger.record_recv(rank, "w_bcast", words as u64);
            }
            _ => {}
        }
    }

    fn run_cand(&self, k: usize, prow: usize) -> Result<()> {
        self.evict_completed_steps(k);
        let g = &self.geom;
        let (gk, jb) = (k * self.nb(), g.jb(k));
        let cpcol = g.pcol_of(k);
        let cell = self.cell(prow, cpcol);
        let lr = cell.rows();
        let lr_k = self.glayout.local_rows_below(prow, gk);
        let lrows = lr - lr_k;
        let pl0 = self.glayout.local_cols_below(cpcol, gk);
        let block = Matrix::from_fn(lrows, jb, |i, j| unsafe { cell.get(lr_k + i, pl0 + j) });
        let idx: Vec<usize> = (lr_k..lr).map(|li| self.glayout.global_row(prow, li) - gk).collect();
        let cand = if lrows > 0 {
            local_candidates(&block, &idx, self.local)
        } else {
            Candidates::<T>::new(Matrix::zeros(0, jb), vec![])
        };
        self.post(ACC, k, 0, prow, cand.to_payload());
        Ok(())
    }

    fn run_tslu_leg(&self, k: usize, leg: usize, prow: usize) -> Result<()> {
        match tslu_leg_role(self.geom.pr, leg, prow) {
            LegRole::Exchange { partner } => {
                let mine = self.fetch_acc(k, leg, prow);
                let theirs = self.fetch_acc_wire(k, leg, partner);
                // The combine is ordered by member index, exactly as the
                // netsim butterfly orders it.
                let acc = if prow < partner {
                    reduce_pair(&mine, &theirs)
                } else {
                    reduce_pair(&theirs, &mine)
                };
                self.post(ACC, k, leg + 1, prow, acc.to_payload());
            }
            LegRole::FoldCombine { partner } => {
                let mine = self.fetch_acc(k, leg, prow);
                let theirs = self.fetch_acc_wire(k, leg, partner);
                let acc = reduce_pair(&mine, &theirs);
                self.post(ACC, k, leg + 1, prow, acc.to_payload());
            }
            LegRole::FoldRecv { partner } => {
                let theirs: Candidates<T> = self.fetch_acc_wire(k, leg, partner);
                self.post(ACC, k, leg + 1, prow, theirs.to_payload());
            }
            // Send halves: the data is read from the producer's slot by
            // the receiving side; the task models the injection.
            LegRole::FoldSend { .. } | LegRole::FoldOut { .. } => {}
            LegRole::Idle => unreachable!("idle legs are not emitted"),
        }
        Ok(())
    }

    fn run_piv_send(&self, k: usize, prow: usize) -> Result<()> {
        let g = &self.geom;
        if self.alg == DistPanelAlg::Getf2 {
            // PDGETF2 computed and posted the list; this task models the
            // row-broadcast injection only.
            return Ok(());
        }
        if prow != g.cprow(k) {
            // Redundant copies on the other process rows carry the same
            // list; only the canonical (diagonal-row) slot is consumed.
            return Ok(());
        }
        let gk = k * self.nb();
        let winners: Candidates<T> = self.fetch_acc(k, tslu_leg_count(g.pr), prow);
        let li = winners_to_ipiv(&winners.rows, self.geom.shape.m - gk);
        // SAFETY: the diagonal PivSend of step k is the only writer of
        // these slots.
        unsafe { self.ipiv.publish(gk, &li) };
        self.post(PIV, k, 0, g.cprow(k), li.iter().map(|&x| x as f64).collect());
        Ok(())
    }

    fn swap_list(&self, k: usize) -> Vec<usize> {
        self.fetch(PIV, k, 0, self.geom.cprow(k)).iter().map(|&x| x as usize).collect()
    }

    fn run_swap(&self, k: usize, j: usize) -> Result<()> {
        let gk = k * self.nb();
        let li = self.swap_list(k);
        let cols = self.swap_cols(k, j);
        let pcol = self.geom.pcol_of(j);
        if cols.is_empty() {
            return Ok(());
        }
        for (i, &p) in li.iter().enumerate() {
            if p != i {
                let (r1, r2) = (gk + i, gk + p);
                let (o1, o2) = (self.glayout.row_owner(r1), self.glayout.row_owner(r2));
                if o1 != o2 {
                    // Data-dependent cross-rank exchange: each owner ships
                    // its row segment to the other. Measured here, at the
                    // exchanging ranks — the skeleton prices the same term
                    // as fixed pairwise-exchange rounds, and the gap
                    // between the two is exactly what the reconciliation
                    // report quantifies.
                    let w = cols.len() as u64;
                    self.ledger.record_send(self.geom.rank(o1, pcol) as u32, "swap", w);
                    self.ledger.record_send(self.geom.rank(o2, pcol) as u32, "swap", w);
                }
                // SAFETY: Swap(k,j) owns rows ≥ k·nb of these columns
                // across the process column.
                unsafe { self.swap_rows(pcol, r1, r2, cols.clone()) };
            }
        }
        Ok(())
    }

    fn run_w_send(&self, k: usize) -> Result<()> {
        let g = &self.geom;
        let (gk, jb) = (k * self.nb(), g.jb(k));
        let (cprow, cpcol) = (g.cprow(k), g.pcol_of(k));
        let cell = self.cell(cprow, cpcol);
        let d0 = self.glayout.local_rows_below(cprow, gk);
        let pl0 = self.glayout.local_cols_below(cpcol, gk);
        // SAFETY: ordered after Swap(k,k), before every Second(k,·).
        let w = unsafe { self.pack(cell, d0..d0 + jb, pl0..pl0 + jb) };
        self.post(WBK, k, 0, 0, w);
        Ok(())
    }

    fn run_second(&self, k: usize, prow: usize) -> Result<()> {
        let g = &self.geom;
        let b = self.nb();
        let (gk, jb) = (k * b, g.jb(k));
        let (cprow, cpcol) = (g.cprow(k), g.pcol_of(k));
        let mut w: Matrix<T> =
            Matrix::from_col_major(jb, jb, cast_slice(&self.fetch(WBK, k, 0, 0)));
        // A genuinely singular panel cancels all dependents across ranks;
        // the driver reports the absolute step (the SPMD loop records the
        // same step INFO-style and marches on).
        if let Err(Error::SingularPivot { step }) = lu_nopiv(w.view_mut(), &mut NoObs) {
            return Err(Error::SingularPivot { step: gk + step });
        }
        let cell = self.cell(prow, cpcol);
        let pl0 = self.glayout.local_cols_below(cpcol, gk);
        if prow == cprow {
            let d0 = self.glayout.local_rows_below(cprow, gk);
            for lj in 0..jb {
                for li in 0..jb {
                    // SAFETY: Second(k, cprow) exclusively owns the W rows.
                    unsafe { cell.set(d0 + li, pl0 + lj, w[(li, lj)]) };
                }
            }
        }
        let lb0 = self.glayout.local_rows_below(prow, gk + jb);
        let lr = cell.rows();
        if lr > lb0 {
            let u11 = w.view().submatrix(0, 0, jb, jb);
            let (tjc, jc) = (pl0 / b, pl0 % b);
            for (ti, rr) in cell.lay.row_tile_span(lb0..lr) {
                // SAFETY: Second(k, prow) owns its rank's L₂₁ rows.
                let l21 = unsafe { cell.tile_block(ti, tjc, rr.start, jc, rr.len(), jb) };
                trsm(Side::Right, Uplo::Upper, Diag::NonUnit, T::ONE, u11, l21);
            }
        }
        Ok(())
    }

    fn run_panel_send(&self, k: usize, prow: usize) -> Result<()> {
        let g = &self.geom;
        let (gk, jb) = (k * self.nb(), g.jb(k));
        let cpcol = g.pcol_of(k);
        let cell = self.cell(prow, cpcol);
        let lr = cell.rows();
        let lr_k = self.glayout.local_rows_below(prow, gk);
        let pl0 = self.glayout.local_cols_below(cpcol, gk);
        // SAFETY: ordered after Second(k, prow) / PanelGetf2(k) — the
        // last writers of this rank's panel rows.
        let v = unsafe { self.pack(cell, lr_k..lr, pl0..pl0 + jb) };
        self.post(PAN, k, 0, prow, v);
        Ok(())
    }

    /// The local columns of block column `j` updated by step `k`'s
    /// trailing work, as `(first local col, width, col tile, intra-tile
    /// col)`.
    fn upd_cols(&self, k: usize, j: usize) -> (usize, usize, usize, usize) {
        let b = self.nb();
        let pcol = self.geom.pcol_of(j);
        let c0 = self.glayout.local_cols_below(pcol, j * b);
        let skip = if j == k { self.geom.jb(k) } else { 0 };
        let lo = c0 + skip;
        let wid = self.geom.upd_width(k, j);
        (lo, wid, c0 / b, lo - (c0 / b) * b)
    }

    fn run_trsm(&self, k: usize, j: usize) -> Result<()> {
        let g = &self.geom;
        let b = self.nb();
        let (gk, jb) = (k * b, g.jb(k));
        let cprow = g.cprow(k);
        let pcol = g.pcol_of(j);
        let lr_panel = g.panel_rows(cprow, k);
        let panel_l: Matrix<T> =
            Matrix::from_col_major(lr_panel, jb, cast_slice(&self.fetch(PAN, k, 0, cprow)));
        let l11 = panel_l.view().submatrix(0, 0, jb, jb);
        let cell = self.cell(cprow, pcol);
        let d0 = self.glayout.local_rows_below(cprow, gk);
        let (ti_d, i0) = (d0 / b, d0 % b);
        let (_lo, wid, tj, cr0) = self.upd_cols(k, j);
        // SAFETY: Trsm(k,j) owns rows d0..d0+jb of these columns.
        let u12 = unsafe { cell.tile_block(ti_d, tj, i0, cr0, jb, wid) };
        trsm(Side::Left, Uplo::Lower, Diag::Unit, T::ONE, l11, u12);
        Ok(())
    }

    fn run_u_send(&self, k: usize, j: usize) -> Result<()> {
        let g = &self.geom;
        let (gk, jb) = (k * self.nb(), g.jb(k));
        let cprow = g.cprow(k);
        let cell = self.cell(cprow, g.pcol_of(j));
        let d0 = self.glayout.local_rows_below(cprow, gk);
        let (lo, wid, _tj, _cr0) = self.upd_cols(k, j);
        // SAFETY: ordered after Trsm(k,j).
        let v = unsafe { self.pack(cell, d0..d0 + jb, lo..lo + wid) };
        self.post(U12, k, j, 0, v);
        Ok(())
    }

    fn run_gemm(&self, k: usize, j: usize, prow: usize) -> Result<()> {
        let g = &self.geom;
        let b = self.nb();
        let (gk, jb) = (k * b, g.jb(k));
        let pcol = g.pcol_of(j);
        let cell = self.cell(prow, pcol);
        let lr = cell.rows();
        let lr_k = self.glayout.local_rows_below(prow, gk);
        let lr_panel = lr - lr_k;
        let panel_l: Matrix<T> =
            Matrix::from_col_major(lr_panel, jb, cast_slice(&self.fetch(PAN, k, 0, prow)));
        let (_lo, wid, tj, cr0) = self.upd_cols(k, j);
        let u12: Matrix<T> = Matrix::from_col_major(jb, wid, cast_slice(&self.fetch(U12, k, j, 0)));
        let lb0 = self.glayout.local_rows_below(prow, gk + jb);
        for (ti, rr) in cell.lay.row_tile_span(lb0..lr) {
            let l21 = panel_l.view().submatrix(ti * b + rr.start - lr_k, 0, rr.len(), jb);
            // SAFETY: Gemm(k,j,rank) owns its rank's trailing rows of
            // these columns.
            let a22 = unsafe { cell.tile_block(ti, tj, rr.start, cr0, rr.len(), wid) };
            gemm(-T::ONE, l21, u12.view(), T::ONE, a22);
        }
        Ok(())
    }

    /// The whole `PDGETF2` panel of step `k`, replayed across the process
    /// column's rank storages in one task — elementwise identical to the
    /// SPMD inner loop (scan / combine / pivot-row exchange / scale /
    /// rank-1 update, column by column).
    fn run_panel_getf2(&self, k: usize) -> Result<()> {
        self.evict_completed_steps(k);
        let g = &self.geom;
        let b = self.nb();
        let (gk, jb) = (k * b, g.jb(k));
        let (pr, cprow, cpcol) = (g.pr, g.cprow(k), g.pcol_of(k));
        let pl0 = self.glayout.local_cols_below(cpcol, gk);
        let (tjc, jc) = (pl0 / b, pl0 % b);
        let mut li_piv = Vec::with_capacity(jb);
        for jj in 0..jb {
            let gc = gk + jj;
            // Local scans (first strict max in ascending global order),
            // folded across process rows with the SPMD combine's
            // max-abs / smaller-index tie-break — associative, so the
            // linear fold equals the binomial reduce.
            let (mut best, mut best_g, mut best_v) = (T::NEG_INFINITY, usize::MAX, T::ZERO);
            for prow in 0..pr {
                let cell = self.cell(prow, cpcol);
                let r0 = self.glayout.local_rows_below(prow, gc);
                let (mut ba, mut bg, mut bv) = (T::NEG_INFINITY, usize::MAX, T::ZERO);
                for li in r0..cell.rows() {
                    // SAFETY: PanelGetf2(k) owns the whole panel column.
                    let v = unsafe { cell.get(li, pl0 + jj) };
                    if v.abs() > ba {
                        ba = v.abs();
                        bg = self.glayout.global_row(prow, li);
                        bv = v;
                    }
                }
                if ba > best || (ba == best && bg < best_g) {
                    best = ba;
                    best_g = bg;
                    best_v = bv;
                }
            }
            li_piv.push(best_g - gk);
            if !(best != T::ZERO && best.is_finite()) {
                // The sequential reference errors here; dependents are
                // canceled and the driver reports this absolute step.
                return Err(Error::SingularPivot { step: gc });
            }
            // The winner's trailing row, captured before the exchange
            // (the values the SPMD combine payload carries).
            let urow: Vec<T> = if jj + 1 < jb {
                let ow = self.glayout.row_owner(best_g);
                let lw = self.glayout.local_row(best_g);
                let cell = self.cell(ow, cpcol);
                (jj + 1..jb).map(|c| unsafe { cell.get(lw, pl0 + c) }).collect()
            } else {
                Vec::new()
            };
            if best_g != gc {
                // SAFETY: PanelGetf2(k) owns the panel column rows.
                unsafe { self.swap_rows(cpcol, gc, best_g, pl0..pl0 + jb) };
            }
            let inv = best_v.recip();
            for prow in 0..pr {
                let cell = self.cell(prow, cpcol);
                let r1 = self.glayout.local_rows_below(prow, gc + 1);
                let lr = cell.rows();
                if lr == r1 {
                    continue;
                }
                for (ti, rr) in cell.lay.row_tile_span(r1..lr) {
                    // SAFETY: exclusive panel-column ownership.
                    let mut col =
                        unsafe { cell.tile_block(ti, tjc, rr.start, jc + jj, rr.len(), 1) };
                    scal(inv, col.col_mut(0));
                }
                if jj + 1 < jb {
                    for (ti, rr) in cell.lay.row_tile_span(r1..lr) {
                        let lview =
                            unsafe { cell.tile_block(ti, tjc, rr.start, jc + jj, rr.len(), 1) };
                        let trailing = unsafe {
                            cell.tile_block(ti, tjc, rr.start, jc + jj + 1, rr.len(), jb - jj - 1)
                        };
                        ger(-T::ONE, lview.as_view().col(0), &urow, trailing);
                    }
                }
            }
        }
        // SAFETY: PanelGetf2(k) is the only writer of these slots.
        unsafe { self.ipiv.publish(gk, &li_piv) };
        self.post(PIV, k, 0, cprow, li_piv.iter().map(|&x| x as f64).collect());
        Ok(())
    }
}

impl<T: Scalar> TaskRunner for DistRunner<T> {
    fn run(&self, task: Task) -> Result<()> {
        let Task::Dist(DistTask { kind, k, j, rank }) = task else {
            unreachable!("distributed runner received a shared-memory task")
        };
        let (k, j, rank) = (k as usize, j as usize, rank as usize);
        let prow = rank % self.geom.pr;
        let res = match kind {
            DistKind::Cand => self.run_cand(k, prow),
            DistKind::TsluLeg => self.run_tslu_leg(k, j, prow),
            DistKind::PanelGetf2 => self.run_panel_getf2(k),
            DistKind::PivSend => self.run_piv_send(k, prow),
            DistKind::Swap => self.run_swap(k, j),
            DistKind::WSend => self.run_w_send(k),
            DistKind::Second => self.run_second(k, prow),
            DistKind::PanelSend => self.run_panel_send(k, prow),
            DistKind::Trsm => self.run_trsm(k, j),
            DistKind::USend => self.run_u_send(k, j),
            DistKind::Gemm => self.run_gemm(k, j, prow),
            // Pure arrival markers: the data sits in the producer's slot,
            // the edge is the wire.
            DistKind::PivRecv | DistKind::PanelRecv | DistKind::URecv => Ok(()),
        };
        if res.is_ok() {
            self.account(kind, k, j, rank, prow);
        }
        res
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Dispatches on the communicator seam: the shared-mailbox path below,
/// the rank-thread driver in [`crate::dist_threaded`], or the MPI stub —
/// which is exercised through the trait object exactly as a linked MPI
/// backend would be, so its refusal surfaces as [`Error::Unsupported`]
/// before any work begins.
#[allow(clippy::too_many_arguments)]
fn run_dist<T: Scalar>(
    a: &Matrix<T>,
    b: usize,
    pr: usize,
    pc: usize,
    local: LocalLu,
    alg: DistPanelAlg,
    rt: DistRtOpts,
    mch: &MachineConfig,
) -> Result<(DistRtReport, DistFactors<T>)> {
    match rt.communicator {
        CommKind::InProcess => Ok(run_dist_in_process(a, b, pr, pc, local, alg, rt, mch)),
        CommKind::Threaded => {
            Ok(crate::dist_threaded::run_dist_threaded(a, b, pr, pc, local, alg, rt, mch))
        }
        CommKind::Mpi => {
            let stub: Box<dyn Communicator> = Box::new(MpiComm::new());
            stub.post(0, (PIV, 0, 0, 0), Vec::new(), &[])?;
            unreachable!("the MPI stub refuses every post")
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_dist_in_process<T: Scalar>(
    a: &Matrix<T>,
    b: usize,
    pr: usize,
    pc: usize,
    local: LocalLu,
    alg: DistPanelAlg,
    rt: DistRtOpts,
    mch: &MachineConfig,
) -> (DistRtReport, DistFactors<T>) {
    let (m, n) = (a.rows(), a.cols());
    let kn = m.min(n);
    assert!(b > 0 && pr > 0 && pc > 0, "block and grid must be positive");
    let glayout = TileLayout::new(m, n, b, b).with_grid(pr, pc);
    let mut locals: Vec<TileMatrix<T>> = (0..pr * pc)
        .map(|rank| {
            let (prow, pcol) = (rank % pr, rank / pr);
            TileMatrix::from_fn(glayout.local_layout(prow, pcol), |li, lj| {
                a[(glayout.global_row(prow, li), glayout.global_col(pcol, lj))]
            })
        })
        .collect();
    let shape = LuShape { m, n, nb: b };
    let geom = DistGeom { shape, pr, pc };
    let dag = LuDag::build_dist_with(shape, (pr, pc), rt.lookahead, alg);
    let mut ipiv = vec![0usize; kn];
    let runner = DistRunner {
        geom,
        glayout,
        alg,
        local,
        lookahead: rt.lookahead,
        cells: locals.iter_mut().map(RankCell::new).collect(),
        ipiv: IpivCell { ptr: ipiv.as_mut_ptr(), len: kn },
        comm: Box::new(InProcessComm::new()),
        ledger: CommLedger::new(),
    };
    let communicator = runner.comm.name();
    let recorder = Recorder::new();
    let (exec, first_singular) = match rt.executor.execute_traced(&dag, &runner, Some(&recorder)) {
        Ok(rep) => (rep, None),
        Err(Error::SingularPivot { step }) => (ExecReport::default(), Some(step)),
        Err(e) => panic!("unexpected distributed task failure: {e:?}"),
    };
    // Success or cancellation, undelivered payloads end with the run.
    let drained = runner.drain_mailbox();
    let residual = runner.mailbox_words();
    runner.ledger.set_drain(drained as u64, residual as u64);
    if first_singular.is_none() {
        assert_eq!(residual, 0, "mailbox leaked {residual} words after the drain");
    }
    let comm = runner.ledger.report();
    drop(runner);

    let model = DistCostModel {
        geom,
        alg,
        recursive_panel: matches!(local, LocalLu::Recursive),
        mch: mch.clone(),
    };
    let sched = simulate_dist_schedule(&dag, |t| model.cost(t), mch);
    let critical_path = dag.critical_path(|t| model.cost(t).total(mch));
    let report = DistRtReport {
        sim: SimReport { per_rank: sched.per_rank },
        traces: sched.traces,
        exec,
        critical_path,
        makespan: sched.makespan,
        tasks: dag.len(),
        comm,
        expected_mailbox: expected_mailbox_comm(&dag, &geom, alg),
        modeled_terms: modeled_comm_terms(&dag, &model),
        spans: recorder.take(),
        communicator,
    };
    let lu = assemble_2d(glayout, &locals);
    (report, DistFactors { lu, ipiv, first_singular })
}

/// Runtime-driven 2D block-cyclic CALU: the per-rank step work of
/// [`dist_calu_factor_spmd`](crate::dist::dist_calu_factor_spmd) emitted
/// as a [`LuDag::build_dist`] task graph and driven through either
/// executor at any lookahead depth. Factors and pivots are **bitwise
/// identical** to the SPMD reference on every schedule (property-tested);
/// the report carries the modeled per-rank communication schedule.
pub fn dist_calu_factor_rt<T: Scalar>(
    a: &Matrix<T>,
    cfg: DistCaluConfig,
    rt: DistRtOpts,
    mch: MachineConfig,
) -> (DistRtReport, DistFactors<T>) {
    try_dist_calu_factor_rt(a, cfg, rt, mch)
        .expect("distributed CALU failed: the selected communicator is unavailable")
}

/// Fallible form of [`dist_calu_factor_rt`]: returns
/// [`Error::Unsupported`] when the selected [`Communicator`] backend
/// cannot run (the MPI stub) instead of panicking.
///
/// # Errors
/// [`Error::Unsupported`] for [`CommKind::Mpi`].
pub fn try_dist_calu_factor_rt<T: Scalar>(
    a: &Matrix<T>,
    cfg: DistCaluConfig,
    rt: DistRtOpts,
    mch: MachineConfig,
) -> Result<(DistRtReport, DistFactors<T>)> {
    run_dist(a, cfg.b, cfg.pr, cfg.pc, cfg.local, DistPanelAlg::Tslu, rt, &mch)
}

/// Runtime-driven ScaLAPACK-style `PDGETRF`: the `PDGETF2` panel runs as
/// one serialized task per step (faithful to its column-coupled picket
/// fence), while swaps and the trailing update get the full per-column
/// task treatment — so even the baseline gains real lookahead. Factors
/// stay bitwise identical to the sequential blocked
/// [`calu_matrix::lapack::getrf`].
pub fn dist_pdgetrf_factor_rt<T: Scalar>(
    a: &Matrix<T>,
    cfg: DistPdgetrfConfig,
    rt: DistRtOpts,
    mch: MachineConfig,
) -> (DistRtReport, DistFactors<T>) {
    try_dist_pdgetrf_factor_rt(a, cfg, rt, mch)
        .expect("distributed PDGETRF failed: the selected communicator is unavailable")
}

/// Fallible form of [`dist_pdgetrf_factor_rt`]: returns
/// [`Error::Unsupported`] when the selected [`Communicator`] backend
/// cannot run (the MPI stub) instead of panicking.
///
/// # Errors
/// [`Error::Unsupported`] for [`CommKind::Mpi`].
pub fn try_dist_pdgetrf_factor_rt<T: Scalar>(
    a: &Matrix<T>,
    cfg: DistPdgetrfConfig,
    rt: DistRtOpts,
    mch: MachineConfig,
) -> Result<(DistRtReport, DistFactors<T>)> {
    run_dist(a, cfg.b, cfg.pr, cfg.pc, LocalLu::Classic, DistPanelAlg::Getf2, rt, &mch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{dist_calu_factor_spmd, dist_pdgetrf_factor_spmd};
    use calu_matrix::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn executors() -> [ExecutorKind; 2] {
        [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 3 }]
    }

    #[test]
    fn dag_calu_matches_spmd_bitwise_on_grids_and_depths() {
        let mut rng = StdRng::seed_from_u64(7001);
        for &(m, n, b) in &[(48usize, 48usize, 8usize), (52, 36, 8), (36, 52, 8)] {
            let a: Matrix = gen::randn(&mut rng, m, n);
            for &(pr, pc) in &[(1usize, 1usize), (2, 2), (2, 3), (3, 2)] {
                let cfg = DistCaluConfig { b, pr, pc, local: LocalLu::Recursive };
                let (_r, want) = dist_calu_factor_spmd(&a, cfg, MachineConfig::ideal());
                for depth in 1..=3 {
                    for executor in executors() {
                        let rt = DistRtOpts { lookahead: depth, executor, ..Default::default() };
                        let (_rep, got) = dist_calu_factor_rt(&a, cfg, rt, MachineConfig::ideal());
                        assert_eq!(want.ipiv, got.ipiv, "{m}x{n} {pr}x{pc} d={depth}");
                        assert_eq!(
                            want.lu.max_abs_diff(&got.lu),
                            0.0,
                            "{m}x{n} {pr}x{pc} d={depth} {executor:?}: factors must be bitwise \
                             identical to the SPMD reference"
                        );
                        assert_eq!(got.first_singular, None);
                    }
                }
            }
        }
    }

    #[test]
    fn dag_pdgetrf_matches_spmd_bitwise() {
        let mut rng = StdRng::seed_from_u64(7002);
        let a: Matrix = gen::randn(&mut rng, 44, 44);
        for &(pr, pc) in &[(1usize, 1usize), (2, 2), (3, 2), (2, 4)] {
            let cfg = DistPdgetrfConfig { b: 8, pr, pc };
            let (_r, want) = dist_pdgetrf_factor_spmd(&a, cfg, MachineConfig::ideal());
            for depth in 1..=2 {
                for executor in executors() {
                    let rt = DistRtOpts { lookahead: depth, executor, ..Default::default() };
                    let (_rep, got) = dist_pdgetrf_factor_rt(&a, cfg, rt, MachineConfig::ideal());
                    assert_eq!(want.ipiv, got.ipiv, "{pr}x{pc} d={depth}");
                    assert_eq!(want.lu.max_abs_diff(&got.lu), 0.0, "{pr}x{pc} d={depth}");
                }
            }
        }
    }

    #[test]
    fn report_carries_modeled_schedule_and_traces() {
        let mut rng = StdRng::seed_from_u64(7003);
        let a: Matrix = gen::randn(&mut rng, 64, 64);
        let cfg = DistCaluConfig { b: 16, pr: 2, pc: 2, local: LocalLu::Classic };
        let (rep, _f) =
            dist_calu_factor_rt(&a, cfg, DistRtOpts::default(), MachineConfig::power5());
        assert_eq!(rep.traces.len(), 4);
        assert_eq!(rep.sim.per_rank.len(), 4);
        assert!(rep.makespan > 0.0 && rep.critical_path > 0.0);
        assert!(rep.makespan + 1e-15 >= rep.critical_path * 0.999);
        assert!(rep.sim.total_msgs() > 0, "2x2 grid must move modeled messages");
        assert!(rep.sim.total_flops() > 0.0);
        assert_eq!(rep.exec.order.len(), rep.tasks);
        // The last lookahead window's payloads are still resident at the
        // end of a successful run; the driver drains them all.
        assert!(rep.comm.drained_words > 0);
        assert_eq!(rep.comm.residual_words, 0);
        // One wall-clock span per executed task, pids spanning the grid.
        assert_eq!(rep.spans.len(), rep.tasks);
        assert!(rep.spans.iter().any(|s| s.pid == 3));
        calu_obs::parse_chrome_trace(&calu_obs::chrome_trace(&rep.spans))
            .expect("executor spans must export as valid chrome trace");
        let gantt = calu_netsim::render_gantt(&rep.traces, 60);
        assert!(gantt.contains("r0") && gantt.contains("r3"));
    }

    /// The tentpole reconciliation property: on every grid × depth ×
    /// algorithm × executor, the measured mailbox ledger equals the exact
    /// per-term prediction — message counts and word counts both — and
    /// the skeleton comparison shows agreeing message counts with a
    /// quantified (never negative) word gap on the TSLU term.
    #[test]
    fn measured_comm_equals_exact_prediction_on_grids_and_depths() {
        let mut rng = StdRng::seed_from_u64(7004);
        let a: Matrix = gen::randn(&mut rng, 48, 48);
        for &(pr, pc) in &[(2usize, 2usize), (2, 4), (3, 2)] {
            for depth in 1..=3 {
                for executor in executors() {
                    let rt = DistRtOpts { lookahead: depth, executor, ..Default::default() };
                    let cfg = DistCaluConfig { b: 8, pr, pc, local: LocalLu::Classic };
                    let (rep, f) = dist_calu_factor_rt(&a, cfg, rt, MachineConfig::ideal());
                    assert_eq!(f.first_singular, None);
                    let deltas = rep.mailbox_deltas();
                    assert!(deltas.iter().any(|d| d.source == "mailbox_exact"));
                    for d in &deltas {
                        if d.source == "mailbox_exact" {
                            assert!(
                                d.exact(),
                                "{pr}x{pc} d={depth} {executor:?} term {}: measured {:?} vs \
                                 expected {:?}",
                                d.term,
                                d.measured,
                                d.expected
                            );
                        }
                    }
                    // Skeleton: same message counts on the exact-modeled
                    // terms, word gap only from ragged-tail payloads.
                    for d in rep.skeleton_deltas() {
                        if d.term == "tslu_leg" {
                            assert_eq!(d.msg_gap(), 0, "{pr}x{pc} d={depth}");
                            assert!(d.word_gap() <= 0, "measured can never exceed the skeleton");
                        }
                    }

                    let cfg = DistPdgetrfConfig { b: 8, pr, pc };
                    let (rep, f) = dist_pdgetrf_factor_rt(&a, cfg, rt, MachineConfig::ideal());
                    assert_eq!(f.first_singular, None);
                    for d in rep.mailbox_deltas() {
                        if d.source == "mailbox_exact" {
                            assert!(
                                d.exact(),
                                "pdgetrf {pr}x{pc} d={depth} term {}: {:?} vs {:?}",
                                d.term,
                                d.measured,
                                d.expected
                            );
                        }
                    }
                }
            }
        }
    }

    /// The tentpole's headline property: with ranks as real OS threads
    /// exchanging point-to-point messages — no shared matrix state at
    /// all — both algorithms still produce bitwise-identical factors to
    /// the SPMD references, on every grid × depth.
    #[test]
    fn threaded_communicator_matches_spmd_bitwise() {
        let mut rng = StdRng::seed_from_u64(7005);
        for &(m, n, b) in &[(48usize, 48usize, 8usize), (52, 36, 8)] {
            let a: Matrix = gen::randn(&mut rng, m, n);
            for &(pr, pc) in &[(1usize, 1usize), (2, 2), (2, 3), (3, 2)] {
                let calu_cfg = DistCaluConfig { b, pr, pc, local: LocalLu::Recursive };
                let (_r, want) = dist_calu_factor_spmd(&a, calu_cfg, MachineConfig::ideal());
                for depth in 1..=3 {
                    let rt = DistRtOpts {
                        lookahead: depth,
                        communicator: CommKind::Threaded,
                        ..Default::default()
                    };
                    let (rep, got) = dist_calu_factor_rt(&a, calu_cfg, rt, MachineConfig::ideal());
                    assert_eq!(rep.communicator, "threaded");
                    assert_eq!(want.ipiv, got.ipiv, "calu {m}x{n} {pr}x{pc} d={depth}");
                    assert_eq!(
                        want.lu.max_abs_diff(&got.lu),
                        0.0,
                        "calu {m}x{n} {pr}x{pc} d={depth}: threaded ranks must reproduce the \
                         SPMD factors bitwise"
                    );
                    assert_eq!(got.first_singular, None);

                    if m == n {
                        let pd_cfg = DistPdgetrfConfig { b, pr, pc };
                        let (_r, want) =
                            dist_pdgetrf_factor_spmd(&a, pd_cfg, MachineConfig::ideal());
                        let (rep, got) =
                            dist_pdgetrf_factor_rt(&a, pd_cfg, rt, MachineConfig::ideal());
                        assert_eq!(rep.communicator, "threaded");
                        assert_eq!(want.ipiv, got.ipiv, "pdgetrf {pr}x{pc} d={depth}");
                        assert_eq!(
                            want.lu.max_abs_diff(&got.lu),
                            0.0,
                            "pdgetrf {pr}x{pc} d={depth}: threaded ranks must reproduce the \
                             SPMD factors bitwise"
                        );
                    }
                }
            }
        }
    }

    /// Comm accounting stays exact when the messages are physically real:
    /// under the threaded communicator every `mailbox_exact` term —
    /// including the new `panel_getf2` term for `PDGETF2`'s decomposed
    /// picket fence, which only exists on the wire once ranks stop
    /// sharing panel storage — reconciles measured == expected.
    #[test]
    fn threaded_measured_comm_equals_exact_prediction() {
        let mut rng = StdRng::seed_from_u64(7006);
        let a: Matrix = gen::randn(&mut rng, 48, 48);
        for &(pr, pc) in &[(2usize, 2usize), (2, 4), (3, 2)] {
            for depth in 1..=3 {
                let rt = DistRtOpts {
                    lookahead: depth,
                    communicator: CommKind::Threaded,
                    ..Default::default()
                };
                let cfg = DistCaluConfig { b: 8, pr, pc, local: LocalLu::Classic };
                let (rep, f) = dist_calu_factor_rt(&a, cfg, rt, MachineConfig::ideal());
                assert_eq!(f.first_singular, None);
                let deltas = rep.mailbox_deltas();
                assert!(deltas.iter().any(|d| d.source == "mailbox_exact"));
                for d in &deltas {
                    if d.source == "mailbox_exact" {
                        assert!(
                            d.exact(),
                            "threaded calu {pr}x{pc} d={depth} term {}: measured {:?} vs \
                             expected {:?}",
                            d.term,
                            d.measured,
                            d.expected
                        );
                    }
                }

                let cfg = DistPdgetrfConfig { b: 8, pr, pc };
                let (rep, f) = dist_pdgetrf_factor_rt(&a, cfg, rt, MachineConfig::ideal());
                assert_eq!(f.first_singular, None);
                let deltas = rep.mailbox_deltas();
                assert!(
                    deltas.iter().any(|d| d.term == "panel_getf2" && d.source == "mailbox_exact"),
                    "the decomposed PDGETF2 panel must be accounted term-for-term"
                );
                for d in &deltas {
                    if d.source == "mailbox_exact" {
                        assert!(
                            d.exact(),
                            "threaded pdgetrf {pr}x{pc} d={depth} term {}: measured {:?} vs \
                             expected {:?}",
                            d.term,
                            d.measured,
                            d.expected
                        );
                    }
                }
            }
        }
    }

    /// The threaded report is coherent: spans and wall-clock timings come
    /// from every rank thread (collectives appear once per participant,
    /// so there are at least as many executions as DAG tasks), the spans
    /// export as a valid per-rank chrome trace, and the drain leaves no
    /// residual words.
    #[test]
    fn threaded_report_is_coherent() {
        let mut rng = StdRng::seed_from_u64(7007);
        let a: Matrix = gen::randn(&mut rng, 64, 64);
        let cfg = DistCaluConfig { b: 16, pr: 2, pc: 2, local: LocalLu::Classic };
        let rt = DistRtOpts { communicator: CommKind::Threaded, ..Default::default() };
        let (rep, _f) = dist_calu_factor_rt(&a, cfg, rt, MachineConfig::power5());
        assert_eq!(rep.communicator, "threaded");
        assert_eq!(rep.exec.workers, 4);
        assert!(rep.exec.order.len() >= rep.tasks);
        assert_eq!(rep.spans.len(), rep.exec.order.len());
        for pid in 0..4 {
            assert!(
                rep.spans.iter().any(|s| s.pid == pid && s.tid == pid),
                "rank {pid} must contribute wall-clock spans"
            );
        }
        assert!(rep.comm.drained_words > 0);
        assert_eq!(rep.comm.residual_words, 0);
        calu_obs::parse_chrome_trace(&calu_obs::chrome_trace(&rep.spans))
            .expect("threaded spans must export as valid chrome trace");

        // The standard metrics snapshot carries the drain counters and
        // the fetch-wait totals, not just the raw report fields.
        let snap = rep.metrics_snapshot();
        let counters = snap.get("counters").expect("snapshot has counters");
        assert_eq!(
            counters.get("dist.mailbox_drained_words").and_then(calu_obs::JsonValue::as_u64),
            Some(rep.comm.drained_words)
        );
        assert_eq!(
            counters.get("dist.mailbox_residual_words").and_then(calu_obs::JsonValue::as_u64),
            Some(0)
        );
        assert_eq!(
            counters.get("dist.comm.words").and_then(calu_obs::JsonValue::as_u64),
            Some(rep.comm.total().words)
        );
        assert_eq!(
            counters.get("dist.fetch_wait_ns").and_then(calu_obs::JsonValue::as_u64),
            Some(rep.comm.wait_total_ns())
        );
        // Rank threads really blocked somewhere in this 2x2 run, and the
        // wait rows attribute that blocking per (rank, term).
        assert!(!rep.comm.waits.is_empty(), "threaded fetches must record wait rows");
        assert!(rep.comm.wait_total_ns() > 0);
    }

    /// The MPI-shaped stub refuses to run, as a typed error — the public
    /// fallible API surfaces it instead of panicking.
    #[test]
    fn mpi_stub_reports_unsupported() {
        let mut rng = StdRng::seed_from_u64(7008);
        let a: Matrix = gen::randn(&mut rng, 16, 16);
        let cfg = DistCaluConfig { b: 8, pr: 2, pc: 2, local: LocalLu::Classic };
        let rt = DistRtOpts { communicator: CommKind::Mpi, ..Default::default() };
        let err = try_dist_calu_factor_rt(&a, cfg, rt, MachineConfig::ideal())
            .expect_err("the MPI stub must refuse to run");
        assert!(matches!(err, Error::Unsupported { .. }), "got {err:?}");
    }
}
