//! Ranks as real OS threads: the [`CommKind::Threaded`](crate::comm::CommKind::Threaded)
//! driver behind
//! [`dist_calu_factor_rt`](crate::dist_rt::dist_calu_factor_rt) /
//! [`dist_pdgetrf_factor_rt`](crate::dist_rt::dist_pdgetrf_factor_rt).
//!
//! Where the in-process path binds one runner over **all** ranks' tile
//! storage (the shared-memory simulation), this driver spawns one thread
//! per grid rank, each owning **only its own** block-cyclic
//! [`TileMatrix`]. Cross-rank data crosses the [`Communicator`] seam as
//! point-to-point [`ThreadedComm`] messages and nothing else — the first
//! configuration in this repo where the communication the `CommLedger`
//! counts is physically real.
//!
//! # Per-rank schedules
//!
//! Each rank runs the projection of the DAG's deterministic
//! [`serial_schedule`](LuDag::serial_schedule) onto its own tasks, with
//! the two tasks whose in-process bodies touch several ranks' storage
//! expanded into collectives over the participating ranks:
//!
//! * `Swap(k, j)` — every process row of `j`'s process column
//!   participates; cross-owner pivot rows travel as paired `SWP`
//!   messages (post first, then a blocking fetch, items in pivot order
//!   on every participant — so chained pivots stay exchange-complete).
//! * `PanelGetf2(k)` — the `PDGETF2` picket fence decomposes into its
//!   real messages: per column a 3-word `GCD` candidate all-gather
//!   (folded in ascending process-row order, exactly the shared-mailbox
//!   combine), the winner's trailing row as `GUR`, and the pivot-row
//!   exchange as paired `GRX` messages.
//!
//! All remaining tasks are rank-local; send tasks compute their
//! destination sets from the same geometry/butterfly algebra the DAG
//! builder uses. Every fetch is blocking with stash-first semantics
//! (see [`ThreadedComm`]), which makes **any** per-rank topological
//! projection deadlock-free: whichever task needs a payload first pulls
//! it from the channel into the rank's stash, and later tasks re-read it
//! there.
//!
//! # Why the factors stay bitwise identical
//!
//! Payloads are `f64` words and `T ↔ f64` round trips are exact for
//! every [`Scalar`]; the butterfly's ordered combine makes every process
//! row's final accumulator bitwise identical (so each rank derives the
//! same pivot list redundantly, no extra broadcast needed); and the
//! decomposed `PDGETF2` folds candidates in the same ascending order as
//! the in-process picket fence. The property tests assert equality
//! against both the SPMD references and the in-process communicator.
//!
//! # Failure semantics
//!
//! A singular pivot on one rank thread cancels the whole grid through
//! [`Communicator::cancel`]: every blocked and future fetch on every
//! rank returns [`Error::Canceled`], rank threads unwind their queues,
//! the driver joins them all (no hang), and the drain leaves
//! `mailbox_residual_words == 0` — the failure-injection suite asserts
//! exactly this.

use std::sync::Arc;
use std::time::Instant;

use crate::comm::{
    Communicator, ThreadedComm, MAIL_ACC as ACC, MAIL_GCD as GCD, MAIL_GRX as GRX, MAIL_GUR as GUR,
    MAIL_PAN as PAN, MAIL_PIV as PIV, MAIL_SWP as SWP, MAIL_U12 as U12, MAIL_WBK as WBK,
};
use crate::dist::{assemble_2d, DistFactors};
use crate::dist_rt::{DistRtOpts, DistRtReport, IpivCell, RankCell};
use crate::tournament::{reduce_pair, Candidates};
use crate::tslu::{local_candidates, winners_to_ipiv, LocalLu};
use calu_matrix::blas1::scal;
use calu_matrix::blas2::ger;
use calu_matrix::blas3::{gemm, trsm};
use calu_matrix::lapack::lu_nopiv;
use calu_matrix::scalar::cast_slice;
use calu_matrix::{Diag, Error, Matrix, NoObs, Result, Scalar, Side, TileLayout, TileMatrix, Uplo};
use calu_netsim::{MachineConfig, SimReport};
use calu_obs::{CommLedger, Recorder};
use calu_runtime::{
    expected_mailbox_comm, expected_threaded_getf2_comm, modeled_comm_terms,
    simulate_dist_schedule, tslu_acc_slot, tslu_leg_count, tslu_leg_role, DistCostModel, DistGeom,
    DistKind, DistPanelAlg, DistTask, ExecReport, LegRole, LuDag, LuShape, Task, TaskTiming,
};

/// Projects the DAG's deterministic serial schedule onto per-rank task
/// queues, expanding the two multi-rank bodies into collectives: every
/// participant gets the task at the same global schedule position, so the
/// queues are consistent projections of one topological order — the
/// invariant the blocking-fetch deadlock-freedom argument rests on.
fn rank_queues(dag: &LuDag, geom: &DistGeom) -> Vec<Vec<Task>> {
    let tasks = dag.tasks();
    let mut queues = vec![Vec::new(); geom.pr * geom.pc];
    for id in dag.serial_schedule() {
        let t = tasks[id];
        let Task::Dist(DistTask { kind, k, j, rank }) = t else {
            unreachable!("distributed DAGs contain only distributed tasks")
        };
        match kind {
            DistKind::Swap => {
                let pcol = geom.pcol_of(j as usize);
                for prow in 0..geom.pr {
                    queues[geom.rank(prow, pcol)].push(t);
                }
            }
            DistKind::PanelGetf2 => {
                let cpcol = geom.pcol_of(k as usize);
                for prow in 0..geom.pr {
                    queues[geom.rank(prow, cpcol)].push(t);
                }
            }
            _ => queues[rank as usize].push(t),
        }
    }
    queues
}

/// One rank's thread: its grid position, its own tile storage, and the
/// shared seam objects (communicator, ledger, pivot vector).
struct RankWorker<'a, T> {
    rank: usize,
    prow: usize,
    pcol: usize,
    geom: DistGeom,
    glayout: TileLayout,
    alg: DistPanelAlg,
    local: LocalLu,
    lookahead: usize,
    /// This rank's local tiles — the only matrix storage this thread
    /// touches.
    cell: RankCell<T>,
    comm: &'a ThreadedComm,
    ledger: &'a CommLedger,
    ipiv: &'a IpivCell,
}

impl<T: Scalar> RankWorker<'_, T> {
    fn nb(&self) -> usize {
        self.geom.shape.nb
    }

    fn post(&self, class: u8, k: usize, j: usize, who: usize, data: Vec<f64>, dests: &[usize]) {
        self.comm
            .post(self.rank, (class, k as u32, j as u32, who as u32), data, dests)
            .expect("the threaded communicator cannot refuse a post");
    }

    fn fetch(&self, class: u8, k: usize, j: usize, who: usize) -> Result<Arc<Vec<f64>>> {
        self.comm.fetch(self.rank, (class, k as u32, j as u32, who as u32))
    }

    /// Ranks of this rank's whole process column (the panel collectives'
    /// participant set).
    fn col_ranks(&self) -> Vec<usize> {
        (0..self.geom.pr).map(|r| self.geom.rank(r, self.pcol)).collect()
    }

    /// The other ranks of this rank's process row (row-broadcast
    /// destinations).
    fn row_peers(&self) -> Vec<usize> {
        (0..self.geom.pc)
            .filter(|&c| c != self.pcol)
            .map(|c| self.geom.rank(self.prow, c))
            .collect()
    }

    /// Destination ranks of an `ACC` post: who fetches butterfly slot
    /// `slot` of owner `owner`? Self always (own next leg / `PivSend`
    /// read it from the stash), plus every process row whose leg role
    /// names `owner` as partner while `owner`'s accumulator sits in
    /// `slot` — the same role/slot algebra the DAG builder's edges use,
    /// so routing and edges cannot drift apart.
    fn acc_dests(&self, slot: usize, owner: usize) -> Vec<usize> {
        let pr = self.geom.pr;
        let mut dests = vec![self.rank];
        for leg in 0..tslu_leg_count(pr) {
            if tslu_acc_slot(pr, leg, owner) != slot {
                continue;
            }
            for r in 0..pr {
                if r == owner {
                    continue;
                }
                let reads = match tslu_leg_role(pr, leg, r) {
                    LegRole::Exchange { partner }
                    | LegRole::FoldCombine { partner }
                    | LegRole::FoldRecv { partner } => partner == owner,
                    _ => false,
                };
                if reads {
                    let rk = self.geom.rank(r, self.pcol);
                    if !dests.contains(&rk) {
                        dests.push(rk);
                    }
                }
            }
        }
        dests
    }

    /// Own butterfly accumulator after `l` legs — stash-resident (every
    /// `ACC` post includes self in its destinations).
    fn fetch_acc(&self, k: usize, l: usize) -> Result<Candidates<T>> {
        let slot = tslu_acc_slot(self.geom.pr, l, self.prow);
        Ok(Candidates::from_payload(&self.fetch(ACC, k, slot, self.prow)?))
    }

    /// A partner's accumulator — the one fetch in the butterfly that
    /// crosses ranks. Ledgered at the consuming fetch and attributed to
    /// the sender, exactly like the in-process runner, so per-rank totals
    /// stay communicator-independent.
    fn fetch_acc_wire(&self, k: usize, l: usize, partner: usize) -> Result<Candidates<T>> {
        let slot = tslu_acc_slot(self.geom.pr, l, partner);
        let raw = self.fetch(ACC, k, slot, partner)?;
        let sender = self.geom.rank(partner, self.pcol);
        self.ledger.record_send(sender as u32, "tslu_leg", raw.len() as u64);
        Ok(Candidates::from_payload(&raw))
    }

    /// Packs own local elements column-major as `f64` words.
    fn pack(&self, rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> Vec<f64> {
        let mut v = Vec::with_capacity(rows.len() * cols.len());
        for lj in cols {
            // SAFETY: this thread owns the whole local matrix.
            v.extend(rows.clone().map(|li| unsafe { self.cell.get(li, lj) }.to_f64()));
        }
        v
    }

    /// Drops own stashed payloads of steps the lookahead throttle proves
    /// complete. Safe at *every* task of step `k`: all step-`k` tasks sit
    /// downstream of step `k`'s panel, whose throttle edges put every
    /// step-`≤ k−d−1` task — on every rank — before it in the global
    /// order, so this rank's consumers of those payloads have already
    /// run.
    fn maybe_evict(&self, k: usize) {
        if k > self.lookahead {
            self.comm.evict_before(self.rank, (k - self.lookahead - 1) as u32);
        }
    }

    /// Local column range of block column `j` touched by step `k`'s swap
    /// (mirrors the in-process runner).
    fn swap_cols(&self, k: usize, j: usize) -> std::ops::Range<usize> {
        let b = self.nb();
        let c0 = self.glayout.local_cols_below(self.pcol, j * b);
        let wj = self.geom.wj(j);
        match self.alg {
            DistPanelAlg::Tslu => c0..c0 + wj,
            DistPanelAlg::Getf2 => {
                if j == k {
                    c0 + self.geom.jb(k)..c0 + wj
                } else {
                    c0..c0 + wj
                }
            }
        }
    }

    /// The local columns of block column `j` updated by step `k`, as
    /// `(first local col, width, col tile, intra-tile col)`.
    fn upd_cols(&self, k: usize, j: usize) -> (usize, usize, usize, usize) {
        let b = self.nb();
        let c0 = self.glayout.local_cols_below(self.pcol, j * b);
        let skip = if j == k { self.geom.jb(k) } else { 0 };
        let lo = c0 + skip;
        let wid = self.geom.upd_width(k, j);
        (lo, wid, c0 / b, lo - (c0 / b) * b)
    }

    /// Swaps two locally-owned global rows over local columns `cols`.
    fn swap_local_rows(&self, r1: usize, r2: usize, cols: std::ops::Range<usize>) {
        let (l1, l2) = (self.glayout.local_row(r1), self.glayout.local_row(r2));
        for lj in cols {
            // SAFETY: this thread owns the whole local matrix.
            unsafe {
                let a = self.cell.get(l1, lj);
                self.cell.set(l1, lj, self.cell.get(l2, lj));
                self.cell.set(l2, lj, a);
            }
        }
    }

    /// One side of a cross-owner row exchange: ship own global row `mine`
    /// over `cols` to `partner_prow`, blocking-fetch the partner's
    /// segment, overwrite in place. `class`/`who` key the message pair.
    /// Both sides post before fetching, so the pair cannot deadlock; the
    /// `f64` round trip is exact, so the result is bitwise identical to
    /// the in-process direct copies.
    #[allow(clippy::too_many_arguments)]
    fn exchange_row(
        &self,
        class: u8,
        k: usize,
        j: usize,
        who_base: usize,
        mine: usize,
        partner_prow: usize,
        cols: std::ops::Range<usize>,
    ) -> Result<()> {
        let lmine = self.glayout.local_row(mine);
        // SAFETY: this thread owns the whole local matrix.
        let seg: Vec<f64> =
            cols.clone().map(|lj| unsafe { self.cell.get(lmine, lj) }.to_f64()).collect();
        self.ledger.record_send(self.rank as u32, "swap", seg.len() as u64);
        let partner_rank = self.geom.rank(partner_prow, self.pcol);
        self.post(class, k, j, who_base + self.prow, seg, &[partner_rank]);
        let theirs = self.fetch(class, k, j, who_base + partner_prow)?;
        for (lj, &v) in cols.zip(theirs.iter()) {
            // SAFETY: this thread owns the whole local matrix.
            unsafe { self.cell.set(lmine, lj, T::from_f64(v)) };
        }
        Ok(())
    }

    // -- task bodies --------------------------------------------------------

    fn run_cand(&self, k: usize) -> Result<()> {
        let g = &self.geom;
        let (gk, jb) = (k * self.nb(), g.jb(k));
        let lr = self.cell.rows();
        let lr_k = self.glayout.local_rows_below(self.prow, gk);
        let pl0 = self.glayout.local_cols_below(self.pcol, gk);
        // SAFETY: this thread owns the whole local matrix.
        let block =
            Matrix::from_fn(lr - lr_k, jb, |i, j| unsafe { self.cell.get(lr_k + i, pl0 + j) });
        let idx: Vec<usize> =
            (lr_k..lr).map(|li| self.glayout.global_row(self.prow, li) - gk).collect();
        let cand = if lr > lr_k {
            local_candidates(&block, &idx, self.local)
        } else {
            Candidates::<T>::new(Matrix::zeros(0, jb), vec![])
        };
        self.post(ACC, k, 0, self.prow, cand.to_payload(), &self.acc_dests(0, self.prow));
        Ok(())
    }

    fn run_tslu_leg(&self, k: usize, leg: usize) -> Result<()> {
        match tslu_leg_role(self.geom.pr, leg, self.prow) {
            LegRole::Exchange { partner } => {
                let mine = self.fetch_acc(k, leg)?;
                let theirs = self.fetch_acc_wire(k, leg, partner)?;
                let acc = if self.prow < partner {
                    reduce_pair(&mine, &theirs)
                } else {
                    reduce_pair(&theirs, &mine)
                };
                self.post(
                    ACC,
                    k,
                    leg + 1,
                    self.prow,
                    acc.to_payload(),
                    &self.acc_dests(leg + 1, self.prow),
                );
            }
            LegRole::FoldCombine { partner } => {
                let mine = self.fetch_acc(k, leg)?;
                let theirs = self.fetch_acc_wire(k, leg, partner)?;
                let acc = reduce_pair(&mine, &theirs);
                self.post(
                    ACC,
                    k,
                    leg + 1,
                    self.prow,
                    acc.to_payload(),
                    &self.acc_dests(leg + 1, self.prow),
                );
            }
            LegRole::FoldRecv { partner } => {
                let theirs: Candidates<T> = self.fetch_acc_wire(k, leg, partner)?;
                self.post(
                    ACC,
                    k,
                    leg + 1,
                    self.prow,
                    theirs.to_payload(),
                    &self.acc_dests(leg + 1, self.prow),
                );
            }
            // Send halves: the producer's post already routed the payload
            // to the partner; the task models the injection.
            LegRole::FoldSend { .. } | LegRole::FoldOut { .. } => {}
            LegRole::Idle => unreachable!("idle legs are not emitted"),
        }
        Ok(())
    }

    fn run_piv_send(&self, k: usize) -> Result<()> {
        let g = &self.geom;
        let cprow = g.cprow(k);
        if self.alg == DistPanelAlg::Getf2 {
            // PDGETF2 computed and self-stashed the list; forward it to
            // the row peers whose PivRecv consumes it.
            let peers = self.row_peers();
            if !peers.is_empty() {
                let li = self.fetch(PIV, k, 0, cprow)?;
                self.post(PIV, k, 0, cprow, (*li).clone(), &peers);
            }
            return Ok(());
        }
        let gk = k * self.nb();
        // The ordered butterfly combine leaves every process row's final
        // accumulator bitwise identical, so each rank derives the swap
        // list redundantly from its own stash — no column broadcast.
        let winners: Candidates<T> = self.fetch_acc(k, tslu_leg_count(g.pr))?;
        let li = winners_to_ipiv(&winners.rows, g.shape.m - gk);
        if self.prow == cprow {
            // SAFETY: the diagonal PivSend of step k is the only writer.
            unsafe { self.ipiv.publish(gk, &li) };
        }
        let mut dests = vec![self.rank];
        dests.extend(self.row_peers());
        self.post(PIV, k, 0, cprow, li.iter().map(|&x| x as f64).collect(), &dests);
        Ok(())
    }

    fn run_piv_recv(&self, k: usize) -> Result<()> {
        self.fetch(PIV, k, 0, self.geom.cprow(k))?;
        self.ledger.record_recv(self.rank as u32, "piv_bcast", self.geom.jb(k) as u64);
        Ok(())
    }

    fn run_swap(&self, k: usize, j: usize) -> Result<()> {
        let gk = k * self.nb();
        let cols = self.swap_cols(k, j);
        if cols.is_empty() {
            return Ok(());
        }
        let li: Vec<usize> =
            self.fetch(PIV, k, 0, self.geom.cprow(k))?.iter().map(|&x| x as usize).collect();
        for (i, &p) in li.iter().enumerate() {
            if p == i {
                continue;
            }
            let (r1, r2) = (gk + i, gk + p);
            let (o1, o2) = (self.glayout.row_owner(r1), self.glayout.row_owner(r2));
            if o1 == o2 {
                if o1 == self.prow {
                    self.swap_local_rows(r1, r2, cols.clone());
                }
            } else if self.prow == o1 || self.prow == o2 {
                let (mine, partner) = if self.prow == o1 { (r1, o2) } else { (r2, o1) };
                // Every participant walks the pivot items in the same
                // order and each exchange completes (blocking) before the
                // next item starts, so chained pivots through one row see
                // the same intermediate states as the in-process sweep.
                self.exchange_row(SWP, k, j, i * self.geom.pr, mine, partner, cols.clone())?;
            }
            // Rows owned by other process rows: nothing local to touch.
        }
        Ok(())
    }

    fn run_w_send(&self, k: usize) -> Result<()> {
        let g = &self.geom;
        let (gk, jb) = (k * self.nb(), g.jb(k));
        let d0 = self.glayout.local_rows_below(self.prow, gk);
        let pl0 = self.glayout.local_cols_below(self.pcol, gk);
        let w = self.pack(d0..d0 + jb, pl0..pl0 + jb);
        self.post(WBK, k, 0, 0, w, &self.col_ranks());
        Ok(())
    }

    fn run_second(&self, k: usize) -> Result<()> {
        let g = &self.geom;
        let b = self.nb();
        let (gk, jb) = (k * b, g.jb(k));
        let cprow = g.cprow(k);
        let raw = self.fetch(WBK, k, 0, 0)?;
        let mut w: Matrix<T> = Matrix::from_col_major(jb, jb, cast_slice(&raw));
        if let Err(Error::SingularPivot { step }) = lu_nopiv(w.view_mut(), &mut NoObs) {
            return Err(Error::SingularPivot { step: gk + step });
        }
        let pl0 = self.glayout.local_cols_below(self.pcol, gk);
        if self.prow == cprow {
            let d0 = self.glayout.local_rows_below(cprow, gk);
            for lj in 0..jb {
                for li in 0..jb {
                    // SAFETY: this thread owns the whole local matrix.
                    unsafe { self.cell.set(d0 + li, pl0 + lj, w[(li, lj)]) };
                }
            }
        }
        let lb0 = self.glayout.local_rows_below(self.prow, gk + jb);
        let lr = self.cell.rows();
        if lr > lb0 {
            let u11 = w.view().submatrix(0, 0, jb, jb);
            let (tjc, jc) = (pl0 / b, pl0 % b);
            for (ti, rr) in self.cell.lay.row_tile_span(lb0..lr) {
                // SAFETY: this thread owns the whole local matrix.
                let l21 = unsafe { self.cell.tile_block(ti, tjc, rr.start, jc, rr.len(), jb) };
                trsm(Side::Right, Uplo::Upper, Diag::NonUnit, T::ONE, u11, l21);
            }
        }
        if self.prow != cprow {
            self.ledger.record_recv(self.rank as u32, "w_bcast", raw.len() as u64);
        }
        Ok(())
    }

    fn run_panel_send(&self, k: usize) -> Result<()> {
        let g = &self.geom;
        let (gk, jb) = (k * self.nb(), g.jb(k));
        let lr = self.cell.rows();
        let lr_k = self.glayout.local_rows_below(self.prow, gk);
        let pl0 = self.glayout.local_cols_below(self.pcol, gk);
        let v = self.pack(lr_k..lr, pl0..pl0 + jb);
        let mut dests = vec![self.rank];
        dests.extend(self.row_peers());
        self.post(PAN, k, 0, self.prow, v, &dests);
        Ok(())
    }

    fn run_panel_recv(&self, k: usize) -> Result<()> {
        let v = self.fetch(PAN, k, 0, self.prow)?;
        self.ledger.record_recv(self.rank as u32, "panel_bcast", v.len() as u64);
        Ok(())
    }

    fn run_trsm(&self, k: usize, j: usize) -> Result<()> {
        let g = &self.geom;
        let b = self.nb();
        let (gk, jb) = (k * b, g.jb(k));
        let cprow = g.cprow(k);
        let lr_panel = g.panel_rows(cprow, k);
        let panel_l: Matrix<T> =
            Matrix::from_col_major(lr_panel, jb, cast_slice(&self.fetch(PAN, k, 0, cprow)?));
        let l11 = panel_l.view().submatrix(0, 0, jb, jb);
        let d0 = self.glayout.local_rows_below(cprow, gk);
        let (ti_d, i0) = (d0 / b, d0 % b);
        let (_lo, wid, tj, cr0) = self.upd_cols(k, j);
        // SAFETY: this thread owns the whole local matrix.
        let u12 = unsafe { self.cell.tile_block(ti_d, tj, i0, cr0, jb, wid) };
        trsm(Side::Left, Uplo::Lower, Diag::Unit, T::ONE, l11, u12);
        Ok(())
    }

    fn run_u_send(&self, k: usize, j: usize) -> Result<()> {
        let g = &self.geom;
        let (gk, jb) = (k * self.nb(), g.jb(k));
        let cprow = g.cprow(k);
        let d0 = self.glayout.local_rows_below(cprow, gk);
        let (lo, wid, _tj, _cr0) = self.upd_cols(k, j);
        let v = self.pack(d0..d0 + jb, lo..lo + wid);
        let mut dests = vec![self.rank];
        for r in 0..g.pr {
            if r != cprow && g.below_rows(r, k) > 0 {
                dests.push(g.rank(r, self.pcol));
            }
        }
        self.post(U12, k, j, 0, v, &dests);
        Ok(())
    }

    fn run_u_recv(&self, k: usize, j: usize) -> Result<()> {
        let v = self.fetch(U12, k, j, 0)?;
        self.ledger.record_recv(self.rank as u32, "u_bcast", v.len() as u64);
        Ok(())
    }

    fn run_gemm(&self, k: usize, j: usize) -> Result<()> {
        let g = &self.geom;
        let b = self.nb();
        let (gk, jb) = (k * b, g.jb(k));
        let lr = self.cell.rows();
        let lr_k = self.glayout.local_rows_below(self.prow, gk);
        let lr_panel = lr - lr_k;
        let panel_l: Matrix<T> =
            Matrix::from_col_major(lr_panel, jb, cast_slice(&self.fetch(PAN, k, 0, self.prow)?));
        let (_lo, wid, tj, cr0) = self.upd_cols(k, j);
        let u12: Matrix<T> =
            Matrix::from_col_major(jb, wid, cast_slice(&self.fetch(U12, k, j, 0)?));
        let lb0 = self.glayout.local_rows_below(self.prow, gk + jb);
        for (ti, rr) in self.cell.lay.row_tile_span(lb0..lr) {
            let l21 = panel_l.view().submatrix(ti * b + rr.start - lr_k, 0, rr.len(), jb);
            // SAFETY: this thread owns the whole local matrix.
            let a22 = unsafe { self.cell.tile_block(ti, tj, rr.start, cr0, rr.len(), wid) };
            gemm(-T::ONE, l21, u12.view(), T::ONE, a22);
        }
        Ok(())
    }

    /// The decomposed `PDGETF2` collective: all process rows of the panel
    /// column walk the picket fence together, column by column, with the
    /// in-process body's cross-rank touches replaced by real messages.
    /// Every fold runs in ascending process-row order with the exact
    /// shared-mailbox comparison, so the elected pivots — and therefore
    /// the factors — are bitwise identical.
    fn run_panel_getf2(&self, k: usize) -> Result<()> {
        let g = &self.geom;
        let b = self.nb();
        let (gk, jb) = (k * b, g.jb(k));
        let (pr, cprow) = (g.pr, g.cprow(k));
        let pl0 = self.glayout.local_cols_below(self.pcol, gk);
        let (tjc, jc) = (pl0 / b, pl0 % b);
        let others: Vec<usize> =
            (0..pr).filter(|&r| r != self.prow).map(|r| g.rank(r, self.pcol)).collect();
        let mut li_piv = Vec::with_capacity(jb);
        for jj in 0..jb {
            let gc = gk + jj;
            // Local scan over own rows (first strict max in ascending
            // global order — identical arithmetic to the shared body).
            let r0 = self.glayout.local_rows_below(self.prow, gc);
            let (mut ba, mut bg, mut bv) = (T::NEG_INFINITY, usize::MAX, T::ZERO);
            for li in r0..self.cell.rows() {
                // SAFETY: this thread owns the whole local matrix.
                let v = unsafe { self.cell.get(li, pl0 + jj) };
                if v.abs() > ba {
                    ba = v.abs();
                    bg = self.glayout.global_row(self.prow, li);
                    bv = v;
                }
            }
            if !others.is_empty() {
                // 3-word candidate: [|v|, global row (−1 = no rows), v].
                let enc = if bg == usize::MAX { -1.0 } else { bg as f64 };
                self.post(GCD, k, jj, self.prow, vec![ba.to_f64(), enc, bv.to_f64()], &others);
            }
            // Fold all candidates in ascending process-row order — the
            // associative linear fold the in-process picket fence runs.
            let (mut best, mut best_g, mut best_v) = (T::NEG_INFINITY, usize::MAX, T::ZERO);
            for prow2 in 0..pr {
                let (ca, cg, cv) = if prow2 == self.prow {
                    (ba, bg, bv)
                } else {
                    let raw = self.fetch(GCD, k, jj, prow2)?;
                    self.ledger.record_recv(self.rank as u32, "panel_getf2", raw.len() as u64);
                    let vals: Vec<T> = cast_slice(&raw);
                    let cg = if raw[1] < 0.0 { usize::MAX } else { raw[1] as usize };
                    (vals[0], cg, vals[2])
                };
                if ca > best || (ca == best && cg < best_g) {
                    best = ca;
                    best_g = cg;
                    best_v = cv;
                }
            }
            li_piv.push(best_g.wrapping_sub(gk));
            if !(best != T::ZERO && best.is_finite()) {
                // Every participant reaches the same verdict at the same
                // column (they folded identical candidate sets), so the
                // grid cancels coherently and the driver reports one step.
                return Err(Error::SingularPivot { step: gc });
            }
            // The winner's trailing row, captured before the exchange.
            let ow = self.glayout.row_owner(best_g);
            let urow: Vec<T> = if jj + 1 < jb {
                if ow == self.prow {
                    let lw = self.glayout.local_row(best_g);
                    // SAFETY: this thread owns the whole local matrix.
                    let row: Vec<T> =
                        (jj + 1..jb).map(|c| unsafe { self.cell.get(lw, pl0 + c) }).collect();
                    if !others.is_empty() {
                        let payload: Vec<f64> = row.iter().map(|&v| v.to_f64()).collect();
                        self.post(GUR, k, jj, 0, payload, &others);
                    }
                    row
                } else {
                    let raw = self.fetch(GUR, k, jj, 0)?;
                    self.ledger.record_recv(self.rank as u32, "panel_getf2", raw.len() as u64);
                    cast_slice(&raw)
                }
            } else {
                Vec::new()
            };
            // Pivot-row exchange over the whole panel width.
            if best_g != gc {
                let og = self.glayout.row_owner(gc);
                if og == ow {
                    if og == self.prow {
                        self.swap_local_rows(gc, best_g, pl0..pl0 + jb);
                    }
                } else if self.prow == og || self.prow == ow {
                    let (mine, partner) = if self.prow == og { (gc, ow) } else { (best_g, og) };
                    self.exchange_row(GRX, k, jj, 0, mine, partner, pl0..pl0 + jb)?;
                }
            }
            // Scale + rank-1 update on own rows only.
            let inv = best_v.recip();
            let r1 = self.glayout.local_rows_below(self.prow, gc + 1);
            let lr = self.cell.rows();
            if lr > r1 {
                for (ti, rr) in self.cell.lay.row_tile_span(r1..lr) {
                    // SAFETY: this thread owns the whole local matrix.
                    let mut col =
                        unsafe { self.cell.tile_block(ti, tjc, rr.start, jc + jj, rr.len(), 1) };
                    scal(inv, col.col_mut(0));
                }
                if jj + 1 < jb {
                    for (ti, rr) in self.cell.lay.row_tile_span(r1..lr) {
                        let lview = unsafe {
                            self.cell.tile_block(ti, tjc, rr.start, jc + jj, rr.len(), 1)
                        };
                        let trailing = unsafe {
                            self.cell.tile_block(
                                ti,
                                tjc,
                                rr.start,
                                jc + jj + 1,
                                rr.len(),
                                jb - jj - 1,
                            )
                        };
                        ger(-T::ONE, lview.as_view().col(0), &urow, trailing);
                    }
                }
            }
        }
        if self.prow == cprow {
            // SAFETY: the diagonal participant is the only writer.
            unsafe { self.ipiv.publish(gk, &li_piv) };
        }
        // Self-stash the swap list for this rank's Swap tasks; PivSend
        // forwards it to the row peers.
        self.post(PIV, k, 0, cprow, li_piv.iter().map(|&x| x as f64).collect(), &[self.rank]);
        Ok(())
    }

    fn run_task(&self, task: Task) -> Result<()> {
        let Task::Dist(DistTask { kind, k, j, .. }) = task else {
            unreachable!("distributed runner received a shared-memory task")
        };
        let (k, j) = (k as usize, j as usize);
        self.maybe_evict(k);
        match kind {
            DistKind::Cand => self.run_cand(k),
            DistKind::TsluLeg => self.run_tslu_leg(k, j),
            DistKind::PanelGetf2 => self.run_panel_getf2(k),
            DistKind::PivSend => self.run_piv_send(k),
            DistKind::PivRecv => self.run_piv_recv(k),
            DistKind::Swap => self.run_swap(k, j),
            DistKind::WSend => self.run_w_send(k),
            DistKind::Second => self.run_second(k),
            DistKind::PanelSend => self.run_panel_send(k),
            DistKind::PanelRecv => self.run_panel_recv(k),
            DistKind::Trsm => self.run_trsm(k, j),
            DistKind::USend => self.run_u_send(k, j),
            DistKind::URecv => self.run_u_recv(k, j),
            DistKind::Gemm => self.run_gemm(k, j),
        }
    }

    /// Drives this rank's whole queue. Returns the per-task timings plus
    /// the absolute elimination step if *this* rank hit the singular
    /// pivot (collateral [`Error::Canceled`] exits return `None` — the
    /// root cause is reported by the rank that found it).
    fn run_queue(
        &self,
        queue: &[Task],
        recorder: &Recorder,
        epoch: Instant,
    ) -> (Vec<TaskTiming>, Option<usize>) {
        let mut timings = Vec::with_capacity(queue.len());
        for &task in queue {
            let start = epoch.elapsed().as_secs_f64();
            match self.run_task(task) {
                Ok(()) => {
                    let end = epoch.elapsed().as_secs_f64();
                    recorder.record_interval(
                        task.to_string(),
                        task.cat(),
                        self.rank as u32,
                        self.rank as u32,
                        start,
                        end,
                    );
                    // Each rank replays its projection serially, so a task
                    // is "ready" the moment the rank reaches it: queue
                    // delay is zero by construction and the real waiting
                    // is inside tasks, accounted as blocked-fetch time.
                    timings.push(TaskTiming { task, worker: self.rank, ready: start, start, end });
                }
                Err(Error::SingularPivot { step }) => {
                    self.comm.cancel(self.rank);
                    return (timings, Some(step));
                }
                Err(Error::Canceled) => return (timings, None),
                Err(e) => panic!("unexpected distributed task failure: {e:?}"),
            }
        }
        (timings, None)
    }
}

/// The [`CommKind::Threaded`](crate::comm::CommKind::Threaded) driver:
/// spawns one OS thread per grid rank over a [`ThreadedComm`], runs the
/// per-rank schedule projections end-to-end concurrently, and assembles
/// the same [`DistRtReport`] / [`DistFactors`] the in-process path
/// produces (factors bitwise identical; ledger terms identical, plus the
/// exact `panel_getf2` term for the traffic that only exists once the
/// `PDGETF2` panel's internals physically cross the seam).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_dist_threaded<T: Scalar>(
    a: &Matrix<T>,
    b: usize,
    pr: usize,
    pc: usize,
    local: LocalLu,
    alg: DistPanelAlg,
    rt: DistRtOpts,
    mch: &MachineConfig,
) -> (DistRtReport, DistFactors<T>) {
    let (m, n) = (a.rows(), a.cols());
    let kn = m.min(n);
    assert!(b > 0 && pr > 0 && pc > 0, "block and grid must be positive");
    let glayout = TileLayout::new(m, n, b, b).with_grid(pr, pc);
    let mut locals: Vec<TileMatrix<T>> = (0..pr * pc)
        .map(|rank| {
            let (prow, pcol) = (rank % pr, rank / pr);
            TileMatrix::from_fn(glayout.local_layout(prow, pcol), |li, lj| {
                a[(glayout.global_row(prow, li), glayout.global_col(pcol, lj))]
            })
        })
        .collect();
    let shape = LuShape { m, n, nb: b };
    let geom = DistGeom { shape, pr, pc };
    let dag = LuDag::build_dist_with(shape, (pr, pc), rt.lookahead, alg);
    let queues = rank_queues(&dag, &geom);
    let mut ipiv = vec![0usize; kn];
    let ipiv_cell = IpivCell { ptr: ipiv.as_mut_ptr(), len: kn };
    let comm = ThreadedComm::new(pr * pc);
    let ledger = CommLedger::new();
    let recorder = Recorder::new();
    let epoch = Instant::now();

    let results: Vec<(Vec<TaskTiming>, Option<usize>)> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(pr * pc);
        for (rank, (mat, queue)) in locals.iter_mut().zip(queues.iter()).enumerate() {
            let (comm, ledger, recorder, ipiv_ref) = (&comm, &ledger, &recorder, &ipiv_cell);
            handles.push(s.spawn(move || {
                let worker = RankWorker {
                    rank,
                    prow: rank % pr,
                    pcol: rank / pr,
                    geom,
                    glayout,
                    alg,
                    local,
                    lookahead: rt.lookahead,
                    cell: RankCell::new(mat),
                    comm,
                    ledger,
                    ipiv: ipiv_ref,
                };
                worker.run_queue(queue, recorder, epoch)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("rank thread panicked")).collect()
    });

    let first_singular = results.iter().filter_map(|(_, f)| *f).min();
    // Success or cancellation, undelivered payloads end with the run.
    let drained = comm.drain();
    let residual = comm.residual_words();
    ledger.set_drain(drained as u64, residual as u64);
    if first_singular.is_none() {
        assert_eq!(residual, 0, "threaded mailboxes leaked {residual} words after the drain");
    }
    // Fold the communicator's blocked-fetch wait clocks into the ledger
    // before the report snapshot: per-(rank, term) wait rows ride next to
    // the word counts they explain.
    for rank in 0..pr * pc {
        for (term, nanos) in comm.wait_ns(rank) {
            ledger.record_wait(rank as u32, term, nanos);
        }
    }
    let comm_report = ledger.report();

    let exec = if first_singular.is_some() {
        ExecReport::default()
    } else {
        let mut timings: Vec<TaskTiming> = results.into_iter().flat_map(|(t, _)| t).collect();
        timings.sort_by(|x, y| x.end.total_cmp(&y.end).then(x.start.total_cmp(&y.start)));
        ExecReport {
            order: timings.iter().map(|t| t.task).collect(),
            timings,
            workers: pr * pc,
            wall: epoch.elapsed().as_secs_f64(),
        }
    };

    let model = DistCostModel {
        geom,
        alg,
        recursive_panel: matches!(local, LocalLu::Recursive),
        mch: mch.clone(),
    };
    let sched = simulate_dist_schedule(&dag, |t| model.cost(t), mch);
    let critical_path = dag.critical_path(|t| model.cost(t).total(mch));
    let mut expected_mailbox = expected_mailbox_comm(&dag, &geom, alg);
    expected_mailbox.extend(expected_threaded_getf2_comm(&dag, &geom, alg));
    let report = DistRtReport {
        sim: SimReport { per_rank: sched.per_rank },
        traces: sched.traces,
        exec,
        critical_path,
        makespan: sched.makespan,
        tasks: dag.len(),
        comm: comm_report,
        expected_mailbox,
        modeled_terms: modeled_comm_terms(&dag, &model),
        spans: recorder.take(),
        communicator: comm.name(),
    };
    let lu = assemble_2d(glayout, &locals);
    (report, DistFactors { lu, ipiv, first_singular })
}
