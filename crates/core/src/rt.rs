//! CALU on the `calu-runtime` task DAG — the shared-memory execution
//! engine behind [`tiled_calu_inplace`](crate::tiled::tiled_calu_inplace)
//! and [`par_calu_inplace`](crate::par::par_calu_inplace), exposed
//! directly as [`runtime_calu_inplace`] for callers that want to pick the
//! executor and lookahead depth.
//!
//! The runtime schedules; this module supplies the kernels: a
//! [`calu_runtime::TaskRunner`] whose task bodies are the *same* calls the
//! sequential sweep makes, carved into block-column / tile granularity.
//! Why the factors are **bitwise identical** to
//! [`calu_inplace`](crate::calu::calu_inplace) under *any* topological
//! execution order:
//!
//! * the panel kernel ([`tslu_factor_with`]) is byte-for-byte the
//!   sequential call on the same full-height panel;
//! * row swaps applied per block column are the same element swaps as one
//!   whole-matrix `apply_ipiv`;
//! * `trsm` forward-substitutes each column of `U₁₂` independently, so a
//!   column split changes nothing;
//! * `gemm` accumulates every `C(i,j)` along the inner (panel-width)
//!   dimension in a fixed order regardless of how `C` is partitioned, so
//!   tile splits of the trailing update are exact;
//! * every read/write overlap between tasks is ordered by a DAG edge
//!   (see `calu_runtime::dag`), so there are no racy interleavings to
//!   reorder arithmetic.
//!
//! The observer is shared behind a mutex, locked per callback (so a
//! concurrent tile's `on_stage` never waits out a panel); its statistics
//! are order-free (documented on [`crate::instrument::PivotStats`]), and
//! the panel events — the only ordered ones — are serialized by the
//! panel chain.

use calu_matrix::blas1::scal;
use calu_matrix::blas2::ger;
use calu_matrix::blas3::{gemm, trsm};
use calu_matrix::lapack::lu_nopiv;
use calu_matrix::perm::apply_ipiv;
use calu_matrix::{
    Diag, Error, MatView, MatViewMut, Matrix, NoObs, PivotObserver, Result, Scalar, Side,
    TileLayout, TileMatrix, Uplo,
};
use calu_runtime::{
    panel_tree_levels, panel_tree_resolve, ExecReport, ExecutorKind, LuDag, LuShape, PanelMode,
    Task, TaskRunner,
};
use std::sync::Mutex;

use crate::calu::{CaluOpts, LuFactors};
use crate::tournament::{reduce_pair, Candidates};
use crate::tslu::{local_candidates, tslu_factor_with, winners_to_ipiv, LocalLu};

/// How a runtime-scheduled factorization should execute.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeOpts {
    /// Panel lookahead depth `d ≥ 1`: panels may run up to `d` steps ahead
    /// of the slowest trailing update. Depth 1 is the schedule of the old
    /// hardwired lookahead; `usize::MAX/2`-ish values mean "unthrottled".
    pub lookahead: usize,
    /// Which executor drives the DAG.
    pub executor: ExecutorKind,
    /// Elect panel candidates on the rayon pool inside each `Panel` task
    /// (the numerics are identical either way; see
    /// [`crate::tslu::tslu_pivots_with`]).
    pub parallel_panel: bool,
}

impl Default for RuntimeOpts {
    fn default() -> Self {
        Self {
            lookahead: 1,
            executor: ExecutorKind::Threaded { threads: 0 },
            parallel_panel: false,
        }
    }
}

/// Shared-mutable handle to the matrix being factored. Tasks carve
/// disjoint views out of it; the DAG's edges are the proof of
/// disjointness among concurrently running tasks (every overlapping pair
/// is ordered), which is exactly the invariant `MatViewMut` requires.
pub(crate) struct SharedMat<T> {
    ptr: *mut T,
    rows: usize,
    cols: usize,
    ld: usize,
}

unsafe impl<T: Send> Send for SharedMat<T> {}
unsafe impl<T: Sync> Sync for SharedMat<T> {}

impl<T: Scalar> SharedMat<T> {
    pub(crate) fn new(a: &mut MatViewMut<'_, T>) -> Self {
        let rows = a.rows();
        let cols = a.cols();
        let ld = a.ld();
        let ptr =
            if rows == 0 || cols == 0 { std::ptr::null_mut() } else { a.col_mut(0).as_mut_ptr() };
        Self { ptr, rows, cols, ld }
    }

    /// A mutable view of the block `rows × cols` at `(i, j)`, built from
    /// raw parts so that logically disjoint blocks whose strided spans
    /// interleave never materialize overlapping `&mut` slices.
    ///
    /// # Safety
    /// The caller must hold (via DAG ordering) exclusive access to the
    /// block's *elements* for the view's lifetime, and the block must be
    /// in range.
    pub(crate) unsafe fn block(
        &self,
        i: usize,
        j: usize,
        nr: usize,
        nc: usize,
    ) -> MatViewMut<'_, T> {
        debug_assert!(i + nr <= self.rows && j + nc <= self.cols);
        debug_assert!(nr > 0 && nc > 0, "tasks never touch empty blocks");
        unsafe { MatViewMut::from_raw_parts(self.ptr.add(j * self.ld + i), nr, nc, self.ld) }
    }
}

/// Shared pivot vector: `Panel(k)` writes its `jb` slots exclusively
/// ([`Self::write`]), `Swap(k, ·)` tasks read them back concurrently
/// ([`Self::read`] — several same-step swaps may read at once, so the
/// read path hands out shared references only). Writes happen-before all
/// reads via the `Swap ← Panel` edges (the executor's pool lock carries
/// the synchronization), and distinct panels own disjoint slots.
struct SharedIpiv {
    ptr: *mut usize,
    len: usize,
}

unsafe impl Send for SharedIpiv {}
unsafe impl Sync for SharedIpiv {}

impl SharedIpiv {
    /// # Safety
    /// Only the `Panel` task owning `range` may call this, and nothing
    /// else may access the range while the returned slice lives. (The
    /// `&self → &mut` shape is the whole point of the cell: the DAG, not
    /// the borrow checker, proves exclusivity.)
    #[allow(clippy::mut_from_ref)]
    unsafe fn write(&self, range: std::ops::Range<usize>) -> &mut [usize] {
        debug_assert!(range.end <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len()) }
    }

    /// # Safety
    /// The caller's task must be DAG-ordered after the `Panel` that wrote
    /// `range` (no writer may be live; concurrent readers are fine).
    unsafe fn read(&self, range: std::ops::Range<usize>) -> &[usize] {
        debug_assert!(range.end <= self.len);
        unsafe { std::slice::from_raw_parts(self.ptr.add(range.start), range.len()) }
    }

    /// Panel `k`'s pivot swaps, local to rows `k·nb..m` — the read-back
    /// both the flat and the tile runner use in their `Swap` tasks.
    ///
    /// # Safety
    /// The caller's task must be DAG-ordered after `Panel(k)`.
    unsafe fn read_local(&self, shape: &LuShape, k: usize) -> Vec<usize> {
        let base = k * shape.nb;
        let jb = shape.panel_width(k);
        unsafe { self.read(base..base + jb) }.iter().map(|&p| p - base).collect()
    }

    /// Publishes a panel's elected pivots (local to the panel) into their
    /// absolute slots — the write-back both runners' `Panel` tasks use.
    ///
    /// # Safety
    /// Only the `Panel` task owning the slots at `base` may call this.
    unsafe fn publish(&self, base: usize, local: &[usize]) {
        let slots = unsafe { self.write(base..base + local.len()) };
        for (slot, &p) in slots.iter_mut().zip(local) {
            *slot = p + base;
        }
    }
}

/// Rebases a panel kernel's `SingularPivot` step (local to the panel
/// starting at row `base`) to the absolute elimination step.
fn rebase_singular(base: usize) -> impl Fn(Error) -> Error {
    move |e| match e {
        Error::SingularPivot { step } => Error::SingularPivot { step: step + base },
        other => other,
    }
}

/// Forwards observer callbacks through the shared mutex, locking per
/// event rather than per task — a concurrent `Gemm` tile's `on_stage`
/// never waits out a whole panel factorization, only one callback.
struct MutexObs<'a, 'o, O>(&'a Mutex<&'o mut O>);

impl<T: Scalar, O: PivotObserver<T> + Send> PivotObserver<T> for MutexObs<'_, '_, O> {
    fn on_pivot(&mut self, step: usize, pivot: T, col_max: T) {
        self.0.lock().expect("observer mutex poisoned").on_pivot(step, pivot, col_max);
    }

    fn on_stage(&mut self, changed: &calu_matrix::MatView<'_, T>) {
        self.0.lock().expect("observer mutex poisoned").on_stage(changed);
    }

    fn on_multipliers(&mut self, col_below_diag: &[T]) {
        self.0.lock().expect("observer mutex poisoned").on_multipliers(col_below_diag);
    }
}

/// Per-step candidate-slot store of the resident panel subgraph
/// ([`PanelMode::Resident`]): one slot per tournament-tree node (leaves
/// included), written exactly once by the node's `PanelElect`/`PanelReduce`
/// task and taken exactly once by its parent (or by `PanelFinish` at the
/// root). The tree edges order every write before its read; the per-slot
/// mutex only publishes the memory across workers — it is never contended
/// beyond that handoff. Slot placement uses the same
/// [`panel_tree_resolve`] the DAG builder uses for edge endpoints, so both
/// sides agree on where each subtree's winners live.
struct ResidentPanels<T> {
    steps: Vec<StepSlots<T>>,
}

struct StepSlots<T> {
    /// Leaf count: tiles spanned by this step's panel.
    t: usize,
    /// Flat-slot offset of each tree level.
    offsets: Vec<usize>,
    slots: Vec<Mutex<Option<Candidates<T>>>>,
}

impl<T: Scalar> ResidentPanels<T> {
    fn new(shape: &LuShape) -> Self {
        let rb = shape.row_blocks();
        let steps = (0..shape.steps())
            .map(|k| {
                let t = rb - k;
                let counts = panel_tree_levels(t);
                let mut offsets = Vec::with_capacity(counts.len());
                let mut total = 0usize;
                for &c in &counts {
                    offsets.push(total);
                    total += c;
                }
                StepSlots { t, offsets, slots: (0..total).map(|_| Mutex::new(None)).collect() }
            })
            .collect();
        Self { steps }
    }

    fn put(&self, k: usize, level: usize, i: usize, cand: Candidates<T>) {
        let s = &self.steps[k];
        let prev = s.slots[s.offsets[level] + i].lock().expect("slot mutex").replace(cand);
        debug_assert!(prev.is_none(), "candidate slot written twice");
    }

    /// Takes subtree node `(level, i)`'s candidate set, resolving
    /// pass-through single-child nodes down to the producing descendant.
    fn take(&self, k: usize, level: usize, i: usize) -> Candidates<T> {
        let s = &self.steps[k];
        let (l, i) = panel_tree_resolve(s.t, level, i);
        s.slots[s.offsets[l] + i]
            .lock()
            .expect("slot mutex")
            .take()
            .expect("candidate produced by a DAG-ordered predecessor")
    }

    fn root_level(&self, k: usize) -> usize {
        self.steps[k].offsets.len() - 1
    }
}

/// `PanelElect` body shared by both runners: tournament election on one
/// tile's rows of the panel. Only the `≤ nb × jb` election copy intrinsic
/// to tournament pivoting is made — the resident tile itself is read in
/// place and left untouched. `r0` is the tile's first row, panel-local,
/// so the elected `Candidates::rows` are panel-local row ids the reduce
/// tree can fold directly.
fn elect_resident<T: Scalar>(block: MatView<'_, T>, r0: usize, local: LocalLu) -> Candidates<T> {
    let rows: Vec<usize> = (r0..r0 + block.rows()).collect();
    local_candidates(&block.to_matrix(), &rows, local)
}

/// `PanelApply` body shared by both runners: forms one tile's rows of the
/// panel's `L₂₁` in place against the finished `U₁₁`. For each panel
/// column `j` it scales the tile's column by `1/u_jj` and rank-1-updates
/// the columns right of it — exactly the restriction of `lu_nopiv`'s
/// per-column `scal`+`ger` sweep to rows lying entirely below the
/// diagonal block, in the same column order with the same kernels, so for
/// a given pivot sequence the tile holds bitwise the values a full-height
/// panel elimination would have produced (column `j`'s update of a row
/// below the diagonal depends only on that row and `U₁₁`, never on other
/// trailing rows).
fn apply_l21<T: Scalar, O: PivotObserver<T>>(
    u11: MatView<'_, T>,
    mut tile: MatViewMut<'_, T>,
    obs: &mut O,
) {
    let jb = u11.cols();
    debug_assert_eq!(tile.cols(), jb);
    let mut urow = vec![T::ZERO; jb.saturating_sub(1)];
    for j in 0..jb {
        let inv = u11.get(j, j).recip();
        scal(inv, tile.col_mut(j));
        obs.on_multipliers(tile.col(j));
        let width = jb - j - 1;
        if width > 0 {
            for (c, u) in urow[..width].iter_mut().enumerate() {
                *u = u11.get(j, j + 1 + c);
            }
            let (left, mut right) = tile.rb_mut().split_at_col_mut(j + 1);
            ger(-T::ONE, left.col(j), &urow[..width], right.rb_mut());
            obs.on_stage(&right.as_view());
        }
    }
}

/// Binds the LU kernels to runtime tasks over one matrix.
struct LuRunner<'a, T, O> {
    mat: SharedMat<T>,
    ipiv: SharedIpiv,
    shape: LuShape,
    opts: CaluOpts,
    parallel_panel: bool,
    /// Candidate store of the resident panel subgraph
    /// (`Some` iff `opts.panel_mode == PanelMode::Resident`).
    resident: Option<ResidentPanels<T>>,
    obs: Mutex<&'a mut O>,
}

impl<T: Scalar, O: PivotObserver<T> + Send> TaskRunner for LuRunner<'_, T, O> {
    fn run(&self, task: Task) -> Result<()> {
        let (m, nb) = (self.shape.m, self.shape.nb);
        match task {
            Task::Panel { k } => {
                let base = k * nb;
                let jb = self.shape.panel_width(k);
                // SAFETY: Panel(k) is the exclusive owner of rows base..m
                // of block column k (predecessors completed, successors
                // blocked), and of its ipiv slots.
                let panel = unsafe { self.mat.block(base, base, m - base, jb) };
                let mut obs = MutexObs(&self.obs);
                let r = tslu_factor_with(
                    panel,
                    self.opts.p,
                    self.opts.local,
                    self.parallel_panel,
                    &mut obs,
                )
                .map_err(rebase_singular(base))?;
                unsafe { self.ipiv.publish(base, &r.ipiv) };
                Ok(())
            }
            Task::PanelElect { k, ti } => {
                let base = k * nb;
                let jb = self.shape.panel_width(k);
                let rows = self.shape.row_range(ti);
                // SAFETY: the elect only reads its own tile's rows of
                // block column k (its gemm predecessor is done; the next
                // writer, PanelFinish, is DAG-ordered after it through the
                // reduce tree).
                let block = unsafe { self.mat.block(rows.start, base, rows.len(), jb) };
                let cand = elect_resident(block.as_view(), rows.start - base, self.opts.local);
                self.resident.as_ref().expect("resident store").put(k, 0, ti - k, cand);
                Ok(())
            }
            Task::PanelReduce { k, level, ti, .. } => {
                let store = self.resident.as_ref().expect("resident store");
                let i = (ti - k) >> level;
                let lo = store.take(k, level - 1, 2 * i);
                let hi = store.take(k, level - 1, 2 * i + 1);
                store.put(k, level, i, reduce_pair(&lo, &hi));
                Ok(())
            }
            Task::PanelFinish { k } => {
                let base = k * nb;
                let jb = self.shape.panel_width(k);
                let store = self.resident.as_ref().expect("resident store");
                let root = store.take(k, store.root_level(k), 0);
                let local = winners_to_ipiv(&root.rows, m - base);
                // Swap the tournament winners to the top of the panel's
                // own block column (every elect is DAG-ordered before this
                // task through the reduce tree, every later toucher after
                // it; the Swap tasks handle all other columns).
                // SAFETY: Finish exclusively owns rows base..m of block
                // column k and the step's ipiv slots.
                let panel = unsafe { self.mat.block(base, base, m - base, jb) };
                apply_ipiv(panel, &local);
                // Factor the diagonal block's rows (jb ≤ h_k): rows
                // 0..h_k of the pivoted panel fully determine their own
                // elimination, so this is self-contained — and where a
                // genuinely singular panel surfaces.
                let h = self.shape.row_range(k).len();
                let diag = unsafe { self.mat.block(base, base, h, jb) };
                let mut obs = MutexObs(&self.obs);
                lu_nopiv(diag, &mut obs).map_err(rebase_singular(base))?;
                unsafe { self.ipiv.publish(base, &local) };
                Ok(())
            }
            Task::PanelApply { k, ti } => {
                let base = k * nb;
                let jb = self.shape.panel_width(k);
                let rows = self.shape.row_range(ti);
                // SAFETY: the apply owns its tile's rows of block column
                // k; U₁₁ is stable under concurrent readers (sibling
                // applies and this step's trsms all read it).
                let u11 = unsafe { self.mat.block(base, base, jb, jb) };
                let tile = unsafe { self.mat.block(rows.start, base, rows.len(), jb) };
                let mut obs = MutexObs(&self.obs);
                apply_l21(u11.as_view(), tile, &mut obs);
                Ok(())
            }
            Task::Swap { k, j } => {
                let base = k * nb;
                let local = unsafe { self.ipiv.read_local(&self.shape, k) };
                let cols = self.shape.update_col_range(k, j);
                // SAFETY: Swap(k,j) owns rows base..m of block column j.
                let block = unsafe { self.mat.block(base, cols.start, m - base, cols.len()) };
                apply_ipiv(block, &local);
                Ok(())
            }
            Task::Trsm { k, j } => {
                let base = k * nb;
                let jb = self.shape.panel_width(k);
                let cols = self.shape.update_col_range(k, j);
                // SAFETY: Trsm(k,j) owns rows base..base+jb of block
                // column j and (shared, read-only among readers that are
                // all ordered before the next writer) L₁₁ of column k.
                let l11 = unsafe { self.mat.block(base, base, jb, jb) };
                let u12 = unsafe { self.mat.block(base, cols.start, jb, cols.len()) };
                trsm(Side::Left, Uplo::Lower, Diag::Unit, T::ONE, l11.as_view(), u12);
                Ok(())
            }
            Task::Gemm { k, i, j } => {
                let base = k * nb;
                let jb = self.shape.panel_width(k);
                let rows = self.shape.row_range(i);
                let cols = self.shape.col_range(j);
                // SAFETY: Gemm(k,i,j) owns its trailing tile; L₂₁ and U₁₂
                // are stable until the swaps that are DAG-ordered after
                // every gemm of step k.
                let l21 = unsafe { self.mat.block(rows.start, base, rows.len(), jb) };
                let u12 = unsafe { self.mat.block(base, cols.start, jb, cols.len()) };
                let tile =
                    unsafe { self.mat.block(rows.start, cols.start, rows.len(), cols.len()) };
                gemm(-T::ONE, l21.as_view(), u12.as_view(), T::ONE, tile);
                let tile =
                    unsafe { self.mat.block(rows.start, cols.start, rows.len(), cols.len()) };
                self.obs.lock().expect("observer mutex poisoned").on_stage(&tile.as_view());
                Ok(())
            }
            Task::Dist(_) | Task::Solve(_) => {
                unreachable!("factorization runner received a dist/solve task")
            }
        }
    }
}

/// Shared-mutable handle to a [`TileMatrix`] being factored — the
/// tile-major counterpart of [`SharedMat`]. Tasks carve views out of
/// single tiles (every operand of `Trsm`/`Gemm` lives inside one tile,
/// which is the point of the layout); only the cross-tile row swaps and
/// the panel gather/scatter walk several tiles, and the DAG's edges
/// order every overlapping pair of tasks.
struct SharedTiles<T> {
    ptr: *mut T,
    layout: TileLayout,
}

unsafe impl<T: Send> Send for SharedTiles<T> {}
unsafe impl<T: Sync> Sync for SharedTiles<T> {}

impl<T: Scalar> SharedTiles<T> {
    fn new(a: &mut TileMatrix<T>) -> Self {
        Self { ptr: a.as_mut_slice().as_mut_ptr(), layout: a.layout() }
    }

    /// Mutable view of the `nr x nc` block at `(i0, j0)` *inside tile
    /// `(ti, tj)`* (tile-local coordinates). The view's leading dimension
    /// is the tile height, so the block is cache-contained.
    ///
    /// # Safety
    /// The caller must hold (via DAG ordering) exclusive access to the
    /// block's elements for the view's lifetime, and the block must be in
    /// range of the tile.
    unsafe fn tile_block(
        &self,
        ti: usize,
        tj: usize,
        i0: usize,
        j0: usize,
        nr: usize,
        nc: usize,
    ) -> MatViewMut<'_, T> {
        let h = self.layout.tile_height(ti);
        debug_assert!(i0 + nr <= h && j0 + nc <= self.layout.tile_width(tj));
        debug_assert!(nr > 0 && nc > 0, "tasks never touch empty blocks");
        let off = self.layout.tile_offset(ti, tj) + j0 * h + i0;
        unsafe { MatViewMut::from_raw_parts(self.ptr.add(off), nr, nc, h) }
    }

    /// Swaps global rows `r1` and `r2` across the global column range
    /// `cols`, crossing tile boundaries — the same element swaps a flat
    /// `swap_rows` performs.
    ///
    /// # Safety
    /// The caller's task must own both rows over `cols` (DAG-ordered
    /// against every other toucher).
    unsafe fn swap_rows_in_cols(&self, r1: usize, r2: usize, cols: std::ops::Range<usize>) {
        if r1 == r2 {
            return;
        }
        for j in cols {
            unsafe {
                let a = self.ptr.add(self.layout.elem_offset(r1, j));
                let b = self.ptr.add(self.layout.elem_offset(r2, j));
                std::ptr::swap(a, b);
            }
        }
    }
}

/// Binds the LU kernels to runtime tasks over tile-major storage. The
/// task set, DAG, and executors are exactly those of [`LuRunner`]; only
/// operand addressing differs — `Trsm`/`Gemm` bodies read and write
/// single contiguous tiles, and the panel gathers its column of tiles
/// into a scratch panel (tile-major LU's explicit panel copy), factors
/// it with the byte-identical sequential kernel, and scatters back.
struct LuTileRunner<'a, T, O> {
    tiles: SharedTiles<T>,
    ipiv: SharedIpiv,
    shape: LuShape,
    opts: CaluOpts,
    parallel_panel: bool,
    /// Candidate store of the resident panel subgraph
    /// (`Some` iff `opts.panel_mode == PanelMode::Resident`).
    resident: Option<ResidentPanels<T>>,
    obs: Mutex<&'a mut O>,
}

impl<T: Scalar, O: PivotObserver<T> + Send> TaskRunner for LuTileRunner<'_, T, O> {
    fn run(&self, task: Task) -> Result<()> {
        let (m, nb) = (self.shape.m, self.shape.nb);
        let rb = self.shape.row_blocks();
        match task {
            Task::Panel { k } => {
                let base = k * nb;
                let jb = self.shape.panel_width(k);
                // Gather the column of tiles into one contiguous scratch
                // panel (lossless copies), run the byte-identical
                // sequential TSLU on it, scatter back. The copies are the
                // storage layout's explicit panel communication; the
                // arithmetic is untouched, so factors stay bitwise equal.
                let mut scratch = Matrix::<T>::zeros(m - base, jb);
                for ti in k..rb {
                    let h = self.shape.row_range(ti).len();
                    // SAFETY: Panel(k) exclusively owns rows base..m of
                    // block column k (and its ipiv slots).
                    let src = unsafe { self.tiles.tile_block(ti, k, 0, 0, h, jb) };
                    let r0 = ti * nb - base;
                    scratch.view_mut().into_submatrix(r0, 0, h, jb).copy_from(src.as_view());
                }
                let mut obs = MutexObs(&self.obs);
                let r = tslu_factor_with(
                    scratch.view_mut(),
                    self.opts.p,
                    self.opts.local,
                    self.parallel_panel,
                    &mut obs,
                )
                .map_err(rebase_singular(base))?;
                for ti in k..rb {
                    let h = self.shape.row_range(ti).len();
                    let mut dst = unsafe { self.tiles.tile_block(ti, k, 0, 0, h, jb) };
                    let r0 = ti * nb - base;
                    dst.copy_from(scratch.view().submatrix(r0, 0, h, jb));
                }
                unsafe { self.ipiv.publish(base, &r.ipiv) };
                Ok(())
            }
            Task::PanelElect { k, ti } => {
                let base = k * nb;
                let jb = self.shape.panel_width(k);
                let h = self.shape.row_range(ti).len();
                // SAFETY: reads its own resident tile's panel columns
                // only; the next writer (PanelFinish's cross-tile swaps)
                // is DAG-ordered after it through the reduce tree. No
                // gather — this is the copy elision the mode is for.
                let src = unsafe { self.tiles.tile_block(ti, k, 0, 0, h, jb) };
                let cand = elect_resident(src.as_view(), ti * nb - base, self.opts.local);
                self.resident.as_ref().expect("resident store").put(k, 0, ti - k, cand);
                Ok(())
            }
            Task::PanelReduce { k, level, ti, .. } => {
                let store = self.resident.as_ref().expect("resident store");
                let i = (ti - k) >> level;
                let lo = store.take(k, level - 1, 2 * i);
                let hi = store.take(k, level - 1, 2 * i + 1);
                store.put(k, level, i, reduce_pair(&lo, &hi));
                Ok(())
            }
            Task::PanelFinish { k } => {
                let base = k * nb;
                let jb = self.shape.panel_width(k);
                let store = self.resident.as_ref().expect("resident store");
                let root = store.take(k, store.root_level(k), 0);
                let local = winners_to_ipiv(&root.rows, m - base);
                // Cross-tile winner swaps on the panel's own columns; the
                // Swap tasks handle every other column.
                // SAFETY: Finish exclusively owns rows base..m of block
                // column k (all elects are ordered before it, all applies
                // and swaps after) and the step's ipiv slots.
                for (i, &p) in local.iter().enumerate() {
                    if p != i {
                        unsafe {
                            self.tiles.swap_rows_in_cols(base + i, base + p, base..base + jb);
                        }
                    }
                }
                let h = self.shape.row_range(k).len();
                let diag = unsafe { self.tiles.tile_block(k, k, 0, 0, h, jb) };
                let mut obs = MutexObs(&self.obs);
                lu_nopiv(diag, &mut obs).map_err(rebase_singular(base))?;
                unsafe { self.ipiv.publish(base, &local) };
                Ok(())
            }
            Task::PanelApply { k, ti } => {
                let jb = self.shape.panel_width(k);
                let h = self.shape.row_range(ti).len();
                // SAFETY: the apply owns tile (ti, k); U₁₁ (tile (k,k))
                // is stable under concurrent readers.
                let u11 = unsafe { self.tiles.tile_block(k, k, 0, 0, jb, jb) };
                let tile = unsafe { self.tiles.tile_block(ti, k, 0, 0, h, jb) };
                let mut obs = MutexObs(&self.obs);
                apply_l21(u11.as_view(), tile, &mut obs);
                Ok(())
            }
            Task::Swap { k, j } => {
                let base = k * nb;
                let local = unsafe { self.ipiv.read_local(&self.shape, k) };
                let cols = self.shape.update_col_range(k, j);
                // SAFETY: Swap(k,j) owns rows base..m of these columns.
                for (i, &p) in local.iter().enumerate() {
                    if p != i {
                        unsafe {
                            self.tiles.swap_rows_in_cols(base + i, base + p, cols.clone());
                        }
                    }
                }
                Ok(())
            }
            Task::Trsm { k, j } => {
                let jb = self.shape.panel_width(k);
                let cols = self.shape.update_col_range(k, j);
                let j0 = cols.start - j * nb;
                // SAFETY: Trsm(k,j) owns rows 0..jb of these columns of
                // tile (k,j); L₁₁ (tile (k,k)) is stable under readers.
                let l11 = unsafe { self.tiles.tile_block(k, k, 0, 0, jb, jb) };
                let u12 = unsafe { self.tiles.tile_block(k, j, 0, j0, jb, cols.len()) };
                trsm(Side::Left, Uplo::Lower, Diag::Unit, T::ONE, l11.as_view(), u12);
                Ok(())
            }
            Task::Gemm { k, i, j } => {
                let jb = self.shape.panel_width(k);
                let h = self.shape.row_range(i).len();
                let w = self.shape.col_range(j).len();
                // SAFETY: Gemm(k,i,j) owns tile (i,j); L₂₁ (tile (i,k))
                // and U₁₂ (tile (k,j) top rows) are stable until the
                // swaps DAG-ordered after every gemm of step k.
                let l21 = unsafe { self.tiles.tile_block(i, k, 0, 0, h, jb) };
                let u12 = unsafe { self.tiles.tile_block(k, j, 0, 0, jb, w) };
                let tile = unsafe { self.tiles.tile_block(i, j, 0, 0, h, w) };
                gemm(-T::ONE, l21.as_view(), u12.as_view(), T::ONE, tile);
                let tile = unsafe { self.tiles.tile_block(i, j, 0, 0, h, w) };
                self.obs.lock().expect("observer mutex poisoned").on_stage(&tile.as_view());
                Ok(())
            }
            Task::Dist(_) | Task::Solve(_) => {
                unreachable!("factorization runner received a dist/solve task")
            }
        }
    }
}

/// Builds the resident-mode candidate store when the panel mode needs it.
fn resident_store<T: Scalar>(mode: PanelMode, shape: &LuShape) -> Option<ResidentPanels<T>> {
    match mode {
        PanelMode::Gathered => None,
        PanelMode::Resident => Some(ResidentPanels::new(shape)),
    }
}

/// In-place CALU scheduled by the task-graph runtime; same numerical
/// contract as [`calu_inplace`](crate::calu::calu_inplace) (factors and
/// pivots bitwise identical at every lookahead depth and on both
/// executors), plus an [`ExecReport`] of what actually ran where.
///
/// Under [`PanelMode::Resident`] (`opts.panel_mode`) the bitwise contract
/// changes referent: panels factor through the per-tile tournament
/// subgraph — a *different but equally deterministic* tournament tree
/// (tile-height leaves instead of `opts.p` row blocks) — so factors are
/// bitwise reproducible across executors, lookahead depths, and runs, but
/// are not bitwise equal to the gathered/sequential reference, and the
/// observer's per-step pivot thresholds are measured within the diagonal
/// tile rather than the full panel column.
///
/// The observer sees the same events as the sequential sweep; only their
/// order differs (trailing-update stages arrive per tile, concurrent with
/// later panels), so order-free implementations like
/// [`PivotStats`](crate::instrument::PivotStats) record identical
/// statistics.
///
/// # Errors
/// [`Error::SingularPivot`] with the **absolute** elimination step; all
/// tasks depending on the failed panel are canceled.
pub fn runtime_calu_inplace<T: Scalar, O: PivotObserver<T> + Send>(
    mut a: MatViewMut<'_, T>,
    opts: CaluOpts,
    rt: RuntimeOpts,
    obs: &mut O,
) -> Result<(Vec<usize>, ExecReport)> {
    assert!(opts.block > 0 && opts.p > 0, "block and p must be positive");
    let shape = LuShape { m: a.rows(), n: a.cols(), nb: opts.block };
    let mut ipiv = vec![0usize; shape.m.min(shape.n)];
    let dag = LuDag::build_with(shape, rt.lookahead, opts.panel_mode);
    let runner = LuRunner {
        mat: SharedMat::new(&mut a),
        ipiv: SharedIpiv { ptr: ipiv.as_mut_ptr(), len: ipiv.len() },
        shape,
        opts,
        parallel_panel: rt.parallel_panel,
        resident: resident_store(opts.panel_mode, &shape),
        obs: Mutex::new(obs),
    };
    let report = rt.executor.execute(&dag, &runner)?;
    Ok((ipiv, report))
}

/// Factors a copy of `a` on the runtime; see [`runtime_calu_inplace`].
///
/// # Errors
/// Singular pivot (exact zero) at the reported absolute step.
pub fn runtime_calu_factor<T: Scalar>(
    a: &Matrix<T>,
    opts: CaluOpts,
    rt: RuntimeOpts,
) -> Result<(LuFactors<T>, ExecReport)> {
    let mut lu = a.clone();
    let (ipiv, report) = runtime_calu_inplace(lu.view_mut(), opts, rt, &mut NoObs)?;
    Ok((LuFactors { lu, ipiv }, report))
}

/// In-place CALU over **tile-major** storage, scheduled by the task-graph
/// runtime: the same DAG, executors, priorities, and bitwise-vs-sequential
/// guarantee as [`runtime_calu_inplace`], with operand addressing moved to
/// cache-contained tiles — every `Trsm`/`Gemm` body touches single
/// contiguous tiles of the [`TileMatrix`], row swaps cross tile boundaries
/// element-for-element, and the panel gathers/scatters its tile column
/// around the byte-identical sequential TSLU.
///
/// The tile dimensions must both equal `opts.block` (the DAG's block
/// geometry *is* the storage geometry — that 1:1 mapping is the point of
/// the layout). Converting the result back with
/// [`TileMatrix::to_matrix`] yields factors bitwise identical to
/// [`calu_inplace`](crate::calu::calu_inplace) on the flat copy.
///
/// # Panics
/// If `a`'s tile dimensions differ from `opts.block`.
///
/// # Errors
/// [`Error::SingularPivot`] with the absolute elimination step; dependent
/// tasks are canceled.
pub fn runtime_calu_tiles<T: Scalar, O: PivotObserver<T> + Send>(
    a: &mut TileMatrix<T>,
    opts: CaluOpts,
    rt: RuntimeOpts,
    obs: &mut O,
) -> Result<(Vec<usize>, ExecReport)> {
    assert!(opts.block > 0 && opts.p > 0, "block and p must be positive");
    let layout = a.layout();
    assert_eq!(
        (layout.mb(), layout.nb()),
        (opts.block, opts.block),
        "tile dims must equal the runtime block size"
    );
    let shape = LuShape { m: a.rows(), n: a.cols(), nb: opts.block };
    let mut ipiv = vec![0usize; shape.m.min(shape.n)];
    let dag = LuDag::build_with(shape, rt.lookahead, opts.panel_mode);
    let runner = LuTileRunner {
        tiles: SharedTiles::new(a),
        ipiv: SharedIpiv { ptr: ipiv.as_mut_ptr(), len: ipiv.len() },
        shape,
        opts,
        parallel_panel: rt.parallel_panel,
        resident: resident_store(opts.panel_mode, &shape),
        obs: Mutex::new(obs),
    };
    let report = rt.executor.execute(&dag, &runner)?;
    Ok((ipiv, report))
}

/// Factors a tile-major copy of `a` on the runtime (convenience wrapper:
/// converts, runs [`runtime_calu_tiles`], returns the factored tiles).
///
/// # Errors
/// Singular pivot (exact zero) at the reported absolute step.
pub fn runtime_calu_tiles_factor<T: Scalar>(
    a: &Matrix<T>,
    opts: CaluOpts,
    rt: RuntimeOpts,
) -> Result<(TileMatrix<T>, Vec<usize>, ExecReport)> {
    let mut tiles = TileMatrix::from_matrix(a, opts.block, opts.block);
    let (ipiv, report) = runtime_calu_tiles(&mut tiles, opts, rt, &mut NoObs)?;
    Ok((tiles, ipiv, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calu::calu_factor;
    use crate::instrument::PivotStats;
    use calu_matrix::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn executors() -> [ExecutorKind; 3] {
        [
            ExecutorKind::Serial,
            ExecutorKind::Threaded { threads: 2 },
            ExecutorKind::Threaded { threads: 4 },
        ]
    }

    #[test]
    fn runtime_matches_sequential_bitwise_all_depths_and_executors() {
        let mut rng = StdRng::seed_from_u64(900);
        for &(m, n, b, p) in &[
            (96usize, 96usize, 16usize, 4usize),
            (130, 130, 32, 8),
            (100, 60, 16, 4),
            (60, 100, 16, 4),
            (97, 97, 16, 3),
        ] {
            let a0: Matrix = gen::randn(&mut rng, m, n);
            let opts = CaluOpts { block: b, p, ..Default::default() };
            let seq = calu_factor(&a0, opts).unwrap();
            for depth in 1..=3 {
                for executor in executors() {
                    let rt = RuntimeOpts { lookahead: depth, executor, parallel_panel: false };
                    let (f, rep) = runtime_calu_factor(&a0, opts, rt).unwrap();
                    assert_eq!(seq.ipiv, f.ipiv, "{m}x{n} b={b} d={depth} {executor:?}");
                    assert_eq!(
                        seq.lu.max_abs_diff(&f.lu),
                        0.0,
                        "{m}x{n} b={b} d={depth} {executor:?}: factors must be bitwise identical"
                    );
                    assert_eq!(rep.order.len(), rep.timings.len());
                }
            }
        }
    }

    #[test]
    fn tile_runtime_matches_sequential_bitwise_all_depths_and_executors() {
        let mut rng = StdRng::seed_from_u64(905);
        for &(m, n, b, p) in &[
            (96usize, 96usize, 16usize, 4usize),
            (130, 130, 32, 8),
            (100, 60, 16, 4),
            (60, 100, 16, 4),
            (97, 97, 16, 3), // ragged edge tiles in both dimensions
        ] {
            let a0: Matrix = gen::randn(&mut rng, m, n);
            let opts = CaluOpts { block: b, p, ..Default::default() };
            let seq = calu_factor(&a0, opts).unwrap();
            for depth in 1..=3 {
                for executor in executors() {
                    let rt = RuntimeOpts { lookahead: depth, executor, parallel_panel: false };
                    let (tiles, ipiv, rep) = runtime_calu_tiles_factor(&a0, opts, rt).unwrap();
                    assert_eq!(seq.ipiv, ipiv, "{m}x{n} b={b} d={depth} {executor:?}");
                    assert_eq!(
                        seq.lu.max_abs_diff(&tiles.to_matrix()),
                        0.0,
                        "{m}x{n} b={b} d={depth} {executor:?}: tile factors must be bitwise \
                         identical to sequential"
                    );
                    assert_eq!(rep.order.len(), rep.timings.len());
                }
            }
        }
    }

    #[test]
    fn tile_runtime_observer_stats_match_sequential() {
        let mut rng = StdRng::seed_from_u64(906);
        let a0 = gen::randn(&mut rng, 120, 120);
        let opts = CaluOpts { block: 24, p: 4, ..Default::default() };

        let mut s_seq = PivotStats::new(a0.max_abs());
        let mut w = a0.clone();
        crate::calu::calu_inplace(w.view_mut(), opts, &mut s_seq).unwrap();

        let mut s_rt = PivotStats::new(a0.max_abs());
        let mut tiles = calu_matrix::TileMatrix::from_matrix(&a0, 24, 24);
        let rt = RuntimeOpts { lookahead: 2, ..Default::default() };
        runtime_calu_tiles(&mut tiles, opts, rt, &mut s_rt).unwrap();

        assert_eq!(s_seq.steps(), s_rt.steps());
        assert_eq!(s_seq.tau_min(), s_rt.tau_min());
        assert_eq!(s_seq.max_elem, s_rt.max_elem);
        assert_eq!(s_seq.max_l, s_rt.max_l);
    }

    #[test]
    fn tile_runtime_singular_reports_absolute_step_and_cancels() {
        let n = 64;
        let mut rng = StdRng::seed_from_u64(907);
        let b = gen::randn(&mut rng, n, 20);
        let a = Matrix::from_fn(n, n, |i, j| if j < 20 { b[(i, j)] } else { 0.0 });
        let opts = CaluOpts { block: 8, p: 4, ..Default::default() };
        for depth in 1..=3 {
            for executor in executors() {
                let rt = RuntimeOpts { lookahead: depth, executor, parallel_panel: false };
                let err = runtime_calu_tiles_factor(&a, opts, rt).unwrap_err();
                assert_eq!(
                    err,
                    Error::SingularPivot { step: 20 },
                    "d={depth} {executor:?}: absolute step"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "tile dims must equal the runtime block size")]
    fn tile_runtime_rejects_mismatched_tile_size() {
        let a: Matrix = Matrix::identity(32);
        let mut tiles = calu_matrix::TileMatrix::from_matrix(&a, 16, 16);
        let opts = CaluOpts { block: 8, p: 2, ..Default::default() };
        let _ = runtime_calu_tiles(&mut tiles, opts, RuntimeOpts::default(), &mut NoObs);
    }

    #[test]
    fn runtime_observer_stats_match_sequential() {
        let mut rng = StdRng::seed_from_u64(901);
        let a0 = gen::randn(&mut rng, 120, 120);
        let opts = CaluOpts { block: 24, p: 4, ..Default::default() };

        let mut s_seq = PivotStats::new(a0.max_abs());
        let mut w = a0.clone();
        crate::calu::calu_inplace(w.view_mut(), opts, &mut s_seq).unwrap();

        let mut s_rt = PivotStats::new(a0.max_abs());
        let mut w2 = a0.clone();
        let rt = RuntimeOpts { lookahead: 2, ..Default::default() };
        runtime_calu_inplace(w2.view_mut(), opts, rt, &mut s_rt).unwrap();

        assert_eq!(s_seq.steps(), s_rt.steps());
        assert_eq!(s_seq.tau_min(), s_rt.tau_min());
        assert_eq!(s_seq.max_elem, s_rt.max_elem);
        assert_eq!(s_seq.max_l, s_rt.max_l);
    }

    #[test]
    fn runtime_singular_reports_absolute_step_and_cancels() {
        let n = 64;
        // Rank 20: every flavor must fail at absolute step 20.
        let mut rng = StdRng::seed_from_u64(902);
        let b = gen::randn(&mut rng, n, 20);
        let a = Matrix::from_fn(n, n, |i, j| if j < 20 { b[(i, j)] } else { 0.0 });
        let opts = CaluOpts { block: 8, p: 4, ..Default::default() };
        for depth in 1..=3 {
            for executor in executors() {
                let rt = RuntimeOpts { lookahead: depth, executor, parallel_panel: false };
                let err = runtime_calu_factor(&a, opts, rt).unwrap_err();
                assert_eq!(
                    err,
                    Error::SingularPivot { step: 20 },
                    "d={depth} {executor:?}: absolute step"
                );
            }
        }
    }

    #[test]
    fn runtime_unthrottled_depth_still_exact() {
        let mut rng = StdRng::seed_from_u64(903);
        let a0: Matrix = gen::randn(&mut rng, 144, 144);
        let opts = CaluOpts { block: 16, p: 4, ..Default::default() };
        let seq = calu_factor(&a0, opts).unwrap();
        let rt = RuntimeOpts {
            lookahead: 1_000_000,
            executor: ExecutorKind::Threaded { threads: 3 },
            parallel_panel: true,
        };
        let (f, _) = runtime_calu_factor(&a0, opts, rt).unwrap();
        assert_eq!(seq.ipiv, f.ipiv);
        assert_eq!(seq.lu.max_abs_diff(&f.lu), 0.0);
    }

    #[test]
    fn runtime_report_covers_every_task() {
        let mut rng = StdRng::seed_from_u64(904);
        let a0: Matrix = gen::randn(&mut rng, 96, 96);
        let opts = CaluOpts { block: 32, p: 4, ..Default::default() };
        let (_, rep) = runtime_calu_factor(&a0, opts, RuntimeOpts::default()).unwrap();
        let dag = LuDag::build(LuShape { m: 96, n: 96, nb: 32 }, 1);
        assert_eq!(rep.order.len(), dag.len());
        assert!(rep.wall > 0.0);
        assert!(!rep.traces().is_empty());
    }

    /// `||P A - L U||_max` against a reconstruction — validity check for
    /// resident-mode factors, which follow a *different* (tile-leaf)
    /// tournament tree than the sequential reference.
    fn check_plu(orig: &Matrix, lu: &Matrix, ipiv: &[usize], tol: f64) {
        use calu_matrix::perm::{ipiv_to_perm, permute_rows};
        let perm = ipiv_to_perm(ipiv, orig.rows());
        let pa = permute_rows(orig, &perm);
        let l = lu.unit_lower();
        let u = lu.upper();
        let mut prod = Matrix::zeros(orig.rows(), orig.cols());
        gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
        let d = pa.max_abs_diff(&prod);
        assert!(d < tol, "||P A - L U||_max = {d} > {tol}");
    }

    #[test]
    fn resident_runtime_bitwise_reproducible_and_correct() {
        // The serial depth-1 flat run is the resident-mode reference; every
        // executor x depth, on both the flat and tile paths, must reproduce
        // it bitwise (the ISSUE contract: deterministic across schedules,
        // not equal to the gathered tree).
        let mut rng = StdRng::seed_from_u64(910);
        for &(m, n, b) in &[
            (96usize, 96usize, 16usize),
            (130, 130, 32),
            (100, 60, 16),
            (60, 100, 16),
            (97, 97, 16), // ragged edge tiles in both dimensions
        ] {
            let a0: Matrix = gen::randn(&mut rng, m, n);
            let opts = CaluOpts { block: b, panel_mode: PanelMode::Resident, ..Default::default() };
            let rt0 =
                RuntimeOpts { lookahead: 1, executor: ExecutorKind::Serial, parallel_panel: false };
            let (reference, _) = runtime_calu_factor(&a0, opts, rt0).unwrap();
            check_plu(&a0, &reference.lu, &reference.ipiv, 1e-8 * m as f64);
            for depth in 1..=3 {
                for executor in executors() {
                    let rt = RuntimeOpts { lookahead: depth, executor, parallel_panel: false };
                    let (f, _) = runtime_calu_factor(&a0, opts, rt).unwrap();
                    assert_eq!(reference.ipiv, f.ipiv, "{m}x{n} b={b} d={depth} {executor:?}");
                    assert_eq!(
                        reference.lu.max_abs_diff(&f.lu),
                        0.0,
                        "{m}x{n} b={b} d={depth} {executor:?}: resident factors must be \
                         bitwise identical across schedules"
                    );
                    let (tiles, ipiv, _) = runtime_calu_tiles_factor(&a0, opts, rt).unwrap();
                    assert_eq!(reference.ipiv, ipiv, "{m}x{n} b={b} d={depth} {executor:?} tiles");
                    assert_eq!(
                        reference.lu.max_abs_diff(&tiles.to_matrix()),
                        0.0,
                        "{m}x{n} b={b} d={depth} {executor:?}: tile-path resident factors \
                         must match the flat path bitwise"
                    );
                }
            }
        }
    }

    #[test]
    fn resident_runtime_run_to_run_deterministic() {
        let mut rng = StdRng::seed_from_u64(911);
        let a0: Matrix = gen::randn(&mut rng, 120, 120);
        let opts = CaluOpts { block: 24, panel_mode: PanelMode::Resident, ..Default::default() };
        let rt = RuntimeOpts {
            lookahead: 2,
            executor: ExecutorKind::Threaded { threads: 4 },
            parallel_panel: false,
        };
        let (f1, _) = runtime_calu_factor(&a0, opts, rt).unwrap();
        for _ in 0..3 {
            let (f2, _) = runtime_calu_factor(&a0, opts, rt).unwrap();
            assert_eq!(f1.ipiv, f2.ipiv);
            assert_eq!(f1.lu.max_abs_diff(&f2.lu), 0.0, "run-to-run determinism");
        }
    }

    #[test]
    fn resident_singular_reports_absolute_step_and_cancels() {
        let n = 64;
        // Rank 20: the failure surfaces inside PanelFinish's diagonal-tile
        // elimination, and must be rebased to the same absolute step the
        // gathered panel reports — on both runner paths, every schedule.
        let mut rng = StdRng::seed_from_u64(912);
        let b = gen::randn(&mut rng, n, 20);
        let a = Matrix::from_fn(n, n, |i, j| if j < 20 { b[(i, j)] } else { 0.0 });
        let opts = CaluOpts { block: 8, panel_mode: PanelMode::Resident, ..Default::default() };
        for depth in 1..=3 {
            for executor in executors() {
                let rt = RuntimeOpts { lookahead: depth, executor, parallel_panel: false };
                let err = runtime_calu_factor(&a, opts, rt).unwrap_err();
                assert_eq!(
                    err,
                    Error::SingularPivot { step: 20 },
                    "flat d={depth} {executor:?}: absolute step"
                );
                let err = runtime_calu_tiles_factor(&a, opts, rt).unwrap_err();
                assert_eq!(
                    err,
                    Error::SingularPivot { step: 20 },
                    "tiles d={depth} {executor:?}: absolute step"
                );
            }
        }
    }

    #[test]
    fn resident_runtime_observer_sees_every_step() {
        // Resident-mode pivot thresholds are measured within the diagonal
        // tile (documented), so the stats are not compared to the gathered
        // sweep — but every elimination step must still be observed once.
        let mut rng = StdRng::seed_from_u64(913);
        let a0 = gen::randn(&mut rng, 120, 120);
        let opts = CaluOpts { block: 24, panel_mode: PanelMode::Resident, ..Default::default() };
        let mut stats = PivotStats::new(a0.max_abs());
        let mut w = a0.clone();
        let rt = RuntimeOpts { lookahead: 2, ..Default::default() };
        runtime_calu_inplace(w.view_mut(), opts, rt, &mut stats).unwrap();
        assert_eq!(stats.steps(), 120);
        assert!(stats.tau_min() > 0.0);
        assert!(stats.growth_factor(1.0) >= 1.0);
    }
}
