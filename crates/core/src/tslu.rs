//! TSLU — Tall Skinny LU with tournament pivoting (paper Section 3),
//! sequential reference implementation.
//!
//! Two phases:
//! 1. **Preprocessing**: partition the `m x b` panel into `p` block-rows,
//!    elect `b` local pivot rows per block (GEPP on a copy — classic or
//!    recursive local LU, the `Cl`/`Rec` columns of Tables 3-4), then run
//!    the tournament to elect the `b` global winners.
//! 2. **Factorization**: permute the winners to the top (a LAPACK-style
//!    swap sequence) and factor the panel **without pivoting**.
//!
//! With `p == 1` or `b == 1` this is exactly partial pivoting (paper
//! Section 2), which the tests assert.

use crate::tournament::{tournament, Candidates};
use calu_matrix::lapack::{getf2, lu_nopiv, rgetf2_info};
use calu_matrix::perm::apply_ipiv;
use calu_matrix::{MatView, MatViewMut, Matrix, NoObs, PivotObserver, Result, Scalar};

/// Local LU algorithm used to elect each block-row's candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalLu {
    /// Classic unblocked `getf2` (paper's `DGETF2`, "Cl").
    Classic,
    /// Recursive `rgetf2` (paper's `RGETF2`, "Rec") — the default, as the
    /// paper recommends for all but the smallest panels.
    #[default]
    Recursive,
}

/// Outcome of a TSLU panel factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct TsluResult {
    /// LAPACK-style swap sequence (`row i <-> ipiv[i]`, local to the panel)
    /// that brings the winners to the top; callers apply it to the rest of
    /// the matrix.
    pub ipiv: Vec<usize>,
    /// Global winner row indices (local to the panel), in pivot order.
    pub pivot_rows: Vec<usize>,
}

/// Splits `m` rows into at most `p` non-empty, nearly equal, contiguous
/// chunks — the paper's block-row partition of the panel.
pub fn partition_rows(m: usize, p: usize) -> Vec<std::ops::Range<usize>> {
    assert!(m > 0 && p > 0);
    let p = p.min(m);
    let base = m / p;
    let extra = m % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0;
    for i in 0..p {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, m);
    out
}

/// Phase 1 only: elects the `min(m, b)` winning pivot rows of the panel
/// using a `p`-way tournament. Row indices are local to the panel view.
///
/// Never fails — see [`Candidates::from_block_row`] on rank deficiency.
pub fn tslu_pivots<T: Scalar>(panel: MatView<'_, T>, p: usize, local: LocalLu) -> Vec<usize> {
    tslu_pivots_with(panel, p, local, false)
}

/// [`tslu_pivots`] with optional rayon parallelism across the block-rows'
/// local factorizations (the shared-memory "multicore" direction named in
/// the paper's future work). The elected pivots are bitwise identical to
/// the sequential path — only wall-clock changes.
pub fn tslu_pivots_with<T: Scalar>(
    panel: MatView<'_, T>,
    p: usize,
    local: LocalLu,
    parallel: bool,
) -> Vec<usize> {
    let (m, b) = (panel.rows(), panel.cols());
    assert!(m >= 1 && b >= 1, "empty panel");

    let parts = partition_rows(m, p);
    let elect = |range: &std::ops::Range<usize>| -> Candidates<T> {
        let rows: Vec<usize> = range.clone().collect();
        let block = panel.submatrix(range.start, 0, range.len(), b).to_matrix();
        local_candidates(&block, &rows, local)
    };
    let blocks: Vec<Candidates<T>> = if parallel && parts.len() > 1 {
        use rayon::prelude::*;
        parts.par_iter().map(elect).collect()
    } else {
        parts.iter().map(elect).collect()
    };
    tournament(blocks).rows
}

/// Elects candidates from one block-row with the chosen local LU.
pub(crate) fn local_candidates<T: Scalar>(
    block: &Matrix<T>,
    global_rows: &[usize],
    local: LocalLu,
) -> Candidates<T> {
    match local {
        LocalLu::Classic => Candidates::from_block_row(block, global_rows),
        LocalLu::Recursive => {
            // Same contract as from_block_row but with the recursive kernel
            // (identical pivots — asserted in tests — different speed
            // profile, which only matters under the machine model).
            let b = block.cols();
            let keep = block.rows().min(b);
            let mut work = block.clone();
            if block.rows() >= b {
                let mut ipiv = vec![0usize; keep];
                let _info = rgetf2_info(work.view_mut(), &mut ipiv, &mut NoObs);
                let mut values = block.clone();
                apply_ipiv(values.view_mut(), &ipiv);
                let mut idx: Vec<usize> = global_rows.to_vec();
                for (i, &pv) in ipiv.iter().enumerate() {
                    idx.swap(i, pv);
                }
                let winners = values.view().submatrix(0, 0, keep, b).to_matrix();
                idx.truncate(keep);
                Candidates::new(winners, idx)
            } else {
                // Wide local block (fewer rows than b): fall back to getf2.
                Candidates::from_block_row(block, global_rows)
            }
        }
    }
}

/// Converts a winner list into a LAPACK swap sequence over `m` rows: after
/// applying it, row `i` holds original row `winners[i]`.
///
/// # Panics
/// If winners repeat or exceed `m`.
pub fn winners_to_ipiv(winners: &[usize], m: usize) -> Vec<usize> {
    // pos_of[orig] = current position of original row `orig`.
    let mut pos_of: Vec<usize> = (0..m).collect();
    let mut row_at: Vec<usize> = (0..m).collect();
    let mut ipiv = Vec::with_capacity(winners.len());
    for (i, &w) in winners.iter().enumerate() {
        assert!(w < m, "winner {w} out of {m} rows");
        let p = pos_of[w];
        assert!(p >= i, "winner {w} repeated");
        ipiv.push(p);
        let displaced = row_at[i];
        row_at.swap(i, p);
        pos_of[w] = i;
        pos_of[displaced] = p;
    }
    ipiv
}

/// Full TSLU: elect winners, permute them on top, factor the panel with no
/// pivoting (`L` strictly below the diagonal, `U` in the top `b x b`).
///
/// The observer sees the unpivoted factorization — its `on_pivot` ratios
/// are the paper's threshold `τ`, its `on_stage`/`on_multipliers` feed the
/// growth-factor and `|L|` statistics.
///
/// # Errors
/// A zero pivot in the no-pivot factorization after permutation (the panel
/// columns are genuinely linearly dependent).
pub fn tslu_factor<T: Scalar, O: PivotObserver<T>>(
    panel: MatViewMut<'_, T>,
    p: usize,
    local: LocalLu,
    obs: &mut O,
) -> Result<TsluResult> {
    tslu_factor_with(panel, p, local, false, obs)
}

/// [`tslu_factor`] with optional rayon parallelism in the candidate
/// election (see [`tslu_pivots_with`]).
///
/// # Errors
/// A zero pivot in the no-pivot factorization after permutation (the panel
/// columns are genuinely linearly dependent).
pub fn tslu_factor_with<T: Scalar, O: PivotObserver<T>>(
    mut panel: MatViewMut<'_, T>,
    p: usize,
    local: LocalLu,
    parallel: bool,
    obs: &mut O,
) -> Result<TsluResult> {
    let m = panel.rows();
    let winners = tslu_pivots_with(panel.as_view(), p, local, parallel);
    let ipiv = winners_to_ipiv(&winners, m);
    apply_ipiv(panel.rb_mut(), &ipiv);
    lu_nopiv(panel, obs)?;
    Ok(TsluResult { ipiv, pivot_rows: winners })
}

/// Reference GEPP panel factorization with identical output conventions
/// (used for the `p == 1`/`b == 1` equivalence tests and as the panel inside
/// the `PDGETRF` baseline model).
///
/// # Errors
/// Propagates singular panels.
pub fn gepp_panel<T: Scalar, O: PivotObserver<T>>(
    panel: MatViewMut<'_, T>,
    obs: &mut O,
) -> Result<TsluResult> {
    let m = panel.rows();
    let kn = m.min(panel.cols());
    let mut ipiv = vec![0usize; kn];
    getf2(panel, &mut ipiv, obs)?;
    Ok(TsluResult { pivot_rows: recover_winners(&ipiv, m), ipiv })
}

/// Recovers "winner" row order from a swap sequence (the original row that
/// occupies position `i` after all swaps).
fn recover_winners(ipiv: &[usize], m: usize) -> Vec<usize> {
    let mut row_at: Vec<usize> = (0..m).collect();
    for (i, &p) in ipiv.iter().enumerate() {
        row_at.swap(i, p);
    }
    row_at.truncate(ipiv.len());
    row_at
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::blas3::gemm;
    use calu_matrix::gen;
    use calu_matrix::perm::{ipiv_to_perm, permute_rows};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_panel_plu(orig: &Matrix, lu: &Matrix, ipiv: &[usize], tol: f64) {
        let perm = ipiv_to_perm(ipiv, orig.rows());
        let pa = permute_rows(orig, &perm);
        let l = lu.unit_lower();
        let u = lu.upper();
        let mut prod = Matrix::zeros(orig.rows(), orig.cols());
        gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
        let d = pa.max_abs_diff(&prod);
        assert!(d < tol, "||P A - L U||_max = {d} > {tol}");
    }

    #[test]
    fn partition_rows_covers_everything() {
        for &(m, p) in &[(16, 4), (17, 4), (5, 8), (1, 1), (100, 7)] {
            let parts = partition_rows(m, p);
            assert!(parts.len() <= p);
            assert!(parts.iter().all(|r| !r.is_empty()));
            let total: usize = parts.iter().map(|r| r.len()).sum();
            assert_eq!(total, m);
            for w in parts.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn winners_to_ipiv_places_winners_on_top() {
        let winners = vec![5, 2, 7];
        let ipiv = winners_to_ipiv(&winners, 8);
        let mut rows: Vec<usize> = (0..8).collect();
        for (i, &p) in ipiv.iter().enumerate() {
            rows.swap(i, p);
        }
        assert_eq!(&rows[..3], &[5, 2, 7]);
    }

    #[test]
    fn winners_to_ipiv_handles_winners_in_top_region() {
        // Winner already sitting inside the top b rows but at a different slot.
        let winners = vec![1, 0, 3];
        let ipiv = winners_to_ipiv(&winners, 4);
        let mut rows: Vec<usize> = (0..4).collect();
        for (i, &p) in ipiv.iter().enumerate() {
            rows.swap(i, p);
        }
        assert_eq!(&rows[..3], &[1, 0, 3]);
    }

    #[test]
    fn tslu_reconstructs_panel() {
        let mut rng = StdRng::seed_from_u64(71);
        for &(m, b, p) in &[(64, 8, 4), (100, 10, 8), (33, 5, 4), (48, 16, 3), (20, 20, 2)] {
            let a0 = gen::randn(&mut rng, m, b);
            let mut a = a0.clone();
            let r = tslu_factor(a.view_mut(), p, LocalLu::Recursive, &mut NoObs).unwrap();
            assert_eq!(r.ipiv.len(), b.min(m));
            check_panel_plu(&a0, &a, &r.ipiv, 1e-8 * m as f64);
        }
    }

    #[test]
    fn tslu_p1_equals_partial_pivoting() {
        // p = 1: the tournament is a single local GEPP — pivots must match
        // getf2 exactly (paper Section 2).
        let mut rng = StdRng::seed_from_u64(72);
        let a0: Matrix = gen::randn(&mut rng, 50, 6);
        let mut a_t = a0.clone();
        let r = tslu_factor(a_t.view_mut(), 1, LocalLu::Classic, &mut NoObs).unwrap();
        let mut a_g = a0.clone();
        let mut ip_g = vec![0usize; 6];
        getf2(a_g.view_mut(), &mut ip_g, &mut NoObs).unwrap();
        assert_eq!(r.ipiv, ip_g);
        assert!(a_t.max_abs_diff(&a_g) < 1e-12);
    }

    #[test]
    fn tslu_b1_equals_partial_pivoting_any_p() {
        let mut rng = StdRng::seed_from_u64(73);
        let a0: Matrix = gen::randn(&mut rng, 64, 1);
        for p in [2usize, 4, 7, 8] {
            let mut a = a0.clone();
            let r = tslu_factor(a.view_mut(), p, LocalLu::Classic, &mut NoObs).unwrap();
            let best = calu_matrix::blas1::iamax(a0.col(0));
            assert_eq!(r.ipiv[0], best, "p={p}");
        }
    }

    #[test]
    fn classic_and_recursive_elect_identical_pivots() {
        let mut rng = StdRng::seed_from_u64(74);
        for &(m, b, p) in &[(64, 8, 4), (90, 15, 4), (128, 32, 8)] {
            let a0: Matrix = gen::randn(&mut rng, m, b);
            let pc = tslu_pivots(a0.view(), p, LocalLu::Classic);
            let pr = tslu_pivots(a0.view(), p, LocalLu::Recursive);
            assert_eq!(pc, pr, "m={m} b={b} p={p}");
        }
    }

    #[test]
    fn paper_figure1_example_pivot_rows() {
        // The 16 x 2 matrix of Figure 1 distributed over 4 processors of 4
        // contiguous rows each. The paper notes the TSLU winners coincide
        // with GEPP's pivots for this example; the final factorization's
        // leading pivot is the largest |entry| of column 0 (value 4).
        let a = Matrix::from_rows(&[
            &[2.0, 4.0],
            &[0.0, 1.0],
            &[2.0, 0.0],
            &[0.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 4.0],
            &[2.0, 1.0],
            &[0.0, 2.0],
            &[2.0, 0.0],
            &[1.0, 2.0],
            &[4.0, 1.0],
            &[1.0, 0.0],
            &[0.0, 0.0],
            &[0.0, 2.0],
            &[1.0, 0.0],
            &[4.0, 2.0],
        ]);
        let winners = tslu_pivots(a.view(), 4, LocalLu::Classic);
        assert_eq!(winners.len(), 2);
        // First winner must carry |a| = 4 in column 0 (rows 10 or 15).
        assert_eq!(a[(winners[0], 0)].abs(), 4.0);
        // GEPP on the full matrix picks the same first pivot value.
        let gepp_first = calu_matrix::blas1::iamax(a.col(0));
        assert_eq!(a[(gepp_first, 0)].abs(), 4.0);
        // And the TSLU factorization succeeds with |L| <= 3 (threshold).
        let mut panel = a.clone();
        let r = tslu_factor(panel.view_mut(), 4, LocalLu::Classic, &mut NoObs).unwrap();
        assert_eq!(r.pivot_rows, winners);
        let l = panel.unit_lower();
        for j in 0..l.cols() {
            for i in j + 1..l.rows() {
                assert!(l[(i, j)].abs() <= 3.0 + 1e-12);
            }
        }
    }

    #[test]
    fn gepp_panel_winner_recovery() {
        let mut rng = StdRng::seed_from_u64(75);
        let a0: Matrix = gen::randn(&mut rng, 30, 5);
        let mut a = a0.clone();
        let r = gepp_panel(a.view_mut(), &mut NoObs).unwrap();
        // Winners must be where the permuted rows came from.
        let perm = ipiv_to_perm(&r.ipiv, 30);
        assert_eq!(&perm[..5], r.pivot_rows.as_slice());
    }
}
