//! The tournament (ca-pivoting) reduction operator.
//!
//! Tournament pivoting elects `b` pivot rows for a panel in a reduction
//! tree: the leaves are each block-row's `b` local GEPP pivot rows; each
//! internal node stacks two candidate sets (`2b x b`), runs GEPP on the
//! stack, and keeps the `b` winning *original* rows (values as they appear
//! in `A`, not the factored junk) together with their global indices —
//! exactly the operation the paper describes in Section 2 and Figure 1.
//!
//! [`Candidates`] is that message: it serializes to a flat `Vec<f64>` so
//! the same operator runs inside the netsim butterfly all-reduce.

use calu_matrix::lapack::getf2_info;
use calu_matrix::perm::apply_ipiv;
use calu_matrix::{Matrix, NoObs, Scalar};

/// A set of candidate pivot rows: the row values (as in the original
/// matrix) and their global row indices, in pivot-preference order.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidates<T = f64> {
    /// `k x b` block of candidate rows (`k <= b` — fewer when a block-row
    /// owns fewer than `b` rows).
    pub block: Matrix<T>,
    /// Global row index of each candidate row.
    pub rows: Vec<usize>,
}

impl<T: Scalar> Candidates<T> {
    /// Builds a candidate set; `rows.len()` must equal `block.rows()`.
    pub fn new(block: Matrix<T>, rows: Vec<usize>) -> Self {
        assert_eq!(block.rows(), rows.len(), "one index per candidate row");
        Self { block, rows }
    }

    /// Number of candidate rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Panel width `b`.
    pub fn width(&self) -> usize {
        self.block.cols()
    }

    /// Extracts the `<= b` best candidates from a local block-row by GEPP:
    /// factor a copy, keep the first `min(rows, b)` pivot rows of the
    /// *original* values (paper: "the first b rows of `Π^T_i0 A_i`").
    ///
    /// `global_rows[i]` is the global index of local row `i`.
    ///
    /// A rank-deficient block-row is fine: the elected rows still span its
    /// row space (`getf2`'s pivot order puts the independent rows first),
    /// so the tournament never fails — only the final no-pivot panel
    /// factorization can detect a genuinely singular panel.
    pub fn from_block_row(block: &Matrix<T>, global_rows: &[usize]) -> Self {
        assert_eq!(block.rows(), global_rows.len());
        let b = block.cols();
        let keep = block.rows().min(b);
        let mut work = block.clone();
        let mut ipiv = vec![0usize; keep];
        let _info = getf2_info(work.view_mut(), &mut ipiv, &mut NoObs);

        let mut values = block.clone();
        apply_ipiv(values.view_mut(), &ipiv);
        let mut idx: Vec<usize> = global_rows.to_vec();
        for (i, &p) in ipiv.iter().enumerate() {
            idx.swap(i, p);
        }
        let winners = values.view().submatrix(0, 0, keep, b).to_matrix();
        idx.truncate(keep);
        Self::new(winners, idx)
    }

    /// Serializes to a flat payload: `[k, b, rows..., block column-major]`.
    /// Row indices are exact in `f64` up to 2^53, and every `f32` block
    /// value widens to `f64` exactly, so the round trip is lossless at
    /// both precisions (the netsim moves `f64` words regardless of the
    /// compute precision, like an MPI datatype pinned to `MPI_DOUBLE`).
    pub fn to_payload(&self) -> Vec<f64> {
        let k = self.len();
        let b = self.width();
        let mut v = Vec::with_capacity(2 + k + k * b);
        v.push(k as f64);
        v.push(b as f64);
        v.extend(self.rows.iter().map(|&r| r as f64));
        v.extend(self.block.as_slice().iter().map(|&x| x.to_f64()));
        v
    }

    /// Deserializes a payload produced by [`Candidates::to_payload`].
    ///
    /// # Panics
    /// If the payload is malformed.
    pub fn from_payload(v: &[f64]) -> Self {
        assert!(v.len() >= 2, "payload too short");
        let k = v[0] as usize;
        let b = v[1] as usize;
        assert_eq!(v.len(), 2 + k + k * b, "payload length mismatch");
        let rows: Vec<usize> = v[2..2 + k].iter().map(|&x| x as usize).collect();
        let block =
            Matrix::from_col_major(k, b, v[2 + k..].iter().map(|&x| T::from_f64(x)).collect());
        Self::new(block, rows)
    }
}

/// One tournament match: stack `lo` over `hi`, GEPP the stack, keep the
/// first `min(b, k_lo + k_hi)` winning original rows.
///
/// The `(lo, hi)` order is significant — ties in the pivot search resolve
/// toward `lo` (LAPACK `iamax` semantics), so every caller must combine in
/// member-index order for run-to-run determinism (the netsim butterfly and
/// the sequential tree both do).
///
/// Never fails: a rank-deficient stack simply elects some dependent rows
/// after the independent ones (see [`Candidates::from_block_row`]).
pub fn reduce_pair<T: Scalar>(lo: &Candidates<T>, hi: &Candidates<T>) -> Candidates<T> {
    let b = lo.width();
    assert_eq!(hi.width(), b, "mismatched panel widths");
    let total = lo.len() + hi.len();
    let keep = total.min(b);

    let mut stacked = Matrix::zeros(total, b);
    for j in 0..b {
        let (dst_lo, dst_hi) = stacked.col_mut(j).split_at_mut(lo.len());
        dst_lo.copy_from_slice(lo.block.col(j));
        dst_hi.copy_from_slice(hi.block.col(j));
    }
    let mut idx: Vec<usize> = lo.rows.iter().chain(hi.rows.iter()).copied().collect();

    let mut work = stacked.clone();
    let mut ipiv = vec![0usize; keep];
    let _info = getf2_info(work.view_mut(), &mut ipiv, &mut NoObs);

    apply_ipiv(stacked.view_mut(), &ipiv);
    for (i, &p) in ipiv.iter().enumerate() {
        idx.swap(i, p);
    }
    let winners = stacked.view().submatrix(0, 0, keep, b).to_matrix();
    idx.truncate(keep);
    Candidates::new(winners, idx)
}

/// Runs the whole tournament sequentially with exactly the combination tree
/// of the butterfly all-reduce (fold-in of non-power-of-two extras, then
/// pairwise halving), so sequential and simulated-distributed TSLU elect
/// identical pivots.
///
/// # Panics
/// If `blocks` is empty.
pub fn tournament<T: Scalar>(mut blocks: Vec<Candidates<T>>) -> Candidates<T> {
    assert!(!blocks.is_empty(), "tournament needs at least one candidate set");
    let p = blocks.len();
    let p2 = calu_netsim::collectives::prev_pow2(p);
    let extra = p - p2;

    // Fold-in: blocks[p2 + i] merges into blocks[i] (matching the netsim
    // all-reduce pre-step).
    for i in 0..extra {
        let hi = blocks[p2 + i].clone();
        blocks[i] = reduce_pair(&blocks[i], &hi);
    }
    blocks.truncate(p2);

    while blocks.len() > 1 {
        let mut next = Vec::with_capacity(blocks.len() / 2);
        for pair in blocks.chunks(2) {
            next.push(reduce_pair(&pair[0], &pair[1]));
        }
        blocks = next;
    }
    blocks.pop().expect("non-empty")
}

/// Flat tournament: stack *all* candidate sets at once and elect the
/// winners with a single GEPP — the pivots a gather-to-root scheme would
/// produce. The binary tree and the flat stack may elect different (both
/// valid) pivot sets; the stability ablation
/// (`bench/src/bin/ablation_tree_stability.rs`) compares their threshold
/// and growth statistics, and `dist::skeleton`'s [`TsluTree::Flat`]
/// models the corresponding communication cost.
///
/// [`TsluTree::Flat`]: crate::dist::TsluTree::Flat
///
/// # Panics
/// If `blocks` is empty or widths mismatch.
pub fn tournament_flat<T: Scalar>(blocks: Vec<Candidates<T>>) -> Candidates<T> {
    assert!(!blocks.is_empty(), "tournament needs at least one candidate set");
    let b = blocks[0].width();
    let total: usize = blocks.iter().map(Candidates::len).sum();
    let keep = total.min(b);

    let mut stacked = Matrix::zeros(total, b);
    let mut idx = Vec::with_capacity(total);
    let mut at = 0;
    for blk in &blocks {
        assert_eq!(blk.width(), b, "mismatched panel widths");
        for j in 0..b {
            stacked.col_mut(j)[at..at + blk.len()].copy_from_slice(blk.block.col(j));
        }
        idx.extend_from_slice(&blk.rows);
        at += blk.len();
    }

    let mut work = stacked.clone();
    let mut ipiv = vec![0usize; keep];
    let _info = getf2_info(work.view_mut(), &mut ipiv, &mut NoObs);
    apply_ipiv(stacked.view_mut(), &ipiv);
    for (i, &p) in ipiv.iter().enumerate() {
        idx.swap(i, p);
    }
    let winners = stacked.view().submatrix(0, 0, keep, b).to_matrix();
    idx.truncate(keep);
    Candidates::new(winners, idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cands_from(m: &Matrix, rows: std::ops::Range<usize>) -> Candidates {
        let block = m.view().submatrix(rows.start, 0, rows.len(), m.cols()).to_matrix();
        Candidates::from_block_row(&block, &rows.collect::<Vec<_>>())
    }

    #[test]
    fn winners_are_subset_of_inputs() {
        let mut rng = StdRng::seed_from_u64(61);
        let a = gen::randn(&mut rng, 32, 4);
        let c0 = cands_from(&a, 0..16);
        let c1 = cands_from(&a, 16..32);
        let w = reduce_pair(&c0, &c1);
        assert_eq!(w.len(), 4);
        for (k, &r) in w.rows.iter().enumerate() {
            // The winner's values equal the original row r of A.
            for j in 0..4 {
                assert_eq!(w.block[(k, j)], a[(r, j)], "row {r} values must be original");
            }
        }
        // All winner indices distinct.
        let mut sorted = w.rows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn first_winner_is_column_max_of_union() {
        // The first pivot of GEPP on the stacked candidates is the largest
        // |entry| in column 0 among all candidates.
        let mut rng = StdRng::seed_from_u64(62);
        let a = gen::randn(&mut rng, 24, 3);
        let c0 = cands_from(&a, 0..12);
        let c1 = cands_from(&a, 12..24);
        let w = reduce_pair(&c0, &c1);
        let best_cand =
            c0.block.col(0).iter().chain(c1.block.col(0)).fold(0.0_f64, |m, &v| m.max(v.abs()));
        assert_eq!(a[(w.rows[0], 0)].abs(), best_cand);
    }

    #[test]
    fn payload_round_trip() {
        let mut rng = StdRng::seed_from_u64(63);
        let a = gen::randn(&mut rng, 10, 5);
        let c = cands_from(&a, 0..10);
        let p = c.to_payload();
        let c2 = Candidates::from_payload(&p);
        assert_eq!(c, c2);
    }

    #[test]
    fn tournament_single_block_is_identity() {
        let mut rng = StdRng::seed_from_u64(64);
        let a = gen::randn(&mut rng, 8, 3);
        let c = cands_from(&a, 0..8);
        let w = tournament(vec![c.clone()]);
        assert_eq!(w, c);
    }

    #[test]
    fn tournament_b1_p_any_equals_partial_pivoting() {
        // For b = 1 the tournament winner is the global column max —
        // ca-pivoting degenerates to partial pivoting (paper Section 2).
        let mut rng = StdRng::seed_from_u64(65);
        let a = gen::randn(&mut rng, 40, 1);
        for p in [2usize, 3, 4, 5, 8] {
            let chunk = 40 / p;
            let blocks: Vec<Candidates> = (0..p)
                .map(|i| {
                    let lo = i * chunk;
                    let hi = if i == p - 1 { 40 } else { lo + chunk };
                    cands_from(&a, lo..hi)
                })
                .collect();
            let w = tournament(blocks);
            let best = calu_matrix::blas1::iamax(a.col(0));
            assert_eq!(w.rows[0], best, "p={p}");
        }
    }

    #[test]
    fn uneven_candidate_sets_are_supported() {
        let mut rng = StdRng::seed_from_u64(66);
        let a = gen::randn(&mut rng, 10, 4);
        // First block-row has only 2 rows (< b).
        let c0 = cands_from(&a, 0..2);
        let c1 = cands_from(&a, 2..10);
        assert_eq!(c0.len(), 2);
        let w = reduce_pair(&c0, &c1);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn flat_and_binary_agree_on_the_first_winner() {
        // Both elect the global column-0 maximum first; later winners may
        // differ (different but equally valid pivot sets).
        let mut rng = StdRng::seed_from_u64(67);
        let a = gen::randn(&mut rng, 48, 6);
        let blocks: Vec<Candidates> =
            (0..4).map(|i| cands_from(&a, i * 12..(i + 1) * 12)).collect();
        let bin = tournament(blocks.clone());
        let flat = tournament_flat(blocks);
        assert_eq!(bin.rows[0], flat.rows[0], "first pivot is the global max either way");
        assert_eq!(flat.len(), 6);
        // Flat winners are original rows too.
        for (k, &r) in flat.rows.iter().enumerate() {
            for j in 0..6 {
                assert_eq!(flat.block[(k, j)], a[(r, j)]);
            }
        }
    }

    #[test]
    fn flat_tournament_single_block_is_identity() {
        let mut rng = StdRng::seed_from_u64(68);
        let a = gen::randn(&mut rng, 9, 3);
        let c = cands_from(&a, 0..9);
        let w = tournament_flat(vec![c.clone()]);
        assert_eq!(w, c);
    }

    #[test]
    fn tournament_and_flat_winners_are_permutation_consistent_subsets() {
        // Both tree shapes must elect b *distinct* candidate rows, each
        // carrying its original values — i.e. the winners extend to a
        // valid row permutation of the panel.
        use calu_matrix::perm::{ipiv_to_perm, is_permutation};
        let mut rng = StdRng::seed_from_u64(601);
        for &(rows, b, chunks) in &[(40usize, 5usize, 4usize), (36, 6, 3), (64, 8, 8)] {
            let a = gen::randn(&mut rng, rows, b);
            let blocks: Vec<Candidates> = (0..chunks)
                .map(|i| cands_from(&a, i * rows / chunks..(i + 1) * rows / chunks))
                .collect();
            for (label, w) in
                [("tree", tournament(blocks.clone())), ("flat", tournament_flat(blocks))]
            {
                assert_eq!(w.len(), b, "{label}");
                // Distinct winners within range...
                let mut seen = vec![false; rows];
                for &r in &w.rows {
                    assert!(r < rows, "{label}: winner {r} out of range");
                    assert!(!seen[r], "{label}: duplicate winner {r}");
                    seen[r] = true;
                }
                // ...whose swap sequence extends to a full permutation.
                let ipiv = crate::tslu::winners_to_ipiv(&w.rows, rows);
                let perm = ipiv_to_perm(&ipiv, rows);
                assert!(is_permutation(&perm), "{label}");
                assert_eq!(&perm[..b], w.rows.as_slice(), "{label}: winners on top");
                // Winner values are original panel rows, not factored junk.
                for (k, &r) in w.rows.iter().enumerate() {
                    for j in 0..b {
                        assert_eq!(w.block[(k, j)], a[(r, j)], "{label}");
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_pair_is_deterministic_under_fixed_seed() {
        // Same seed -> same candidates -> bitwise identical reduction,
        // across repeated evaluations and clones (the property the
        // butterfly all-reduce relies on when both partners combine
        // redundantly).
        for trial in 0..3 {
            let mk = || {
                let mut rng = StdRng::seed_from_u64(602 + trial);
                let a = gen::randn(&mut rng, 24, 4);
                let c0 = cands_from(&a, 0..12);
                let c1 = cands_from(&a, 12..24);
                reduce_pair(&c0, &c1)
            };
            let w1 = mk();
            let w2 = mk();
            assert_eq!(w1.rows, w2.rows);
            assert_eq!(w1.block.max_abs_diff(&w2.block), 0.0, "bitwise determinism");
            // And the payload round trip preserves it exactly.
            let w3 = Candidates::from_payload(&w1.to_payload());
            assert_eq!(w1, w3);
        }
    }

    #[test]
    fn flat_tournament_handles_singular_stacks() {
        // All-zero middle block: flat election must not fail either.
        let mut rng = StdRng::seed_from_u64(69);
        let mut a = gen::randn(&mut rng, 12, 3);
        for i in 4..8 {
            for j in 0..3 {
                a[(i, j)] = 0.0;
            }
        }
        let blocks: Vec<Candidates> = (0..3).map(|i| cands_from(&a, i * 4..(i + 1) * 4)).collect();
        let w = tournament_flat(blocks);
        assert_eq!(w.len(), 3);
        for &r in &w.rows {
            assert!(!(4..8).contains(&r), "zero rows must not win");
        }
    }
}
