//! Shared-memory parallel CALU — a thin front-end over the
//! [`calu-runtime`](calu_runtime) task DAG.
//!
//! The paper's future-work section asks about "the suitability of the new
//! ca-pivoting strategy for parallel LU on multicore architectures"; this
//! module is that variant: the factorization runs on the runtime's
//! work-stealing threaded executor (tiles of the trailing update spread
//! across workers) and each panel's local candidate elections additionally
//! run on the rayon pool. The numerics are bitwise identical to the
//! sequential [`crate::calu`] path (same tournament tree, same per-element
//! accumulation order), which the tests assert.

use crate::calu::{CaluOpts, LuFactors};
use crate::rt::{runtime_calu_inplace, RuntimeOpts};
use calu_matrix::{MatViewMut, Matrix, NoObs, PivotObserver, Result, Scalar};
use calu_runtime::ExecutorKind;

/// Factors a copy of `a` with CALU using the threaded runtime for the
/// trailing update and rayon for the panels' local factorizations.
///
/// # Errors
/// Singular pivot.
pub fn par_calu_factor<T: Scalar>(a: &Matrix<T>, opts: CaluOpts) -> Result<LuFactors<T>> {
    let mut lu = a.clone();
    let ipiv = par_calu_inplace(lu.view_mut(), opts, &mut NoObs)?;
    Ok(LuFactors { lu, ipiv })
}

/// In-place parallel CALU; see [`par_calu_factor`].
///
/// # Errors
/// Singular pivot.
pub fn par_calu_inplace<T: Scalar, O: PivotObserver<T> + Send>(
    a: MatViewMut<'_, T>,
    opts: CaluOpts,
    obs: &mut O,
) -> Result<Vec<usize>> {
    let rt = RuntimeOpts {
        lookahead: 1,
        executor: ExecutorKind::Threaded { threads: 0 },
        parallel_panel: true,
    };
    let (ipiv, _report) = runtime_calu_inplace(a, opts, rt, obs)?;
    Ok(ipiv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calu::{calu_factor, CaluOpts};
    use calu_matrix::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_calu_matches_sequential_bitwise() {
        let mut rng = StdRng::seed_from_u64(121);
        for &(n, b, p) in &[(96, 16, 4), (130, 32, 8), (64, 64, 4)] {
            let a0: Matrix = gen::randn(&mut rng, n, n);
            let opts = CaluOpts { block: b, p, ..Default::default() };
            let seq = calu_factor(&a0, opts).unwrap();
            let par = par_calu_factor(&a0, opts).unwrap();
            assert_eq!(seq.ipiv, par.ipiv, "n={n} b={b} p={p}");
            assert_eq!(
                seq.lu.max_abs_diff(&par.lu),
                0.0,
                "factors must be bitwise identical (deterministic tree + update)"
            );
        }
    }

    #[test]
    fn parallel_calu_solves() {
        let mut rng = StdRng::seed_from_u64(122);
        let n = 100;
        let a = gen::randn(&mut rng, n, n);
        let xt: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let b = gen::rhs_for_solution(&a, &xt);
        let f = par_calu_factor(&a, CaluOpts { block: 20, p: 4, ..Default::default() }).unwrap();
        let x = f.solve(&b);
        for (a, b) in x.iter().zip(&xt) {
            assert!((a - b).abs() < 1e-7);
        }
    }
}
