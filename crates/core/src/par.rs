//! Shared-memory parallel CALU on the rayon pool.
//!
//! The paper's future-work section asks about "the suitability of the new
//! ca-pivoting strategy for parallel LU on multicore architectures"; this
//! module is that variant: block-rows' local candidate elections run in
//! parallel tasks and the trailing update uses the parallel `gemm`. The
//! numerics are bitwise identical to the sequential [`crate::calu`] path
//! (same tournament tree, same update order), which the tests assert.

use crate::calu::{CaluOpts, LuFactors};
use crate::tslu::tslu_factor_with;
use calu_matrix::{MatViewMut, Matrix, NoObs, PivotObserver, Result};

/// Factors a copy of `a` with CALU using rayon for both the panel's local
/// factorizations and the trailing update.
///
/// # Errors
/// Singular pivot.
pub fn par_calu_factor(a: &Matrix, opts: CaluOpts) -> Result<LuFactors> {
    let mut lu = a.clone();
    let ipiv = par_calu_inplace(lu.view_mut(), opts, &mut NoObs)?;
    Ok(LuFactors { lu, ipiv })
}

/// In-place parallel CALU; see [`par_calu_factor`].
///
/// # Errors
/// Singular pivot.
pub fn par_calu_inplace<O: PivotObserver>(
    a: MatViewMut<'_>,
    mut opts: CaluOpts,
    obs: &mut O,
) -> Result<Vec<usize>> {
    opts.parallel_update = true;
    calu_inplace_panels_parallel(a, opts, obs)
}

/// The driver: identical sweep to [`crate::calu::calu_inplace`] but the panel goes
/// through [`tslu_factor_with`]`(parallel = true)`. (The trailing update
/// parallelism is already controlled by `opts.parallel_update`.)
fn calu_inplace_panels_parallel<O: PivotObserver>(
    mut a: MatViewMut<'_>,
    opts: CaluOpts,
    obs: &mut O,
) -> Result<Vec<usize>> {
    use calu_matrix::blas3::{par_gemm, trsm};
    use calu_matrix::perm::apply_ipiv;
    use calu_matrix::{Diag, Side, Uplo};

    let (m, n) = (a.rows(), a.cols());
    let kn = m.min(n);
    let nb = opts.block;
    let mut ipiv = vec![0usize; kn];

    let mut k = 0;
    while k < kn {
        let jb = nb.min(kn - k);
        {
            let panel = a.submatrix_mut(k, k, m - k, jb);
            let r =
                tslu_factor_with(panel, opts.p, opts.local, true, obs).map_err(|e| match e {
                    calu_matrix::Error::SingularPivot { step } => {
                        calu_matrix::Error::SingularPivot { step: step + k }
                    }
                    other => other,
                })?;
            ipiv[k..k + jb].copy_from_slice(&r.ipiv);
        }
        let local: Vec<usize> = ipiv[k..k + jb].to_vec();
        if k > 0 {
            apply_ipiv(a.submatrix_mut(k, 0, m - k, k), &local);
        }
        if k + jb < n {
            apply_ipiv(a.submatrix_mut(k, k + jb, m - k, n - k - jb), &local);
        }
        for p in ipiv[k..k + jb].iter_mut() {
            *p += k;
        }
        if k + jb < n {
            let (left, right) = a.rb_mut().split_at_col_mut(k + jb);
            let right = right.into_submatrix(k, 0, m - k, n - k - jb);
            let (mut u12, mut a22) = right.split_at_row_mut(jb);
            let l11 = left.submatrix(k, k, jb, jb);
            trsm(Side::Left, Uplo::Lower, Diag::Unit, 1.0, l11, u12.rb_mut());
            if k + jb < m {
                let l21 = left.submatrix(k + jb, k, m - k - jb, jb);
                par_gemm(-1.0, l21, u12.as_view(), 1.0, a22.rb_mut());
                obs.on_stage(&a22.as_view());
            }
        }
        k += jb;
    }
    Ok(ipiv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calu::{calu_factor, CaluOpts};
    use crate::tslu::LocalLu;
    use calu_matrix::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_calu_matches_sequential_bitwise() {
        let mut rng = StdRng::seed_from_u64(121);
        for &(n, b, p) in &[(96, 16, 4), (130, 32, 8), (64, 64, 4)] {
            let a0 = gen::randn(&mut rng, n, n);
            let opts = CaluOpts { block: b, p, local: LocalLu::Recursive, parallel_update: false };
            let seq = calu_factor(&a0, opts).unwrap();
            let par = par_calu_factor(&a0, opts).unwrap();
            assert_eq!(seq.ipiv, par.ipiv, "n={n} b={b} p={p}");
            assert_eq!(
                seq.lu.max_abs_diff(&par.lu),
                0.0,
                "factors must be bitwise identical (deterministic tree + update)"
            );
        }
    }

    #[test]
    fn parallel_calu_solves() {
        let mut rng = StdRng::seed_from_u64(122);
        let n = 100;
        let a = gen::randn(&mut rng, n, n);
        let xt: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let b = gen::rhs_for_solution(&a, &xt);
        let f = par_calu_factor(&a, CaluOpts { block: 20, p: 4, ..Default::default() }).unwrap();
        let x = f.solve(&b);
        for (a, b) in x.iter().zip(&xt) {
            assert!((a - b).abs() < 1e-7);
        }
    }
}
