//! Linear solves from packed factors, with HPL-style iterative refinement —
//! including the mixed-precision path ([`ir_solve`]): factor once in `f32`
//! on the task-graph runtime, then refine residuals in `f64` until the HPL
//! accuracy gate passes.

use crate::calu::{CaluOpts, LuFactors};
use crate::rt::{runtime_calu_factor, RuntimeOpts};
use crate::serve::runtime_solve_mat;
use calu_matrix::blas2::gemv;
use calu_matrix::lapack::{gecon, getri, getrs, getrs_mat, getrs_t};
use calu_matrix::norms::{
    hpl_residuals_from_norms, mat_norm_1, mat_norm_inf, vec_norm_1, vec_norm_inf,
};
use calu_matrix::scalar::cast_slice;
use calu_matrix::{MatViewMut, Matrix, Result, Scalar};

/// Report from [`LuFactors::solve_refined`].
#[derive(Debug, Clone, PartialEq)]
pub struct RefineInfo {
    /// Refinement steps actually performed.
    pub iterations: usize,
    /// Scaled residual `||b - A x||_inf / (||A||_inf ||x||_inf + ||b||_inf)`
    /// after the final step.
    pub final_residual: f64,
}

impl<T: Scalar> LuFactors<T> {
    /// Problem size (factors must be square to solve).
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    /// If the factors are not square or `b` has the wrong length.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = b.to_vec();
        getrs(self.lu.view(), &self.ipiv, &mut x);
        x
    }

    /// Solves `A X = B` for multiple right-hand sides in place.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn solve_mat(&self, b: MatViewMut<'_, T>) {
        getrs_mat(self.lu.view(), &self.ipiv, b);
    }

    /// Solves with iterative refinement in working precision (the HPL
    /// driver refines until the scaled residual passes; the paper notes
    /// "usually after 2 iterative refinements the componentwise backward
    /// error is reduced to the order of 10^-16").
    ///
    /// `a` must be the original (unfactored) matrix.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn solve_refined(&self, a: &Matrix<T>, b: &[T], max_iter: usize) -> (Vec<T>, RefineInfo) {
        let n = self.order();
        assert_eq!(a.rows(), n);
        assert_eq!(a.cols(), n);
        assert_eq!(b.len(), n);

        let norm_a = mat_norm_inf(a.view());
        let norm_b = vec_norm_inf(b);
        let mut x = self.solve(b);
        let mut r = vec![T::ZERO; n];
        let mut iterations = 0;
        let mut final_residual = f64::INFINITY;

        for it in 0..=max_iter {
            // r = b - A x.
            r.copy_from_slice(b);
            gemv(-T::ONE, a.view(), &x, T::ONE, &mut r);
            let denom = norm_a * vec_norm_inf(&x) + norm_b;
            final_residual =
                if denom > T::ZERO { (vec_norm_inf(&r) / denom).to_f64() } else { 0.0 };
            iterations = it;
            // The convergence target scales with the working precision's
            // unit roundoff — n·ε_T, not n·ε_f64.
            let target = n as f64 * T::EPSILON.to_f64();
            if final_residual <= target || it == max_iter {
                break;
            }
            let dx = self.solve(&r);
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi += *di;
            }
        }
        (x, RefineInfo { iterations, final_residual })
    }

    /// Determinant from the factors: product of `U`'s diagonal with the
    /// permutation sign.
    pub fn det(&self) -> T {
        let n = self.order();
        let mut d = T::ONE;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        let swaps = self.ipiv.iter().enumerate().filter(|&(i, &p)| p != i).count();
        if swaps % 2 == 1 {
            -d
        } else {
            d
        }
    }

    /// Solves the transposed system `A^T x = b` from the same factors.
    ///
    /// # Panics
    /// If the factors are not square or `b` has the wrong length.
    pub fn solve_transposed(&self, b: &[T]) -> Vec<T> {
        let mut x = b.to_vec();
        getrs_t(self.lu.view(), &self.ipiv, &mut x);
        x
    }

    /// Explicit inverse `A^{-1}` from the factors (`DGETRI`; `~4/3 n³`
    /// flops on top of the factorization).
    ///
    /// # Errors
    /// [`calu_matrix::Error::SingularPivot`] if `U` has a zero diagonal.
    pub fn inverse(&self) -> Result<Matrix<T>> {
        let mut inv = self.lu.clone();
        getri(inv.view_mut(), &self.ipiv)?;
        Ok(inv)
    }

    /// Reciprocal 1-norm condition estimate (`DGECON`); pass
    /// `anorm = ||A||_1` of the original matrix. `O(n²)` given the factors.
    pub fn rcond(&self, anorm: T) -> T {
        gecon(self.lu.view(), &self.ipiv, anorm)
    }
}

/// Options for the mixed-precision iterative-refinement solver
/// [`ir_solve`].
#[derive(Debug, Clone, Copy)]
pub struct IrOpts {
    /// CALU tuning for the low-precision factorization.
    pub calu: CaluOpts,
    /// Task-graph runtime configuration driving the `f32` factorization
    /// (executor choice and lookahead depth).
    pub rt: RuntimeOpts,
    /// Maximum refinement steps after the initial solve.
    pub max_iter: usize,
}

impl Default for IrOpts {
    fn default() -> Self {
        Self { calu: CaluOpts::default(), rt: RuntimeOpts::default(), max_iter: 10 }
    }
}

/// One refinement step's accuracy record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrStep {
    /// Normwise backward error
    /// `||b − Ax||_inf / (||A||_inf ||x||_inf + ||b||_inf)` at this step.
    pub backward_error: f64,
    /// The three HPL residuals `[HPL1, HPL2, HPL3]` at this step
    /// (ε = `f64::EPSILON`; the gate passes when all three are < 16).
    pub hpl: [f64; 3],
}

impl IrStep {
    /// HPL's pass criterion: all three residuals below 16.
    pub fn passes_hpl(&self) -> bool {
        self.hpl.iter().all(|&h| h < 16.0)
    }
}

/// Report from [`ir_solve`]: the per-iteration backward-error trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct IrReport {
    /// Refinement steps actually performed (0 = the initial `f32` solve
    /// already passed the gate).
    pub iterations: usize,
    /// Accuracy record per candidate solution: `steps[0]` is the raw
    /// low-precision solve, `steps[k]` the solution after `k` corrections.
    pub steps: Vec<IrStep>,
    /// `true` when the final solution passes the full-precision HPL gate.
    pub converged: bool,
    /// `true` when refinement was cut short because the backward error
    /// failed to improve on two consecutive steps — the classical signal
    /// that `κ(A)·ε_f32 ≳ 1` and the low-precision correction equation
    /// can no longer reduce the residual; the trajectory in
    /// [`Self::steps`] shows where the stall began.
    pub diverged: bool,
}

impl IrReport {
    /// Backward error of the final solution.
    pub fn final_backward_error(&self) -> f64 {
        self.steps.last().map_or(f64::INFINITY, |s| s.backward_error)
    }
}

/// Mixed-precision solve of `A x = b`: CALU-factor a *rounded `f32` copy*
/// of `A` on the task-graph runtime (half the factorization flop cost and
/// memory traffic of `f64`), then iteratively refine in `f64` — compute
/// the residual `r = b − Ax` at full precision, solve the correction
/// `A d = r` with the cheap `f32` factors, update `x += d` — until the
/// full-precision HPL accuracy gate passes (all three residuals < 16) or
/// `opts.max_iter` corrections have been spent.
///
/// This is the classical `SGETRF`+`DGEMV` iterative-refinement scheme
/// (Langou et al. 2006) rebuilt on this repo's communication-avoiding
/// stack: the factorization — the `O(n³)` part — runs at the fast
/// precision on the runtime DAG with tournament pivoting, while each
/// refinement step costs only `O(n²)`. For matrices with
/// `κ(A) « 1/ε_f32 ≈ 10⁷` a handful of steps recovers full `f64`
/// accuracy; the per-iteration trajectory is reported so callers (and the
/// `precision_calu` bench) can see the convergence rate of ~`ε_f32` per
/// step.
///
/// # Errors
/// [`calu_matrix::Error::SingularPivot`] when the rounded-to-`f32` matrix
/// is exactly singular at some elimination step (e.g. structured matrices
/// whose rank collapses under rounding); the runtime cancels all
/// dependent tasks and surfaces the absolute step.
///
/// # Panics
/// If `a` is not square or `b.len() != a.rows()`.
pub fn ir_solve(a: &Matrix<f64>, b: &[f64], opts: IrOpts) -> Result<(Vec<f64>, IrReport)> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "ir_solve: A must be square");
    assert_eq!(b.len(), n, "ir_solve: rhs length mismatch");

    // Factor at low precision on the runtime DAG.
    let a32: Matrix<f32> = a.cast();
    let (f32_factors, _exec) = runtime_calu_factor(&a32, opts.calu, opts.rt)?;

    // Initial solve: x₀ = U⁻¹ L⁻¹ P b, all in f32, promoted exactly.
    let b32: Vec<f32> = cast_slice(b);
    let mut x: Vec<f64> = cast_slice(&f32_factors.solve(&b32));

    // Matrix norms are fixed across the loop; hoist the O(n²) scans so a
    // refinement step stays one gemv + one pair of triangular solves.
    let norm_a1 = mat_norm_1(a.view());
    let norm_ainf = mat_norm_inf(a.view());
    let norm_b = vec_norm_inf(b);
    let mut r = vec![0.0_f64; n];
    let mut steps: Vec<IrStep> = Vec::with_capacity(opts.max_iter + 1);
    let mut converged = false;
    let mut diverged = false;
    let mut non_improving = 0usize;

    for it in 0..=opts.max_iter {
        // Full-precision residual r = b − A x.
        r.copy_from_slice(b);
        gemv(-1.0, a.view(), &x, 1.0, &mut r);
        let r_inf = vec_norm_inf(&r);
        let denom = norm_ainf * vec_norm_inf(&x) + norm_b;
        let backward_error = if denom > 0.0 { r_inf / denom } else { 0.0 };
        let hpl = hpl_residuals_from_norms(
            n,
            r_inf,
            norm_a1,
            norm_ainf,
            vec_norm_1(&x),
            vec_norm_inf(&x),
            f64::EPSILON,
        );
        let step = IrStep { backward_error, hpl };
        let passed = step.passes_hpl();
        // Divergence watch: when κ(A)·ε_f32 ≳ 1 the f32 factors can't
        // reduce the residual and each "correction" random-walks or grows
        // the error; two consecutive steps that fail to improve on their
        // predecessor end the loop instead of burning the remaining
        // budget (one flat step alone is common near convergence, so a
        // single miss is tolerated and the streak resets on improvement).
        if let Some(prev) = steps.last() {
            if backward_error >= prev.backward_error {
                non_improving += 1;
            } else {
                non_improving = 0;
            }
        }
        steps.push(step);
        if passed {
            converged = true;
            break;
        }
        if non_improving >= 2 {
            diverged = true;
            break;
        }
        if it == opts.max_iter {
            break;
        }
        // Correction at low precision: d = A⁻¹ r via the f32 factors.
        let r32: Vec<f32> = cast_slice(&r);
        let d: Vec<f64> = cast_slice(&f32_factors.solve(&r32));
        for (xi, di) in x.iter_mut().zip(&d) {
            *xi += di;
        }
    }

    let iterations = steps.len() - 1;
    Ok((x, IrReport { iterations, steps, converged, diverged }))
}

/// Report from [`ir_solve_batch`]: the whole-batch outcome plus one full
/// [`IrReport`] per right-hand side.
#[derive(Debug, Clone, PartialEq)]
pub struct IrBatchReport {
    /// Per-column refinement reports, in `B`'s column order. Each is
    /// **bitwise identical** to what [`ir_solve`] would report for that
    /// column alone — batching changes the cost, not the numbers.
    pub per_rhs: Vec<IrReport>,
    /// Refinement steps of the slowest column.
    pub iterations: usize,
    /// `true` when every column passed the HPL gate.
    pub converged: bool,
    /// `true` when any column hit the divergence stop.
    pub diverged: bool,
}

/// Batched [`ir_solve`]: one `f32` CALU factorization on the runtime DAG
/// shared across all columns of `B`, with the initial solves and every
/// refinement correction executed as blocked multi-RHS task DAGs
/// ([`crate::serve::runtime_solve_mat`]) instead of per-column
/// substitutions. Columns converge (or diverge) independently: finished
/// columns are frozen and drop out of subsequent correction batches.
///
/// Each column's solution and its [`IrReport`] trajectory are **bitwise
/// identical** to a standalone [`ir_solve`] of that column — the batched
/// triangular solves reproduce the per-column substitution order exactly,
/// so amortizing the factorization is free of numerical drift.
///
/// # Errors
/// [`calu_matrix::Error::SingularPivot`] from the shared factorization,
/// exactly as [`ir_solve`].
///
/// # Panics
/// If `a` is not square or `b.rows() != a.rows()`.
pub fn ir_solve_batch(
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    opts: IrOpts,
) -> Result<(Matrix<f64>, IrBatchReport)> {
    let n = a.rows();
    let k = b.cols();
    assert_eq!(a.cols(), n, "ir_solve_batch: A must be square");
    assert_eq!(b.rows(), n, "ir_solve_batch: rhs rows mismatch");

    // One factorization for the whole batch — the amortized O(n³) part.
    let a32: Matrix<f32> = a.cast();
    let (f32_factors, _exec) = runtime_calu_factor(&a32, opts.calu, opts.rt)?;

    let mut report = IrBatchReport {
        per_rhs: Vec::with_capacity(k),
        iterations: 0,
        converged: true,
        diverged: false,
    };
    let mut x = Matrix::<f64>::zeros(n, k);
    if k == 0 {
        return Ok((x, report));
    }

    // Initial solves, all columns in one blocked runtime pass.
    let rhs_nb = 8;
    let mut x32: Matrix<f32> = b.cast();
    runtime_solve_mat(&f32_factors, x32.view_mut(), opts.calu.block, rhs_nb, opts.rt.executor);
    for c in 0..k {
        let promoted: Vec<f64> = cast_slice(x32.col(c));
        x.col_mut(c).copy_from_slice(&promoted);
    }

    let norm_a1 = mat_norm_1(a.view());
    let norm_ainf = mat_norm_inf(a.view());
    // Per-column refinement state; `active` columns still iterate.
    struct ColState {
        steps: Vec<IrStep>,
        non_improving: usize,
        converged: bool,
        diverged: bool,
    }
    let mut cols: Vec<ColState> = (0..k)
        .map(|_| ColState {
            steps: Vec::with_capacity(opts.max_iter + 1),
            non_improving: 0,
            converged: false,
            diverged: false,
        })
        .collect();
    let mut r = vec![0.0_f64; n];

    for it in 0..=opts.max_iter {
        // Residual + accuracy record for every still-active column, then
        // gather the survivors' residuals for one batched correction.
        let mut active: Vec<usize> = Vec::new();
        let mut r32 = Vec::<f32>::new();
        for (c, st) in cols.iter_mut().enumerate() {
            if st.converged || st.diverged {
                continue;
            }
            let bc = b.col(c);
            let xc = x.col(c);
            r.copy_from_slice(bc);
            gemv(-1.0, a.view(), xc, 1.0, &mut r);
            let r_inf = vec_norm_inf(&r);
            let denom = norm_ainf * vec_norm_inf(xc) + vec_norm_inf(bc);
            let backward_error = if denom > 0.0 { r_inf / denom } else { 0.0 };
            let hpl = hpl_residuals_from_norms(
                n,
                r_inf,
                norm_a1,
                norm_ainf,
                vec_norm_1(xc),
                vec_norm_inf(xc),
                f64::EPSILON,
            );
            let step = IrStep { backward_error, hpl };
            let passed = step.passes_hpl();
            if let Some(prev) = st.steps.last() {
                if backward_error >= prev.backward_error {
                    st.non_improving += 1;
                } else {
                    st.non_improving = 0;
                }
            }
            st.steps.push(step);
            if passed {
                st.converged = true;
                continue;
            }
            if st.non_improving >= 2 {
                st.diverged = true;
                continue;
            }
            if it == opts.max_iter {
                continue;
            }
            active.push(c);
            r32.extend(cast_slice::<f64, f32>(&r));
        }
        if active.is_empty() {
            break;
        }
        // Batched correction: D = A⁻¹ R for the active columns only.
        let mut d32 = Matrix::from_col_major(n, active.len(), r32);
        runtime_solve_mat(&f32_factors, d32.view_mut(), opts.calu.block, rhs_nb, opts.rt.executor);
        for (slot, &c) in active.iter().enumerate() {
            let d: Vec<f64> = cast_slice(d32.col(slot));
            for (xi, di) in x.col_mut(c).iter_mut().zip(&d) {
                *xi += di;
            }
        }
    }

    for st in cols {
        let iterations = st.steps.len() - 1;
        report.iterations = report.iterations.max(iterations);
        report.converged &= st.converged;
        report.diverged |= st.diverged;
        report.per_rhs.push(IrReport {
            iterations,
            steps: st.steps,
            converged: st.converged,
            diverged: st.diverged,
        });
    }
    Ok((x, report))
}

#[cfg(test)]
mod tests {
    use crate::calu::{calu_factor, CaluOpts};
    use crate::gepp::gepp_factor;
    use calu_matrix::gen;
    use calu_matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calu_solve_recovers_solution() {
        let mut rng = StdRng::seed_from_u64(111);
        let n = 80;
        let a = gen::randn(&mut rng, n, n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let b = gen::rhs_for_solution(&a, &x_true);
        let f = calu_factor(&a, CaluOpts { block: 16, p: 4, ..Default::default() }).unwrap();
        let x = f.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7, "{xi} vs {ti}");
        }
    }

    #[test]
    fn refinement_improves_residual() {
        let mut rng = StdRng::seed_from_u64(112);
        let n = 120;
        let a: Matrix = gen::randn(&mut rng, n, n);
        let b = gen::hpl_rhs(&mut rng, n);
        let f = calu_factor(&a, CaluOpts { block: 24, p: 4, ..Default::default() }).unwrap();
        let (_x, info) = f.solve_refined(&a, &b, 2);
        assert!(
            info.final_residual <= n as f64 * f64::EPSILON * 10.0,
            "residual {} too large",
            info.final_residual
        );
    }

    #[test]
    fn det_of_identity_and_swap() {
        let f: crate::calu::LuFactors = gepp_factor(&Matrix::identity(4), 2).unwrap();
        assert_eq!(f.det(), 1.0);
        // A permutation matrix with one swap has det -1.
        let mut m = Matrix::identity(4);
        m[(0, 0)] = 0.0;
        m[(1, 1)] = 0.0;
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        let f = gepp_factor(&m, 2).unwrap();
        let d: f64 = f.det();
        assert!((d + 1.0).abs() < 1e-12);
    }

    #[test]
    fn transposed_solve_round_trips() {
        let mut rng = StdRng::seed_from_u64(114);
        let n = 48;
        let a = gen::randn(&mut rng, n, n);
        let f = calu_factor(&a, CaluOpts { block: 8, p: 4, ..Default::default() }).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let x = f.solve_transposed(&b);
        // A^T x == b.
        let mut back = vec![0.0; n];
        calu_matrix::blas2::gemv_t(1.0, a.view(), &x, 0.0, &mut back);
        for (want, got) in b.iter().zip(&back) {
            assert!((want - got).abs() < 1e-8, "{want} vs {got}");
        }
    }

    #[test]
    fn inverse_from_calu_factors() {
        let mut rng = StdRng::seed_from_u64(115);
        let n = 40;
        let a = gen::randn(&mut rng, n, n);
        let f = calu_factor(&a, CaluOpts { block: 8, p: 4, ..Default::default() }).unwrap();
        let inv = f.inverse().unwrap();
        let mut prod = Matrix::zeros(n, n);
        calu_matrix::blas3::gemm(1.0, a.view(), inv.view(), 0.0, prod.view_mut());
        assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-9);
    }

    #[test]
    fn rcond_of_identity_is_one() {
        let f = gepp_factor(&Matrix::identity(6), 2).unwrap();
        let rc: f64 = f.rcond(1.0);
        assert!((rc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn calu_and_gepp_solutions_agree() {
        let mut rng = StdRng::seed_from_u64(113);
        let n = 64;
        let a: Matrix = gen::randn(&mut rng, n, n);
        let b = gen::hpl_rhs(&mut rng, n);
        let fc = calu_factor(&a, CaluOpts { block: 8, p: 8, ..Default::default() }).unwrap();
        let fg = gepp_factor(&a, 8).unwrap();
        let xc = fc.solve(&b);
        let xg = fg.solve(&b);
        let scale = calu_matrix::norms::vec_norm_inf(&xg).max(1.0);
        for (c, g) in xc.iter().zip(&xg) {
            assert!((c - g).abs() / scale < 1e-9, "{c} vs {g}");
        }
    }
}
