//! Linear solves from packed factors, with HPL-style iterative refinement.

use crate::calu::LuFactors;
use calu_matrix::blas2::gemv;
use calu_matrix::lapack::{gecon, getri, getrs, getrs_mat, getrs_t};
use calu_matrix::norms::{mat_norm_inf, vec_norm_inf};
use calu_matrix::{MatViewMut, Matrix, Result};

/// Report from [`LuFactors::solve_refined`].
#[derive(Debug, Clone, PartialEq)]
pub struct RefineInfo {
    /// Refinement steps actually performed.
    pub iterations: usize,
    /// Scaled residual `||b - A x||_inf / (||A||_inf ||x||_inf + ||b||_inf)`
    /// after the final step.
    pub final_residual: f64,
}

impl LuFactors {
    /// Problem size (factors must be square to solve).
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    /// If the factors are not square or `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        getrs(self.lu.view(), &self.ipiv, &mut x);
        x
    }

    /// Solves `A X = B` for multiple right-hand sides in place.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn solve_mat(&self, b: MatViewMut<'_>) {
        getrs_mat(self.lu.view(), &self.ipiv, b);
    }

    /// Solves with iterative refinement in working precision (the HPL
    /// driver refines until the scaled residual passes; the paper notes
    /// "usually after 2 iterative refinements the componentwise backward
    /// error is reduced to the order of 10^-16").
    ///
    /// `a` must be the original (unfactored) matrix.
    ///
    /// # Panics
    /// On shape mismatch.
    pub fn solve_refined(&self, a: &Matrix, b: &[f64], max_iter: usize) -> (Vec<f64>, RefineInfo) {
        let n = self.order();
        assert_eq!(a.rows(), n);
        assert_eq!(a.cols(), n);
        assert_eq!(b.len(), n);

        let norm_a = mat_norm_inf(a.view());
        let norm_b = vec_norm_inf(b);
        let mut x = self.solve(b);
        let mut r = vec![0.0; n];
        let mut iterations = 0;
        let mut final_residual = f64::INFINITY;

        for it in 0..=max_iter {
            // r = b - A x.
            r.copy_from_slice(b);
            gemv(-1.0, a.view(), &x, 1.0, &mut r);
            let denom = norm_a * vec_norm_inf(&x) + norm_b;
            final_residual = if denom > 0.0 { vec_norm_inf(&r) / denom } else { 0.0 };
            iterations = it;
            let target = (n as f64) * f64::EPSILON;
            if final_residual <= target || it == max_iter {
                break;
            }
            let dx = self.solve(&r);
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi += di;
            }
        }
        (x, RefineInfo { iterations, final_residual })
    }

    /// Determinant from the factors: product of `U`'s diagonal with the
    /// permutation sign.
    pub fn det(&self) -> f64 {
        let n = self.order();
        let mut d = 1.0;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        let swaps = self.ipiv.iter().enumerate().filter(|&(i, &p)| p != i).count();
        if swaps % 2 == 1 {
            -d
        } else {
            d
        }
    }

    /// Solves the transposed system `A^T x = b` from the same factors.
    ///
    /// # Panics
    /// If the factors are not square or `b` has the wrong length.
    pub fn solve_transposed(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        getrs_t(self.lu.view(), &self.ipiv, &mut x);
        x
    }

    /// Explicit inverse `A^{-1}` from the factors (`DGETRI`; `~4/3 n³`
    /// flops on top of the factorization).
    ///
    /// # Errors
    /// [`calu_matrix::Error::SingularPivot`] if `U` has a zero diagonal.
    pub fn inverse(&self) -> Result<Matrix> {
        let mut inv = self.lu.clone();
        getri(inv.view_mut(), &self.ipiv)?;
        Ok(inv)
    }

    /// Reciprocal 1-norm condition estimate (`DGECON`); pass
    /// `anorm = ||A||_1` of the original matrix. `O(n²)` given the factors.
    pub fn rcond(&self, anorm: f64) -> f64 {
        gecon(self.lu.view(), &self.ipiv, anorm)
    }
}

#[cfg(test)]
mod tests {
    use crate::calu::{calu_factor, CaluOpts};
    use crate::gepp::gepp_factor;
    use calu_matrix::gen;
    use calu_matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calu_solve_recovers_solution() {
        let mut rng = StdRng::seed_from_u64(111);
        let n = 80;
        let a = gen::randn(&mut rng, n, n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let b = gen::rhs_for_solution(&a, &x_true);
        let f = calu_factor(&a, CaluOpts { block: 16, p: 4, ..Default::default() }).unwrap();
        let x = f.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7, "{xi} vs {ti}");
        }
    }

    #[test]
    fn refinement_improves_residual() {
        let mut rng = StdRng::seed_from_u64(112);
        let n = 120;
        let a = gen::randn(&mut rng, n, n);
        let b = gen::hpl_rhs(&mut rng, n);
        let f = calu_factor(&a, CaluOpts { block: 24, p: 4, ..Default::default() }).unwrap();
        let (_x, info) = f.solve_refined(&a, &b, 2);
        assert!(
            info.final_residual <= n as f64 * f64::EPSILON * 10.0,
            "residual {} too large",
            info.final_residual
        );
    }

    #[test]
    fn det_of_identity_and_swap() {
        let f = gepp_factor(&Matrix::identity(4), 2).unwrap();
        assert_eq!(f.det(), 1.0);
        // A permutation matrix with one swap has det -1.
        let mut m = Matrix::identity(4);
        m[(0, 0)] = 0.0;
        m[(1, 1)] = 0.0;
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        let f = gepp_factor(&m, 2).unwrap();
        assert!((f.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn transposed_solve_round_trips() {
        let mut rng = StdRng::seed_from_u64(114);
        let n = 48;
        let a = gen::randn(&mut rng, n, n);
        let f = calu_factor(&a, CaluOpts { block: 8, p: 4, ..Default::default() }).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let x = f.solve_transposed(&b);
        // A^T x == b.
        let mut back = vec![0.0; n];
        calu_matrix::blas2::gemv_t(1.0, a.view(), &x, 0.0, &mut back);
        for (want, got) in b.iter().zip(&back) {
            assert!((want - got).abs() < 1e-8, "{want} vs {got}");
        }
    }

    #[test]
    fn inverse_from_calu_factors() {
        let mut rng = StdRng::seed_from_u64(115);
        let n = 40;
        let a = gen::randn(&mut rng, n, n);
        let f = calu_factor(&a, CaluOpts { block: 8, p: 4, ..Default::default() }).unwrap();
        let inv = f.inverse().unwrap();
        let mut prod = Matrix::zeros(n, n);
        calu_matrix::blas3::gemm(1.0, a.view(), inv.view(), 0.0, prod.view_mut());
        assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-9);
    }

    #[test]
    fn rcond_of_identity_is_one() {
        let f = gepp_factor(&Matrix::identity(6), 2).unwrap();
        assert!((f.rcond(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn calu_and_gepp_solutions_agree() {
        let mut rng = StdRng::seed_from_u64(113);
        let n = 64;
        let a = gen::randn(&mut rng, n, n);
        let b = gen::hpl_rhs(&mut rng, n);
        let fc = calu_factor(&a, CaluOpts { block: 8, p: 8, ..Default::default() }).unwrap();
        let fg = gepp_factor(&a, 8).unwrap();
        let xc = fc.solve(&b);
        let xg = fg.solve(&b);
        let scale = calu_matrix::norms::vec_norm_inf(&xg).max(1.0);
        for (c, g) in xc.iter().zip(&xg) {
            assert!((c - g).abs() / scale < 1e-9, "{c} vs {g}");
        }
    }
}
