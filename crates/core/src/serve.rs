//! Request-driven solve serving: amortize one factorization over many
//! right-hand sides.
//!
//! The paper's economics only pay off after the factorization: CALU spends
//! `O(n³)` flops (and its carefully minimized communication) once, and
//! every subsequent solve against the same matrix is `O(n²)`. This module
//! supplies the missing front-end — [`SolverService`] — that makes the
//! amortization real:
//!
//! * **Factorization cache** — completed [`LuFactors`] are kept in an LRU
//!   cache keyed by [`MatrixKey`] (matrix id + registration generation),
//!   bounded in bytes, with hit/miss/eviction counters
//!   ([`SolverService::cache_stats`]). A cache miss factors the registered
//!   matrix on the `calu-runtime` DAG.
//! * **Batch coalescing** — queued requests ([`SolverService::submit`] →
//!   [`Ticket`]) are grouped per factorization and solved as multi-RHS
//!   blocks of up to [`ServeOpts::max_batch`] columns, so one pivot sweep
//!   and one pass over `L`/`U` serve the whole batch.
//! * **Runtime execution** — the blocked solve itself runs as a task DAG
//!   ([`calu_runtime::LuDag::build_solve`]) on either executor
//!   ([`runtime_solve_mat`]), with solutions **bitwise identical** to the
//!   sequential per-RHS [`LuFactors::solve`] — the same determinism
//!   contract the factorization runner proves.
//! * **Backpressure** — the request queue is bounded
//!   ([`ServeOpts::queue_capacity`]); `submit` refuses with
//!   [`SubmitError::QueueFull`] instead of growing without bound.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Instant;

use calu_matrix::perm::apply_ipiv;
use calu_matrix::{Error, MatView, MatViewMut, Matrix, Result, Scalar};
use calu_obs::{JsonValue, Metrics, Recorder, Span};
use calu_runtime::{ExecReport, ExecutorKind, LuDag, SolveKind, SolveShape, Task, TaskRunner};

use crate::calu::{CaluOpts, LuFactors};
use crate::rt::{runtime_calu_factor, RuntimeOpts, SharedMat};
use calu_matrix::blas3::trsm;
use calu_matrix::{Diag, Side, Uplo};

/// Cache key of a registered matrix: the caller-chosen id plus a
/// generation that [`SolverService::register`] bumps on every
/// re-registration, so factors of a replaced matrix can never serve
/// requests against its successor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixKey {
    /// Caller-chosen matrix identifier.
    pub id: u64,
    /// Registration generation (1 for the first `register` of an id).
    pub generation: u64,
}

/// Handle to a submitted solve request; redeem it with
/// [`SolverService::try_take`] after a [`SolverService::process`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Why [`SolverService::submit`] refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded request queue is at capacity; the caller must
    /// [`SolverService::process`] (or drop load) before submitting more.
    QueueFull {
        /// The configured [`ServeOpts::queue_capacity`].
        capacity: usize,
    },
    /// No matrix is registered under the given id.
    UnknownMatrix {
        /// The id the request named.
        id: u64,
    },
    /// The right-hand side's length does not match the matrix order.
    ShapeMismatch {
        /// Matrix order `n`.
        expected: usize,
        /// Length of the submitted right-hand side.
        got: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            SubmitError::UnknownMatrix { id } => write!(f, "no matrix registered under id {id}"),
            SubmitError::ShapeMismatch { expected, got } => {
                write!(f, "rhs length {got} does not match matrix order {expected}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Configuration of a [`SolverService`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOpts {
    /// Factor-cache budget in bytes (packed `L\U` plus pivots per entry).
    /// `0` disables caching: every `process` pass re-factors on miss.
    pub cache_capacity_bytes: usize,
    /// Bounded request-queue length; `submit` beyond it returns
    /// [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum RHS columns coalesced into one batched solve.
    pub max_batch: usize,
    /// RHS tile width of the solve DAG (columns per [`Task::Solve`]).
    pub rhs_block: usize,
    /// CALU tuning for cache-miss factorizations.
    pub calu: CaluOpts,
    /// Runtime configuration (executor, lookahead) for both the cache-miss
    /// factorization and the batched solve DAG.
    pub rt: RuntimeOpts,
}

impl Default for ServeOpts {
    fn default() -> Self {
        Self {
            cache_capacity_bytes: 64 << 20,
            queue_capacity: 1024,
            max_batch: 32,
            rhs_block: 8,
            calu: CaluOpts::default(),
            rt: RuntimeOpts::default(),
        }
    }
}

/// Snapshot of the factor cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests whose factorization was already cached.
    pub hits: u64,
    /// Requests that had to factor (or re-factor) on the runtime.
    pub misses: u64,
    /// Entries evicted to make room under the byte budget.
    pub evictions: u64,
    /// Factorizations currently cached.
    pub entries: usize,
    /// Bytes currently held by cached factorizations.
    pub bytes: usize,
}

/// What one [`SolverService::process`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessReport {
    /// Requests completed (successfully or with an error result).
    pub completed: usize,
    /// Batched solves executed on the runtime DAG.
    pub batches: usize,
    /// Cache-miss factorizations performed.
    pub factored: usize,
}

struct CacheEntry<T> {
    factors: LuFactors<T>,
    bytes: usize,
    last_used: u64,
}

/// LRU cache of completed factorizations, bounded in bytes. Eviction
/// scans for the minimum `last_used` tick — the entry count is small (a
/// handful of factorizations fit any sane budget), so O(entries) beats
/// maintaining an intrusive list.
struct FactorCache<T> {
    entries: HashMap<MatrixKey, CacheEntry<T>>,
    capacity: usize,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<T: Scalar> FactorCache<T> {
    fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity,
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Marks `key` used and reports whether it was cached, bumping the
    /// hit/miss counters.
    fn touch(&mut self, key: MatrixKey) -> bool {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Inserts freshly computed factors, evicting least-recently-used
    /// entries until the budget holds. Factors larger than the whole
    /// budget are not cached at all (the next request re-factors).
    fn insert(&mut self, key: MatrixKey, factors: LuFactors<T>) {
        let n = factors.order();
        let bytes = n * n * std::mem::size_of::<T>() + n * std::mem::size_of::<usize>();
        if bytes > self.capacity {
            return;
        }
        while self.bytes + bytes > self.capacity {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("over budget implies a resident entry");
            self.remove(lru);
            self.evictions += 1;
        }
        self.tick += 1;
        self.bytes += bytes;
        self.entries.insert(key, CacheEntry { factors, bytes, last_used: self.tick });
    }

    fn remove(&mut self, key: MatrixKey) {
        if let Some(e) = self.entries.remove(&key) {
            self.bytes -= e.bytes;
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
            bytes: self.bytes,
        }
    }
}

struct Request<T> {
    ticket: Ticket,
    key: MatrixKey,
    rhs: Vec<T>,
    /// Seconds since the service epoch at submission — the start of the
    /// ticket-latency measurement.
    submitted_at: f64,
}

/// Batched, factorization-caching solve front-end on the runtime DAG.
///
/// ```
/// use calu_core::serve::{ServeOpts, SolverService};
/// use calu_matrix::gen;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let a = gen::randn(&mut rng, 64, 64);
/// let mut svc = SolverService::new(ServeOpts::default());
/// svc.register(1, a);
/// let t = svc.submit(1, vec![1.0; 64]).unwrap();
/// svc.process();
/// let x = svc.try_take(t).unwrap().unwrap();
/// assert_eq!(x.len(), 64);
/// ```
pub struct SolverService<T: Scalar = f64> {
    opts: ServeOpts,
    /// id → (current generation, original matrix). The original is kept so
    /// a cache miss (or eviction) can re-factor.
    matrices: HashMap<u64, (u64, Matrix<T>)>,
    cache: FactorCache<T>,
    queue: VecDeque<Request<T>>,
    results: HashMap<u64, Result<Vec<T>>>,
    next_ticket: u64,
    /// Unified metrics registry: request/batch counters, queue and cache
    /// gauges, ticket-latency histogram ([`Self::metrics_snapshot`]).
    metrics: Metrics,
    /// Span recorder: one span per `process` pass plus the replayed
    /// per-task spans of every factorization and solve DAG the service
    /// ran (pid = rank, tid = worker), on one timeline starting at the
    /// service epoch — export with [`calu_obs::chrome_trace`].
    recorder: Recorder,
    /// Wall-clock zero of the service timeline.
    epoch: Instant,
}

impl<T: Scalar> SolverService<T> {
    /// Creates an empty service.
    pub fn new(opts: ServeOpts) -> Self {
        assert!(opts.queue_capacity > 0, "queue capacity must be positive");
        assert!(opts.max_batch > 0, "max batch must be positive");
        assert!(opts.rhs_block > 0, "rhs block must be positive");
        let cache = FactorCache::new(opts.cache_capacity_bytes);
        Self {
            opts,
            matrices: HashMap::new(),
            cache,
            queue: VecDeque::new(),
            results: HashMap::new(),
            next_ticket: 0,
            metrics: Metrics::new(),
            recorder: Recorder::new(),
            epoch: Instant::now(),
        }
    }

    /// Seconds since the service epoch — the timeline every span and
    /// latency sample lives on.
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Registers (or replaces) the matrix behind `id` and returns its new
    /// [`MatrixKey`]. Replacing bumps the generation: factors of the old
    /// matrix are dropped from the cache, and requests still queued
    /// against the old generation complete with an error instead of a
    /// stale solution.
    ///
    /// # Panics
    /// If `a` is not square.
    pub fn register(&mut self, id: u64, a: Matrix<T>) -> MatrixKey {
        assert_eq!(a.rows(), a.cols(), "SolverService only serves square systems");
        let generation = match self.matrices.get(&id) {
            Some((g, _)) => {
                self.cache.remove(MatrixKey { id, generation: *g });
                g + 1
            }
            None => 1,
        };
        self.matrices.insert(id, (generation, a));
        MatrixKey { id, generation }
    }

    /// Queues a solve of `A x = rhs` against the matrix registered under
    /// `id`; the returned [`Ticket`] redeems the solution after a
    /// [`Self::process`] pass.
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] once [`ServeOpts::queue_capacity`]
    /// requests are pending, [`SubmitError::UnknownMatrix`] /
    /// [`SubmitError::ShapeMismatch`] for malformed requests.
    pub fn submit(&mut self, id: u64, rhs: Vec<T>) -> std::result::Result<Ticket, SubmitError> {
        if self.queue.len() >= self.opts.queue_capacity {
            self.metrics.counter_add("serve.rejected", 1);
            return Err(SubmitError::QueueFull { capacity: self.opts.queue_capacity });
        }
        let Some((generation, a)) = self.matrices.get(&id) else {
            self.metrics.counter_add("serve.rejected", 1);
            return Err(SubmitError::UnknownMatrix { id });
        };
        if rhs.len() != a.rows() {
            self.metrics.counter_add("serve.rejected", 1);
            return Err(SubmitError::ShapeMismatch { expected: a.rows(), got: rhs.len() });
        }
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        let key = MatrixKey { id, generation: *generation };
        let submitted_at = self.now();
        self.queue.push_back(Request { ticket, key, rhs, submitted_at });
        self.metrics.counter_add("serve.submitted", 1);
        self.metrics.gauge_set("serve.queue_depth", self.queue.len() as f64);
        Ok(ticket)
    }

    /// Pending (submitted, not yet processed) requests.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Drains the queue: groups requests per factorization, resolves each
    /// group's factors (cache hit, or a runtime factorization on miss),
    /// and executes the group's right-hand sides as batched solves of up
    /// to [`ServeOpts::max_batch`] columns on the runtime DAG. Results —
    /// solutions or errors — become available to [`Self::try_take`].
    pub fn process(&mut self) -> ProcessReport {
        let pass_start = self.now();
        let mut rep = ProcessReport::default();
        // FIFO-preserving grouping: groups are processed in order of their
        // first request, requests keep submission order within a group.
        let mut order: Vec<MatrixKey> = Vec::new();
        let mut groups: HashMap<MatrixKey, Vec<Request<T>>> = HashMap::new();
        for req in self.queue.drain(..) {
            let bucket = groups.entry(req.key).or_default();
            if bucket.is_empty() {
                order.push(req.key);
            }
            bucket.push(req);
        }
        self.metrics.gauge_set("serve.queue_depth", 0.0);

        for key in order {
            let reqs = groups.remove(&key).expect("group recorded with its key");
            let fresh = self.matrices.get(&key.id).map(|(g, _)| *g) == Some(key.generation);
            let factors = if fresh {
                self.ensure_factors(key, &mut rep)
            } else {
                Err(Error::BadShape { what: "matrix re-registered while request was queued" })
            };
            if let Err(e) = factors {
                for r in reqs {
                    let latency = self.now() - r.submitted_at;
                    self.metrics.observe("serve.ticket_latency_s", latency);
                    self.metrics.counter_add("serve.completed", 1);
                    self.results.insert(r.ticket.0, Err(e.clone()));
                    rep.completed += 1;
                }
                continue;
            }
            let entry = self.cache.entries.get(&key);
            // Capacity 0 (or an oversized matrix) means the factors were
            // computed but not retained; redo them per group on the side.
            let spare;
            let factors = match entry {
                Some(e) => &e.factors,
                None => {
                    let (_, a) = self.matrices.get(&key.id).expect("generation checked fresh");
                    let offset = self.epoch.elapsed().as_secs_f64();
                    let (f, exec) = runtime_calu_factor(a, self.opts.calu, self.opts.rt)
                        .expect("factorization succeeded moments ago");
                    exec.record_into(&self.recorder, offset);
                    self.observe_queue_delays(&exec);
                    spare = f;
                    &spare
                }
            };
            let n = factors.order();
            for chunk in reqs.chunks(self.opts.max_batch) {
                let k = chunk.len();
                let mut b = Matrix::<T>::zeros(n, k);
                for (c, r) in chunk.iter().enumerate() {
                    b.col_mut(c).copy_from_slice(&r.rhs);
                }
                let offset = self.epoch.elapsed().as_secs_f64();
                let exec = runtime_solve_mat(
                    factors,
                    b.view_mut(),
                    self.opts.calu.block,
                    self.opts.rhs_block,
                    self.opts.rt.executor,
                );
                exec.record_into(&self.recorder, offset);
                self.observe_queue_delays(&exec);
                rep.batches += 1;
                self.metrics.counter_add("serve.batches", 1);
                self.metrics.observe("serve.batch_size", k as f64);
                for (c, r) in chunk.iter().enumerate() {
                    let latency = self.epoch.elapsed().as_secs_f64() - r.submitted_at;
                    self.metrics.observe("serve.ticket_latency_s", latency);
                    self.metrics.counter_add("serve.completed", 1);
                    self.results.insert(r.ticket.0, Ok(b.col(c).to_vec()));
                    rep.completed += 1;
                }
            }
        }
        self.recorder.record_interval("process".to_string(), "serve", 0, 0, pass_start, self.now());
        rep
    }

    /// Takes the result of a processed request, or `None` while it is
    /// still queued (or the ticket was already redeemed).
    pub fn try_take(&mut self, ticket: Ticket) -> Option<Result<Vec<T>>> {
        self.results.remove(&ticket.0)
    }

    /// Counters of the factorization cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Feeds every executed task's ready-to-start gap into the
    /// `serve.task_queue_delay_s` histogram — the wait-state signal
    /// (scheduler overhead) riding next to the latency histograms.
    fn observe_queue_delays(&self, exec: &ExecReport) {
        for t in &exec.timings {
            self.metrics.observe("serve.task_queue_delay_s", t.queue_delay());
        }
    }

    /// The unified observability snapshot: every serve-layer signal —
    /// request counters, queue-depth gauge, cache counters, ticket-latency
    /// / batch-size / task-queue-delay histograms (p50/p95/p99), and the
    /// work-stealing pool's wait-state counters (steals, failed-steal
    /// spins, parked nanoseconds) — as one JSON object, ready to embed in
    /// a bench report or dump to a file.
    pub fn metrics_snapshot(&self) -> JsonValue {
        let stats = self.cache.stats();
        let sync = |name: &str, v: u64| {
            // Counters are monotone; syncing adds only the delta since the
            // last snapshot, so repeated snapshots never double-count.
            let cur = self.metrics.counter(name);
            self.metrics.counter_add(name, v - cur);
        };
        sync("serve.cache.hits", stats.hits);
        sync("serve.cache.misses", stats.misses);
        sync("serve.cache.evictions", stats.evictions);
        // The shared-memory parallel paths (panel factorization etc.) run
        // on the global work-stealing pool; its counters are monotone, so
        // the same delta-sync keeps repeated snapshots idempotent.
        let pool = rayon::global_pool_stats();
        sync("serve.pool.steals", pool.iter().map(|s| s.steals).sum());
        sync("serve.pool.failed_steals", pool.iter().map(|s| s.failed_steals).sum());
        sync("serve.pool.park_ns", pool.iter().map(|s| s.park_ns).sum());
        self.metrics.gauge_set("serve.pool.workers", pool.len() as f64);
        self.metrics.gauge_set("serve.cache.entries", stats.entries as f64);
        self.metrics.gauge_set("serve.cache.bytes", stats.bytes as f64);
        self.metrics.gauge_set("serve.queue_depth", self.queue.len() as f64);
        self.metrics.snapshot()
    }

    /// The service's span timeline so far (pid = rank, tid = worker,
    /// µs since the service epoch): one `process` span per pass plus the
    /// per-task spans of every factorization and solve DAG it ran. Export
    /// with [`calu_obs::chrome_trace`]; the recorder keeps recording.
    pub fn spans(&self) -> Vec<Span> {
        self.recorder.snapshot()
    }

    /// Resolves `key`'s factors into the cache (hit: a counter bump; miss:
    /// a runtime factorization). With a zero/overflowed budget the factors
    /// may still not be resident afterwards — `process` recomputes then.
    fn ensure_factors(&mut self, key: MatrixKey, rep: &mut ProcessReport) -> Result<()> {
        if self.cache.touch(key) {
            return Ok(());
        }
        let (_, a) = self.matrices.get(&key.id).expect("caller checked registration");
        let offset = self.epoch.elapsed().as_secs_f64();
        let (factors, exec) = runtime_calu_factor(a, self.opts.calu, self.opts.rt)?;
        exec.record_into(&self.recorder, offset);
        self.observe_queue_delays(&exec);
        rep.factored += 1;
        self.metrics.counter_add("serve.factored", 1);
        self.cache.insert(key, factors);
        Ok(())
    }
}

/// Shared-memory runner of the solve-phase DAG: binds [`Task::Solve`]
/// kinds to pivot application, diagonal `trsm`s, and the off-diagonal
/// block updates. The DAG's write chains order every pair of tasks
/// touching the same tile, which is the disjointness invariant
/// [`SharedMat::block`] requires — and they fix the floating-point
/// reduction order, so every schedule reproduces the sequential
/// [`calu_matrix::lapack::getrs_mat`] bitwise.
struct SolveRunner<'a, T> {
    lu: MatView<'a, T>,
    ipiv: &'a [usize],
    x: SharedMat<T>,
    shape: SolveShape,
}

impl<T: Scalar> TaskRunner for SolveRunner<'_, T> {
    fn run(&self, task: Task) -> Result<()> {
        let Task::Solve(s) = task else {
            unreachable!("solve runner received a factorization task {task}")
        };
        let cj = self.shape.rhs_range(s.j as usize);
        match s.kind {
            SolveKind::Piv => {
                let mut xj = unsafe { self.x.block(0, cj.start, self.shape.n, cj.len()) };
                apply_ipiv(xj.rb_mut(), self.ipiv);
            }
            SolveKind::TrsmL | SolveKind::TrsmU => {
                let rk = self.shape.row_range(s.k as usize);
                let diag = self.lu.submatrix(rk.start, rk.start, rk.len(), rk.len());
                let xk = unsafe { self.x.block(rk.start, cj.start, rk.len(), cj.len()) };
                if s.kind == SolveKind::TrsmL {
                    trsm(Side::Left, Uplo::Lower, Diag::Unit, T::ONE, diag, xk);
                } else {
                    trsm(Side::Left, Uplo::Upper, Diag::NonUnit, T::ONE, diag, xk);
                }
            }
            // The block updates replay the scalar substitution loops of
            // `getrs`' full-matrix trsms exactly — one axpy per pivot
            // element `t`, `t` ascending (forward) or descending
            // (backward), with the same skip-zero guard — rather than
            // calling the rank-grouped `gemm` kernel, whose different
            // accumulation order would break bitwise identity with the
            // sequential solve.
            SolveKind::GemmL | SolveKind::GemmU => {
                let rk = self.shape.row_range(s.k as usize);
                let ri = self.shape.row_range(s.i as usize);
                let a = self.lu.submatrix(ri.start, rk.start, ri.len(), rk.len());
                let xk_block = unsafe { self.x.block(rk.start, cj.start, rk.len(), cj.len()) };
                let xk = xk_block.as_view();
                let mut xi = unsafe { self.x.block(ri.start, cj.start, ri.len(), cj.len()) };
                for c in 0..cj.len() {
                    let kcol = xk.col(c);
                    let icol = xi.col_mut(c);
                    let sub = |icol: &mut [T], t: usize| {
                        let xt = kcol[t];
                        if xt != T::ZERO {
                            let acol = a.col(t);
                            for (r, xr) in icol.iter_mut().enumerate() {
                                *xr -= acol[r] * xt;
                            }
                        }
                    };
                    if s.kind == SolveKind::GemmL {
                        for t in 0..kcol.len() {
                            sub(icol, t);
                        }
                    } else {
                        for t in (0..kcol.len()).rev() {
                            sub(icol, t);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Solves `A X = B` in place from packed factors by scheduling the blocked
/// forward/backward substitution as a task DAG
/// ([`LuDag::build_solve`]) on the chosen executor — the multi-RHS,
/// runtime-parallel counterpart of [`LuFactors::solve_mat`], with
/// **bitwise identical** results on every executor and tiling (the DAG's
/// write chains pin the reduction order to the sequential one).
///
/// `nb` is the row tile height (use the factorization's panel width) and
/// `rhs_nb` the RHS columns per task.
///
/// # Panics
/// If the factors are not square, `b.rows()` does not match their order,
/// or a tile width is zero while `b` is non-empty.
pub fn runtime_solve_mat<T: Scalar>(
    factors: &LuFactors<T>,
    mut b: MatViewMut<'_, T>,
    nb: usize,
    rhs_nb: usize,
    executor: ExecutorKind,
) -> ExecReport {
    let n = factors.order();
    assert_eq!(factors.lu.cols(), n, "runtime_solve_mat: factors must be square");
    assert_eq!(b.rows(), n, "runtime_solve_mat: rhs rows mismatch");
    if b.cols() == 0 || n == 0 {
        return ExecReport::default();
    }
    let shape = SolveShape { n, nrhs: b.cols(), nb: nb.min(n), rhs_nb: rhs_nb.min(b.cols()) };
    let dag = LuDag::build_solve(shape);
    let runner = SolveRunner {
        lu: factors.lu.view(),
        ipiv: &factors.ipiv,
        x: SharedMat::new(&mut b),
        shape,
    };
    executor
        .execute(&dag, &runner)
        .expect("solve tasks are infallible (zero pivots surface at factorization)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn opts_with(executor: ExecutorKind) -> ServeOpts {
        ServeOpts {
            calu: CaluOpts { block: 16, p: 4, ..Default::default() },
            rt: RuntimeOpts { executor, ..Default::default() },
            rhs_block: 4,
            ..Default::default()
        }
    }

    fn executors() -> [ExecutorKind; 2] {
        [ExecutorKind::Serial, ExecutorKind::Threaded { threads: 4 }]
    }

    #[test]
    fn runtime_solve_matches_sequential_bitwise() {
        let mut rng = StdRng::seed_from_u64(900);
        for (n, k, nb, rhs_nb) in [(64, 8, 16, 3), (77, 5, 16, 8), (48, 1, 48, 1)] {
            let a: Matrix<f64> = gen::randn(&mut rng, n, n);
            let f =
                crate::calu::calu_factor(&a, CaluOpts { block: 16, p: 4, ..Default::default() })
                    .unwrap();
            let mut want = gen::randn(&mut rng, n, k);
            let mut got_serial = want.clone();
            let mut got_threaded = want.clone();
            f.solve_mat(want.view_mut());
            runtime_solve_mat(&f, got_serial.view_mut(), nb, rhs_nb, ExecutorKind::Serial);
            runtime_solve_mat(
                &f,
                got_threaded.view_mut(),
                nb,
                rhs_nb,
                ExecutorKind::Threaded { threads: 4 },
            );
            for c in 0..k {
                assert_eq!(want.col(c), got_serial.col(c), "serial n={n} k={k} col {c}");
                assert_eq!(want.col(c), got_threaded.col(c), "threaded n={n} k={k} col {c}");
            }
        }
    }

    #[test]
    fn service_solves_match_per_rhs_solve_bitwise() {
        for executor in executors() {
            let mut rng = StdRng::seed_from_u64(901);
            let n = 60;
            let a: Matrix<f64> = gen::randn(&mut rng, n, n);
            let f =
                crate::calu::calu_factor(&a, CaluOpts { block: 16, p: 4, ..Default::default() })
                    .unwrap();
            let mut svc = SolverService::new(opts_with(executor));
            svc.register(7, a);
            let rhs: Vec<Vec<f64>> = (0..13)
                .map(|_| {
                    let col: Matrix<f64> = gen::randn(&mut rng, n, 1);
                    col.col(0).to_vec()
                })
                .collect();
            let tickets: Vec<Ticket> =
                rhs.iter().map(|r| svc.submit(7, r.clone()).unwrap()).collect();
            assert_eq!(svc.queued(), 13);
            let rep = svc.process();
            assert_eq!(rep.completed, 13);
            assert_eq!(rep.factored, 1);
            assert_eq!(svc.queued(), 0);
            for (t, r) in tickets.iter().zip(&rhs) {
                let got = svc.try_take(*t).unwrap().unwrap();
                assert_eq!(got, f.solve(r), "{executor:?}");
                assert!(svc.try_take(*t).is_none(), "tickets redeem once");
            }
        }
    }

    #[test]
    fn cache_hits_and_generation_invalidation() {
        let mut rng = StdRng::seed_from_u64(902);
        let n = 40;
        let mut svc = SolverService::new(opts_with(ExecutorKind::Serial));
        let a: Matrix<f64> = gen::randn(&mut rng, n, n);
        svc.register(1, a);
        let t1 = svc.submit(1, vec![1.0; n]).unwrap();
        svc.process();
        let t2 = svc.submit(1, vec![2.0; n]).unwrap();
        svc.process();
        let stats = svc.cache_stats();
        assert_eq!((stats.misses, stats.hits, stats.entries), (1, 1, 1));
        assert!(svc.try_take(t1).unwrap().is_ok());
        assert!(svc.try_take(t2).unwrap().is_ok());

        // Re-registering while a request is queued invalidates it.
        let t3 = svc.submit(1, vec![3.0; n]).unwrap();
        let a: Matrix<f64> = gen::randn(&mut rng, n, n);
        svc.register(1, a);
        let t4 = svc.submit(1, vec![4.0; n]).unwrap();
        svc.process();
        assert!(svc.try_take(t3).unwrap().is_err(), "stale-generation request must error");
        assert!(svc.try_take(t4).unwrap().is_ok(), "fresh-generation request must solve");
    }

    #[test]
    fn zero_capacity_never_caches_and_eviction_counts() {
        let mut rng = StdRng::seed_from_u64(903);
        let n = 32;
        // Capacity 0: both passes miss, nothing resident, solves still work.
        let mut opts = opts_with(ExecutorKind::Serial);
        opts.cache_capacity_bytes = 0;
        let mut svc = SolverService::new(opts);
        let a: Matrix<f64> = gen::randn(&mut rng, n, n);
        let f = crate::calu::calu_factor(&a, CaluOpts { block: 16, p: 4, ..Default::default() })
            .unwrap();
        svc.register(1, a);
        for _ in 0..2 {
            let rhs = vec![1.5; n];
            let t = svc.submit(1, rhs.clone()).unwrap();
            svc.process();
            assert_eq!(svc.try_take(t).unwrap().unwrap(), f.solve(&rhs));
        }
        let stats = svc.cache_stats();
        assert_eq!((stats.misses, stats.hits, stats.entries, stats.bytes), (2, 0, 0, 0));

        // Capacity for exactly one entry: a second matrix evicts the first.
        let entry_bytes = n * n * 8 + n * std::mem::size_of::<usize>();
        let mut opts = opts_with(ExecutorKind::Serial);
        opts.cache_capacity_bytes = entry_bytes;
        let mut svc = SolverService::new(opts);
        let a: Matrix<f64> = gen::randn(&mut rng, n, n);
        svc.register(1, a);
        let a2: Matrix<f64> = gen::randn(&mut rng, n, n);
        svc.register(2, a2);
        for id in [1, 2, 1] {
            let t = svc.submit(id, vec![1.0; n]).unwrap();
            svc.process();
            assert!(svc.try_take(t).unwrap().is_ok());
        }
        let stats = svc.cache_stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 2, "each re-factor evicts the resident entry");
        assert_eq!(stats.misses, 3, "ping-ponging two matrices through a one-entry cache");
    }

    #[test]
    fn backpressure_and_submit_validation() {
        let mut rng = StdRng::seed_from_u64(904);
        let n = 16;
        let mut opts = opts_with(ExecutorKind::Serial);
        opts.queue_capacity = 2;
        let mut svc = SolverService::new(opts);
        let a: Matrix<f64> = gen::randn(&mut rng, n, n);
        svc.register(1, a);
        assert_eq!(svc.submit(9, vec![0.0; n]), Err(SubmitError::UnknownMatrix { id: 9 }),);
        assert_eq!(
            svc.submit(1, vec![0.0; n + 1]),
            Err(SubmitError::ShapeMismatch { expected: n, got: n + 1 }),
        );
        svc.submit(1, vec![0.0; n]).unwrap();
        svc.submit(1, vec![0.0; n]).unwrap();
        assert_eq!(
            svc.submit(1, vec![0.0; n]),
            Err(SubmitError::QueueFull { capacity: 2 }),
            "third submit must hit backpressure"
        );
        svc.process();
        svc.submit(1, vec![0.0; n]).expect("processing drains the queue");
    }

    #[test]
    fn metrics_and_spans_capture_the_serving_story() {
        for executor in executors() {
            let mut rng = StdRng::seed_from_u64(905);
            let n = 48;
            let a: Matrix<f64> = gen::randn(&mut rng, n, n);
            let mut svc = SolverService::new(opts_with(executor));
            svc.register(1, a);
            for _ in 0..5 {
                svc.submit(1, vec![1.0; n]).unwrap();
            }
            svc.process();
            for _ in 0..3 {
                svc.submit(1, vec![2.0; n]).unwrap();
            }
            svc.process();

            let snap = svc.metrics_snapshot();
            let counters = snap.get("counters").expect("counters section");
            let c = |name: &str| counters.get(name).and_then(|v| v.as_u64()).unwrap_or(0);
            assert_eq!(c("serve.submitted"), 8, "{executor:?}");
            assert_eq!(c("serve.completed"), 8);
            assert_eq!(c("serve.factored"), 1, "second pass must hit the cache");
            assert_eq!(c("serve.cache.hits"), 1);
            assert_eq!(c("serve.cache.misses"), 1);
            let gauges = snap.get("gauges").expect("gauges section");
            assert_eq!(gauges.get("serve.queue_depth").and_then(|v| v.as_f64()), Some(0.0));
            let hist = snap
                .get("histograms")
                .and_then(|h| h.get("serve.ticket_latency_s"))
                .expect("latency histogram");
            assert_eq!(hist.get("count").and_then(|v| v.as_u64()), Some(8));
            assert!(hist.get("p99").and_then(|v| v.as_f64()).unwrap() >= 0.0);
            // Wait-state signals: one queue-delay observation per executed
            // task (factor DAG + batched solves), and pool gauges present.
            let qd = snap
                .get("histograms")
                .and_then(|h| h.get("serve.task_queue_delay_s"))
                .expect("queue-delay histogram");
            assert!(qd.get("count").and_then(|v| v.as_u64()).unwrap() > 0, "{executor:?}");
            assert!(qd.get("min").and_then(|v| v.as_f64()).unwrap() >= 0.0);
            assert!(gauges.get("serve.pool.workers").and_then(|v| v.as_f64()).unwrap() >= 1.0);
            // Snapshots are idempotent: syncing twice must not double-count.
            let again = svc.metrics_snapshot();
            assert_eq!(
                again
                    .get("counters")
                    .and_then(|v| v.get("serve.cache.hits"))
                    .and_then(|v| { v.as_u64() }),
                Some(1)
            );

            // The span timeline round-trips as a valid chrome trace and
            // carries both the pass spans and the replayed task spans.
            let spans = svc.spans();
            assert_eq!(spans.iter().filter(|s| s.name == "process").count(), 2);
            assert!(spans.iter().any(|s| s.cat == "serve"));
            assert!(spans.iter().any(|s| s.name.contains("Panel")), "factor tasks recorded");
            assert!(spans.iter().any(|s| s.name.contains("Solve")), "solve tasks recorded");
            let parsed =
                calu_obs::parse_chrome_trace(&calu_obs::chrome_trace(&spans)).expect("valid trace");
            assert_eq!(parsed.len(), spans.len());
        }
    }

    #[test]
    fn singular_matrix_fails_every_ticket_in_the_group() {
        let n = 24;
        let mut svc = SolverService::new(opts_with(ExecutorKind::Serial));
        svc.register(1, Matrix::<f64>::zeros(n, n));
        let t1 = svc.submit(1, vec![1.0; n]).unwrap();
        let t2 = svc.submit(1, vec![2.0; n]).unwrap();
        let rep = svc.process();
        assert_eq!(rep.completed, 2);
        assert_eq!(rep.batches, 0);
        let e1 = svc.try_take(t1).unwrap().unwrap_err();
        let e2 = svc.try_take(t2).unwrap().unwrap_err();
        assert_eq!(e1, e2, "one factorization error distributes to the whole group");
        assert!(matches!(e1, Error::SingularPivot { .. }));
    }
}
