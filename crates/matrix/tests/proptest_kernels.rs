//! Property-based tests on the kernel substrate: factorization identities,
//! triangular-solve round trips, pivot-kernel equivalences, and norm
//! inequalities over randomized shapes.

use calu_matrix::blas2::{gemv, gemv_t, trmv, trsv_t};
use calu_matrix::blas3::{gemm, trsm};
use calu_matrix::lapack::{
    gecon, geequ, getf2, getf2_info, getrf, getri, getrs, getrs_t, laqge, lu_nopiv, rgetf2,
    rgetf2_info, GetrfOpts, PanelAlg,
};
use calu_matrix::norms::{mat_norm_1, mat_norm_fro, mat_norm_inf};
use calu_matrix::perm::{apply_ipiv, apply_ipiv_inv, ipiv_to_perm, permute_rows};
use calu_matrix::{gen, Diag, Matrix, NoObs, Side, Uplo};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn randn_mat(seed: u64, m: usize, n: usize) -> Matrix {
    gen::randn(&mut StdRng::seed_from_u64(seed), m, n)
}

fn plu_error(orig: &Matrix, lu: &Matrix, ipiv: &[usize]) -> f64 {
    let perm = ipiv_to_perm(ipiv, orig.rows());
    let pa = permute_rows(orig, &perm);
    let l = lu.unit_lower();
    let u = lu.upper();
    let mut prod = Matrix::zeros(orig.rows(), orig.cols());
    gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
    pa.max_abs_diff(&prod) / orig.max_abs().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_getf2_and_rgetf2_identical(seed in 0u64..1_000_000, m in 1usize..80, nw in 1usize..40) {
        let n = nw.min(m); // rgetf2 requires tall
        let a0 = randn_mat(seed, m, n);
        let mut ac = a0.clone();
        let mut ar = a0.clone();
        let mut ic = vec![0usize; n];
        let mut ir = vec![0usize; n];
        getf2(ac.view_mut(), &mut ic, &mut NoObs).unwrap();
        rgetf2(ar.view_mut(), &mut ir, &mut NoObs).unwrap();
        prop_assert_eq!(&ic, &ir);
        prop_assert!(ac.max_abs_diff(&ar) < 1e-9, "factors differ");
        prop_assert!(plu_error(&a0, &ac, &ic) < 1e-9);
    }

    #[test]
    fn prop_getrf_any_block_size(seed in 0u64..1_000_000, n in 1usize..64, nb in 1usize..20) {
        let a0 = randn_mat(seed, n, n);
        let mut a = a0.clone();
        let mut ipiv = vec![0usize; n];
        getrf(a.view_mut(), &mut ipiv, GetrfOpts { block: nb, ..Default::default() }, &mut NoObs).unwrap();
        prop_assert!(plu_error(&a0, &a, &ipiv) < 1e-9);
    }

    #[test]
    fn prop_recursive_panel_getrf_matches_classic(
        seed in 0u64..1_000_000, n in 4usize..56, nb in 2usize..16,
    ) {
        let a0 = randn_mat(seed, n, n);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let mut i1 = vec![0usize; n];
        let mut i2 = vec![0usize; n];
        getrf(a1.view_mut(), &mut i1, GetrfOpts { block: nb, panel: PanelAlg::Classic, parallel: false }, &mut NoObs).unwrap();
        getrf(a2.view_mut(), &mut i2, GetrfOpts { block: nb, panel: PanelAlg::Recursive, parallel: false }, &mut NoObs).unwrap();
        prop_assert_eq!(i1, i2);
        prop_assert!(a1.max_abs_diff(&a2) < 1e-9);
    }

    #[test]
    fn prop_trsm_round_trips(seed in 0u64..1_000_000, n in 1usize..32, k in 1usize..24) {
        // Left-lower-unit: L X = B, then multiply back.
        let mut l = randn_mat(seed, n, n);
        for i in 0..n {
            l[(i, i)] = 1.0;
            for j in i + 1..n {
                l[(i, j)] = 0.0;
            }
            for j in 0..i {
                l[(i, j)] *= 0.5; // keep conditioning sane
            }
        }
        let b0 = randn_mat(seed ^ 77, n, k);
        let mut x = b0.clone();
        trsm(Side::Left, Uplo::Lower, Diag::Unit, 1.0, l.view(), x.view_mut());
        let mut back = Matrix::zeros(n, k);
        gemm(1.0, l.view(), x.view(), 0.0, back.view_mut());
        prop_assert!(back.max_abs_diff(&b0) < 1e-8 * (n as f64 + 1.0));
    }

    #[test]
    fn prop_solve_inverts_matvec(seed in 0u64..1_000_000, n in 1usize..48) {
        let a0 = randn_mat(seed, n, n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut b = gen::rhs_for_solution(&a0, &x_true);
        let mut lu = a0.clone();
        let mut ipiv = vec![0usize; n];
        getf2(lu.view_mut(), &mut ipiv, &mut NoObs).unwrap();
        getrs(lu.view(), &ipiv, &mut b);
        for (xi, ti) in b.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-6, "{xi} vs {ti}");
        }
    }

    #[test]
    fn prop_ipiv_apply_unapply(seed in 0u64..1_000_000, m in 1usize..40, n in 1usize..10) {
        let a0 = randn_mat(seed, m, n);
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        use rand::Rng;
        let k = m.min(8);
        let ipiv: Vec<usize> = (0..k).map(|i| rng.gen_range(i..m)).collect();
        let mut a = a0.clone();
        apply_ipiv(a.view_mut(), &ipiv);
        apply_ipiv_inv(a.view_mut(), &ipiv);
        prop_assert_eq!(a, a0);
    }

    #[test]
    fn prop_norm_inequalities(seed in 0u64..1_000_000, m in 1usize..30, n in 1usize..30) {
        // ||A||_1 <= sqrt(n) * ||A||_F and ||A||_F <= sqrt(rank bound) etc:
        // use the standard equivalence ||A||_1 <= n^0.5 * ... keep simple:
        // max_abs <= every norm; fro <= sqrt(m n) max_abs.
        let a = randn_mat(seed, m, n);
        let mx = a.max_abs();
        let fro = mat_norm_fro(a.view());
        prop_assert!(mat_norm_1(a.view()) + 1e-12 >= mx);
        prop_assert!(mat_norm_inf(a.view()) + 1e-12 >= mx);
        prop_assert!(fro + 1e-12 >= mx);
        prop_assert!(fro <= ((m * n) as f64).sqrt() * mx + 1e-12);
    }

    #[test]
    fn prop_lu_nopiv_on_dominant(seed in 0u64..1_000_000, n in 1usize..40) {
        let a0 = gen::diag_dominant(&mut StdRng::seed_from_u64(seed), n);
        let mut a = a0.clone();
        lu_nopiv(a.view_mut(), &mut NoObs).unwrap();
        let l = a.unit_lower();
        let u = a.upper();
        let mut prod = Matrix::zeros(n, n);
        gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
        prop_assert!(prod.max_abs_diff(&a0) / a0.max_abs() < 1e-10);
    }

    #[test]
    fn prop_getri_inverse_identity(seed in 0u64..1_000_000, n in 1usize..40) {
        let a0 = randn_mat(seed, n, n);
        let mut inv = a0.clone();
        let mut ipiv = vec![0usize; n];
        getrf(inv.view_mut(), &mut ipiv, GetrfOpts::default(), &mut NoObs).unwrap();
        getri(inv.view_mut(), &ipiv).unwrap();
        let mut prod = Matrix::zeros(n, n);
        gemm(1.0, a0.view(), inv.view(), 0.0, prod.view_mut());
        let d = prod.max_abs_diff(&Matrix::identity(n));
        // Random normal matrices can be moderately ill-conditioned; scale
        // the tolerance by the inverse magnitude (forward-error theory).
        let tol = 1e-11 * (n.max(2) as f64) * inv.max_abs().max(1.0);
        prop_assert!(d < tol, "||A A^-1 - I|| = {d} > {tol}");
    }

    #[test]
    fn prop_getrs_t_solves_transpose(seed in 0u64..1_000_000, n in 1usize..40) {
        let a0 = randn_mat(seed, n, n);
        let mut lu = a0.clone();
        let mut ipiv = vec![0usize; n];
        getrf(lu.view_mut(), &mut ipiv, GetrfOpts::default(), &mut NoObs).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        let mut x = b.clone();
        getrs_t(lu.view(), &ipiv, &mut x);
        // A^T x must reproduce b: check via gemv_t on the original.
        let mut back = vec![0.0; n];
        gemv_t(1.0, a0.view(), &x, 0.0, &mut back);
        let scale = a0.max_abs().max(1.0) * x.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        for (want, got) in b.iter().zip(&back) {
            prop_assert!((want - got).abs() < 1e-10 * (n as f64) * scale, "{want} vs {got}");
        }
    }

    #[test]
    fn prop_gecon_is_lower_bound_of_true_condition(seed in 0u64..1_000_000, n in 2usize..32) {
        let a = randn_mat(seed, n, n);
        let anorm = mat_norm_1(a.view());
        let mut lu = a.clone();
        let mut ipiv = vec![0usize; n];
        getrf(lu.view_mut(), &mut ipiv, GetrfOpts::default(), &mut NoObs).unwrap();
        // True inverse norm via getri.
        let mut inv = a.clone();
        let mut ip2 = vec![0usize; n];
        getrf(inv.view_mut(), &mut ip2, GetrfOpts::default(), &mut NoObs).unwrap();
        getri(inv.view_mut(), &ip2).unwrap();
        let kappa_true = anorm * mat_norm_1(inv.view());
        let rcond = gecon(lu.view(), &ipiv, anorm);
        let kappa_est = 1.0 / rcond;
        prop_assert!(kappa_est <= kappa_true * (1.0 + 1e-8), "estimate must be a lower bound");
        prop_assert!(kappa_est >= kappa_true / 4.0, "Hager stays within a small factor");
    }

    #[test]
    fn prop_geequ_produces_unit_maxima(seed in 0u64..1_000_000, m in 1usize..24, n in 1usize..24) {
        let mut a = randn_mat(seed, m, n);
        // Skew scales hard: rows by 10^(i%7-3), cols by 10^(2*(j%4)).
        for i in 0..m {
            for j in 0..n {
                a[(i, j)] *= 10.0_f64.powi((i % 7) as i32 - 3) * 10.0_f64.powi(2 * (j % 4) as i32);
                if a[(i, j)] == 0.0 {
                    a[(i, j)] = 1e-3; // keep rows/cols nonzero
                }
            }
        }
        let eq = geequ(a.view()).unwrap();
        let mut s = a.clone();
        laqge(s.view_mut(), &eq);
        for j in 0..n {
            let cmax = s.col(j).iter().fold(0.0_f64, |mx, v| mx.max(v.abs()));
            prop_assert!(cmax <= 1.0 + 1e-12 && cmax > 1e-8, "col {j}: {cmax}");
        }
        for i in 0..m {
            let rmax = (0..n).map(|j| s[(i, j)].abs()).fold(0.0_f64, f64::max);
            prop_assert!(rmax <= 1.0 + 1e-12, "row {i}: {rmax}");
        }
    }

    #[test]
    fn prop_trmv_matches_gemv_on_triangles(seed in 0u64..1_000_000, n in 1usize..24) {
        let a = randn_mat(seed, n, n);
        let x0: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        for uplo in [Uplo::Upper, Uplo::Lower] {
            let tri = match uplo {
                Uplo::Upper => a.upper(),
                Uplo::Lower => {
                    let mut l = a.clone();
                    for j in 0..n {
                        for i in 0..j {
                            l[(i, j)] = 0.0;
                        }
                    }
                    l
                }
            };
            let mut x = x0.clone();
            trmv(uplo, Diag::NonUnit, tri.view(), &mut x);
            let mut want = vec![0.0; n];
            gemv(1.0, tri.view(), &x0, 0.0, &mut want);
            for (got, w) in x.iter().zip(&want) {
                prop_assert!((got - w).abs() < 1e-10 * (n as f64 + 1.0), "{uplo:?}: {got} vs {w}");
            }
        }
    }

    #[test]
    fn prop_trsv_t_round_trips(seed in 0u64..1_000_000, n in 1usize..24) {
        let mut u = randn_mat(seed, n, n).upper();
        for i in 0..n {
            u[(i, i)] = u[(i, i)].abs() + 1.0; // well conditioned
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut x = b.clone();
        trsv_t(Uplo::Upper, Diag::NonUnit, u.view(), &mut x);
        let mut back = vec![0.0; n];
        gemv_t(1.0, u.view(), &x, 0.0, &mut back);
        for (want, got) in b.iter().zip(&back) {
            prop_assert!((want - got).abs() < 1e-9 * (n as f64 + 1.0));
        }
    }

    #[test]
    fn prop_info_variants_complete_on_rank_deficient(
        seed in 0u64..1_000_000, m in 2usize..32, r in 1usize..8,
    ) {
        // An m x m matrix whose trailing m - r columns are exactly zero:
        // the info variants must complete (no panic, no error), report the
        // first *exactly* zero pivot at step r, and agree with each other.
        // (A floating-point low-rank product would leave ~1e-17 residues
        // and legitimately factor "successfully" — exact zeros are the
        // case DGETF2's INFO path is for.)
        let r = r.min(m - 1);
        let b = randn_mat(seed, m, r);
        let a = Matrix::from_fn(m, m, |i, j| if j < r { b[(i, j)] } else { 0.0 });

        let mut w1 = a.clone();
        let mut ip1 = vec![0usize; m];
        let info1 = getf2_info(w1.view_mut(), &mut ip1, &mut NoObs);
        prop_assert_eq!(info1, Some(r), "first zero pivot is exactly step r");

        let mut w2 = a.clone();
        let mut ip2 = vec![0usize; m];
        let info2 = rgetf2_info(w2.view_mut(), &mut ip2, &mut NoObs);
        prop_assert_eq!(info1, info2, "classic and recursive agree on the singular step");
        // The leading r columns still factor exactly: reconstruct them.
        prop_assert!(plu_error(&a, &w1, &ip1) < 1e-9, "completed factors must reconstruct");
    }
}
