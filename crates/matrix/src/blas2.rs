//! Level-2 kernels (matrix-vector): `ger`, `gemv`, `trsv`, `trmv`.

use crate::blas1::axpy;
use crate::scalar::Scalar;
use crate::view::{MatView, MatViewMut};
use crate::{Diag, Uplo};

/// Rank-1 update `A += alpha * x * y^T` (BLAS `DGER`).
///
/// `x.len() == A.rows()`, `y.len() == A.cols()`.
///
/// # Panics
/// On dimension mismatch.
pub fn ger<T: Scalar>(alpha: T, x: &[T], y: &[T], mut a: MatViewMut<'_, T>) {
    assert_eq!(x.len(), a.rows(), "ger: x length != rows");
    assert_eq!(y.len(), a.cols(), "ger: y length != cols");
    for (j, &yj) in y.iter().enumerate() {
        let s = alpha * yj;
        if s != T::ZERO {
            axpy(s, x, a.col_mut(j));
        }
    }
}

/// `y = alpha * A * x + beta * y` (BLAS `DGEMV`, no transpose).
///
/// # Panics
/// On dimension mismatch.
pub fn gemv<T: Scalar>(alpha: T, a: MatView<'_, T>, x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(x.len(), a.cols(), "gemv: x length != cols");
    assert_eq!(y.len(), a.rows(), "gemv: y length != rows");
    if beta != T::ONE {
        for yi in y.iter_mut() {
            *yi *= beta;
        }
    }
    for (j, &xj) in x.iter().enumerate() {
        axpy(alpha * xj, a.col(j), y);
    }
}

/// `y = alpha * A^T * x + beta * y` (BLAS `DGEMV`, transpose).
///
/// # Panics
/// On dimension mismatch.
pub fn gemv_t<T: Scalar>(alpha: T, a: MatView<'_, T>, x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(x.len(), a.rows(), "gemv_t: x length != rows");
    assert_eq!(y.len(), a.cols(), "gemv_t: y length != cols");
    for (j, yj) in y.iter_mut().enumerate() {
        let s = crate::blas1::dot(a.col(j), x);
        *yj = alpha * s + beta * *yj;
    }
}

/// Triangular solve with a single right-hand side: `x := op(A)^{-1} x`
/// (BLAS `DTRSV`, no transpose).
///
/// # Panics
/// If `A` is not square or sizes mismatch.
pub fn trsv<T: Scalar>(uplo: Uplo, diag: Diag, a: MatView<'_, T>, x: &mut [T]) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "trsv: A must be square");
    assert_eq!(x.len(), n, "trsv: x length != n");
    match uplo {
        Uplo::Lower => {
            for k in 0..n {
                if let Diag::NonUnit = diag {
                    x[k] /= a.get(k, k);
                }
                let xk = x[k];
                if xk != T::ZERO {
                    let col = a.col(k);
                    for i in k + 1..n {
                        x[i] -= col[i] * xk;
                    }
                }
            }
        }
        Uplo::Upper => {
            for k in (0..n).rev() {
                if let Diag::NonUnit = diag {
                    x[k] /= a.get(k, k);
                }
                let xk = x[k];
                if xk != T::ZERO {
                    let col = a.col(k);
                    for (i, xi) in x.iter_mut().enumerate().take(k) {
                        *xi -= col[i] * xk;
                    }
                }
            }
        }
    }
}

/// Triangular solve with the *transposed* triangle: `x := op(A)^{-T} x`
/// (BLAS `DTRSV` with `TRANS = 'T'`). `Uplo` names the stored triangle, so
/// `Uplo::Upper` solves `U^T x = b` — a forward substitution.
///
/// # Panics
/// If `A` is not square or sizes mismatch.
pub fn trsv_t<T: Scalar>(uplo: Uplo, diag: Diag, a: MatView<'_, T>, x: &mut [T]) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "trsv_t: A must be square");
    assert_eq!(x.len(), n, "trsv_t: x length != n");
    match uplo {
        // U^T is lower triangular: forward substitution using U's columns
        // as rows of U^T (column k of U holds row k of U^T above diag).
        Uplo::Upper => {
            for k in 0..n {
                let col = a.col(k);
                let mut s = x[k];
                for (i, &cv) in col.iter().enumerate().take(k) {
                    s -= cv * x[i];
                }
                x[k] = match diag {
                    Diag::NonUnit => s / col[k],
                    Diag::Unit => s,
                };
            }
        }
        // L^T is upper triangular: back substitution.
        Uplo::Lower => {
            for k in (0..n).rev() {
                let col = a.col(k);
                let mut s = x[k];
                for (i, &xi) in x.iter().enumerate().skip(k + 1) {
                    s -= col[i] * xi;
                }
                x[k] = match diag {
                    Diag::NonUnit => s / col[k],
                    Diag::Unit => s,
                };
            }
        }
    }
}

/// Triangular matrix-vector product `x := A x` for a triangular `A`
/// (BLAS `DTRMV`, no transpose).
///
/// # Panics
/// If `A` is not square or sizes mismatch.
pub fn trmv<T: Scalar>(uplo: Uplo, diag: Diag, a: MatView<'_, T>, x: &mut [T]) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "trmv: A must be square");
    assert_eq!(x.len(), n, "trmv: x length != n");
    match uplo {
        Uplo::Upper => {
            // Row i of x depends on x[i..]; sweep forward accumulating into
            // x[0..j] column by column so each x[j] is consumed before
            // being overwritten.
            for j in 0..n {
                let xj = x[j];
                let col = a.col(j);
                if xj != T::ZERO {
                    for (i, xi) in x.iter_mut().enumerate().take(j) {
                        *xi += col[i] * xj;
                    }
                }
                if let Diag::NonUnit = diag {
                    x[j] *= col[j];
                }
            }
        }
        Uplo::Lower => {
            for j in (0..n).rev() {
                let xj = x[j];
                let col = a.col(j);
                if xj != T::ZERO {
                    for i in j + 1..n {
                        x[i] += col[i] * xj;
                    }
                }
                if let Diag::NonUnit = diag {
                    x[j] *= col[j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn ger_matches_definition() {
        let mut a = Matrix::zeros(2, 3);
        ger(2.0, &[1.0, 2.0], &[3.0, 4.0, 5.0], a.view_mut());
        assert_eq!(a[(0, 0)], 6.0);
        assert_eq!(a[(1, 2)], 20.0);
    }

    #[test]
    fn gemv_matches_definition() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut y = vec![1.0, 1.0];
        gemv(1.0, a.view(), &[1.0, 1.0], -1.0, &mut y);
        assert_eq!(y, vec![2.0, 6.0]);
    }

    #[test]
    fn gemv_t_matches_definition() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut y = vec![0.0, 0.0];
        gemv_t(1.0, a.view(), &[1.0, 1.0], 0.0, &mut y);
        assert_eq!(y, vec![4.0, 6.0]);
    }

    #[test]
    fn trsv_lower_unit_forward_substitution() {
        // L = [1 0; 0.5 1], b = [2, 3] => x = [2, 2]
        let l = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 1.0]]);
        let mut x = vec![2.0, 3.0];
        trsv(Uplo::Lower, Diag::Unit, l.view(), &mut x);
        assert_eq!(x, vec![2.0, 2.0]);
    }

    #[test]
    fn trsv_upper_nonunit_back_substitution() {
        // U = [2 1; 0 4], b = [4, 8] => x = [1, 2]
        let u = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 4.0]]);
        let mut x = vec![4.0, 8.0];
        trsv(Uplo::Upper, Diag::NonUnit, u.view(), &mut x);
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn trsv_round_trip_against_gemv() {
        // Solve then multiply back.
        let l = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[1.0, 2.0, 0.0], &[4.0, 5.0, 6.0]]);
        let b = vec![3.0, 5.0, 32.0];
        let mut x = b.clone();
        trsv(Uplo::Lower, Diag::NonUnit, l.view(), &mut x);
        let mut back = vec![0.0; 3];
        gemv(1.0, l.view(), &x, 0.0, &mut back);
        for (bi, bb) in b.iter().zip(&back) {
            assert!((bi - bb).abs() < 1e-12);
        }
    }

    #[test]
    fn trsv_t_solves_transposed_system() {
        // U = [2 1; 0 4]; U^T x = b with b = [2, 9] => x = [1, 2].
        let u = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 4.0]]);
        let mut x = vec![2.0, 9.0];
        trsv_t(Uplo::Upper, Diag::NonUnit, u.view(), &mut x);
        assert_eq!(x, vec![1.0, 2.0]);
        // L = [1 0; 0.5 1] unit; L^T x = b with b = [2, 3] => x = [0.5, 3].
        let l = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 1.0]]);
        let mut y = vec![2.0, 3.0];
        trsv_t(Uplo::Lower, Diag::Unit, l.view(), &mut y);
        assert_eq!(y, vec![0.5, 3.0]);
    }

    #[test]
    fn trsv_t_round_trip_against_gemv_t() {
        let u = Matrix::from_rows(&[&[3.0, 1.0, -2.0], &[0.0, 2.0, 0.5], &[0.0, 0.0, 6.0]]);
        let b = vec![3.0, 5.0, 7.0];
        let mut x = b.clone();
        trsv_t(Uplo::Upper, Diag::NonUnit, u.view(), &mut x);
        let mut back = vec![0.0; 3];
        gemv_t(1.0, u.view(), &x, 0.0, &mut back);
        for (bi, bb) in b.iter().zip(&back) {
            assert!((bi - bb).abs() < 1e-12, "{bi} vs {bb}");
        }
    }

    #[test]
    fn trmv_upper_matches_gemv_on_triangle() {
        let u = Matrix::from_rows(&[&[2.0, 1.0, 3.0], &[0.0, 4.0, -1.0], &[0.0, 0.0, 5.0]]);
        let x0 = vec![1.0, 2.0, 3.0];
        let mut x = x0.clone();
        trmv(Uplo::Upper, Diag::NonUnit, u.view(), &mut x);
        let mut want = vec![0.0; 3];
        gemv(1.0, u.view(), &x0, 0.0, &mut want);
        assert_eq!(x, want);
    }

    #[test]
    fn trmv_lower_unit_ignores_diagonal_values() {
        // Stored diagonal must be ignored under Diag::Unit.
        let l = Matrix::from_rows(&[&[9.0, 0.0], &[2.0, 7.0]]);
        let mut x = vec![1.0, 1.0];
        trmv(Uplo::Lower, Diag::Unit, l.view(), &mut x);
        assert_eq!(x, vec![1.0, 3.0]);
    }
}
