//! Owned column-major matrix storage.

use crate::scalar::Scalar;
use crate::view::{MatView, MatViewMut};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Owned dense matrix in column-major order (`ld == rows`).
///
/// `Matrix` is deliberately minimal: algorithms operate on
/// [`MatView`]/[`MatViewMut`] obtained via [`Matrix::view`] /
/// [`Matrix::view_mut`], so that the exact same kernels run on owned
/// matrices, panels, and block-cyclic local storage.
#[derive(Clone, PartialEq)]
pub struct Matrix<T = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Allocates an `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![T::ZERO; rows * cols] }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing column-major buffer (`data.len() == rows*cols`).
    ///
    /// # Panics
    /// If the length does not match the shape.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length != rows*cols");
        Self { rows, cols, data }
    }

    /// Builds a matrix from row-major nested slices (convenient in tests and
    /// examples; the paper's Figure 1 matrix is written row by row).
    ///
    /// # Panics
    /// If rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
        }
        Self::from_fn(r, c, |i, j| rows[i][j])
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when either dimension is zero.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Immutable view of the whole matrix.
    #[inline(always)]
    pub fn view(&self) -> MatView<'_, T> {
        MatView::from_slice(&self.data, self.rows, self.cols, self.rows.max(1))
    }

    /// Mutable view of the whole matrix.
    #[inline(always)]
    pub fn view_mut(&mut self) -> MatViewMut<'_, T> {
        MatViewMut::from_slice(&mut self.data, self.rows, self.cols, self.rows.max(1))
    }

    /// Column `j` as a contiguous slice.
    #[inline(always)]
    pub fn col(&self, j: usize) -> &[T] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Column `j` as a mutable contiguous slice.
    #[inline(always)]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Underlying column-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Underlying column-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Extracts row `i` as a `Vec`.
    pub fn row(&self, i: usize) -> Vec<T> {
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x.abs()).collect(),
        }
    }

    /// Maximum absolute entry (0 for empty).
    pub fn max_abs(&self) -> T {
        self.data.iter().fold(T::ZERO, |m, &x| m.max(x.abs()))
    }

    /// Frobenius-style elementwise comparison: max |a_ij - b_ij|.
    ///
    /// # Panics
    /// If the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> T {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data.iter().zip(&other.data).fold(T::ZERO, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// The strictly-lower-triangular part with unit diagonal (the `L` factor
    /// stored in a packed LU), as an `m x min(m,n)` matrix.
    pub fn unit_lower(&self) -> Matrix<T> {
        let k = self.rows.min(self.cols);
        Matrix::from_fn(self.rows, k, |i, j| {
            if i == j {
                T::ONE
            } else if i > j {
                self[(i, j)]
            } else {
                T::ZERO
            }
        })
    }

    /// The upper-triangular part (the `U` factor stored in a packed LU), as
    /// a `min(m,n) x n` matrix.
    pub fn upper(&self) -> Matrix<T> {
        let k = self.rows.min(self.cols);
        Matrix::from_fn(k, self.cols, |i, j| if j >= i { self[(i, j)] } else { T::ZERO })
    }

    /// Rounds every element into precision `U` (`f64 → f32` demotes with
    /// IEEE round-to-nearest; `f32 → f64` is exact). The mixed-precision
    /// solver uses this to hand a working copy to the fast low-precision
    /// factorization. Shares the element conversion rule with
    /// [`crate::TileMatrix::cast`] via [`crate::scalar::cast_slice`], so
    /// the precision ladder behaves identically on either layout.
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        Matrix { rows: self.rows, cols: self.cols, data: crate::scalar::cast_slice(&self.data) }
    }
}

impl<T> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[j * self.rows + i]
    }
}

impl<T> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[j * self.rows + i]
    }
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:>10.4?} ", self[(i, j)])?;
            }
            if show_cols < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_is_column_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(2, 1)], 6.0);
        assert_eq!(m.row(1), vec![3.0, 4.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 31 + j * 7) as f64);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn unit_lower_and_upper_extract_lu_factors() {
        let m = Matrix::from_rows(&[&[2.0, 3.0], &[0.5, 4.0], &[0.25, 0.5]]);
        let l = m.unit_lower();
        let u = m.upper();
        assert_eq!(l.rows(), 3);
        assert_eq!(l.cols(), 2);
        assert_eq!(l[(0, 0)], 1.0);
        assert_eq!(l[(1, 0)], 0.5);
        assert_eq!(l[(1, 1)], 1.0);
        assert_eq!(l[(0, 1)], 0.0);
        assert_eq!(u.rows(), 2);
        assert_eq!(u[(0, 1)], 3.0);
        assert_eq!(u[(1, 0)], 0.0);
        assert_eq!(u[(1, 1)], 4.0);
    }

    #[test]
    fn identity_is_identity() {
        let i3: Matrix = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(i3[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }
}
