//! Tile-major storage: [`TileLayout`] geometry/ownership maps and the
//! [`TileMatrix`] container backing the task-graph runtime and the
//! block-cyclic distributed layer.
//!
//! The paper organizes both computation and data movement around `b x b`
//! blocks; a tile-major layout is the storage-side half of that bargain.
//! Where [`crate::Matrix`] keeps one flat column-major buffer (so a
//! `Gemm(k,i,j)` task strides across the whole leading dimension `m`),
//! `TileMatrix` stores each `b x b` tile contiguously — a tile *is* a
//! cache-contained unit, and cache misses are memory-hierarchy
//! communication. The same geometry doubles as the ScaLAPACK block-cyclic
//! map: with an optional `(Pr, Pc)` grid attached, [`TileLayout`] answers
//! every owner / local-index / local-count question the distributed layer
//! asks (the math of `NUMROC` and friends), so a rank's local storage is
//! itself a `TileMatrix` of the tiles it owns and the shared-memory
//! runtime and the simulated-distributed runs address data the same way.
//!
//! Storage order: tiles are laid out column-major *by tile* (tile column
//! `tj` before `tj+1`, and within a tile column, tile row `ti` before
//! `ti+1`), and each tile is column-major inside with leading dimension
//! equal to its own height. Edge tiles are ragged when the matrix
//! dimensions are not multiples of the tile dimensions; the closed-form
//! offset arithmetic in [`TileLayout::tile_offset`] stays exact because
//! only the *last* tile row/column can be short.

use crate::scalar::{cast_slice, Scalar};
use crate::view::{MatView, MatViewMut};
use crate::Matrix;
use std::fmt;
use std::ops::{Index, IndexMut, Range};

/// Tile geometry of an `rows x cols` matrix cut into `mb x nb` tiles,
/// plus an optional block-cyclic `(Pr, Pc)` ownership map.
///
/// The layout is pure arithmetic (`Copy`, no allocation): every query —
/// tile counts, ragged edge shapes, contiguous storage offsets, owners,
/// local indices — is a closed form, so it can be shared freely between
/// the storage container, the runtime's shared cells, and the
/// distributed layer's per-rank state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileLayout {
    rows: usize,
    cols: usize,
    mb: usize,
    nb: usize,
    grid: Option<(usize, usize)>,
}

impl TileLayout {
    /// Layout of an `rows x cols` matrix in `mb x nb` tiles (no ownership
    /// map; attach one with [`Self::with_grid`]).
    ///
    /// # Panics
    /// If either tile dimension is zero.
    pub fn new(rows: usize, cols: usize, mb: usize, nb: usize) -> Self {
        assert!(mb > 0 && nb > 0, "tile dimensions must be positive");
        Self { rows, cols, mb, nb, grid: None }
    }

    /// Attaches a block-cyclic `Pr x Pc` process grid: tile `(ti, tj)` is
    /// owned by process `(ti mod Pr, tj mod Pc)` — the ScaLAPACK deal.
    ///
    /// # Panics
    /// If either grid dimension is zero.
    pub fn with_grid(self, pr: usize, pc: usize) -> Self {
        assert!(pr > 0 && pc > 0, "grid dimensions must be positive");
        Self { grid: Some((pr, pc)), ..self }
    }

    /// Matrix rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tile height `mb` (all tile rows but possibly the last).
    #[inline(always)]
    pub fn mb(&self) -> usize {
        self.mb
    }

    /// Tile width `nb` (all tile columns but possibly the last).
    #[inline(always)]
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// The attached `(Pr, Pc)` process grid, if any.
    #[inline(always)]
    pub fn grid(&self) -> Option<(usize, usize)> {
        self.grid
    }

    /// Number of tile rows, `ceil(rows / mb)`.
    #[inline(always)]
    pub fn tile_rows(&self) -> usize {
        self.rows.div_ceil(self.mb)
    }

    /// Number of tile columns, `ceil(cols / nb)`.
    #[inline(always)]
    pub fn tile_cols(&self) -> usize {
        self.cols.div_ceil(self.nb)
    }

    /// Height of tile row `ti` (`mb`, except a ragged last row).
    #[inline(always)]
    pub fn tile_height(&self, ti: usize) -> usize {
        debug_assert!(ti < self.tile_rows());
        self.mb.min(self.rows - ti * self.mb)
    }

    /// Width of tile column `tj` (`nb`, except a ragged last column).
    #[inline(always)]
    pub fn tile_width(&self, tj: usize) -> usize {
        debug_assert!(tj < self.tile_cols());
        self.nb.min(self.cols - tj * self.nb)
    }

    /// Offset of tile `(ti, tj)` in the contiguous tile-major buffer.
    ///
    /// Tile columns are stored left to right; within one, tiles top to
    /// bottom. Every tile column before `tj` is full width and holds all
    /// `rows` rows, and every tile above `(ti, tj)` is full height, so
    /// the offset is closed-form.
    #[inline(always)]
    pub fn tile_offset(&self, ti: usize, tj: usize) -> usize {
        debug_assert!(ti < self.tile_rows() && tj < self.tile_cols());
        self.rows * (tj * self.nb) + self.tile_width(tj) * (ti * self.mb)
    }

    /// Flat-buffer index of element `(i, j)` under the tile-major order.
    #[inline(always)]
    pub fn elem_offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i < self.rows && j < self.cols,
            "({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        let (ti, tj) = (i / self.mb, j / self.nb);
        self.tile_offset(ti, tj) + (j % self.nb) * self.tile_height(ti) + i % self.mb
    }

    /// Splits a global row range into `(tile row, range within tile)`
    /// pieces, in order — the loop shape every cross-tile kernel uses.
    pub fn row_tile_span(&self, r: Range<usize>) -> Vec<(usize, Range<usize>)> {
        self.span_1d(r, self.mb, self.rows)
    }

    /// Splits a global column range into `(tile column, range within
    /// tile)` pieces, in order.
    pub fn col_tile_span(&self, r: Range<usize>) -> Vec<(usize, Range<usize>)> {
        self.span_1d(r, self.nb, self.cols)
    }

    fn span_1d(&self, r: Range<usize>, b: usize, extent: usize) -> Vec<(usize, Range<usize>)> {
        assert!(r.end <= extent, "range {r:?} out of extent {extent}");
        let mut out = Vec::new();
        let mut x = r.start;
        while x < r.end {
            let t = x / b;
            let hi = r.end.min((t + 1) * b);
            out.push((t, x - t * b..hi - t * b));
            x = hi;
        }
        out
    }

    // --- Block-cyclic ownership map (requires an attached grid). -------

    #[inline(always)]
    fn pr(&self) -> usize {
        self.grid.expect("layout has no process grid").0
    }

    #[inline(always)]
    fn pc(&self) -> usize {
        self.grid.expect("layout has no process grid").1
    }

    /// Owning process rank of tile `(ti, tj)`, column-major rank order
    /// (`rank = pcol * Pr + prow`, BLACS "C" order — matching
    /// `calu-netsim`'s `Grid::rank_of`).
    ///
    /// # Panics
    /// If no grid is attached.
    #[inline]
    pub fn owner(&self, ti: usize, tj: usize) -> usize {
        let (prow, pcol) = self.owner_coords(ti, tj);
        pcol * self.pr() + prow
    }

    /// Owning `(prow, pcol)` grid coordinates of tile `(ti, tj)`.
    ///
    /// # Panics
    /// If no grid is attached.
    #[inline]
    pub fn owner_coords(&self, ti: usize, tj: usize) -> (usize, usize) {
        (ti % self.pr(), tj % self.pc())
    }

    /// Process row owning global row `i` (`(i / mb) mod Pr`).
    #[inline]
    pub fn row_owner(&self, i: usize) -> usize {
        (i / self.mb) % self.pr()
    }

    /// Process column owning global column `j`.
    #[inline]
    pub fn col_owner(&self, j: usize) -> usize {
        (j / self.nb) % self.pc()
    }

    /// Local row index of global row `i` on its owning process row.
    #[inline]
    pub fn local_row(&self, i: usize) -> usize {
        ((i / self.mb) / self.pr()) * self.mb + i % self.mb
    }

    /// Local column index of global column `j` on its owning process
    /// column.
    #[inline]
    pub fn local_col(&self, j: usize) -> usize {
        ((j / self.nb) / self.pc()) * self.nb + j % self.nb
    }

    /// Global row index of local row `li` on process row `prow`.
    #[inline]
    pub fn global_row(&self, prow: usize, li: usize) -> usize {
        ((li / self.mb) * self.pr() + prow) * self.mb + li % self.mb
    }

    /// Global column index of local column `lj` on process column `pcol`.
    #[inline]
    pub fn global_col(&self, pcol: usize, lj: usize) -> usize {
        ((lj / self.nb) * self.pc() + pcol) * self.nb + lj % self.nb
    }

    /// Number of rows owned by process row `prow` (ScaLAPACK `NUMROC`
    /// over the row dimension).
    #[inline]
    pub fn local_rows(&self, prow: usize) -> usize {
        cyclic_count(self.rows, self.mb, prow, self.pr())
    }

    /// Number of columns owned by process column `pcol`.
    #[inline]
    pub fn local_cols(&self, pcol: usize) -> usize {
        cyclic_count(self.cols, self.nb, pcol, self.pc())
    }

    /// Number of rows with global index `< hi` owned by `prow` —
    /// equivalently, the local index of the first owned row with global
    /// index `>= hi`.
    #[inline]
    pub fn local_rows_below(&self, prow: usize, hi: usize) -> usize {
        cyclic_count(hi, self.mb, prow, self.pr())
    }

    /// Number of columns with global index `< hi` owned by `pcol`.
    #[inline]
    pub fn local_cols_below(&self, pcol: usize, hi: usize) -> usize {
        cyclic_count(hi, self.nb, pcol, self.pc())
    }

    /// The layout of process `(prow, pcol)`'s local storage: its owned
    /// rows and columns packed dense, same tile dimensions, no grid.
    /// Local tile `(lti, ltj)` is global tile `(lti·Pr + prow, ltj·Pc +
    /// pcol)`, so the block-cyclic deal *is* a re-indexing of tiles —
    /// the 1:1 storage correspondence between the shared-memory runtime
    /// and a distributed rank.
    pub fn local_layout(&self, prow: usize, pcol: usize) -> TileLayout {
        TileLayout::new(self.local_rows(prow), self.local_cols(pcol), self.mb, self.nb)
    }
}

/// ScaLAPACK `NUMROC`: how many of `n` items, dealt in blocks of `b`
/// round-robin over `p` processes starting at process 0, land on
/// process `iproc`.
#[inline]
fn cyclic_count(n: usize, b: usize, iproc: usize, p: usize) -> usize {
    debug_assert!(iproc < p);
    let nblocks = n / b;
    let mut num = (nblocks / p) * b;
    let extra = nblocks % p;
    if iproc < extra {
        num += b;
    } else if iproc == extra {
        num += n % b;
    }
    num
}

/// Owned tile-major matrix: the tiles of a [`TileLayout`], each stored
/// contiguously (column-major inside the tile, tiles in tile-column-major
/// order).
///
/// Kernels address single tiles through [`TileMatrix::tile`] /
/// [`TileMatrix::tile_mut`] — plain [`MatView`]/[`MatViewMut`]s, so every
/// existing BLAS/LAPACK kernel runs on a tile unchanged. Cross-tile
/// operations (row swaps for pivoting, column-segment sweeps) are
/// provided here, since a multi-tile region is not one strided view.
#[derive(Clone, PartialEq)]
pub struct TileMatrix<T = f64> {
    layout: TileLayout,
    data: Vec<T>,
}

impl<T: Scalar> TileMatrix<T> {
    /// Allocates an all-zero tile matrix with the given layout.
    pub fn zeros_with_layout(layout: TileLayout) -> Self {
        Self { layout, data: vec![T::ZERO; layout.rows() * layout.cols()] }
    }

    /// Allocates an all-zero `rows x cols` matrix in `mb x nb` tiles.
    pub fn zeros(rows: usize, cols: usize, mb: usize, nb: usize) -> Self {
        Self::zeros_with_layout(TileLayout::new(rows, cols, mb, nb))
    }

    /// Builds a tile matrix from a function of `(row, col)` (global
    /// indices), filling tiles in storage order.
    pub fn from_fn(layout: TileLayout, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(layout.rows() * layout.cols());
        for tj in 0..layout.tile_cols() {
            let (j0, w) = (tj * layout.nb(), layout.tile_width(tj));
            for ti in 0..layout.tile_rows() {
                let (i0, h) = (ti * layout.mb(), layout.tile_height(ti));
                for j in 0..w {
                    for i in 0..h {
                        data.push(f(i0 + i, j0 + j));
                    }
                }
            }
        }
        Self { layout, data }
    }

    /// Converts a flat column-major [`Matrix`] into `mb x nb` tiles
    /// (lossless; [`Self::to_matrix`] inverts it exactly).
    pub fn from_matrix(a: &Matrix<T>, mb: usize, nb: usize) -> Self {
        Self::from_view(a.view(), mb, nb)
    }

    /// Converts any strided view into tile-major storage.
    pub fn from_view(a: MatView<'_, T>, mb: usize, nb: usize) -> Self {
        let layout = TileLayout::new(a.rows(), a.cols(), mb, nb);
        let mut out = Self { layout, data: Vec::with_capacity(a.rows() * a.cols()) };
        for tj in 0..layout.tile_cols() {
            let (j0, w) = (tj * nb, layout.tile_width(tj));
            for ti in 0..layout.tile_rows() {
                let (i0, h) = (ti * mb, layout.tile_height(ti));
                let src = a.submatrix(i0, j0, h, w);
                for j in 0..w {
                    out.data.extend_from_slice(src.col(j));
                }
            }
        }
        out
    }

    /// Converts back to a flat column-major [`Matrix`] (the exact inverse
    /// of [`Self::from_matrix`]).
    pub fn to_matrix(&self) -> Matrix<T> {
        let mut m = Matrix::zeros(self.rows(), self.cols());
        for (ti, tj, t) in self.tiles() {
            let (i0, j0) = (ti * self.layout.mb(), tj * self.layout.nb());
            let mut dst = m.view_mut().into_submatrix(i0, j0, t.rows(), t.cols());
            dst.copy_from(t);
        }
        m
    }

    /// The layout (geometry + optional ownership map).
    #[inline(always)]
    pub fn layout(&self) -> TileLayout {
        self.layout
    }

    /// Matrix rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.layout.rows()
    }

    /// Matrix columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.layout.cols()
    }

    /// `true` when either dimension is zero.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.rows() == 0 || self.cols() == 0
    }

    /// Immutable view of tile `(ti, tj)` (contiguous, `ld ==` tile
    /// height).
    pub fn tile(&self, ti: usize, tj: usize) -> MatView<'_, T> {
        let (h, w) = (self.layout.tile_height(ti), self.layout.tile_width(tj));
        let off = self.layout.tile_offset(ti, tj);
        MatView::from_slice(&self.data[off..off + h * w], h, w, h.max(1))
    }

    /// Mutable view of tile `(ti, tj)`.
    pub fn tile_mut(&mut self, ti: usize, tj: usize) -> MatViewMut<'_, T> {
        let (h, w) = (self.layout.tile_height(ti), self.layout.tile_width(tj));
        let off = self.layout.tile_offset(ti, tj);
        MatViewMut::from_slice(&mut self.data[off..off + h * w], h, w, h.max(1))
    }

    /// Iterates `(ti, tj, view)` over all tiles in storage order.
    pub fn tiles(&self) -> impl Iterator<Item = (usize, usize, MatView<'_, T>)> {
        let (tr, tc) = (self.layout.tile_rows(), self.layout.tile_cols());
        (0..tc).flat_map(move |tj| (0..tr).map(move |ti| (ti, tj, self.tile(ti, tj))))
    }

    /// The underlying tile-major buffer (tiles in storage order).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The underlying tile-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies the `nr x nc` region at `(i, j)` (global indices, may span
    /// tiles) into an owned flat [`Matrix`].
    pub fn submatrix_copy(&self, i: usize, j: usize, nr: usize, nc: usize) -> Matrix<T> {
        assert!(i + nr <= self.rows() && j + nc <= self.cols(), "region out of range");
        Matrix::from_fn(nr, nc, |r, c| self[(i + r, j + c)])
    }

    /// Swaps global rows `i1` and `i2` across columns `cols` (crossing
    /// tile boundaries as needed). Same element swaps as
    /// [`MatViewMut::swap_rows`] on flat storage.
    pub fn swap_rows_in_cols(&mut self, i1: usize, i2: usize, cols: Range<usize>) {
        assert!(i1 < self.rows() && i2 < self.rows());
        assert!(cols.end <= self.cols());
        if i1 == i2 {
            return;
        }
        for j in cols {
            let a = self.layout.elem_offset(i1, j);
            let b = self.layout.elem_offset(i2, j);
            self.data.swap(a, b);
        }
    }

    /// Swaps global rows `i1` and `i2` across all columns.
    pub fn swap_rows(&mut self, i1: usize, i2: usize) {
        self.swap_rows_in_cols(i1, i2, 0..self.cols());
    }

    /// Applies a LAPACK transposition sequence to the whole matrix: for
    /// `i` in order, swap rows `i` and `ipiv[i]` (cross-tile
    /// [`crate::perm::apply_ipiv`], aka `laswp` with increment +1).
    pub fn laswp(&mut self, ipiv: &[usize]) {
        self.laswp_in_cols(0, ipiv, 0..self.cols());
    }

    /// Applies a transposition sequence offset by `base` to columns
    /// `cols` only: for `i` in order, swap rows `base + i` and
    /// `base + ipiv[i]`. This is the per-block-column swap the runtime's
    /// `Swap(k, j)` tasks perform.
    pub fn laswp_in_cols(&mut self, base: usize, ipiv: &[usize], cols: Range<usize>) {
        for (i, &p) in ipiv.iter().enumerate() {
            if p != i {
                self.swap_rows_in_cols(base + i, base + p, cols.clone());
            }
        }
    }

    /// Calls `f(global_row_start, segment)` for each contiguous piece of
    /// column `j` restricted to `rows`, walking down the tile rows — the
    /// cross-tile analogue of `&mut matrix.col_mut(j)[rows]`.
    pub fn for_each_col_segment_mut(
        &mut self,
        j: usize,
        rows: Range<usize>,
        mut f: impl FnMut(usize, &mut [T]),
    ) {
        assert!(j < self.cols() && rows.end <= self.rows());
        let (mb, nb) = (self.layout.mb(), self.layout.nb());
        let (tj, jc) = (j / nb, j % nb);
        let mut i = rows.start;
        while i < rows.end {
            let ti = i / mb;
            let h = self.layout.tile_height(ti);
            let lo = i - ti * mb;
            let hi = h.min(rows.end - ti * mb);
            let off = self.layout.tile_offset(ti, tj) + jc * h;
            f(i, &mut self.data[off + lo..off + hi]);
            i = ti * mb + hi;
        }
    }

    /// Rounds every element into precision `U`, preserving the layout
    /// (same tile geometry and ownership map). Shares the element
    /// conversion rule with [`Matrix::cast`] via
    /// [`crate::scalar::cast_slice`].
    pub fn cast<U: Scalar>(&self) -> TileMatrix<U> {
        TileMatrix { layout: self.layout, data: cast_slice(&self.data) }
    }

    /// Maximum absolute entry (0 for empty).
    pub fn max_abs(&self) -> T {
        self.data.iter().fold(T::ZERO, |m, &x| m.max(x.abs()))
    }
}

impl<T: Scalar> Index<(usize, usize)> for TileMatrix<T> {
    type Output = T;

    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[self.layout.elem_offset(i, j)]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for TileMatrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        let off = self.layout.elem_offset(i, j);
        &mut self.data[off]
    }
}

impl<T: Scalar + fmt::Debug> fmt::Debug for TileMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TileMatrix {}x{} in {}x{} tiles ({}x{} grid of tiles)",
            self.rows(),
            self.cols(),
            self.layout.mb(),
            self.layout.nb(),
            self.layout.tile_rows(),
            self.layout.tile_cols()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::apply_ipiv;

    fn numbered(rows: usize, cols: usize) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |i, j| (i * 1000 + j) as f64)
    }

    #[test]
    fn round_trip_square_and_ragged() {
        for &(m, n, mb, nb) in &[
            (8usize, 8usize, 4usize, 4usize),
            (10, 7, 4, 3),
            (7, 10, 3, 4),
            (5, 5, 8, 8), // single tile bigger than the matrix
            (1, 9, 2, 2),
            (9, 1, 2, 2),
        ] {
            let a = numbered(m, n);
            let t = TileMatrix::from_matrix(&a, mb, nb);
            assert_eq!(t.to_matrix(), a, "{m}x{n} tiles {mb}x{nb}");
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(t[(i, j)], a[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn tiles_are_contiguous_and_ragged_edges_shaped() {
        let a = numbered(10, 7);
        let t = TileMatrix::from_matrix(&a, 4, 3);
        let layout = t.layout();
        assert_eq!(layout.tile_rows(), 3);
        assert_eq!(layout.tile_cols(), 3);
        assert_eq!(layout.tile_height(2), 2, "ragged bottom tile row");
        assert_eq!(layout.tile_width(2), 1, "ragged right tile column");
        let last = t.tile(2, 2);
        assert_eq!((last.rows(), last.cols()), (2, 1));
        assert_eq!(last.ld(), 2, "tile ld == tile height (contiguous)");
        // Tile (1,1) covers global (4..8, 3..6).
        let mid = t.tile(1, 1);
        assert_eq!(mid.get(0, 0), a[(4, 3)]);
        assert_eq!(mid.get(3, 2), a[(7, 5)]);
        // Offsets tile the buffer exactly: sum of tile areas == rows*cols.
        let total: usize = t.tiles().map(|(_, _, v)| v.rows() * v.cols()).sum();
        assert_eq!(total, 70);
    }

    #[test]
    fn tile_mut_writes_land_globally() {
        let mut t = TileMatrix::<f64>::zeros(6, 6, 4, 4);
        t.tile_mut(1, 0).set(1, 2, 7.0); // global (5, 2)
        assert_eq!(t[(5, 2)], 7.0);
        assert_eq!(t.to_matrix()[(5, 2)], 7.0);
    }

    #[test]
    fn cross_tile_laswp_matches_flat_apply_ipiv() {
        let a = numbered(11, 9);
        let ipiv = vec![5usize, 8, 2, 10, 4, 7];
        let mut flat = a.clone();
        apply_ipiv(flat.view_mut(), &ipiv);
        let mut tiled = TileMatrix::from_matrix(&a, 4, 4);
        tiled.laswp(&ipiv);
        assert_eq!(tiled.to_matrix(), flat);
    }

    #[test]
    fn ranged_laswp_touches_only_requested_columns() {
        let a = numbered(8, 8);
        let local = vec![3usize, 2];
        let mut flat = a.clone();
        // Flat reference: swaps offset by base 4, columns 2..7 only.
        let sub = flat.view_mut().into_submatrix(4, 2, 4, 5);
        apply_ipiv(sub, &local);
        let mut tiled = TileMatrix::from_matrix(&a, 4, 4);
        tiled.laswp_in_cols(4, &local, 2..7);
        assert_eq!(tiled.to_matrix(), flat);
    }

    #[test]
    fn col_segments_cover_range_in_order() {
        let a = numbered(10, 4);
        let mut t = TileMatrix::from_matrix(&a, 3, 2);
        let mut seen = Vec::new();
        t.for_each_col_segment_mut(3, 2..9, |start, seg| {
            seen.push((start, seg.to_vec()));
            for v in seg.iter_mut() {
                *v = -*v;
            }
        });
        // Tiles of height 3: rows 2..3, 3..6, 6..9.
        assert_eq!(
            seen.iter().map(|(s, v)| (*s, v.len())).collect::<Vec<_>>(),
            vec![(2, 1), (3, 3), (6, 3)]
        );
        for i in 0..10 {
            let want = if (2..9).contains(&i) { -a[(i, 3)] } else { a[(i, 3)] };
            assert_eq!(t[(i, 3)], want);
        }
    }

    #[test]
    fn block_cyclic_map_matches_explicit_dealing() {
        let layout = TileLayout::new(53, 37, 4, 3).with_grid(3, 2);
        let (pr, pc) = (3, 2);
        // Owner + local index agree with dealing tiles round-robin.
        let mut counts = vec![0usize; pr];
        for i in 0..53 {
            let owner = (i / 4) % pr;
            assert_eq!(layout.row_owner(i), owner);
            assert_eq!(layout.global_row(owner, layout.local_row(i)), i);
            counts[owner] += 1;
        }
        for (p, &c) in counts.iter().enumerate() {
            assert_eq!(layout.local_rows(p), c, "row NUMROC proc {p}");
        }
        for j in 0..37 {
            let owner = (j / 3) % pc;
            assert_eq!(layout.col_owner(j), owner);
            assert_eq!(layout.global_col(owner, layout.local_col(j)), j);
        }
        // local_rows_below counts exactly the owned rows below the bound.
        for hi in [0usize, 1, 4, 11, 12, 52, 53] {
            for p in 0..pr {
                let explicit = (0..hi).filter(|&i| layout.row_owner(i) == p).count();
                assert_eq!(layout.local_rows_below(p, hi), explicit, "hi={hi} p={p}");
            }
        }
        // Ranks are BLACS column-major.
        assert_eq!(layout.owner(0, 0), 0);
        assert_eq!(layout.owner(1, 0), 1);
        assert_eq!(layout.owner(0, 1), pr);
        assert_eq!(layout.owner_coords(4, 3), (1, 1));
    }

    #[test]
    fn local_layout_is_the_owned_tiles_packed() {
        let layout = TileLayout::new(26, 26, 4, 4).with_grid(2, 3);
        for prow in 0..2 {
            for pcol in 0..3 {
                let l = layout.local_layout(prow, pcol);
                assert_eq!(l.rows(), layout.local_rows(prow));
                assert_eq!(l.cols(), layout.local_cols(pcol));
                // Each local tile corresponds to one owned global tile of
                // the same shape.
                for lti in 0..l.tile_rows() {
                    let gti = lti * 2 + prow;
                    assert_eq!(l.tile_height(lti), layout.tile_height(gti));
                }
                for ltj in 0..l.tile_cols() {
                    let gtj = ltj * 3 + pcol;
                    assert_eq!(l.tile_width(ltj), layout.tile_width(gtj));
                }
            }
        }
    }

    #[test]
    fn row_and_col_tile_spans_partition_ranges() {
        let layout = TileLayout::new(22, 17, 5, 4);
        for &(lo, hi) in &[(0usize, 22usize), (3, 19), (5, 10), (21, 22), (7, 7)] {
            let span = layout.row_tile_span(lo..hi);
            let mut covered = Vec::new();
            for (ti, r) in &span {
                for x in r.clone() {
                    covered.push(ti * 5 + x);
                }
            }
            assert_eq!(covered, (lo..hi).collect::<Vec<_>>(), "rows {lo}..{hi}");
        }
        let span = layout.col_tile_span(2..17);
        assert_eq!(span.first().unwrap().0, 0);
        assert_eq!(span.last().unwrap(), &(4, 0..1), "ragged last column tile");
    }

    #[test]
    fn cast_round_trips_and_preserves_layout() {
        let a = Matrix::from_fn(9, 5, |i, j| 0.1 * (i as f64) + j as f64);
        let t = TileMatrix::from_matrix(&a, 4, 4);
        let lo = t.cast::<f32>();
        assert_eq!(lo.layout(), t.layout());
        assert_eq!(lo.to_matrix(), a.cast::<f32>(), "both casts share one conversion rule");
        let back = lo.cast::<f64>();
        assert_eq!(back[(3, 3)], a[(3, 3)] as f32 as f64);
    }

    #[test]
    fn empty_dimensions_are_legal() {
        let t = TileMatrix::<f64>::zeros(0, 5, 4, 4);
        assert!(t.is_empty());
        assert_eq!(t.layout().tile_rows(), 0);
        assert_eq!(t.to_matrix().rows(), 0);
        let t = TileMatrix::<f64>::zeros(5, 0, 4, 4);
        assert!(t.is_empty());
        assert_eq!(t.as_slice().len(), 0);
    }
}
