//! Borrowed, leading-dimension strided matrix views.
//!
//! Every kernel in this crate operates on [`MatView`] / [`MatViewMut`]
//! rather than on owned [`crate::Matrix`] values so that blocked algorithms
//! (panel factorizations, trailing updates, block-cyclic local storage) can
//! address arbitrary sub-blocks without copying — the same role `(ptr, lda)`
//! pairs play in Fortran BLAS.
//!
//! # Safety model
//!
//! A view is a `(ptr, rows, cols, ld)` quadruple with the invariants
//!
//! * `ld >= rows.max(1)`,
//! * for every `j < cols` the memory range `[ptr + j*ld, ptr + j*ld + rows)`
//!   is valid for the view's lifetime (and writable for `MatViewMut`),
//! * distinct `MatViewMut`s never alias.
//!
//! All `unsafe` in this crate is confined to this module; the public
//! splitting/sub-view API only hands out views that preserve the invariants,
//! so kernels built on top are safe code. Element accesses are
//! bounds-checked with `debug_assert!` (tests run with debug assertions on).

use crate::scalar::Scalar;
use std::fmt;
use std::marker::PhantomData;

/// Immutable view of a column-major matrix block.
#[derive(Clone, Copy)]
pub struct MatView<'a, T = f64> {
    ptr: *const T,
    rows: usize,
    cols: usize,
    ld: usize,
    _marker: PhantomData<&'a T>,
}

/// Mutable view of a column-major matrix block.
pub struct MatViewMut<'a, T = f64> {
    ptr: *mut T,
    rows: usize,
    cols: usize,
    ld: usize,
    _marker: PhantomData<&'a mut T>,
}

// A view is semantically a (slice of) shared scalars; a mutable view is
// semantically an exclusive slice. Both patterns are Send/Sync exactly like
// `&[T]` / `&mut [T]`.
unsafe impl<T: Sync> Send for MatView<'_, T> {}
unsafe impl<T: Sync> Sync for MatView<'_, T> {}
unsafe impl<T: Send> Send for MatViewMut<'_, T> {}
unsafe impl<T: Sync> Sync for MatViewMut<'_, T> {}

impl<'a, T: Scalar> MatView<'a, T> {
    /// Builds a view over `data` interpreted as column-major with leading
    /// dimension `ld`.
    ///
    /// # Panics
    /// If the slice is too short for the shape or `ld < rows`.
    pub fn from_slice(data: &'a [T], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1), "leading dimension {ld} < rows {rows}");
        if cols > 0 && rows > 0 {
            let need = (cols - 1) * ld + rows;
            assert!(data.len() >= need, "slice len {} < required {need}", data.len());
        }
        Self { ptr: data.as_ptr(), rows, cols, ld, _marker: PhantomData }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (column stride).
    #[inline(always)]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// `true` if the view contains no elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Element `(i, j)`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        unsafe { *self.ptr.add(j * self.ld + i) }
    }

    /// Column `j` as a contiguous slice of length `rows`.
    #[inline(always)]
    pub fn col(&self, j: usize) -> &'a [T] {
        debug_assert!(j < self.cols, "column {j} out of {}", self.cols);
        unsafe { std::slice::from_raw_parts(self.ptr.add(j * self.ld), self.rows) }
    }

    /// Sub-block of shape `nrows x ncols` starting at `(i, j)`.
    pub fn submatrix(&self, i: usize, j: usize, nrows: usize, ncols: usize) -> MatView<'a, T> {
        assert!(i + nrows <= self.rows, "row range {i}+{nrows} out of {}", self.rows);
        assert!(j + ncols <= self.cols, "col range {j}+{ncols} out of {}", self.cols);
        MatView {
            ptr: unsafe { self.ptr.add(j * self.ld + i) },
            rows: nrows,
            cols: ncols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Splits into `(top, bottom)` at row `i`.
    pub fn split_at_row(&self, i: usize) -> (MatView<'a, T>, MatView<'a, T>) {
        (self.submatrix(0, 0, i, self.cols), self.submatrix(i, 0, self.rows - i, self.cols))
    }

    /// Splits into `(left, right)` at column `j`.
    pub fn split_at_col(&self, j: usize) -> (MatView<'a, T>, MatView<'a, T>) {
        (self.submatrix(0, 0, self.rows, j), self.submatrix(0, j, self.rows, self.cols - j))
    }

    /// Copies the viewed block into an owned [`crate::Matrix`].
    pub fn to_matrix(&self) -> crate::Matrix<T> {
        let mut m = crate::Matrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            m.col_mut(j).copy_from_slice(self.col(j));
        }
        m
    }

    /// Maximum absolute value over the block (0 for an empty block).
    pub fn max_abs(&self) -> T {
        let mut best = T::ZERO;
        for j in 0..self.cols {
            for &x in self.col(j) {
                let a = x.abs();
                if a > best {
                    best = a;
                }
            }
        }
        best
    }
}

impl<'a, T: Scalar> MatViewMut<'a, T> {
    /// Builds a mutable view over `data` (column-major, leading dimension `ld`).
    ///
    /// # Panics
    /// If the slice is too short for the shape or `ld < rows`.
    pub fn from_slice(data: &'a mut [T], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1), "leading dimension {ld} < rows {rows}");
        if cols > 0 && rows > 0 {
            let need = (cols - 1) * ld + rows;
            assert!(data.len() >= need, "slice len {} < required {need}", data.len());
        }
        Self { ptr: data.as_mut_ptr(), rows, cols, ld, _marker: PhantomData }
    }

    /// Builds a mutable view directly over raw strided storage, without
    /// materializing an intermediate `&mut [f64]` over the whole span.
    ///
    /// This is the constructor for callers (like the task-graph runtime)
    /// that carve *logically* disjoint blocks whose strided footprints
    /// interleave in memory: two views over disjoint row ranges of the
    /// same columns never alias element-wise, but `&mut` slices covering
    /// their full `(cols-1)·ld + rows` spans would overlap in the
    /// inter-row gaps — undefined behavior Rust's aliasing rules reject
    /// even if no element is touched twice. Starting from the raw pointer
    /// keeps every reference this view hands out (per-column slices,
    /// element accesses) confined to the block's own elements.
    ///
    /// # Safety
    /// For the lifetime `'a` the caller must guarantee, for every
    /// `j < cols`, that `[ptr + j·ld, ptr + j·ld + rows)` is valid,
    /// writable, and not accessed through any other reference or view
    /// (the usual `MatViewMut` invariants), and that `ld ≥ rows.max(1)`.
    pub unsafe fn from_raw_parts(ptr: *mut T, rows: usize, cols: usize, ld: usize) -> Self {
        debug_assert!(ld >= rows.max(1), "leading dimension {ld} < rows {rows}");
        Self { ptr, rows, cols, ld, _marker: PhantomData }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (column stride).
    #[inline(always)]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// `true` if the view contains no elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Element `(i, j)`.
    #[inline(always)]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        unsafe { *self.ptr.add(j * self.ld + i) }
    }

    /// Sets element `(i, j)` to `v`.
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        unsafe { *self.ptr.add(j * self.ld + i) = v }
    }

    /// Column `j` as an immutable contiguous slice.
    #[inline(always)]
    pub fn col(&self, j: usize) -> &[T] {
        debug_assert!(j < self.cols, "column {j} out of {}", self.cols);
        unsafe { std::slice::from_raw_parts(self.ptr.add(j * self.ld), self.rows) }
    }

    /// Column `j` as a mutable contiguous slice.
    #[inline(always)]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.cols, "column {j} out of {}", self.cols);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(j * self.ld), self.rows) }
    }

    /// Two distinct columns mutably at once (used by column swaps).
    ///
    /// # Panics
    /// If `j1 == j2` or either is out of range.
    pub fn two_cols_mut(&mut self, j1: usize, j2: usize) -> (&mut [T], &mut [T]) {
        assert!(j1 != j2, "two_cols_mut requires distinct columns");
        assert!(j1 < self.cols && j2 < self.cols);
        unsafe {
            let a = std::slice::from_raw_parts_mut(self.ptr.add(j1 * self.ld), self.rows);
            let b = std::slice::from_raw_parts_mut(self.ptr.add(j2 * self.ld), self.rows);
            (a, b)
        }
    }

    /// Reborrows as an immutable view with a shorter lifetime.
    #[inline(always)]
    pub fn as_view(&self) -> MatView<'_, T> {
        MatView {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Reborrows mutably with a shorter lifetime (so a view can be passed to
    /// a kernel without being consumed).
    #[inline(always)]
    pub fn rb_mut(&mut self) -> MatViewMut<'_, T> {
        MatViewMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Mutable sub-block of shape `nrows x ncols` starting at `(i, j)`,
    /// consuming the view (use [`Self::rb_mut`] first to keep it).
    pub fn into_submatrix(
        self,
        i: usize,
        j: usize,
        nrows: usize,
        ncols: usize,
    ) -> MatViewMut<'a, T> {
        assert!(i + nrows <= self.rows, "row range {i}+{nrows} out of {}", self.rows);
        assert!(j + ncols <= self.cols, "col range {j}+{ncols} out of {}", self.cols);
        MatViewMut {
            ptr: unsafe { self.ptr.add(j * self.ld + i) },
            rows: nrows,
            cols: ncols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Mutable sub-block borrowing from `self` (non-consuming).
    pub fn submatrix_mut(
        &mut self,
        i: usize,
        j: usize,
        nrows: usize,
        ncols: usize,
    ) -> MatViewMut<'_, T> {
        self.rb_mut().into_submatrix(i, j, nrows, ncols)
    }

    /// Immutable sub-block.
    pub fn submatrix(&self, i: usize, j: usize, nrows: usize, ncols: usize) -> MatView<'_, T> {
        self.as_view().submatrix(i, j, nrows, ncols)
    }

    /// Splits into disjoint `(top, bottom)` mutable views at row `i`.
    pub fn split_at_row_mut(self, i: usize) -> (MatViewMut<'a, T>, MatViewMut<'a, T>) {
        assert!(i <= self.rows);
        let top = MatViewMut {
            ptr: self.ptr,
            rows: i,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        };
        let bottom = MatViewMut {
            ptr: unsafe { self.ptr.add(i) },
            rows: self.rows - i,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        };
        (top, bottom)
    }

    /// Splits into disjoint `(left, right)` mutable views at column `j`.
    pub fn split_at_col_mut(self, j: usize) -> (MatViewMut<'a, T>, MatViewMut<'a, T>) {
        assert!(j <= self.cols);
        let left = MatViewMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: j,
            ld: self.ld,
            _marker: PhantomData,
        };
        let right = MatViewMut {
            ptr: unsafe { self.ptr.add(j * self.ld) },
            rows: self.rows,
            cols: self.cols - j,
            ld: self.ld,
            _marker: PhantomData,
        };
        (left, right)
    }

    /// Swaps rows `i1` and `i2` across all columns of the view.
    pub fn swap_rows(&mut self, i1: usize, i2: usize) {
        assert!(i1 < self.rows && i2 < self.rows);
        if i1 == i2 {
            return;
        }
        for j in 0..self.cols {
            unsafe {
                let base = self.ptr.add(j * self.ld);
                std::ptr::swap(base.add(i1), base.add(i2));
            }
        }
    }

    /// Fills the whole block with `v`.
    pub fn fill(&mut self, v: T) {
        for j in 0..self.cols {
            self.col_mut(j).fill(v);
        }
    }

    /// Copies `src` (same shape) into this block.
    ///
    /// # Panics
    /// If the shapes differ.
    pub fn copy_from(&mut self, src: MatView<'_, T>) {
        assert_eq!(self.rows, src.rows(), "copy_from: row mismatch");
        assert_eq!(self.cols, src.cols(), "copy_from: col mismatch");
        for j in 0..self.cols {
            self.col_mut(j).copy_from_slice(src.col(j));
        }
    }

    /// Copies the viewed block into an owned [`crate::Matrix`].
    pub fn to_matrix(&self) -> crate::Matrix<T> {
        self.as_view().to_matrix()
    }
}

impl<T> fmt::Debug for MatView<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MatView({}x{}, ld={})", self.rows, self.cols, self.ld)
    }
}

impl<T> fmt::Debug for MatViewMut<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MatViewMut({}x{}, ld={})", self.rows, self.cols, self.ld)
    }
}

#[cfg(test)]
mod tests {
    use crate::Matrix;

    #[test]
    fn submatrix_addresses_expected_elements() {
        let m = Matrix::from_fn(4, 5, |i, j| (i * 10 + j) as f64);
        let v = m.view();
        let s = v.submatrix(1, 2, 2, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.cols(), 3);
        assert_eq!(s.get(0, 0), 12.0);
        assert_eq!(s.get(1, 2), 24.0);
        assert_eq!(s.col(1), &[13.0, 23.0]);
    }

    #[test]
    fn split_at_row_mut_is_disjoint_and_correct() {
        let mut m = Matrix::from_fn(4, 3, |i, j| (i + 10 * j) as f64);
        let (mut top, mut bot) = m.view_mut().split_at_row_mut(1);
        assert_eq!(top.rows(), 1);
        assert_eq!(bot.rows(), 3);
        top.set(0, 0, -1.0);
        bot.set(0, 0, -2.0);
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(1, 0)], -2.0);
    }

    #[test]
    fn split_at_col_mut_is_disjoint_and_correct() {
        let mut m = Matrix::from_fn(3, 4, |i, j| (i + 10 * j) as f64);
        let (mut l, mut r) = m.view_mut().split_at_col_mut(2);
        assert_eq!(l.cols(), 2);
        assert_eq!(r.cols(), 2);
        l.set(0, 1, -1.0);
        r.set(2, 0, -2.0);
        assert_eq!(m[(0, 1)], -1.0);
        assert_eq!(m[(2, 2)], -2.0);
    }

    #[test]
    fn swap_rows_swaps_entire_rows() {
        let mut m = Matrix::from_fn(3, 3, |i, _| i as f64);
        m.view_mut().swap_rows(0, 2);
        for j in 0..3 {
            assert_eq!(m[(0, j)], 2.0);
            assert_eq!(m[(2, j)], 0.0);
        }
    }

    #[test]
    fn copy_from_round_trips() {
        let src = Matrix::from_fn(3, 2, |i, j| (i * 7 + j) as f64);
        let mut dst = Matrix::zeros(3, 2);
        dst.view_mut().copy_from(src.view());
        assert_eq!(src, dst);
    }

    #[test]
    #[should_panic(expected = "row range")]
    fn submatrix_out_of_range_panics() {
        let m: Matrix = Matrix::zeros(3, 3);
        let _ = m.view().submatrix(2, 0, 2, 1);
    }

    #[test]
    fn two_cols_mut_allows_column_swap() {
        let mut m = Matrix::from_fn(2, 3, |_, j| j as f64);
        let mut v = m.view_mut();
        let (a, b) = v.two_cols_mut(0, 2);
        a.swap_with_slice(b);
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(0, 2)], 0.0);
    }

    #[test]
    fn nested_submatrices_compose_offsets() {
        let m = Matrix::from_fn(6, 6, |i, j| (i * 10 + j) as f64);
        let v = m.view();
        let outer = v.submatrix(1, 1, 4, 4);
        let inner = outer.submatrix(1, 2, 2, 2);
        // inner(0,0) is global (2, 3).
        assert_eq!(inner.get(0, 0), 23.0);
        assert_eq!(inner.get(1, 1), 34.0);
        assert_eq!(inner.ld(), 6, "leading dimension survives nesting");
    }

    #[test]
    fn empty_views_are_legal() {
        let m: Matrix = Matrix::zeros(4, 4);
        let v = m.view();
        let e1 = v.submatrix(2, 2, 0, 2);
        let e2 = v.submatrix(0, 4, 4, 0);
        assert!(e1.is_empty() && e2.is_empty());
        assert_eq!(e1.rows(), 0);
        assert_eq!(e2.cols(), 0);
        assert_eq!(e1.max_abs(), 0.0);
    }

    #[test]
    fn split_at_extremes() {
        let mut m = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        // Split at 0 and at the full extent: one side empty, both valid.
        let (top, bot) = m.view_mut().split_at_row_mut(0);
        assert_eq!(top.rows(), 0);
        assert_eq!(bot.rows(), 3);
        let (l, r) = m.view_mut().split_at_col_mut(3);
        assert_eq!(l.cols(), 3);
        assert_eq!(r.cols(), 0);
    }

    #[test]
    fn from_slice_respects_leading_dimension() {
        // A 2x2 window with ld = 3 over a flat buffer of a 3x3 matrix.
        let data: Vec<f64> = (0..9).map(|x| x as f64).collect(); // col-major 3x3
        let v = super::MatView::from_slice(&data, 2, 2, 3);
        assert_eq!(v.get(0, 0), 0.0);
        assert_eq!(v.get(1, 0), 1.0);
        assert_eq!(v.get(0, 1), 3.0);
        assert_eq!(v.get(1, 1), 4.0);
    }

    #[test]
    fn to_matrix_copies_out_of_strided_view() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let sub = m.view().submatrix(1, 1, 2, 3).to_matrix();
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.cols(), 3);
        assert_eq!(sub[(0, 0)], m[(1, 1)]);
        assert_eq!(sub[(1, 2)], m[(2, 3)]);
    }
}
