//! Matrix and vector norms used by the HPL accuracy tests.
//!
//! HPL's residual checks (paper Section 6.1) need `||A||_1`, `||A||_inf`,
//! `||x||_1`, `||x||_inf` and `||r||_inf`; the growth-factor study needs
//! max-abs scans.

use crate::view::MatView;

/// `||A||_1` — maximum absolute column sum.
pub fn mat_norm_1(a: MatView<'_>) -> f64 {
    let mut best = 0.0_f64;
    for j in 0..a.cols() {
        let s: f64 = a.col(j).iter().map(|v| v.abs()).sum();
        best = best.max(s);
    }
    best
}

/// `||A||_inf` — maximum absolute row sum.
pub fn mat_norm_inf(a: MatView<'_>) -> f64 {
    let mut row_sums = vec![0.0_f64; a.rows()];
    for j in 0..a.cols() {
        for (rs, &v) in row_sums.iter_mut().zip(a.col(j)) {
            *rs += v.abs();
        }
    }
    row_sums.into_iter().fold(0.0, f64::max)
}

/// Frobenius norm, with scaling to avoid overflow.
pub fn mat_norm_fro(a: MatView<'_>) -> f64 {
    let mx = a.max_abs();
    if mx == 0.0 || !mx.is_finite() {
        return mx;
    }
    let mut s = 0.0_f64;
    for j in 0..a.cols() {
        for &v in a.col(j) {
            let t = v / mx;
            s += t * t;
        }
    }
    mx * s.sqrt()
}

/// `||x||_1`.
pub fn vec_norm_1(x: &[f64]) -> f64 {
    crate::blas1::asum(x)
}

/// `||x||_inf`.
pub fn vec_norm_inf(x: &[f64]) -> f64 {
    crate::blas1::amax(x)
}

/// `||x||_2`.
pub fn vec_norm_2(x: &[f64]) -> f64 {
    crate::blas1::nrm2(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn norms_of_known_matrix() {
        // A = [1 -2; 3 4]: ||A||_1 = max(4, 6) = 6; ||A||_inf = max(3, 7) = 7.
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(mat_norm_1(a.view()), 6.0);
        assert_eq!(mat_norm_inf(a.view()), 7.0);
        let fro = mat_norm_fro(a.view());
        assert!((fro - (30.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn inf_norm_of_transpose_equals_one_norm() {
        let a = Matrix::from_fn(7, 5, |i, j| ((i * 3 + j * 11) % 13) as f64 - 6.0);
        let at = a.transposed();
        assert!((mat_norm_1(a.view()) - mat_norm_inf(at.view())).abs() < 1e-12);
    }

    #[test]
    fn vector_norms() {
        let x = [3.0, -4.0];
        assert_eq!(vec_norm_1(&x), 7.0);
        assert_eq!(vec_norm_inf(&x), 4.0);
        assert!((vec_norm_2(&x) - 5.0).abs() < 1e-12);
    }
}
