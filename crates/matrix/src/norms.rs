//! Matrix and vector norms used by the HPL accuracy tests.
//!
//! HPL's residual checks (paper Section 6.1) need `||A||_1`, `||A||_inf`,
//! `||x||_1`, `||x||_inf` and `||r||_inf`; the growth-factor study needs
//! max-abs scans.

use crate::scalar::Scalar;
use crate::view::MatView;

/// `||A||_1` — maximum absolute column sum.
pub fn mat_norm_1<T: Scalar>(a: MatView<'_, T>) -> T {
    let mut best = T::ZERO;
    for j in 0..a.cols() {
        let s: T = a.col(j).iter().map(|v| v.abs()).sum();
        best = best.max(s);
    }
    best
}

/// `||A||_inf` — maximum absolute row sum.
pub fn mat_norm_inf<T: Scalar>(a: MatView<'_, T>) -> T {
    let mut row_sums = vec![T::ZERO; a.rows()];
    for j in 0..a.cols() {
        for (rs, &v) in row_sums.iter_mut().zip(a.col(j)) {
            *rs += v.abs();
        }
    }
    row_sums.into_iter().fold(T::ZERO, T::max)
}

/// Frobenius norm, with scaling to avoid overflow.
pub fn mat_norm_fro<T: Scalar>(a: MatView<'_, T>) -> T {
    let mx = a.max_abs();
    if mx == T::ZERO || !mx.is_finite() {
        return mx;
    }
    let mut s = T::ZERO;
    for j in 0..a.cols() {
        for &v in a.col(j) {
            let t = v / mx;
            s += t * t;
        }
    }
    mx * s.sqrt()
}

/// The three HPL accuracy residuals for a solution `x` with residual
/// `r = b − A x`, at the working precision's ε (`T::EPSILON`):
///
/// ```text
/// HPL1 = ||r||_inf / (ε ||A||_1 · N)
/// HPL2 = ||r||_inf / (ε ||A||_1 ||x||_1)
/// HPL3 = ||r||_inf / (ε ||A||_inf ||x||_inf · N)
/// ```
///
/// This is the single implementation of the gate formulas, shared by
/// `calu-stability`'s `hpl_tests` and `calu-core`'s mixed-precision
/// `ir_solve`. An exactly-zero residual reports `[0, 0, 0]` (the system
/// is solved exactly; in particular `x = b = 0` passes instead of
/// producing `0/0` NaNs).
pub fn hpl_residuals<T: Scalar>(a: MatView<'_, T>, x: &[T], r: &[T]) -> [f64; 3] {
    hpl_residuals_from_norms(
        a.rows(),
        vec_norm_inf(r).to_f64(),
        mat_norm_1(a).to_f64(),
        mat_norm_inf(a).to_f64(),
        vec_norm_1(x).to_f64(),
        vec_norm_inf(x).to_f64(),
        T::EPSILON.to_f64(),
    )
}

/// [`hpl_residuals`] from already-computed norms, for callers that
/// evaluate the gate repeatedly against a fixed matrix (iterative
/// refinement): `||A||_1`/`||A||_inf` are `O(n²)` scans worth hoisting
/// out of an `O(n²)`-per-step loop.
pub fn hpl_residuals_from_norms(
    n: usize,
    r_inf: f64,
    a_1: f64,
    a_inf: f64,
    x_1: f64,
    x_inf: f64,
    eps: f64,
) -> [f64; 3] {
    if r_inf == 0.0 {
        return [0.0; 3];
    }
    let nf = n as f64;
    [r_inf / (eps * a_1 * nf), r_inf / (eps * a_1 * x_1), r_inf / (eps * a_inf * x_inf * nf)]
}

/// `||x||_1`.
pub fn vec_norm_1<T: Scalar>(x: &[T]) -> T {
    crate::blas1::asum(x)
}

/// `||x||_inf`.
pub fn vec_norm_inf<T: Scalar>(x: &[T]) -> T {
    crate::blas1::amax(x)
}

/// `||x||_2`.
pub fn vec_norm_2<T: Scalar>(x: &[T]) -> T {
    crate::blas1::nrm2(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn norms_of_known_matrix() {
        // A = [1 -2; 3 4]: ||A||_1 = max(4, 6) = 6; ||A||_inf = max(3, 7) = 7.
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(mat_norm_1(a.view()), 6.0);
        assert_eq!(mat_norm_inf(a.view()), 7.0);
        let fro = mat_norm_fro(a.view());
        assert!((fro - (30.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn inf_norm_of_transpose_equals_one_norm() {
        let a = Matrix::from_fn(7, 5, |i, j| ((i * 3 + j * 11) % 13) as f64 - 6.0);
        let at = a.transposed();
        assert!((mat_norm_1(a.view()) - mat_norm_inf(at.view())).abs() < 1e-12);
    }

    #[test]
    fn vector_norms() {
        let x = [3.0, -4.0];
        assert_eq!(vec_norm_1(&x), 7.0);
        assert_eq!(vec_norm_inf(&x), 4.0);
        assert!((vec_norm_2(&x) - 5.0).abs() < 1e-12);
    }
}
