//! Level-1 kernels (vector-vector), matching BLAS semantics where a BLAS
//! routine of the same name exists. Generic over [`Scalar`] (`IDAMAX`
//! becomes `ISAMAX` at `T = f32`, and so on).

use crate::scalar::Scalar;

/// Index of the first element of maximum absolute value (BLAS `IDAMAX`
/// semantics: ties resolve to the smallest index; NaNs are ignored unless
/// every entry is NaN, in which case 0 is returned).
///
/// # Panics
/// If `x` is empty.
pub fn iamax<T: Scalar>(x: &[T]) -> usize {
    assert!(!x.is_empty(), "iamax of empty vector");
    let mut best_i = 0;
    let mut best = T::NEG_INFINITY;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        if a > best {
            best = a;
            best_i = i;
        }
    }
    best_i
}

/// `y += alpha * x` (BLAS `DAXPY`).
///
/// # Panics
/// If lengths differ.
#[inline]
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    if alpha == T::ZERO {
        return;
    }
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` (BLAS `DSCAL`).
#[inline]
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Dot product (BLAS `DDOT`).
///
/// # Panics
/// If lengths differ.
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Euclidean norm (BLAS `DNRM2`), with scaling to avoid overflow.
pub fn nrm2<T: Scalar>(x: &[T]) -> T {
    let mx = x.iter().fold(T::ZERO, |m, &v| m.max(v.abs()));
    if mx == T::ZERO || !mx.is_finite() {
        return mx;
    }
    let s: T = x.iter().map(|&v| (v / mx) * (v / mx)).sum();
    mx * s.sqrt()
}

/// Sum of absolute values (BLAS `DASUM`).
#[inline]
pub fn asum<T: Scalar>(x: &[T]) -> T {
    x.iter().map(|v| v.abs()).sum()
}

/// Maximum absolute value of a vector (the `inf`-norm); 0 when empty.
#[inline]
pub fn amax<T: Scalar>(x: &[T]) -> T {
    x.iter().fold(T::ZERO, |m, &v| m.max(v.abs()))
}

/// Swap two vectors elementwise (BLAS `DSWAP`).
///
/// # Panics
/// If lengths differ.
#[inline]
pub fn swap<T: Scalar>(x: &mut [T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "swap length mismatch");
    x.swap_with_slice(y);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iamax_first_max_wins() {
        assert_eq!(iamax(&[1.0, -3.0, 3.0, 2.0]), 1);
        assert_eq!(iamax(&[0.0]), 0);
        assert_eq!(iamax(&[-1.0, 1.0]), 0);
    }

    #[test]
    fn iamax_ignores_nan_unless_all_nan() {
        assert_eq!(iamax(&[f64::NAN, 2.0, 1.0]), 1);
        assert_eq!(iamax(&[f64::NAN, f64::NAN]), 0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn nrm2_is_scale_safe() {
        let big = 1e200;
        let x = [3.0 * big, 4.0 * big];
        assert!((nrm2(&x) - 5.0 * big).abs() < 1e186);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn dot_scal_asum_amax_basic() {
        let mut x = vec![1.0, -2.0, 3.0];
        assert_eq!(dot(&x, &[2.0, 1.0, 0.0]), 0.0);
        assert_eq!(asum(&x), 6.0);
        assert_eq!(amax(&x), 3.0);
        scal(-1.0, &mut x);
        assert_eq!(x, vec![-1.0, 2.0, -3.0]);
    }
}
