//! Matrix inverse from packed LU factors (`DGETRI`) and the triangular
//! inverse it builds on (`DTRTI2`).
//!
//! `CALU` consumers want `A^{-1}` occasionally (explicit preconditioners,
//! covariance updates); computing it from the already-available factors
//! costs `~4/3 n³` flops instead of re-solving `n` systems.

use crate::blas1::scal;
use crate::blas2::{gemv, trmv};
use crate::error::{Error, Result};
use crate::scalar::Scalar;
use crate::view::MatViewMut;
use crate::{Diag, Uplo};

/// Inverts an upper triangular matrix in place (`DTRTI2`, unblocked).
/// Entries below the diagonal are not referenced.
///
/// # Errors
/// [`Error::SingularPivot`] at the first zero diagonal entry.
///
/// # Panics
/// If `a` is not square.
pub fn trtri_upper<T: Scalar>(mut a: MatViewMut<'_, T>, diag: Diag) -> Result<()> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "trtri_upper: A must be square");
    for j in 0..n {
        let ajj = match diag {
            Diag::NonUnit => {
                let d = a.get(j, j);
                if d == T::ZERO || !d.is_finite() {
                    return Err(Error::SingularPivot { step: j });
                }
                let inv = d.recip();
                a.set(j, j, inv);
                -inv
            }
            Diag::Unit => -T::ONE,
        };
        // a[0..j, j] := ajj * U(0..j, 0..j) * a[0..j, j], with the leading
        // block already inverted (DTRTI2's column sweep).
        if j > 0 {
            let (lead, rest) = a.rb_mut().split_at_col_mut(j);
            let mut cj = rest.into_submatrix(0, 0, j, 1);
            let col = cj.col_mut(0);
            trmv(Uplo::Upper, diag, lead.submatrix(0, 0, j, j), col);
            scal(ajj, col);
        }
    }
    Ok(())
}

/// Computes `A^{-1}` in place from the packed `L\U` factors and pivots of
/// `A = P L U` (as produced by `getf2`/`rgetf2`/`getrf`) — `DGETRI`.
///
/// # Errors
/// [`Error::SingularPivot`] if `U` has a zero diagonal entry.
///
/// # Panics
/// If `a` is not square or `ipiv.len() != n`.
pub fn getri<T: Scalar>(mut a: MatViewMut<'_, T>, ipiv: &[usize]) -> Result<()> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "getri: A must be square");
    assert_eq!(ipiv.len(), n, "getri: ipiv length must be n");
    if n == 0 {
        return Ok(());
    }

    // Step 1: U := U^{-1} in place.
    trtri_upper(a.rb_mut(), Diag::NonUnit)?;

    // Step 2: solve A^{-1} L = U^{-1} by sweeping columns right to left:
    // save L's subdiagonal column j, zero it, and subtract the trailing
    // columns' contribution (DGETRI's gemv sweep).
    let mut work = vec![T::ZERO; n];
    for j in (0..n.saturating_sub(1)).rev() {
        let tail = n - j - 1;
        {
            let cj = a.col_mut(j);
            work[..tail].copy_from_slice(&cj[j + 1..]);
            for v in &mut cj[j + 1..] {
                *v = T::ZERO;
            }
        }
        // a[:, j] -= a[:, j+1..n] * work  (full-height gemv).
        let (left, right) = a.rb_mut().split_at_col_mut(j + 1);
        let mut left = left;
        gemv(-T::ONE, right.as_view(), &work[..tail], T::ONE, left.col_mut(j));
    }

    // Step 3: apply the row interchanges as *column* swaps in reverse
    // (A^{-1} = (P L U)^{-1} = U^{-1} L^{-1} P^T).
    for j in (0..n).rev() {
        let p = ipiv[j];
        if p != j {
            let (c1, c2) = a.two_cols_mut(j, p);
            c1.swap_with_slice(c2);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm;
    use crate::gen;
    use crate::lapack::{getrf, GetrfOpts};
    use crate::{Matrix, NoObs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn invert(a: &Matrix) -> Matrix {
        let n = a.rows();
        let mut lu = a.clone();
        let mut ipiv = vec![0usize; n];
        getrf(lu.view_mut(), &mut ipiv, GetrfOpts::default(), &mut NoObs).unwrap();
        getri(lu.view_mut(), &ipiv).unwrap();
        lu
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let inv = invert(&Matrix::identity(6));
        assert!(inv.max_abs_diff(&Matrix::identity(6)) < 1e-14);
    }

    #[test]
    fn inverse_of_known_2x2() {
        // A = [1 2; 3 4], A^{-1} = [-2 1; 1.5 -0.5].
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let inv = invert(&a);
        let want = Matrix::from_rows(&[&[-2.0, 1.0], &[1.5, -0.5]]);
        assert!(inv.max_abs_diff(&want) < 1e-13, "{inv:?}");
    }

    #[test]
    fn a_times_inverse_is_identity() {
        let mut rng = StdRng::seed_from_u64(231);
        for &n in &[1usize, 2, 5, 16, 33, 64] {
            let a = gen::randn(&mut rng, n, n);
            let inv = invert(&a);
            let mut prod = Matrix::zeros(n, n);
            gemm(1.0, a.view(), inv.view(), 0.0, prod.view_mut());
            let d = prod.max_abs_diff(&Matrix::identity(n));
            assert!(d < 1e-9 * (n.max(4) as f64), "n={n}: ||A A^-1 - I|| = {d}");
        }
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let mut rng = StdRng::seed_from_u64(232);
        let n = 40;
        let a = gen::diag_dominant(&mut rng, n);
        let inv = invert(&a);
        let mut prod = Matrix::zeros(n, n);
        gemm(1.0, inv.view(), a.view(), 0.0, prod.view_mut());
        assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-10);
    }

    #[test]
    fn trtri_inverts_triangle() {
        let u = Matrix::from_rows(&[&[2.0, 1.0, 0.5], &[0.0, 4.0, -1.0], &[0.0, 0.0, 8.0]]);
        let mut inv = u.clone();
        trtri_upper(inv.view_mut(), Diag::NonUnit).unwrap();
        // U * U^{-1} on the upper triangle = I.
        let mut prod = Matrix::zeros(3, 3);
        gemm(1.0, u.view(), inv.upper().view(), 0.0, prod.view_mut());
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-13);
    }

    #[test]
    fn trtri_reports_zero_diagonal() {
        let mut u = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 0.0]]);
        let err = trtri_upper(u.view_mut(), Diag::NonUnit).unwrap_err();
        assert_eq!(err, Error::SingularPivot { step: 1 });
    }

    #[test]
    fn getri_singular_factors_error() {
        // LU of a singular matrix has a zero on U's diagonal; getri must
        // refuse rather than divide by zero.
        let mut lu = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, 0.0]]);
        let err = getri(lu.view_mut(), &[0, 1]).unwrap_err();
        assert!(matches!(err, Error::SingularPivot { step: 1 }));
    }
}
