//! LAPACK-style dense factorizations.
//!
//! * [`getf2`] — classic unblocked LU with partial pivoting (the paper's
//!   `DGETF2`; BLAS-2 bound).
//! * [`rgetf2`] — recursive LU (the paper's `RGETF2`, Gustavson 1997 /
//!   Toledo 1997; BLAS-3 rich). Tables 3-4 compare TSLU built on each.
//! * [`getrf`] — blocked right-looking LU with partial pivoting; the GEPP
//!   baseline whose parallel analogue is ScaLAPACK's `PDGETRF`.
//! * [`lu_nopiv`] — LU with **no** pivoting; CALU applies it to the panel
//!   after tournament pivoting has permuted the winners on top.
//! * [`getrs`] / [`getrs_t`] — triangular solves from the packed factors.
//! * [`getri`] — explicit inverse from the packed factors.
//! * [`gecon`] — Hager-Higham reciprocal condition estimate.
//! * [`geequ`] / [`laqge`] — row/column equilibration.
//!
//! All factorizations overwrite their input with the packed `L\U` factors
//! (unit lower triangle implicit) and accept a
//! [`PivotObserver`](crate::observer::PivotObserver) for the stability
//! instrumentation.

mod gecon;
mod geequ;
mod getf2;
mod getrf;
mod getri;
mod getrs;
mod lu_nopiv;
mod rgetf2;

pub use gecon::{gecon, inv_norm1_est};
pub use geequ::{geequ, laqge, unscale_solution, Equilibration};
pub use getf2::{getf2, getf2_info};
pub use getrf::{getrf, GetrfOpts, PanelAlg};
pub use getri::{getri, trtri_upper};
pub use getrs::{getrs, getrs_mat, getrs_t};
pub use lu_nopiv::{lu_nopiv, lu_nopiv_blocked};
pub use rgetf2::{rgetf2, rgetf2_info};
