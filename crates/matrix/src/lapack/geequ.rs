//! Row/column equilibration (`DGEEQU` + `DLAQGE`): diagonal scalings that
//! bring every row and column's largest entry near 1.
//!
//! Badly scaled inputs inflate the growth factor artificially; HPL-style
//! drivers equilibrate first so the pivoting study measures the algorithm,
//! not the units the user happened to pick.

use crate::error::{Error, Result};
use crate::scalar::Scalar;
use crate::view::{MatView, MatViewMut};

/// Equilibration scalings for a matrix: `diag(r) * A * diag(c)` has rows
/// and columns with unit max-entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibration<T = f64> {
    /// Row scale factors `r` (length `m`).
    pub r: Vec<T>,
    /// Column scale factors `c` (length `n`).
    pub c: Vec<T>,
    /// `min_i max_j |a_ij| r_i` over `max_i ...` — LAPACK's `ROWCND`;
    /// near 1 means rows were already balanced.
    pub rowcnd: T,
    /// Same for columns (`COLCND`).
    pub colcnd: T,
    /// `max |a_ij|` of the input.
    pub amax: T,
}

impl<T: Scalar> Equilibration<T> {
    /// LAPACK's heuristic for whether row scaling is worth applying
    /// (`ROWCND < 0.1` in `DGESVX`).
    pub fn rows_need_scaling(&self) -> bool {
        self.rowcnd < T::from_f64(0.1)
    }

    /// Same heuristic for columns.
    pub fn cols_need_scaling(&self) -> bool {
        self.colcnd < T::from_f64(0.1)
    }
}

/// Computes equilibration scalings (`DGEEQU`).
///
/// # Errors
/// [`Error::SingularPivot`] naming the first identically-zero row or
/// column (such a matrix is exactly singular; LAPACK reports it in `INFO`).
pub fn geequ<T: Scalar>(a: MatView<'_, T>) -> Result<Equilibration<T>> {
    let (m, n) = (a.rows(), a.cols());
    let mut r = vec![T::ZERO; m];
    let mut c = vec![T::ZERO; n];
    let mut amax = T::ZERO;

    for j in 0..n {
        for (i, &v) in a.col(j).iter().enumerate() {
            let av = v.abs();
            if av > r[i] {
                r[i] = av;
            }
            if av > amax {
                amax = av;
            }
        }
    }
    let (mut rmin, mut rmax) = (T::INFINITY, T::ZERO);
    for (i, ri) in r.iter_mut().enumerate() {
        if *ri == T::ZERO {
            return Err(Error::SingularPivot { step: i });
        }
        rmin = rmin.min(*ri);
        rmax = rmax.max(*ri);
        *ri = ri.recip();
    }
    let rowcnd = rmin / rmax;

    for (j, cj) in c.iter_mut().enumerate() {
        let mut best = T::ZERO;
        for (i, &v) in a.col(j).iter().enumerate() {
            let scaled = v.abs() * r[i];
            if scaled > best {
                best = scaled;
            }
        }
        if best == T::ZERO {
            return Err(Error::SingularPivot { step: j });
        }
        *cj = best.recip();
    }
    let cmin = c.iter().copied().fold(T::INFINITY, T::min);
    let cmax = c.iter().copied().fold(T::ZERO, T::max);
    // c holds reciprocals, so COLCND = min(1/c) / max(1/c) = cmin/cmax
    // inverted: min over max of the *scaled column maxima*.
    let colcnd = cmax.recip() / cmin.recip();

    Ok(Equilibration { r, c, rowcnd, colcnd, amax })
}

/// Applies the scalings in place: `A := diag(r) * A * diag(c)` (`DLAQGE`,
/// unconditional form).
///
/// # Panics
/// If the scale vectors don't match `A`'s shape.
pub fn laqge<T: Scalar>(mut a: MatViewMut<'_, T>, eq: &Equilibration<T>) {
    assert_eq!(eq.r.len(), a.rows(), "laqge: row scale length");
    assert_eq!(eq.c.len(), a.cols(), "laqge: col scale length");
    for j in 0..a.cols() {
        let cj = eq.c[j];
        for (v, &ri) in a.col_mut(j).iter_mut().zip(&eq.r) {
            *v *= ri * cj;
        }
    }
}

/// Undoes equilibration on a solution vector: if `(diag(r) A diag(c)) y =
/// diag(r) b` was solved, then `x = diag(c) y` solves `A x = b`.
pub fn unscale_solution<T: Scalar>(x: &mut [T], eq: &Equilibration<T>) {
    assert_eq!(x.len(), eq.c.len(), "unscale: length mismatch");
    for (xi, &ci) in x.iter_mut().zip(&eq.c) {
        *xi *= ci;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::lapack::{getrf, getrs, GetrfOpts};
    use crate::{Matrix, NoObs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn equilibrated_matrix_has_unit_row_and_col_maxima() {
        let mut rng = StdRng::seed_from_u64(251);
        // Wildly scaled: row i multiplied by 10^(i-3), col j by 10^(2j).
        let mut a: Matrix = gen::randn(&mut rng, 6, 5);
        for i in 0..6 {
            for j in 0..5 {
                a[(i, j)] *= 10.0_f64.powi(i as i32 - 3) * 10.0_f64.powi(2 * j as i32);
            }
        }
        let eq = geequ(a.view()).unwrap();
        let mut s = a.clone();
        laqge(s.view_mut(), &eq);
        // Every row max and column max is in (0, 1].
        for j in 0..5 {
            let cmax = s.col(j).iter().fold(0.0_f64, |m, v| m.max(v.abs()));
            assert!(cmax <= 1.0 + 1e-12 && cmax > 0.0, "col {j} max {cmax}");
        }
        for i in 0..6 {
            let rmax = (0..5).map(|j| s[(i, j)].abs()).fold(0.0_f64, f64::max);
            assert!(rmax <= 1.0 + 1e-12 && rmax > 0.1, "row {i} max {rmax}");
        }
    }

    #[test]
    fn balanced_matrix_reports_good_cnd() {
        let mut rng = StdRng::seed_from_u64(252);
        let a: Matrix = gen::uniform(&mut rng, 20, 20, 0.5, 2.0);
        let eq = geequ(a.view()).unwrap();
        assert!(eq.rowcnd > 0.1, "rowcnd {}", eq.rowcnd);
        assert!(eq.colcnd > 0.1, "colcnd {}", eq.colcnd);
        assert!(!eq.rows_need_scaling());
        assert!(!eq.cols_need_scaling());
    }

    #[test]
    fn skewed_matrix_reports_bad_cnd() {
        let mut a = Matrix::identity(4);
        a[(0, 0)] = 1e8;
        let eq = geequ(a.view()).unwrap();
        assert!(eq.rows_need_scaling());
        assert!((eq.amax - 1e8).abs() < 1.0);
    }

    #[test]
    fn zero_row_is_an_error() {
        let mut a = Matrix::identity(3);
        a[(1, 1)] = 0.0;
        let err = geequ(a.view()).unwrap_err();
        assert_eq!(err, Error::SingularPivot { step: 1 });
    }

    #[test]
    fn scaled_solve_recovers_unscaled_solution() {
        let mut rng = StdRng::seed_from_u64(253);
        let n = 24;
        let mut a = gen::diag_dominant(&mut rng, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] *= 10.0_f64.powi((i % 5) as i32 - 2);
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let b = gen::rhs_for_solution(&a, &x_true);

        let eq = geequ(a.view()).unwrap();
        let mut s = a.clone();
        laqge(s.view_mut(), &eq);
        // Scale the rhs by r, solve, unscale by c.
        let mut bs: Vec<f64> = b.iter().zip(&eq.r).map(|(bi, ri)| bi * ri).collect();
        let mut ipiv = vec![0usize; n];
        getrf(s.view_mut(), &mut ipiv, GetrfOpts::default(), &mut NoObs).unwrap();
        getrs(s.view(), &ipiv, &mut bs);
        unscale_solution(&mut bs, &eq);
        for (got, want) in bs.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }
}
