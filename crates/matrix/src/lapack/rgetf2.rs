//! Recursive LU with partial pivoting (`RGETF2`, Gustavson 1997 /
//! Toledo 1997 — reference [6, 9] in the paper).
//!
//! The recursion turns almost all of the panel work into `trsm`/`gemm`
//! (BLAS-3), which is why the paper's TSLU-with-recursive-local-LU wins big
//! on large matrices (Tables 3-4) while classic `getf2` stays memory bound.

use crate::blas3::{gemm, trsm};
use crate::error::Result;
use crate::observer::PivotObserver;
use crate::perm::apply_ipiv;
use crate::scalar::Scalar;
use crate::view::MatViewMut;
use crate::{Diag, Side, Uplo};

/// Width at which recursion bottoms out into classic `getf2`.
const BASE_WIDTH: usize = 4;

/// Factors a tall matrix (`m >= n`) as `A = P * L * U` in place using the
/// recursive algorithm; same output convention as
/// [`getf2`](crate::lapack::getf2).
///
/// # Errors
/// [`Error::SingularPivot`](crate::Error::SingularPivot) as for `getf2`.
/// The factorization runs to completion before the error is reported.
///
/// # Panics
/// If `m < n` (panels in LU are always tall) or `ipiv.len() != n`.
pub fn rgetf2<T: Scalar, O: PivotObserver<T>>(
    a: MatViewMut<'_, T>,
    ipiv: &mut [usize],
    obs: &mut O,
) -> Result<()> {
    match rgetf2_info(a, ipiv, obs) {
        None => Ok(()),
        Some(step) => Err(crate::Error::SingularPivot { step }),
    }
}

/// LAPACK-faithful recursive LU: like [`rgetf2`] but never fails; returns
/// the first exactly-singular elimination step (`DGETF2`'s `INFO`), if any.
///
/// Exact zero pivots are benign throughout the recursion: `L11` is unit
/// lower triangular so the `trsm` never divides by a `U` diagonal, and the
/// base case is [`getf2_info`](crate::lapack::getf2_info).
///
/// # Panics
/// If `m < n` (panels in LU are always tall) or `ipiv.len() != n`.
pub fn rgetf2_info<T: Scalar, O: PivotObserver<T>>(
    mut a: MatViewMut<'_, T>,
    ipiv: &mut [usize],
    obs: &mut O,
) -> Option<usize> {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "rgetf2 requires a tall matrix (m >= n), got {m}x{n}");
    assert_eq!(ipiv.len(), n, "rgetf2: ipiv length must be n");
    if n == 0 {
        return None;
    }
    if n <= BASE_WIDTH {
        return crate::lapack::getf2_info(a, ipiv, obs);
    }

    let n1 = n / 2;
    let n2 = n - n1;

    // Factor the left half A[:, :n1] recursively (full height).
    let left_info = {
        let left = a.submatrix_mut(0, 0, m, n1);
        rgetf2_info(left, &mut ipiv[..n1], obs)
    };

    // Apply the left half's swaps to the right half, then split.
    {
        let right = a.submatrix_mut(0, n1, m, n2);
        apply_ipiv(right, &ipiv[..n1]);
    }

    // U12 = L11^{-1} A12.
    {
        let (left, right) = a.rb_mut().split_at_col_mut(n1);
        let (mut r_top, mut r_bot) = right.split_at_row_mut(n1);
        let l11 = left.submatrix(0, 0, n1, n1);
        trsm(Side::Left, Uplo::Lower, Diag::Unit, T::ONE, l11, r_top.rb_mut());

        // A22 -= L21 * U12.
        let l21 = left.submatrix(n1, 0, m - n1, n1);
        gemm(-T::ONE, l21, r_top.as_view(), T::ONE, r_bot.rb_mut());
        obs.on_stage(&r_bot.as_view());
    }

    // Factor the trailing block recursively.
    let right_info = {
        let trailing = a.submatrix_mut(n1, n1, m - n1, n2);
        rgetf2_info(trailing, &mut ipiv[n1..], obs)
    };

    // The trailing factorization's swaps are local to rows n1..m; apply them
    // to the left block rows and rebase the indices.
    {
        let left_lower = a.submatrix_mut(n1, 0, m - n1, n1);
        apply_ipiv(left_lower, &ipiv[n1..]);
    }
    for p in ipiv[n1..].iter_mut() {
        *p += n1;
    }
    left_info.or(right_info.map(|s| s + n1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::lapack::getf2;
    use crate::{Matrix, NoObs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_plu(orig: &Matrix, lu: &Matrix, ipiv: &[usize], tol: f64) {
        let perm = crate::perm::ipiv_to_perm(ipiv, orig.rows());
        let pa = crate::perm::permute_rows(orig, &perm);
        let l = lu.unit_lower();
        let u = lu.upper();
        let mut prod = Matrix::zeros(orig.rows(), orig.cols());
        gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
        let d = pa.max_abs_diff(&prod);
        assert!(d < tol, "||P A - L U||_max = {d} > {tol}");
    }

    #[test]
    fn reconstructs_random_tall_panels() {
        let mut rng = StdRng::seed_from_u64(21);
        for &(m, n) in &[(4, 4), (16, 16), (100, 32), (57, 50), (200, 150), (64, 1)] {
            let a0 = gen::randn(&mut rng, m, n);
            let mut a = a0.clone();
            let mut ipiv = vec![0; n];
            rgetf2(a.view_mut(), &mut ipiv, &mut NoObs).unwrap();
            check_plu(&a0, &a, &ipiv, 1e-9 * (m as f64));
        }
    }

    #[test]
    fn identical_pivots_to_classic_getf2() {
        // Partial pivoting is deterministic: the recursive algorithm must
        // choose exactly the same pivot rows as the classic one.
        let mut rng = StdRng::seed_from_u64(22);
        for &(m, n) in &[(30, 8), (64, 33), (128, 50)] {
            let a0: Matrix = gen::randn(&mut rng, m, n);
            let mut a_c = a0.clone();
            let mut a_r = a0.clone();
            let mut ip_c = vec![0; n];
            let mut ip_r = vec![0; n];
            getf2(a_c.view_mut(), &mut ip_c, &mut NoObs).unwrap();
            rgetf2(a_r.view_mut(), &mut ip_r, &mut NoObs).unwrap();
            assert_eq!(ip_c, ip_r, "pivot sequences differ at {m}x{n}");
            assert!(a_c.max_abs_diff(&a_r) < 1e-10, "factors differ at {m}x{n}");
        }
    }

    #[test]
    fn base_case_width_one() {
        let mut rng = StdRng::seed_from_u64(23);
        let a0 = gen::randn(&mut rng, 10, 1);
        let mut a = a0.clone();
        let mut ipiv = vec![0; 1];
        rgetf2(a.view_mut(), &mut ipiv, &mut NoObs).unwrap();
        check_plu(&a0, &a, &ipiv, 1e-12);
    }

    #[test]
    #[should_panic(expected = "tall matrix")]
    fn wide_input_panics() {
        let mut a: Matrix = Matrix::zeros(3, 5);
        let mut ipiv = vec![0; 5];
        let _ = rgetf2(a.view_mut(), &mut ipiv, &mut NoObs);
    }
}
