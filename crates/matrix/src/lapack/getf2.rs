//! Classic unblocked LU with partial pivoting (`DGETF2`).

use crate::blas1::{iamax, scal};
use crate::blas2::ger;
use crate::error::{Error, Result};
use crate::observer::PivotObserver;
use crate::scalar::Scalar;
use crate::view::MatViewMut;

/// Factors `A = P * L * U` in place with partial pivoting, one column at a
/// time (rank-1 updates; BLAS-2 bound — this is the paper's `DGETF2`).
///
/// On success `a` holds the packed factors (`L` strictly below the diagonal
/// with implicit unit diagonal, `U` on and above) and `ipiv[j]` records the
/// row swapped with row `j` (LAPACK transposition convention, indices local
/// to the view).
///
/// # Errors
/// [`Error::SingularPivot`] if a column's maximum is zero or non-finite.
/// Like LAPACK, the factorization still runs to completion before the
/// error is reported, so `a` holds valid factors for the leading
/// non-singular part.
///
/// # Panics
/// If `ipiv.len() != min(m, n)`.
pub fn getf2<T: Scalar, O: PivotObserver<T>>(
    a: MatViewMut<'_, T>,
    ipiv: &mut [usize],
    obs: &mut O,
) -> Result<()> {
    match getf2_info(a, ipiv, obs) {
        None => Ok(()),
        Some(step) => Err(Error::SingularPivot { step }),
    }
}

/// LAPACK-faithful `DGETF2`: identical to [`getf2`] but never fails.
///
/// When a column's remaining maximum is exactly zero the step records the
/// pivot position, skips the (vacuous) elimination and continues — exactly
/// `DGETF2`'s `INFO > 0` path. Returns the first such step, if any. Exact
/// singularity of a *candidate block* is harmless in tournament pivoting
/// (the winners still span the block's row space), which is why the
/// tournament uses this variant and only the final no-pivot panel
/// factorization enforces non-singularity.
pub fn getf2_info<T: Scalar, O: PivotObserver<T>>(
    mut a: MatViewMut<'_, T>,
    ipiv: &mut [usize],
    obs: &mut O,
) -> Option<usize> {
    let (m, n) = (a.rows(), a.cols());
    let kn = m.min(n);
    assert_eq!(ipiv.len(), kn, "getf2: ipiv length must be min(m,n)");
    if kn == 0 {
        return None;
    }
    let mut info = None;
    // Scratch for the U row gathered once per step (rows are strided).
    let mut urow = vec![T::ZERO; n.saturating_sub(1)];

    #[allow(clippy::needless_range_loop)] // LAPACK-style column sweep
    for j in 0..kn {
        let p = j + iamax(&a.col(j)[j..]);
        let col_max = a.get(p, j).abs();
        // Partial pivoting uses the column max itself as pivot.
        obs.on_pivot(j, col_max, col_max);
        ipiv[j] = p;
        if col_max == T::ZERO || !col_max.is_finite() {
            info = info.or(Some(j));
        }
        // When col_max == 0 the whole remaining column is zero: the
        // elimination is skipped (DGETF2 does the same) and the rank-1
        // update would be a no-op, so it is skipped too.
        let eliminate = col_max != T::ZERO;
        if eliminate {
            if p != j {
                a.swap_rows(j, p);
            }
            let inv = a.get(j, j).recip();
            scal(inv, &mut a.col_mut(j)[j + 1..]);
            obs.on_multipliers(&a.col(j)[j + 1..]);
        }

        if j + 1 < m && j + 1 < n {
            // Trailing rank-1 update A[j+1.., j+1..] -= l * u_row.
            let width = n - j - 1;
            for (t, jj) in urow.iter_mut().zip(j + 1..n) {
                *t = a.get(j, jj);
            }
            let (left, mut right) = a.rb_mut().split_at_col_mut(j + 1);
            let l_col = &left.col(j)[j + 1..];
            let trailing = right.submatrix_mut(j + 1, 0, m - j - 1, width);
            if eliminate {
                ger(-T::ONE, l_col, &urow[..width], trailing);
            }
            obs.on_stage(&right.submatrix(j + 1, 0, m - j - 1, width));
        }
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm;
    use crate::gen;
    use crate::perm::{apply_ipiv, ipiv_to_perm, permute_rows};
    use crate::{Matrix, NoObs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reconstruction check: P*A == L*U within tolerance.
    pub(crate) fn check_plu(orig: &Matrix, lu: &Matrix, ipiv: &[usize], tol: f64) {
        let perm = ipiv_to_perm(ipiv, orig.rows());
        // Extend perm to all rows (ipiv covers only min(m,n) swaps).
        let pa = permute_rows(orig, &perm);
        let l = lu.unit_lower();
        let u = lu.upper();
        let mut prod = Matrix::zeros(orig.rows(), orig.cols());
        gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
        let d = pa.max_abs_diff(&prod);
        assert!(d < tol, "||P A - L U||_max = {d} > {tol}");
    }

    #[test]
    fn factors_known_2x2() {
        // A = [1 3; 2 4] -> pivot row 1: P A = [2 4; 1 3], l21 = 0.5, u22 = 1.
        let mut a = Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]);
        let orig = a.clone();
        let mut ipiv = vec![0; 2];
        getf2(a.view_mut(), &mut ipiv, &mut NoObs).unwrap();
        assert_eq!(ipiv, vec![1, 1]);
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a[(0, 1)], 4.0);
        assert_eq!(a[(1, 0)], 0.5);
        assert_eq!(a[(1, 1)], 1.0);
        check_plu(&orig, &a, &ipiv, 1e-14);
    }

    #[test]
    fn reconstructs_random_square_and_tall() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, n) in &[(1, 1), (5, 5), (8, 3), (40, 40), (64, 17), (33, 32)] {
            let a0 = gen::randn(&mut rng, m, n);
            let mut a = a0.clone();
            let mut ipiv = vec![0; m.min(n)];
            getf2(a.view_mut(), &mut ipiv, &mut NoObs).unwrap();
            check_plu(&a0, &a, &ipiv, 1e-10 * (m.max(n) as f64));
        }
    }

    #[test]
    fn multipliers_bounded_by_one() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut a: Matrix = gen::randn(&mut rng, 50, 20);
        let mut ipiv = vec![0; 20];
        getf2(a.view_mut(), &mut ipiv, &mut NoObs).unwrap();
        let l = a.unit_lower();
        for j in 0..l.cols() {
            for i in j + 1..l.rows() {
                assert!(l[(i, j)].abs() <= 1.0 + 1e-15, "|L| must be <= 1 under partial pivoting");
            }
        }
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0; // second column is identically zero after step 0
        let mut ipiv = vec![0; 3];
        let err = getf2(a.view_mut(), &mut ipiv, &mut NoObs).unwrap_err();
        assert!(matches!(err, crate::Error::SingularPivot { .. }));
    }

    #[test]
    fn swaps_applied_in_lapack_order() {
        // Applying ipiv to the original matrix must match the permuted
        // matrix the factorization worked on.
        let mut rng = StdRng::seed_from_u64(13);
        let a0 = gen::randn(&mut rng, 12, 4);
        let mut a = a0.clone();
        let mut ipiv = vec![0; 4];
        getf2(a.view_mut(), &mut ipiv, &mut NoObs).unwrap();
        let mut pa = a0.clone();
        apply_ipiv(pa.view_mut(), &ipiv);
        // First column of PA equals first column of L*U (l * u11).
        let l = a.unit_lower();
        let u = a.upper();
        let mut lu = Matrix::zeros(12, 4);
        gemm(1.0, l.view(), u.view(), 0.0, lu.view_mut());
        assert!(pa.max_abs_diff(&lu) < 1e-12);
    }
}
