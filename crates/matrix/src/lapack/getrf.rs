//! Blocked right-looking LU with partial pivoting (`DGETRF`) — the GEPP
//! baseline. Its distributed analogue is ScaLAPACK's `PDGETRF`, which the
//! paper compares CALU against.

use crate::blas3::{gemm, par_gemm, trsm};
use crate::error::Result;
use crate::observer::PivotObserver;
use crate::perm::apply_ipiv;
use crate::scalar::Scalar;
use crate::view::MatViewMut;
use crate::{Diag, Side, Uplo};

/// Which algorithm factors each panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelAlg {
    /// Classic unblocked `getf2` (the paper's `DGETF2`).
    Classic,
    /// Recursive `rgetf2` (the paper's `RGETF2`).
    Recursive,
}

/// Options for [`getrf`].
#[derive(Debug, Clone, Copy)]
pub struct GetrfOpts {
    /// Panel width `b` (the paper sweeps 50/100/150; default 64).
    pub block: usize,
    /// Panel factorization algorithm.
    pub panel: PanelAlg,
    /// Run the trailing `gemm` on the rayon pool.
    pub parallel: bool,
}

impl Default for GetrfOpts {
    fn default() -> Self {
        Self { block: 64, panel: PanelAlg::Classic, parallel: false }
    }
}

/// Factors `A = P * L * U` in place with partial pivoting using a blocked
/// right-looking sweep: panel factorization, pivot application to both
/// sides, `trsm` for the `U` block row, `gemm` for the trailing update —
/// the same structure `PDGETRF` uses in parallel.
///
/// `ipiv` must have length `min(m, n)`; entries are absolute row indices in
/// LAPACK transposition convention.
///
/// # Errors
/// [`Error::SingularPivot`](crate::Error::SingularPivot) from the panel
/// factorization (step index made absolute).
pub fn getrf<T: Scalar, O: PivotObserver<T>>(
    mut a: MatViewMut<'_, T>,
    ipiv: &mut [usize],
    opts: GetrfOpts,
    obs: &mut O,
) -> Result<()> {
    let (m, n) = (a.rows(), a.cols());
    let kn = m.min(n);
    assert_eq!(ipiv.len(), kn, "getrf: ipiv length must be min(m,n)");
    assert!(opts.block > 0, "getrf: block must be positive");
    let nb = opts.block;

    let mut k = 0;
    while k < kn {
        let jb = nb.min(kn - k);

        // Panel factorization over the full remaining height.
        {
            let panel = a.submatrix_mut(k, k, m - k, jb);
            let piv = &mut ipiv[k..k + jb];
            let r = match opts.panel {
                PanelAlg::Classic => crate::lapack::getf2(panel, piv, obs),
                PanelAlg::Recursive => crate::lapack::rgetf2(panel, piv, obs),
            };
            r.map_err(|e| match e {
                crate::Error::SingularPivot { step } => {
                    crate::Error::SingularPivot { step: step + k }
                }
                other => other,
            })?;
        }

        // Local panel pivots -> swaps of rows k.. applied to the columns
        // left of the panel and right of the panel.
        let local: Vec<usize> = ipiv[k..k + jb].to_vec();
        if k > 0 {
            let left = a.submatrix_mut(k, 0, m - k, k);
            apply_ipiv(left, &local);
        }
        if k + jb < n {
            let right = a.submatrix_mut(k, k + jb, m - k, n - k - jb);
            apply_ipiv(right, &local);
        }
        // Rebase to absolute row indices.
        for p in ipiv[k..k + jb].iter_mut() {
            *p += k;
        }

        if k + jb < n {
            // U12 = L11^{-1} A12.
            let (left, right) = a.rb_mut().split_at_col_mut(k + jb);
            let right = right.into_submatrix(k, 0, m - k, n - k - jb);
            let (mut u12, mut a22) = right.split_at_row_mut(jb);
            let l11 = left.submatrix(k, k, jb, jb);
            trsm(Side::Left, Uplo::Lower, Diag::Unit, T::ONE, l11, u12.rb_mut());

            if k + jb < m {
                // A22 -= L21 * U12.
                let l21 = left.submatrix(k + jb, k, m - k - jb, jb);
                if opts.parallel {
                    par_gemm(-T::ONE, l21, u12.as_view(), T::ONE, a22.rb_mut());
                } else {
                    gemm(-T::ONE, l21, u12.as_view(), T::ONE, a22.rb_mut());
                }
                obs.on_stage(&a22.as_view());
            }
        }
        k += jb;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::lapack::getf2;
    use crate::{Matrix, NoObs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_plu(orig: &Matrix, lu: &Matrix, ipiv: &[usize], tol: f64) {
        let perm = crate::perm::ipiv_to_perm(ipiv, orig.rows());
        let pa = crate::perm::permute_rows(orig, &perm);
        let l = lu.unit_lower();
        let u = lu.upper();
        let mut prod = Matrix::zeros(orig.rows(), orig.cols());
        gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
        let d = pa.max_abs_diff(&prod);
        assert!(d < tol, "||P A - L U||_max = {d} > {tol}");
    }

    #[test]
    fn blocked_matches_unblocked_pivots_and_factors() {
        let mut rng = StdRng::seed_from_u64(31);
        for &(m, n, nb) in &[(40, 40, 8), (65, 65, 16), (50, 30, 7), (100, 100, 100), (33, 33, 1)] {
            let a0 = gen::randn(&mut rng, m, n);
            let kn = m.min(n);
            let mut a_b = a0.clone();
            let mut a_u = a0.clone();
            let mut ip_b = vec![0; kn];
            let mut ip_u = vec![0; kn];
            getrf(
                a_b.view_mut(),
                &mut ip_b,
                GetrfOpts { block: nb, ..Default::default() },
                &mut NoObs,
            )
            .unwrap();
            getf2(a_u.view_mut(), &mut ip_u, &mut NoObs).unwrap();
            assert_eq!(ip_b, ip_u, "pivots differ for {m}x{n} nb={nb}");
            assert!(a_b.max_abs_diff(&a_u) < 1e-9, "factors differ for {m}x{n} nb={nb}");
            check_plu(&a0, &a_b, &ip_b, 1e-9 * (m as f64));
        }
    }

    #[test]
    fn recursive_panel_gives_same_result() {
        let mut rng = StdRng::seed_from_u64(32);
        let a0: Matrix = gen::randn(&mut rng, 90, 90);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let mut ip1 = vec![0; 90];
        let mut ip2 = vec![0; 90];
        getrf(
            a1.view_mut(),
            &mut ip1,
            GetrfOpts { block: 24, panel: PanelAlg::Classic, parallel: false },
            &mut NoObs,
        )
        .unwrap();
        getrf(
            a2.view_mut(),
            &mut ip2,
            GetrfOpts { block: 24, panel: PanelAlg::Recursive, parallel: false },
            &mut NoObs,
        )
        .unwrap();
        assert_eq!(ip1, ip2);
        assert!(a1.max_abs_diff(&a2) < 1e-10);
    }

    #[test]
    fn parallel_update_matches_serial() {
        let mut rng = StdRng::seed_from_u64(33);
        let a0: Matrix = gen::randn(&mut rng, 160, 160);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let mut ip1 = vec![0; 160];
        let mut ip2 = vec![0; 160];
        getrf(
            a1.view_mut(),
            &mut ip1,
            GetrfOpts { block: 32, parallel: false, ..Default::default() },
            &mut NoObs,
        )
        .unwrap();
        getrf(
            a2.view_mut(),
            &mut ip2,
            GetrfOpts { block: 32, parallel: true, ..Default::default() },
            &mut NoObs,
        )
        .unwrap();
        assert_eq!(ip1, ip2);
        assert!(a1.max_abs_diff(&a2) < 1e-11);
    }

    #[test]
    fn tall_matrix_blocked() {
        let mut rng = StdRng::seed_from_u64(34);
        let a0 = gen::randn(&mut rng, 200, 60);
        let mut a = a0.clone();
        let mut ipiv = vec![0; 60];
        getrf(a.view_mut(), &mut ipiv, GetrfOpts { block: 16, ..Default::default() }, &mut NoObs)
            .unwrap();
        check_plu(&a0, &a, &ipiv, 1e-9);
    }

    #[test]
    fn singular_error_has_absolute_step() {
        // Construct a matrix whose 3rd column is a copy of the 1st: rank
        // deficiency appears at global step 2 regardless of block size.
        let mut rng = StdRng::seed_from_u64(35);
        let mut a: Matrix = gen::randn(&mut rng, 6, 6);
        for i in 0..6 {
            let v = a[(i, 0)];
            a[(i, 2)] = v;
            a[(i, 1)] = 2.0 * v; // also make col 1 dependent so step is early
        }
        let mut ipiv = vec![0; 6];
        let err = getrf(
            a.view_mut(),
            &mut ipiv,
            GetrfOpts { block: 2, ..Default::default() },
            &mut NoObs,
        )
        .unwrap_err();
        match err {
            crate::Error::SingularPivot { step } => assert!((1..=2).contains(&step), "step {step}"),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
