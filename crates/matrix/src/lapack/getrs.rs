//! Solves from packed LU factors (`DGETRS`, both transpose modes).

use crate::blas2::{trsv, trsv_t};
use crate::blas3::trsm;
use crate::perm::{apply_ipiv, apply_ipiv_vec};
use crate::scalar::Scalar;
use crate::view::{MatView, MatViewMut};
use crate::{Diag, Side, Uplo};

/// Solves `A x = b` in place given the packed factors and pivots of
/// `A = P L U` (as produced by `getf2`/`rgetf2`/`getrf`).
///
/// # Panics
/// If shapes mismatch.
pub fn getrs<T: Scalar>(lu: MatView<'_, T>, ipiv: &[usize], b: &mut [T]) {
    let n = lu.rows();
    assert_eq!(lu.cols(), n, "getrs: factors must be square");
    assert_eq!(b.len(), n, "getrs: rhs length mismatch");
    apply_ipiv_vec(b, ipiv);
    trsv(Uplo::Lower, Diag::Unit, lu, b);
    trsv(Uplo::Upper, Diag::NonUnit, lu, b);
}

/// Solves the transposed system `A^T x = b` in place from the same factors:
/// `A^T = U^T L^T P^T`, so forward-solve with `U^T`, back-solve with `L^T`,
/// then undo the row interchanges (`DGETRS` with `TRANS = 'T'`; the
/// condition estimator needs this direction).
///
/// # Panics
/// If shapes mismatch.
pub fn getrs_t<T: Scalar>(lu: MatView<'_, T>, ipiv: &[usize], b: &mut [T]) {
    let n = lu.rows();
    assert_eq!(lu.cols(), n, "getrs_t: factors must be square");
    assert_eq!(b.len(), n, "getrs_t: rhs length mismatch");
    trsv_t(Uplo::Upper, Diag::NonUnit, lu, b);
    trsv_t(Uplo::Lower, Diag::Unit, lu, b);
    // x = P^T z: apply the swap sequence in reverse.
    for j in (0..ipiv.len()).rev() {
        if ipiv[j] != j {
            b.swap(j, ipiv[j]);
        }
    }
}

/// Multi-RHS version of [`getrs`]: solves `A X = B` in place.
///
/// # Panics
/// If shapes mismatch.
pub fn getrs_mat<T: Scalar>(lu: MatView<'_, T>, ipiv: &[usize], mut b: MatViewMut<'_, T>) {
    let n = lu.rows();
    assert_eq!(lu.cols(), n, "getrs_mat: factors must be square");
    assert_eq!(b.rows(), n, "getrs_mat: rhs rows mismatch");
    apply_ipiv(b.rb_mut(), ipiv);
    trsm(Side::Left, Uplo::Lower, Diag::Unit, T::ONE, lu, b.rb_mut());
    trsm(Side::Left, Uplo::Upper, Diag::NonUnit, T::ONE, lu, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::lapack::{getrf, GetrfOpts};
    use crate::{Matrix, NoObs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = StdRng::seed_from_u64(51);
        let n = 60;
        let a0 = gen::randn(&mut rng, n, n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 - 30.0) / 7.0).collect();
        let mut b = gen::rhs_for_solution(&a0, &x_true);

        let mut lu = a0.clone();
        let mut ipiv = vec![0; n];
        getrf(lu.view_mut(), &mut ipiv, GetrfOpts::default(), &mut NoObs).unwrap();
        getrs(lu.view(), &ipiv, &mut b);

        for (xi, ti) in b.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
        }
    }

    #[test]
    fn multi_rhs_matches_single() {
        let mut rng = StdRng::seed_from_u64(52);
        let n = 24;
        let a0 = gen::randn(&mut rng, n, n);
        let mut lu = a0.clone();
        let mut ipiv = vec![0; n];
        getrf(lu.view_mut(), &mut ipiv, GetrfOpts { block: 8, ..Default::default() }, &mut NoObs)
            .unwrap();

        let b0 = gen::randn(&mut rng, n, 3);
        let mut bm = b0.clone();
        getrs_mat(lu.view(), &ipiv, bm.view_mut());
        for j in 0..3 {
            let mut bv: Vec<f64> = b0.col(j).to_vec();
            getrs(lu.view(), &ipiv, &mut bv);
            for (a, b) in bv.iter().zip(bm.col(j)) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn identity_solve_is_identity() {
        let lu = Matrix::identity(5);
        let ipiv = vec![0, 1, 2, 3, 4];
        let mut b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let b0 = b.clone();
        getrs(lu.view(), &ipiv, &mut b);
        assert_eq!(b, b0);
    }
}
