//! LU factorization **without** pivoting.
//!
//! This is the second half of CALU's panel factorization: after tournament
//! pivoting has permuted the `b` winning rows to the top of the panel, the
//! panel is factored with no further row exchanges (paper Section 2). The
//! observer's `on_pivot` here reports the *actual* diagonal pivot against
//! the column maximum — the ratio is exactly the paper's threshold `τ`
//! (Figure 2 right, Tables 1-2 columns `τ_min`, `τ_ave`).

use crate::blas1::{amax, scal};
use crate::blas2::ger;
use crate::blas3::{gemm, trsm};
use crate::error::{Error, Result};
use crate::observer::PivotObserver;
use crate::scalar::Scalar;
use crate::view::MatViewMut;
use crate::{Diag, Side, Uplo};

/// Factors `A = L * U` in place with no pivoting (unblocked).
///
/// # Errors
/// [`Error::SingularPivot`] if a diagonal pivot is zero or non-finite.
pub fn lu_nopiv<T: Scalar, O: PivotObserver<T>>(
    mut a: MatViewMut<'_, T>,
    obs: &mut O,
) -> Result<()> {
    let (m, n) = (a.rows(), a.cols());
    let kn = m.min(n);
    let mut urow = vec![T::ZERO; n.saturating_sub(1)];

    for j in 0..kn {
        let col_max = amax(&a.col(j)[j..]);
        let pivot = a.get(j, j);
        obs.on_pivot(j, pivot.abs(), col_max);
        if pivot == T::ZERO || !pivot.is_finite() {
            return Err(Error::SingularPivot { step: j });
        }
        let inv = pivot.recip();
        scal(inv, &mut a.col_mut(j)[j + 1..]);
        obs.on_multipliers(&a.col(j)[j + 1..]);

        if j + 1 < m && j + 1 < n {
            let width = n - j - 1;
            for (t, jj) in urow.iter_mut().zip(j + 1..n) {
                *t = a.get(j, jj);
            }
            let (left, mut right) = a.rb_mut().split_at_col_mut(j + 1);
            let l_col = &left.col(j)[j + 1..];
            let trailing = right.submatrix_mut(j + 1, 0, m - j - 1, width);
            ger(-T::ONE, l_col, &urow[..width], trailing);
            obs.on_stage(&right.submatrix(j + 1, 0, m - j - 1, width));
        }
    }
    Ok(())
}

/// Blocked LU with no pivoting (same sweep as `getrf` minus the swaps);
/// used when the unpivoted panel is wide enough that BLAS-3 pays off.
///
/// # Errors
/// [`Error::SingularPivot`] with the absolute step index.
pub fn lu_nopiv_blocked<T: Scalar, O: PivotObserver<T>>(
    mut a: MatViewMut<'_, T>,
    nb: usize,
    obs: &mut O,
) -> Result<()> {
    let (m, n) = (a.rows(), a.cols());
    let kn = m.min(n);
    assert!(nb > 0, "block must be positive");
    let mut k = 0;
    while k < kn {
        let jb = nb.min(kn - k);
        {
            let panel = a.submatrix_mut(k, k, m - k, jb);
            lu_nopiv(panel, obs).map_err(|e| match e {
                Error::SingularPivot { step } => Error::SingularPivot { step: step + k },
                other => other,
            })?;
        }
        if k + jb < n {
            let (left, right) = a.rb_mut().split_at_col_mut(k + jb);
            let right = right.into_submatrix(k, 0, m - k, n - k - jb);
            let (mut u12, mut a22) = right.split_at_row_mut(jb);
            let l11 = left.submatrix(k, k, jb, jb);
            trsm(Side::Left, Uplo::Lower, Diag::Unit, T::ONE, l11, u12.rb_mut());
            if k + jb < m {
                let l21 = left.submatrix(k + jb, k, m - k - jb, jb);
                gemm(-T::ONE, l21, u12.as_view(), T::ONE, a22.rb_mut());
                obs.on_stage(&a22.as_view());
            }
        }
        k += jb;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::{Matrix, NoObs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_lu(orig: &Matrix, lu: &Matrix, tol: f64) {
        let l = lu.unit_lower();
        let u = lu.upper();
        let mut prod = Matrix::zeros(orig.rows(), orig.cols());
        gemm(1.0, l.view(), u.view(), 0.0, prod.view_mut());
        let d = orig.max_abs_diff(&prod);
        assert!(d < tol, "||A - L U||_max = {d} > {tol}");
    }

    #[test]
    fn reconstructs_diagonally_dominant() {
        let mut rng = StdRng::seed_from_u64(41);
        for &n in &[1usize, 4, 17, 60] {
            let a0 = gen::diag_dominant(&mut rng, n);
            let mut a = a0.clone();
            lu_nopiv(a.view_mut(), &mut NoObs).unwrap();
            check_lu(&a0, &a, 1e-9 * (n.max(1) as f64));
        }
    }

    #[test]
    fn blocked_matches_unblocked() {
        let mut rng = StdRng::seed_from_u64(42);
        let a0: Matrix = gen::diag_dominant(&mut rng, 70);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        lu_nopiv(a1.view_mut(), &mut NoObs).unwrap();
        lu_nopiv_blocked(a2.view_mut(), 16, &mut NoObs).unwrap();
        assert!(a1.max_abs_diff(&a2) < 1e-10);
    }

    #[test]
    fn tall_panel_no_pivoting() {
        let mut rng = StdRng::seed_from_u64(43);
        // A tall panel whose top b x b block is well conditioned (as
        // guaranteed by tournament pivoting).
        let mut a0 = gen::randn(&mut rng, 50, 8);
        for j in 0..8 {
            a0[(j, j)] += 10.0;
        }
        let mut a = a0.clone();
        lu_nopiv(a.view_mut(), &mut NoObs).unwrap();
        check_lu(&a0, &a, 1e-10);
    }

    #[test]
    fn zero_pivot_is_an_error() {
        let mut a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let err = lu_nopiv(a.view_mut(), &mut NoObs).unwrap_err();
        assert_eq!(err, Error::SingularPivot { step: 0 });
    }

    #[test]
    fn observer_sees_thresholds() {
        struct Taus(Vec<f64>);
        impl PivotObserver for Taus {
            fn on_pivot(&mut self, _s: usize, pivot: f64, col_max: f64) {
                if col_max > 0.0 {
                    self.0.push(pivot / col_max);
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(44);
        let a0 = gen::diag_dominant(&mut rng, 12);
        let mut a = a0.clone();
        let mut taus = Taus(Vec::new());
        lu_nopiv(a.view_mut(), &mut taus).unwrap();
        assert_eq!(taus.0.len(), 12);
        // Diagonally dominant: diagonal is always the column max -> tau == 1.
        for &t in &taus.0 {
            assert!(t > 0.0 && t <= 1.0 + 1e-15);
        }
    }
}
