//! Reciprocal condition-number estimation from LU factors (`DGECON`),
//! via the Hager-Higham 1-norm estimator (`DLACN2`).
//!
//! The HPL residuals the paper reports (Section 6.1) are scaled by norms
//! of `A`; knowing `κ₁(A)` tells a user how many of the solution's digits
//! those residuals actually vouch for. The estimator needs only
//! `O(n²)`-cost solves with the existing factors — no refactorization.

use crate::lapack::{getrs, getrs_t};
use crate::norms::vec_norm_1;
use crate::scalar::Scalar;
use crate::view::MatView;

/// Maximum Hager iterations (LAPACK uses 5; convergence is almost always
/// at 2-3).
const ITMAX: usize = 5;

/// Estimates `||A^{-1}||_1` given the packed LU factors of `A` — the
/// Hager-Higham power iteration on `|A^{-1}|`'s column sums, using one
/// pair of solves (`A z = x`, `A^T z = ξ`) per iteration.
///
/// The estimate is a guaranteed *lower* bound that is almost always within
/// a factor of 2-3 of the truth (Higham 1988).
///
/// # Panics
/// If the factors are not square.
pub fn inv_norm1_est<T: Scalar>(lu: MatView<'_, T>, ipiv: &[usize]) -> T {
    let n = lu.rows();
    assert_eq!(lu.cols(), n, "inv_norm1_est: factors must be square");
    if n == 0 {
        return T::ZERO;
    }

    // Start with the uniform vector: est = ||A^{-1} e/n||_1.
    let mut x = vec![T::from_usize(n).recip(); n];
    getrs(lu, ipiv, &mut x);
    let mut est = vec_norm_1(&x);
    if n == 1 {
        return est;
    }

    let mut visited = vec![false; n];
    for _ in 0..ITMAX {
        // ξ = sign(x); z = A^{-T} ξ.
        let mut z: Vec<T> =
            x.iter().map(|&v| if v >= T::ZERO { T::ONE } else { -T::ONE }).collect();
        getrs_t(lu, ipiv, &mut z);

        // j = argmax |z_j|; stop when z stops finding a steeper column.
        let (mut j_best, mut z_best) = (0usize, T::ZERO);
        for (j, &zj) in z.iter().enumerate() {
            if zj.abs() > z_best {
                z_best = zj.abs();
                j_best = j;
            }
        }
        if visited[j_best] {
            break;
        }
        visited[j_best] = true;

        // x = e_{j_best}; new estimate = ||A^{-1} e_j||_1 (column norm).
        x.iter_mut().for_each(|v| *v = T::ZERO);
        x[j_best] = T::ONE;
        getrs(lu, ipiv, &mut x);
        let new_est = vec_norm_1(&x);
        if new_est <= est {
            break;
        }
        est = new_est;
    }

    // LAPACK's final safeguard: an alternating, graded probe vector that
    // defeats adversarial sign cancellation.
    let mut v: Vec<T> = (0..n)
        .map(|i| {
            let s = if i % 2 == 0 { 1.0 } else { -1.0 };
            T::from_f64(s * (1.0 + i as f64 / (n as f64 - 1.0)))
        })
        .collect();
    getrs(lu, ipiv, &mut v);
    est.max(T::from_f64(2.0) * vec_norm_1(&v) / (T::from_f64(3.0) * T::from_usize(n)))
}

/// Reciprocal 1-norm condition estimate `rcond = 1 / (||A||_1 ||A^{-1}||_1)`
/// (`DGECON`). Pass `anorm = ||A||_1` of the *original* matrix (compute it
/// before factoring; the factors overwrite `A`). Returns 0 for a singular
/// or overflow-scale matrix, 1 for the identity.
///
/// # Panics
/// If the factors are not square or `anorm < 0`.
pub fn gecon<T: Scalar>(lu: MatView<'_, T>, ipiv: &[usize], anorm: T) -> T {
    assert!(anorm >= T::ZERO, "gecon: anorm must be non-negative");
    if anorm == T::ZERO {
        return T::ZERO;
    }
    if lu.rows() == 0 {
        return T::ONE;
    }
    let inv_norm = inv_norm1_est(lu, ipiv);
    if inv_norm == T::ZERO || !inv_norm.is_finite() {
        return T::ZERO;
    }
    inv_norm.recip() / anorm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::lapack::{getrf, getri, GetrfOpts};
    use crate::norms::mat_norm_1;
    use crate::{Matrix, NoObs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Exact κ₁ via explicit inverse (test oracle only).
    fn true_cond1(a: &Matrix) -> f64 {
        let n = a.rows();
        let mut inv = a.clone();
        let mut ipiv = vec![0usize; n];
        getrf(inv.view_mut(), &mut ipiv, GetrfOpts::default(), &mut NoObs).unwrap();
        getri(inv.view_mut(), &ipiv).unwrap();
        mat_norm_1(a.view()) * mat_norm_1(inv.view())
    }

    fn factor(a: &Matrix) -> (Matrix, Vec<usize>) {
        let mut lu = a.clone();
        let mut ipiv = vec![0usize; a.rows()];
        getrf(lu.view_mut(), &mut ipiv, GetrfOpts::default(), &mut NoObs).unwrap();
        (lu, ipiv)
    }

    #[test]
    fn identity_has_rcond_one() {
        let a = Matrix::identity(8);
        let (lu, ipiv) = factor(&a);
        let r = gecon(lu.view(), &ipiv, mat_norm_1(a.view()));
        assert!((r - 1.0).abs() < 1e-12, "rcond(I) = {r}");
    }

    #[test]
    fn estimate_is_lower_bound_and_within_factor_three() {
        let mut rng = StdRng::seed_from_u64(241);
        for &n in &[4usize, 10, 30, 64] {
            let a = gen::randn(&mut rng, n, n);
            let kappa = true_cond1(&a);
            let (lu, ipiv) = factor(&a);
            let est = mat_norm_1(a.view()) * inv_norm1_est(lu.view(), &ipiv);
            assert!(est <= kappa * (1.0 + 1e-10), "n={n}: estimate {est} exceeds true {kappa}");
            assert!(est >= kappa / 3.0, "n={n}: estimate {est} below true/3 ({kappa})");
        }
    }

    #[test]
    fn detects_bad_conditioning_of_graded_matrix() {
        // diag(1, 1e-2, 1e-4, ..., 1e-12): κ₁ = 1e12 exactly.
        let n = 7;
        let a =
            Matrix::from_fn(n, n, |i, j| if i == j { 10.0_f64.powi(-2 * i as i32) } else { 0.0 });
        let (lu, ipiv) = factor(&a);
        let r = gecon(lu.view(), &ipiv, mat_norm_1(a.view()));
        assert!(r < 1e-11 && r > 1e-14, "rcond = {r}");
    }

    #[test]
    fn zero_anorm_means_singular() {
        let a = Matrix::identity(3);
        let (lu, ipiv) = factor(&a);
        assert_eq!(gecon(lu.view(), &ipiv, 0.0), 0.0);
    }

    #[test]
    fn transpose_solve_agrees_with_explicit_inverse() {
        let mut rng = StdRng::seed_from_u64(242);
        let n = 20;
        let a = gen::randn(&mut rng, n, n);
        let (lu, ipiv) = factor(&a);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut x = b.clone();
        crate::lapack::getrs_t(lu.view(), &ipiv, &mut x);
        // Check A^T x == b.
        let at = a.transposed();
        let mut back = vec![0.0; n];
        crate::blas2::gemv(1.0, at.view(), &x, 0.0, &mut back);
        for (want, got) in b.iter().zip(&back) {
            assert!((want - got).abs() < 1e-8, "{want} vs {got}");
        }
    }
}
