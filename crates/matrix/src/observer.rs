//! Zero-cost instrumentation hooks for factorization kernels.
//!
//! The paper's stability study (Section 6.1, Figure 2, Tables 1-2) needs the
//! value of every matrix entry *during* elimination (for the
//! Trefethen-Schreiber growth factor) and the pivot-to-column-max ratio at
//! every step (for the threshold statistics). Rather than duplicating every
//! factorization with an instrumented twin, the kernels accept a
//! [`PivotObserver`]; the default [`NoObs`] has empty inlined methods that
//! compile away.

use crate::scalar::Scalar;
use crate::view::MatView;

/// Receives callbacks from factorization kernels at every elimination event.
///
/// All methods have empty defaults, so implementors override only what they
/// need. Implementations used for growth tracking should expect
/// `on_stage` to be called with the sub-block that changed at each stage
/// (after a rank-1 update or after a blocked trailing update).
pub trait PivotObserver<T: Scalar = f64> {
    /// A pivot was selected at global elimination step `step`.
    ///
    /// * `pivot` — absolute value of the pivot actually used,
    /// * `col_max` — maximum absolute value in the (remaining) column at the
    ///   moment of selection. For partial pivoting `pivot == col_max`; for
    ///   CALU's ca-pivoting the ratio `pivot / col_max` is the *threshold*
    ///   the paper reports (min observed ≈ 0.33, i.e. `|L| <= 3`).
    #[inline(always)]
    fn on_pivot(&mut self, step: usize, pivot: T, col_max: T) {
        let _ = (step, pivot, col_max);
    }

    /// Part of the matrix was updated; `changed` views the entries holding
    /// freshly-computed intermediate values `a_ij^{(k)}`.
    #[inline(always)]
    fn on_stage(&mut self, changed: &MatView<'_, T>) {
        let _ = changed;
    }

    /// A multiplier column was produced (entries of `L` below the diagonal),
    /// reported so `max |L|` can be tracked.
    #[inline(always)]
    fn on_multipliers(&mut self, col_below_diag: &[T]) {
        let _ = col_below_diag;
    }
}

/// The do-nothing observer; all hooks compile to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObs;

impl<T: Scalar> PivotObserver<T> for NoObs {}

impl<T: Scalar, O: PivotObserver<T> + ?Sized> PivotObserver<T> for &mut O {
    #[inline(always)]
    fn on_pivot(&mut self, step: usize, pivot: T, col_max: T) {
        (**self).on_pivot(step, pivot, col_max)
    }

    #[inline(always)]
    fn on_stage(&mut self, changed: &MatView<'_, T>) {
        (**self).on_stage(changed)
    }

    #[inline(always)]
    fn on_multipliers(&mut self, col_below_diag: &[T]) {
        (**self).on_multipliers(col_below_diag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lapack::getf2;
    use crate::{gen, NoObs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Counts every callback — verifies the kernels fire the full protocol.
    #[derive(Default)]
    struct Counter {
        pivots: usize,
        stages: usize,
        mult_cols: usize,
        mult_entries: usize,
    }

    impl PivotObserver for Counter {
        fn on_pivot(&mut self, _s: usize, _p: f64, _c: f64) {
            self.pivots += 1;
        }
        fn on_stage(&mut self, changed: &MatView<'_>) {
            self.stages += 1;
            assert!(!changed.is_empty(), "stage views are never empty");
        }
        fn on_multipliers(&mut self, col: &[f64]) {
            self.mult_cols += 1;
            self.mult_entries += col.len();
        }
    }

    #[test]
    fn getf2_fires_one_event_set_per_column() {
        let mut rng = StdRng::seed_from_u64(271);
        let (m, n) = (12, 8);
        let mut a = gen::randn(&mut rng, m, n);
        let mut ipiv = vec![0usize; n];
        let mut c = Counter::default();
        getf2(a.view_mut(), &mut ipiv, &mut c).unwrap();
        assert_eq!(c.pivots, n, "one pivot per column");
        assert_eq!(c.stages, n - 1, "one trailing stage per non-final column");
        assert_eq!(c.mult_cols, n);
        // Multiplier entries: (m-1) + (m-2) + ... + (m-n).
        let want: usize = (0..n).map(|j| m - j - 1).sum();
        assert_eq!(c.mult_entries, want);
    }

    #[test]
    fn observer_by_mut_ref_forwards() {
        let mut rng = StdRng::seed_from_u64(272);
        let mut a = gen::randn(&mut rng, 6, 6);
        let mut ipiv = vec![0usize; 6];
        let mut c = Counter::default();
        // Pass &mut &mut Counter through the blanket impl.
        getf2(a.view_mut(), &mut ipiv, &mut (&mut c)).unwrap();
        assert_eq!(c.pivots, 6);
    }

    #[test]
    fn noobs_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoObs>(), 0);
    }
}
