//! # calu-matrix — dense column-major matrix substrate
//!
//! From-scratch dense linear-algebra kernels backing the reproduction of
//! *Communication Avoiding Gaussian Elimination* (Grigori, Demmel, Xiang,
//! 2008). The paper's implementation sits on ESSL/libGoto BLAS and
//! LAPACK/ScaLAPACK; this crate provides the equivalent sequential substrate:
//!
//! * [`Matrix`] — owned, column-major storage; [`MatView`]/[`MatViewMut`] —
//!   borrowed, leading-dimension strided views so every kernel operates on
//!   sub-blocks without copying (the shape ScaLAPACK-style algorithms need).
//! * BLAS level 1/2/3: [`blas1`], [`blas2`], [`blas3`] (`iamax`, `axpy`,
//!   `ger`, `gemv`, blocked `gemm`, the four no-transpose `trsm` cases used
//!   by LU, with optional rayon-parallel `gemm`).
//! * LAPACK-style factorizations in [`lapack`]: `getf2` (classic partial
//!   pivoting, the paper's `DGETF2`), `rgetf2` (recursive, the paper's
//!   `RGETF2` from Gustavson/Toledo), blocked `getrf` (GEPP baseline),
//!   `lu_nopiv` (panel factorization after tournament pivoting), `laswp`,
//!   and triangular solves `getrs`.
//! * [`tile`] — tile-major storage: [`TileLayout`] (tile geometry plus the
//!   ScaLAPACK block-cyclic ownership map) and [`TileMatrix`] (tiles
//!   contiguous in memory, cross-tile `laswp`), the cache-contained layout
//!   the task-graph runtime and the distributed layer share.
//! * [`gen`] — seeded matrix ensembles used by the paper's experiments
//!   (normal, uniform, Toeplitz, plus worst-case growth matrices).
//! * [`perm`] — pivot-vector (`ipiv`) and permutation algebra.
//! * [`scalar`] — the [`Scalar`] trait (`f32`/`f64`): every kernel above is
//!   generic over the element type, with `f64` as the default type
//!   parameter so the classic double-precision API reads unchanged.
//! * [`observer`] — a zero-cost instrumentation hook that the stability
//!   experiments use to track element growth and pivot thresholds at every
//!   elimination stage.
//!
//! All kernels are written for clarity-first correctness with cache-blocked
//! hot loops; absolute speed is not the point of the reproduction (the
//! performance tables are regenerated under a machine model, see
//! `calu-netsim`), but `gemm` is blocked and vectorizer-friendly so the
//! laptop-scale experiments finish quickly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod error;
pub mod gen;
pub mod lapack;
pub mod mat;
pub mod norms;
pub mod observer;
pub mod perm;
pub mod scalar;
pub mod tile;
pub mod view;

pub use error::{Error, Result};
pub use mat::Matrix;
pub use observer::{NoObs, PivotObserver};
pub use scalar::Scalar;
pub use tile::{TileLayout, TileMatrix};
pub use view::{MatView, MatViewMut};

/// Side on which a triangular matrix multiplies in [`blas3::trsm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve `op(A) * X = B` (A on the left).
    Left,
    /// Solve `X * op(A) = B` (A on the right).
    Right,
}

/// Which triangle of the matrix argument a triangular kernel reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uplo {
    /// Lower triangle.
    Lower,
    /// Upper triangle.
    Upper,
}

/// Whether the diagonal of a triangular matrix is assumed to be all ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Diagonal entries are implicitly 1 and are not read.
    Unit,
    /// Diagonal entries are read from the matrix.
    NonUnit,
}
