//! Seeded matrix ensembles for the paper's experiments.
//!
//! Section 6.1 of the paper evaluates the stability of ca-pivoting on
//! "matrices from a normal distribution", "different random distributions"
//! and "dense Toeplitz matrices"; this module provides those ensembles plus
//! a classical worst-case growth matrix (for negative controls) — all
//! deterministic given an RNG seed so every table in `EXPERIMENTS.md` is
//! reproducible.
//!
//! All generators are generic over [`Scalar`]; sampling always happens in
//! `f64` and is then rounded into the requested precision, so for any
//! seed the `f32` ensemble is exactly the rounded `f64` ensemble — the
//! property the mixed-precision experiments rely on when comparing
//! factorizations of "the same" matrix at two precisions.

use crate::scalar::Scalar;
use crate::Matrix;
use rand::Rng;

/// Standard-normal entries via the Box-Muller transform.
///
/// (We generate N(0,1) ourselves rather than pulling in `rand_distr`; the
/// polar-free version below is branch-light and plenty fast for the
/// experiment sizes.)
pub fn randn<T: Scalar>(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix<T> {
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() + 2 <= n {
        let (z0, z1) = box_muller(rng);
        data.push(T::from_f64(z0));
        data.push(T::from_f64(z1));
    }
    if data.len() < n {
        data.push(T::from_f64(box_muller(rng).0));
    }
    Matrix::from_col_major(rows, cols, data)
}

#[inline]
fn box_muller(rng: &mut impl Rng) -> (f64, f64) {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Uniform entries on `[lo, hi)`.
pub fn uniform<T: Scalar>(
    rng: &mut impl Rng,
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
) -> Matrix<T> {
    Matrix::from_fn(rows, cols, |_, _| T::from_f64(rng.gen_range(lo..hi)))
}

/// Dense Toeplitz matrix `A[i][j] = c[i - j]` for `i >= j`, `r[j - i]` for
/// `j > i`, from explicit first column `c` and first row `r`.
///
/// # Panics
/// If `c[0] != r[0]` (the shared corner must agree) or either is empty.
pub fn toeplitz<T: Scalar>(first_col: &[T], first_row: &[T]) -> Matrix<T> {
    assert!(!first_col.is_empty() && !first_row.is_empty());
    assert_eq!(first_col[0], first_row[0], "corner element must agree");
    Matrix::from_fn(first_col.len(), first_row.len(), |i, j| {
        if i >= j {
            first_col[i - j]
        } else {
            first_row[j - i]
        }
    })
}

/// Random dense Toeplitz matrix with N(0,1) diagonals (the paper's "dense
/// Toeplitz" stability ensemble).
pub fn randn_toeplitz<T: Scalar>(rng: &mut impl Rng, n: usize) -> Matrix<T> {
    let mut c: Vec<T> = (0..n).map(|_| T::from_f64(box_muller(rng).0)).collect();
    let mut r: Vec<T> = (0..n).map(|_| T::from_f64(box_muller(rng).0)).collect();
    r[0] = c[0];
    // Guard against a degenerate zero corner for tiny n.
    if c[0] == T::ZERO {
        c[0] = T::ONE;
        r[0] = T::ONE;
    }
    toeplitz(&c, &r)
}

/// Row-diagonally-dominant random matrix (always nonsingular; LU with any
/// reasonable pivoting succeeds with growth ~1). Used as an easy ensemble in
/// tests.
pub fn diag_dominant<T: Scalar>(rng: &mut impl Rng, n: usize) -> Matrix<T> {
    let mut a: Matrix<T> = randn(rng, n, n);
    for i in 0..n {
        let row_sum: T = (0..n).map(|j| a[(i, j)].abs()).sum();
        a[(i, i)] = row_sum + T::ONE;
    }
    a
}

/// The classical GEPP worst-case growth matrix of Wilkinson:
/// ones on the diagonal and last column, `-1` strictly below the diagonal.
/// Partial pivoting produces growth `2^(n-1)`; used as a stress control in
/// the growth-factor experiments.
pub fn wilkinson<T: Scalar>(n: usize) -> Matrix<T> {
    // The "identical branches" are the point: last column and diagonal are
    // both 1, but they are distinct structural features of the matrix.
    #[allow(clippy::if_same_then_else)]
    Matrix::from_fn(n, n, |i, j| {
        if j == n - 1 {
            T::ONE
        } else if i == j {
            T::ONE
        } else if i > j {
            -T::ONE
        } else {
            T::ZERO
        }
    })
}

/// Kahan's matrix: upper triangular with `s^i` on the diagonal and
/// `-c·s^i` above it (`s² + c² = 1`, `theta` sets the split). Famously
/// ill-conditioned with *no* small pivot until the very end — a classic
/// stress test for condition estimators and threshold statistics.
pub fn kahan<T: Scalar>(n: usize, theta: f64) -> Matrix<T> {
    let (s, c) = (theta.sin(), theta.cos());
    Matrix::from_fn(n, n, |i, j| {
        let scale = s.powi(i as i32);
        if i == j {
            T::from_f64(scale)
        } else if j > i {
            T::from_f64(-c * scale)
        } else {
            T::ZERO
        }
    })
}

/// A "generalized Wilkinson" growth adversary: like [`wilkinson`] but the
/// subdiagonal entries are `-h` for a tunable `h ∈ (0, 1]` — growth
/// `(1 + h)^(n-1)`, letting the growth-factor experiments sweep a dial
/// between benign and catastrophic rather than only the extreme point.
pub fn gfpp<T: Scalar>(n: usize, h: f64) -> Matrix<T> {
    assert!(h > 0.0 && h <= 1.0, "h must be in (0, 1]");
    #[allow(clippy::if_same_then_else)]
    Matrix::from_fn(n, n, |i, j| {
        if j == n - 1 {
            T::ONE
        } else if i == j {
            T::ONE
        } else if i > j {
            T::from_f64(-h)
        } else {
            T::ZERO
        }
    })
}

/// Matrix with geometrically graded singular-value profile: `Q1 D Q2` where
/// `D = diag(cond^(-k/(n-1)))` and `Q1, Q2` are products of random
/// Householder reflectors (a lightweight `randsvd` mode 3). `cond` is the
/// exact 2-norm condition number of the result.
///
/// # Panics
/// If `cond < 1` or `n == 0`.
pub fn randsvd<T: Scalar>(rng: &mut impl Rng, n: usize, cond: f64) -> Matrix<T> {
    assert!(cond >= 1.0 && n > 0);
    let mut a = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            if n == 1 {
                T::ONE
            } else {
                T::from_f64(cond.powf(-(i as f64) / (n as f64 - 1.0)))
            }
        } else {
            T::ZERO
        }
    });
    // Two-sided random orthogonal mixing: A := H_k ... H_1 A G_1 ... G_k.
    let reflections = 3.min(n);
    for _ in 0..reflections {
        let v = random_unit_vector(rng, n);
        householder_left(&mut a, &v);
        let w = random_unit_vector(rng, n);
        householder_right(&mut a, &w);
    }
    a
}

/// Sylvester-construction Hadamard matrix (entries ±1, orthogonal columns);
/// `n` must be a power of two. GEPP on a Hadamard matrix produces growth
/// exactly `n` — a structured mid-scale growth control between random
/// (`~n^(2/3)`) and Wilkinson (`2^(n-1)`).
///
/// # Panics
/// If `n` is not a power of two.
pub fn hadamard<T: Scalar>(n: usize) -> Matrix<T> {
    assert!(n.is_power_of_two(), "Sylvester construction needs a power of two");
    Matrix::from_fn(n, n, |i, j| {
        // H[i][j] = (-1)^(popcount(i & j)).
        if (i & j).count_ones() % 2 == 0 {
            T::ONE
        } else {
            -T::ONE
        }
    })
}

fn random_unit_vector<T: Scalar>(rng: &mut impl Rng, n: usize) -> Vec<T> {
    loop {
        let v: Vec<f64> = (0..n).map(|_| box_muller(rng).0).collect();
        let norm = crate::blas1::nrm2(&v);
        if norm > 1e-8 {
            return v.into_iter().map(|x| T::from_f64(x / norm)).collect();
        }
    }
}

/// `A := (I - 2 v v^T) A` for unit `v`.
fn householder_left<T: Scalar>(a: &mut Matrix<T>, v: &[T]) {
    let n = a.rows();
    debug_assert_eq!(v.len(), n);
    let two = T::from_f64(2.0);
    for j in 0..a.cols() {
        let col = a.col_mut(j);
        let dot: T = col.iter().zip(v).map(|(&c, &vi)| c * vi).sum();
        for (c, &vi) in col.iter_mut().zip(v) {
            *c -= two * dot * vi;
        }
    }
}

/// `A := A (I - 2 v v^T)` for unit `v`.
fn householder_right<T: Scalar>(a: &mut Matrix<T>, v: &[T]) {
    let m = a.rows();
    let n = a.cols();
    debug_assert_eq!(v.len(), n);
    let two = T::from_f64(2.0);
    // row_dot[i] = sum_j a[i][j] v[j]
    let mut row_dot = vec![T::ZERO; m];
    for (j, &vj) in v.iter().enumerate() {
        for (rd, &aij) in row_dot.iter_mut().zip(a.col(j)) {
            *rd += aij * vj;
        }
    }
    for (j, &vj) in v.iter().enumerate() {
        for (aij, &rd) in a.col_mut(j).iter_mut().zip(&row_dot) {
            *aij -= two * rd * vj;
        }
    }
}

/// Builds `b = A * x` for a known solution `x` (HPL-style verification).
pub fn rhs_for_solution<T: Scalar>(a: &Matrix<T>, x: &[T]) -> Vec<T> {
    let mut b = vec![T::ZERO; a.rows()];
    crate::blas2::gemv(T::ONE, a.view(), x, T::ZERO, &mut b);
    b
}

/// Uniform `[-0.5, 0.5)` right-hand side as generated by HPL's driver.
pub fn hpl_rhs<T: Scalar>(rng: &mut impl Rng, n: usize) -> Vec<T> {
    (0..n).map(|_| T::from_f64(rng.gen::<f64>() - 0.5)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = randn(&mut rng, 200, 200);
        let n = (a.rows() * a.cols()) as f64;
        let mean: f64 = a.as_slice().iter().sum::<f64>() / n;
        let var: f64 = a.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.03, "variance {var} too far from 1");
    }

    #[test]
    fn randn_is_deterministic_for_seed() {
        let a: Matrix = randn(&mut StdRng::seed_from_u64(1), 10, 10);
        let b = randn(&mut StdRng::seed_from_u64(1), 10, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn toeplitz_has_constant_diagonals() {
        let t = toeplitz(&[1.0, 2.0, 3.0], &[1.0, 7.0, 8.0, 9.0]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert_eq!(t[(0, 0)], t[(1, 1)]);
        assert_eq!(t[(1, 0)], t[(2, 1)]);
        assert_eq!(t[(0, 1)], t[(1, 2)]);
        assert_eq!(t[(0, 1)], 7.0);
        assert_eq!(t[(2, 0)], 3.0);
    }

    #[test]
    fn wilkinson_structure() {
        let w: Matrix = wilkinson(4);
        assert_eq!(w[(0, 3)], 1.0);
        assert_eq!(w[(2, 2)], 1.0);
        assert_eq!(w[(3, 0)], -1.0);
        assert_eq!(w[(0, 1)], 0.0);
    }

    #[test]
    fn diag_dominant_is_dominant() {
        let mut rng = StdRng::seed_from_u64(9);
        let a: Matrix = diag_dominant(&mut rng, 20);
        for i in 0..20 {
            let off: f64 = (0..20).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
            assert!(a[(i, i)].abs() > off);
        }
    }

    #[test]
    fn kahan_is_upper_triangular_with_graded_diagonal() {
        let k: Matrix = kahan(5, 1.2);
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(k[(i, j)], 0.0);
            }
        }
        // Diagonal decays geometrically by sin(theta).
        let s = 1.2_f64.sin();
        for i in 1..5 {
            assert!((k[(i, i)] / k[(i - 1, i - 1)] - s).abs() < 1e-14);
        }
    }

    #[test]
    fn gfpp_growth_dial() {
        use crate::lapack::getf2;
        use crate::NoObs;
        // h = 1 reproduces Wilkinson exactly.
        assert_eq!(gfpp::<f64>(6, 1.0), wilkinson(6));
        // Growth of GEPP on gfpp(n, h) is (1 + h)^(n-1) in the last column.
        let n = 12;
        let h = 0.5;
        let mut a: Matrix = gfpp(n, h);
        let mut ipiv = vec![0usize; n];
        getf2(a.view_mut(), &mut ipiv, &mut NoObs).unwrap();
        let last = a[(n - 1, n - 1)];
        let want = (1.0 + h).powi(n as i32 - 1);
        assert!((last - want).abs() < 1e-9, "{last} vs {want}");
    }

    #[test]
    fn randsvd_condition_is_exact_in_2norm() {
        // Orthogonal mixing preserves singular values; check via the
        // explicit inverse: kappa_2 bounds kappa_1 within n.
        use crate::lapack::{gecon, getrf, GetrfOpts};
        use crate::norms::mat_norm_1;
        use crate::NoObs;
        let mut rng = StdRng::seed_from_u64(77);
        let n = 16;
        let cond = 1e6;
        let a: Matrix = randsvd(&mut rng, n, cond);
        let anorm = mat_norm_1(a.view());
        let mut lu = a.clone();
        let mut ipiv = vec![0usize; n];
        getrf(lu.view_mut(), &mut ipiv, GetrfOpts::default(), &mut NoObs).unwrap();
        let rcond = gecon(lu.view(), &ipiv, anorm);
        let kappa1 = 1.0 / rcond;
        // kappa_2 <= kappa_1 <= n * kappa_2, estimator within 3x.
        assert!(kappa1 > cond / (3.0 * n as f64), "kappa1 {kappa1} too small for cond {cond}");
        assert!(kappa1 < cond * 3.0 * n as f64, "kappa1 {kappa1} too big for cond {cond}");
    }

    #[test]
    fn hadamard_columns_are_orthogonal() {
        let h: Matrix = hadamard(8);
        for i in 0..8 {
            for j in 0..8 {
                let dot: f64 = (0..8).map(|k| h[(k, i)] * h[(k, j)]).sum();
                assert_eq!(dot, if i == j { 8.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn hadamard_growth_under_gepp_is_order_n() {
        use crate::lapack::getf2;
        use crate::NoObs;
        let n = 16;
        let mut a: Matrix = hadamard(n);
        let mut ipiv = vec![0usize; n];
        getf2(a.view_mut(), &mut ipiv, &mut NoObs).unwrap();
        let max_u = a.max_abs();
        assert!(max_u >= n as f64 * 0.99, "Hadamard growth must reach n, got {max_u}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn hadamard_rejects_non_power_of_two() {
        let _: Matrix = hadamard(6);
    }
}
