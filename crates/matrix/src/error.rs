//! Error type shared by the factorization kernels.

use std::fmt;

/// Errors produced by factorizations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An exactly-zero (or non-finite) pivot was encountered at the given
    /// global elimination step; the factorization cannot proceed.
    ///
    /// LAPACK's `GETF2` records this in `info` and keeps going; since every
    /// consumer in this reproduction treats a zero pivot as fatal (the CALU
    /// panel factorization after tournament pivoting must not divide by
    /// zero), we surface it as an error instead.
    SingularPivot {
        /// Zero-based elimination step (column) at which the pivot vanished.
        step: usize,
    },
    /// A matrix had an unusable shape for the requested operation
    /// (for example an empty panel).
    BadShape {
        /// Human-readable description of the violated requirement.
        what: &'static str,
    },
    /// The operation was canceled because a cooperating task failed
    /// elsewhere (a singular pivot on another rank of a distributed run).
    /// Carriers of this variant are collateral, not root causes: the
    /// originating failure is reported separately.
    Canceled,
    /// The requested backend or feature is not available in this build
    /// (for example the MPI communicator stub, which documents the
    /// off-box path without linking an MPI library).
    Unsupported {
        /// Human-readable description of what is missing.
        what: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SingularPivot { step } => {
                write!(f, "zero or non-finite pivot at elimination step {step}")
            }
            Error::BadShape { what } => write!(f, "bad matrix shape: {what}"),
            Error::Canceled => write!(f, "canceled: a cooperating task failed"),
            Error::Unsupported { what } => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;
