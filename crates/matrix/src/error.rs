//! Error type shared by the factorization kernels.

use std::fmt;

/// Errors produced by factorizations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An exactly-zero (or non-finite) pivot was encountered at the given
    /// global elimination step; the factorization cannot proceed.
    ///
    /// LAPACK's `GETF2` records this in `info` and keeps going; since every
    /// consumer in this reproduction treats a zero pivot as fatal (the CALU
    /// panel factorization after tournament pivoting must not divide by
    /// zero), we surface it as an error instead.
    SingularPivot {
        /// Zero-based elimination step (column) at which the pivot vanished.
        step: usize,
    },
    /// A matrix had an unusable shape for the requested operation
    /// (for example an empty panel).
    BadShape {
        /// Human-readable description of the violated requirement.
        what: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SingularPivot { step } => {
                write!(f, "zero or non-finite pivot at elimination step {step}")
            }
            Error::BadShape { what } => write!(f, "bad matrix shape: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;
