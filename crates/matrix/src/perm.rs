//! Pivot-vector (`ipiv`) and permutation algebra.
//!
//! LAPACK expresses row pivoting as a sequence of transpositions: `ipiv[i]`
//! says "row `i` was swapped with row `ipiv[i]`" (applied in increasing `i`).
//! CALU composes several such sequences (one per panel, plus the tournament's
//! own permutations), so we also provide explicit permutation vectors:
//! `perm[i] = p` means row `i` of the permuted matrix is row `p` of the
//! original (`(P A)[i, :] = A[perm[i], :]`).

use crate::scalar::Scalar;
use crate::view::MatViewMut;

/// Applies the transposition sequence `ipiv` to the rows of `a`
/// (LAPACK `DLASWP` with increment +1): for `i` in order, swap rows
/// `i` and `ipiv[i]`.
pub fn apply_ipiv<T: Scalar>(mut a: MatViewMut<'_, T>, ipiv: &[usize]) {
    for (i, &p) in ipiv.iter().enumerate() {
        if p != i {
            a.swap_rows(i, p);
        }
    }
}

/// Applies the inverse of the transposition sequence (LAPACK `DLASWP` with
/// increment -1): for `i` in reverse order, swap rows `i` and `ipiv[i]`.
pub fn apply_ipiv_inv<T: Scalar>(mut a: MatViewMut<'_, T>, ipiv: &[usize]) {
    for (i, &p) in ipiv.iter().enumerate().rev() {
        if p != i {
            a.swap_rows(i, p);
        }
    }
}

/// Applies the transposition sequence to a vector.
pub fn apply_ipiv_vec<T: Scalar>(x: &mut [T], ipiv: &[usize]) {
    for (i, &p) in ipiv.iter().enumerate() {
        if p != i {
            x.swap(i, p);
        }
    }
}

/// Converts a transposition sequence over `m` rows into an explicit
/// permutation vector `perm` with `(P A)[i, :] = A[perm[i], :]`.
pub fn ipiv_to_perm(ipiv: &[usize], m: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..m).collect();
    for (i, &p) in ipiv.iter().enumerate() {
        perm.swap(i, p);
    }
    perm
}

/// Inverts a permutation vector: `inv[perm[i]] = i`.
///
/// # Panics
/// If `perm` is not a permutation of `0..len`.
pub fn invert_perm(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![usize::MAX; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        assert!(p < perm.len() && inv[p] == usize::MAX, "not a permutation");
        inv[p] = i;
    }
    inv
}

/// Composes permutations: returns `q ∘ p`, the permutation that first
/// applies `p` then `q` (as row selections: `result[i] = p[q[i]]`).
///
/// # Panics
/// If lengths differ.
pub fn compose(q: &[usize], p: &[usize]) -> Vec<usize> {
    assert_eq!(q.len(), p.len());
    q.iter().map(|&qi| p[qi]).collect()
}

/// `true` iff `perm` is a permutation of `0..perm.len()`.
pub fn is_permutation(perm: &[usize]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Gathers rows of `src` according to `perm` into a new matrix:
/// `out[i, :] = src[perm[i], :]`.
///
/// # Panics
/// If `perm.len() != src.rows()` or `perm` indexes out of range.
pub fn permute_rows<T: Scalar>(src: &crate::Matrix<T>, perm: &[usize]) -> crate::Matrix<T> {
    assert_eq!(perm.len(), src.rows());
    crate::Matrix::from_fn(src.rows(), src.cols(), |i, j| src[(perm[i], j)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn ipiv_round_trip() {
        let mut a = Matrix::from_fn(4, 2, |i, _| i as f64);
        let orig = a.clone();
        let ipiv = vec![2, 3, 2, 3];
        apply_ipiv(a.view_mut(), &ipiv);
        assert_ne!(a, orig);
        apply_ipiv_inv(a.view_mut(), &ipiv);
        assert_eq!(a, orig);
    }

    #[test]
    fn ipiv_to_perm_matches_apply() {
        let ipiv = vec![2, 3, 2, 3];
        let m = 5;
        let perm = ipiv_to_perm(&ipiv, m);
        assert!(is_permutation(&perm));
        let a = Matrix::from_fn(m, 3, |i, j| (10 * i + j) as f64);
        let mut b = a.clone();
        apply_ipiv(b.view_mut(), &ipiv);
        let c = permute_rows(&a, &perm);
        assert_eq!(b, c);
    }

    #[test]
    fn invert_then_compose_is_identity() {
        let perm = vec![3, 0, 4, 1, 2];
        let inv = invert_perm(&perm);
        let id = compose(&inv, &perm);
        assert_eq!(id, vec![0, 1, 2, 3, 4]);
        let id2 = compose(&perm, &inv);
        assert_eq!(id2, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn is_permutation_detects_bad_vectors() {
        assert!(is_permutation(&[0, 1, 2]));
        assert!(!is_permutation(&[0, 0, 2]));
        assert!(!is_permutation(&[0, 1, 3]));
        assert!(is_permutation(&[]));
    }

    #[test]
    fn apply_ipiv_vec_matches_matrix_apply() {
        let ipiv = vec![1, 2, 2];
        let mut x = vec![10.0, 20.0, 30.0];
        apply_ipiv_vec(&mut x, &ipiv);
        let mut a = Matrix::from_fn(3, 1, |i, _| (10 * (i + 1)) as f64);
        apply_ipiv(a.view_mut(), &ipiv);
        assert_eq!(x, a.col(0));
    }
}
