//! Level-3 kernels: cache-blocked `gemm` (serial and rayon-parallel) and the
//! four no-transpose `trsm` cases LU factorization needs.
//!
//! The `gemm` here follows the usual three-level blocking (NC/KC/MC) with a
//! rank-4-update inner kernel over contiguous columns, which the LLVM
//! auto-vectorizer handles well. It is not a tuned micro-kernel BLAS — the
//! paper's absolute GFLOP/s are reproduced under a machine model, not on the
//! host — but it keeps the laptop-scale stability experiments fast.

use crate::blas1::axpy;
use crate::scalar::Scalar;
use crate::view::{MatView, MatViewMut};
use crate::{Diag, Side, Uplo};

/// Column-block width processed per parallel task / outer loop step.
const NC: usize = 128;
/// K-block depth kept in cache between C updates.
const KC: usize = 256;
/// Row-block height of the packed A panel equivalent.
const MC: usize = 256;

/// `C = alpha * A * B + beta * C` (BLAS `DGEMM`, no transposes), serial.
///
/// Shapes: `A: m x k`, `B: k x n`, `C: m x n`.
///
/// # Panics
/// On dimension mismatch.
pub fn gemm<T: Scalar>(
    alpha: T,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    beta: T,
    mut c: MatViewMut<'_, T>,
) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "gemm: inner dimension mismatch");
    assert_eq!(c.rows(), m, "gemm: C rows mismatch");
    assert_eq!(c.cols(), n, "gemm: C cols mismatch");

    scale(beta, c.rb_mut());
    if alpha == T::ZERO || m == 0 || n == 0 || k == 0 {
        return;
    }

    let mut jc = 0;
    while jc < n {
        let nb = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kb = KC.min(k - pc);
            let mut ic = 0;
            while ic < m {
                let mb = MC.min(m - ic);
                let a_blk = a.submatrix(ic, pc, mb, kb);
                let b_blk = b.submatrix(pc, jc, kb, nb);
                let c_blk = c.submatrix_mut(ic, jc, mb, nb);
                block_kernel(alpha, a_blk, b_blk, c_blk);
                ic += mb;
            }
            pc += kb;
        }
        jc += nb;
    }
}

/// `C = alpha * A * B + beta * C`, splitting columns of `C` across the rayon
/// thread pool. Falls back to the serial path for small problems.
pub fn par_gemm<T: Scalar>(
    alpha: T,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    beta: T,
    c: MatViewMut<'_, T>,
) {
    let n = b.cols();
    let work = (a.rows() as u64) * (a.cols() as u64) * (n as u64);
    // Below ~8 Mflop the spawn overhead dominates on small core counts.
    if work < 4_000_000 || n < 2 * NC {
        gemm(alpha, a, b, beta, c);
        return;
    }
    par_gemm_cols(alpha, a, b, beta, c);
}

fn par_gemm_cols<T: Scalar>(
    alpha: T,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    beta: T,
    c: MatViewMut<'_, T>,
) {
    let n = c.cols();
    if n <= NC {
        gemm(alpha, a, b, beta, c);
        return;
    }
    let half = (n / 2 / NC).max(1) * NC;
    let (b_l, b_r) = b.split_at_col(half.min(n));
    let (c_l, c_r) = c.split_at_col_mut(half.min(n));
    rayon::join(
        || par_gemm_cols(alpha, a, b_l, beta, c_l),
        || par_gemm_cols(alpha, a, b_r, beta, c_r),
    );
}

/// Inner blocked kernel: `C += alpha * A * B` over one cache block, rank-4
/// updates down contiguous columns.
fn block_kernel<T: Scalar>(
    alpha: T,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    mut c: MatViewMut<'_, T>,
) {
    let kb = a.cols();
    let k4 = kb - kb % 4;
    for j in 0..b.cols() {
        let bcol = b.col(j);
        let ccol = c.col_mut(j);
        let mut l = 0;
        while l < k4 {
            let (b0, b1, b2, b3) =
                (alpha * bcol[l], alpha * bcol[l + 1], alpha * bcol[l + 2], alpha * bcol[l + 3]);
            let a0 = a.col(l);
            let a1 = a.col(l + 1);
            let a2 = a.col(l + 2);
            let a3 = a.col(l + 3);
            for (i, cv) in ccol.iter_mut().enumerate() {
                *cv += a0[i] * b0 + a1[i] * b1 + a2[i] * b2 + a3[i] * b3;
            }
            l += 4;
        }
        while l < kb {
            axpy(alpha * bcol[l], a.col(l), ccol);
            l += 1;
        }
    }
}

fn scale<T: Scalar>(beta: T, mut c: MatViewMut<'_, T>) {
    if beta == T::ONE {
        return;
    }
    for j in 0..c.cols() {
        if beta == T::ZERO {
            c.col_mut(j).fill(T::ZERO);
        } else {
            crate::blas1::scal(beta, c.col_mut(j));
        }
    }
}

/// Triangular solve with multiple right-hand sides (BLAS `DTRSM`, no
/// transpose): overwrites `B` with `alpha * op(A)^{-1} B` (`side == Left`)
/// or `alpha * B * op(A)^{-1}` (`side == Right`).
///
/// The four `side x uplo` combinations cover everything LU needs:
/// * `Left/Lower/Unit` — compute `U12 = L11^{-1} A12` in the trailing update;
/// * `Left/Upper/NonUnit` — back-substitution in solves;
/// * `Right/Upper/NonUnit` — TSLU step 6, `L_i = A_i U^{-1}`;
/// * `Right/Lower/Unit` — completes the API (used in tests).
///
/// # Panics
/// If `A` is not square or shapes mismatch.
pub fn trsm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    diag: Diag,
    alpha: T,
    a: MatView<'_, T>,
    mut b: MatViewMut<'_, T>,
) {
    let n_tri = a.rows();
    assert_eq!(a.cols(), n_tri, "trsm: A must be square");
    match side {
        Side::Left => assert_eq!(b.rows(), n_tri, "trsm: B rows != A order"),
        Side::Right => assert_eq!(b.cols(), n_tri, "trsm: B cols != A order"),
    }
    if alpha != T::ONE {
        scale(alpha, b.rb_mut());
    }
    if b.is_empty() {
        return;
    }
    match (side, uplo) {
        (Side::Left, Uplo::Lower) => {
            // Forward substitution, column by column of B.
            let m = b.rows();
            for j in 0..b.cols() {
                let bcol = b.col_mut(j);
                for k in 0..m {
                    if let Diag::NonUnit = diag {
                        bcol[k] /= a.get(k, k);
                    }
                    let bk = bcol[k];
                    if bk != T::ZERO {
                        let acol = a.col(k);
                        for i in k + 1..m {
                            bcol[i] -= acol[i] * bk;
                        }
                    }
                }
            }
        }
        (Side::Left, Uplo::Upper) => {
            let m = b.rows();
            for j in 0..b.cols() {
                let bcol = b.col_mut(j);
                for k in (0..m).rev() {
                    if let Diag::NonUnit = diag {
                        bcol[k] /= a.get(k, k);
                    }
                    let bk = bcol[k];
                    if bk != T::ZERO {
                        let acol = a.col(k);
                        for (i, bi) in bcol.iter_mut().enumerate().take(k) {
                            *bi -= acol[i] * bk;
                        }
                    }
                }
            }
        }
        (Side::Right, Uplo::Upper) => {
            // X U = B: columns left to right; x_j = (b_j - X[:, :j] u[:j, j]) / u_jj.
            let n = b.cols();
            for j in 0..n {
                for k in 0..j {
                    let u_kj = a.get(k, j);
                    if u_kj != T::ZERO {
                        let (xk, xj) = b.two_cols_mut(k, j);
                        axpy(-u_kj, xk, xj);
                    }
                }
                if let Diag::NonUnit = diag {
                    let inv = a.get(j, j).recip();
                    crate::blas1::scal(inv, b.col_mut(j));
                }
            }
        }
        (Side::Right, Uplo::Lower) => {
            // X L = B: columns right to left.
            let n = b.cols();
            for j in (0..n).rev() {
                for k in j + 1..n {
                    let l_kj = a.get(k, j);
                    if l_kj != T::ZERO {
                        let (xj, xk) = b.two_cols_mut(j, k);
                        axpy(-l_kj, xk, xj);
                    }
                }
                if let Diag::NonUnit = diag {
                    let inv = a.get(j, j).recip();
                    crate::blas1::scal(inv, b.col_mut(j));
                }
            }
        }
    }
}

/// Reference `gemm` as a naive triple loop; used by tests and property checks
/// to validate the blocked kernel.
pub fn gemm_naive<T: Scalar>(
    alpha: T,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    beta: T,
    mut c: MatViewMut<'_, T>,
) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k);
    assert_eq!(c.rows(), m);
    assert_eq!(c.cols(), n);
    for j in 0..n {
        for i in 0..m {
            let mut acc = T::ZERO;
            for l in 0..k {
                acc += a.get(i, l) * b.get(l, j);
            }
            let cur = c.get(i, j);
            c.set(i, j, alpha * acc + beta * cur);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        let d = a.max_abs_diff(b);
        assert!(d < tol, "matrices differ by {d}");
    }

    #[test]
    fn gemm_matches_naive_on_random_shapes() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in
            &[(1, 1, 1), (5, 3, 4), (37, 19, 23), (64, 64, 64), (129, 65, 140), (300, 17, 260)]
        {
            let a = gen::randn(&mut rng, m, k);
            let b = gen::randn(&mut rng, k, n);
            let c0 = gen::randn(&mut rng, m, n);
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            gemm(1.5, a.view(), b.view(), -0.5, c1.view_mut());
            gemm_naive(1.5, a.view(), b.view(), -0.5, c2.view_mut());
            assert_close(&c1, &c2, 1e-10 * (k as f64));
        }
    }

    #[test]
    fn par_gemm_matches_serial() {
        let mut rng = StdRng::seed_from_u64(8);
        let (m, k, n) = (150, 90, 310);
        let a = gen::randn(&mut rng, m, k);
        let b = gen::randn(&mut rng, k, n);
        let c0 = gen::randn(&mut rng, m, n);
        let mut c1 = c0.clone();
        let mut c2 = c0;
        gemm(1.0, a.view(), b.view(), 1.0, c1.view_mut());
        par_gemm(1.0, a.view(), b.view(), 1.0, c2.view_mut());
        assert_close(&c1, &c2, 1e-11 * (k as f64));
    }

    #[test]
    fn gemm_beta_zero_overwrites_nan() {
        // beta = 0 must overwrite even NaN garbage in C.
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::from_fn(2, 2, |_, _| f64::NAN);
        gemm(1.0, a.view(), b.view(), 0.0, c.view_mut());
        assert_eq!(c, Matrix::identity(2));
    }

    #[test]
    fn gemm_empty_k_scales_only() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::from_fn(3, 2, |_, _| 2.0);
        gemm(1.0, a.view(), b.view(), 0.5, c.view_mut());
        assert_eq!(c, Matrix::from_fn(3, 2, |_, _| 1.0));
    }

    fn random_lower_unit(rng: &mut StdRng, n: usize) -> Matrix {
        let mut l = gen::randn(rng, n, n);
        for i in 0..n {
            for j in 0..n {
                if j > i {
                    l[(i, j)] = 0.0;
                } else if j == i {
                    l[(i, j)] = 1.0;
                } else {
                    l[(i, j)] *= 0.3; // keep well-conditioned
                }
            }
        }
        l
    }

    fn random_upper(rng: &mut StdRng, n: usize) -> Matrix {
        let mut u = gen::randn(rng, n, n);
        for i in 0..n {
            for j in 0..n {
                if j < i {
                    u[(i, j)] = 0.0;
                } else if j == i {
                    u[(i, j)] = 2.0 + u[(i, j)].abs();
                }
            }
        }
        u
    }

    #[test]
    fn trsm_left_lower_unit_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = random_lower_unit(&mut rng, 17);
        let b0 = gen::randn(&mut rng, 17, 9);
        let mut x = b0.clone();
        trsm(Side::Left, Uplo::Lower, Diag::Unit, 1.0, l.view(), x.view_mut());
        let mut back = Matrix::zeros(17, 9);
        gemm(1.0, l.view(), x.view(), 0.0, back.view_mut());
        assert_close(&back, &b0, 1e-10);
    }

    #[test]
    fn trsm_left_upper_nonunit_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let u = random_upper(&mut rng, 13);
        let b0 = gen::randn(&mut rng, 13, 5);
        let mut x = b0.clone();
        trsm(Side::Left, Uplo::Upper, Diag::NonUnit, 1.0, u.view(), x.view_mut());
        let mut back = Matrix::zeros(13, 5);
        gemm(1.0, u.view(), x.view(), 0.0, back.view_mut());
        assert_close(&back, &b0, 1e-9);
    }

    #[test]
    fn trsm_right_upper_nonunit_round_trip() {
        // TSLU step 6: L = A U^{-1}  =>  L U = A.
        let mut rng = StdRng::seed_from_u64(5);
        let u = random_upper(&mut rng, 8);
        let a0 = gen::randn(&mut rng, 20, 8);
        let mut l = a0.clone();
        trsm(Side::Right, Uplo::Upper, Diag::NonUnit, 1.0, u.view(), l.view_mut());
        let mut back = Matrix::zeros(20, 8);
        gemm(1.0, l.view(), u.view(), 0.0, back.view_mut());
        assert_close(&back, &a0, 1e-9);
    }

    #[test]
    fn trsm_right_lower_unit_round_trip() {
        let mut rng = StdRng::seed_from_u64(6);
        let l_tri = random_lower_unit(&mut rng, 7);
        let b0 = gen::randn(&mut rng, 11, 7);
        let mut x = b0.clone();
        trsm(Side::Right, Uplo::Lower, Diag::Unit, 1.0, l_tri.view(), x.view_mut());
        let mut back = Matrix::zeros(11, 7);
        gemm(1.0, x.view(), l_tri.view(), 0.0, back.view_mut());
        assert_close(&back, &b0, 1e-10);
    }

    #[test]
    fn trsm_alpha_scales_rhs() {
        let l = Matrix::identity(3);
        let mut b = Matrix::from_fn(3, 2, |_, _| 1.0);
        trsm(Side::Left, Uplo::Lower, Diag::Unit, 2.0, l.view(), b.view_mut());
        assert_eq!(b, Matrix::from_fn(3, 2, |_, _| 2.0));
    }
}
