//! The [`Scalar`] abstraction: the floating-point element type every
//! kernel in this workspace is generic over.
//!
//! The paper's algorithms are precision-agnostic — tournament pivoting,
//! the blocked sweep, and the communication structure are identical
//! whether the words moved are 4 or 8 bytes — and restructuring LU around
//! precision pays the same way restructuring it around communication
//! does: factor fast in `f32`, refine cheaply in `f64`
//! (see `calu_core::solve::ir_solve`). Every kernel therefore takes
//! `T: Scalar`, with `f64` as the default type parameter so the original
//! double-precision API is unchanged at every call site.
//!
//! The trait is deliberately small: exactly the constants and operations
//! the kernels use (`abs`, `sqrt`, `max`/`min`, machine epsilon, f64
//! round trips for instrumentation and serialization), not a general
//! numeric tower. `from_f64`/`to_f64` are exact for every `f32` value,
//! which is what makes the mixed-precision payload round trips through
//! the netsim (`f64` words) bitwise faithful.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real floating-point scalar the dense kernels can be instantiated at.
///
/// Implemented for `f32` and `f64`. All arithmetic used by the kernels is
/// expressed through the standard operator traits plus the handful of
/// intrinsics below; algorithms must not assume a particular width — any
/// precision-dependent tolerance belongs to [`Scalar::EPSILON`].
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of this precision (`f32`: 2⁻²³, `f64`: 2⁻⁵²) —
    /// the knob every stability tolerance is parameterized by.
    const EPSILON: Self;
    /// Positive infinity.
    const INFINITY: Self;
    /// Negative infinity (the `iamax` scan seed).
    const NEG_INFINITY: Self;
    /// Short type name for reports and JSON records (`"f32"` / `"f64"`).
    const NAME: &'static str;
    /// Bytes per element (netsim words are scaled by this for β costs).
    const BYTES: usize;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// IEEE maximum (NaN-ignoring, like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// IEEE minimum (NaN-ignoring, like `f64::min`).
    fn min(self, other: Self) -> Self;
    /// Reciprocal `1/self`.
    fn recip(self) -> Self;
    /// Integer power.
    fn powi(self, n: i32) -> Self;
    /// `true` when neither infinite nor NaN.
    fn is_finite(self) -> bool;
    /// `true` when NaN.
    fn is_nan(self) -> bool;
    /// Rounds an `f64` into this precision (exact for `f64`; IEEE
    /// round-to-nearest for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widens to `f64` (exact for both implementations).
    fn to_f64(self) -> f64;

    /// `n` as a scalar (exact up to 2⁵³ for `f64`, 2²⁴ for `f32` — fine
    /// for the dimension-sized factors the kernels use).
    #[inline(always)]
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }
}

macro_rules! impl_scalar {
    ($t:ty, $name:literal) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const INFINITY: Self = <$t>::INFINITY;
            const NEG_INFINITY: Self = <$t>::NEG_INFINITY;
            const NAME: &'static str = $name;
            const BYTES: usize = std::mem::size_of::<$t>();

            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline(always)]
            fn recip(self) -> Self {
                self.recip()
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                self.powi(n)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            #[inline(always)]
            fn is_nan(self) -> bool {
                self.is_nan()
            }
            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    };
}

impl_scalar!(f32, "f32");
impl_scalar!(f64, "f64");

/// Rounds a slice into another precision (`f64 → f32` demotion and
/// `f32 → f64` exact promotion; used by the mixed-precision solver).
pub fn cast_slice<S: Scalar, D: Scalar>(src: &[S]) -> Vec<D> {
    src.iter().map(|&v| D::from_f64(v.to_f64())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eps_of<T: Scalar>() -> f64 {
        T::EPSILON.to_f64()
    }

    #[test]
    fn constants_match_std() {
        assert_eq!(eps_of::<f32>(), f32::EPSILON as f64);
        assert_eq!(eps_of::<f64>(), f64::EPSILON);
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f64::NAME, "f64");
    }

    #[test]
    fn f32_round_trip_through_f64_is_exact() {
        for v in [1.0f32, -0.1, 3.5e-30, f32::EPSILON, 1.0 + f32::EPSILON] {
            assert_eq!(f32::from_f64(v.to_f64()), v, "f32 values are exact f64s");
        }
    }

    #[test]
    fn generic_arithmetic_works_at_both_precisions() {
        fn quadratic<T: Scalar>(x: T) -> T {
            x * x + T::ONE
        }
        assert_eq!(quadratic(3.0f32), 10.0);
        assert_eq!(quadratic(3.0f64), 10.0);
        assert_eq!(T_from_usize::<f32>(7), 7.0);
        assert_eq!(T_from_usize::<f64>(7), 7.0);

        #[allow(non_snake_case)]
        fn T_from_usize<T: Scalar>(n: usize) -> T {
            T::from_usize(n)
        }
    }

    #[test]
    fn cast_slice_demotes_and_promotes() {
        let xs = [1.0f64, 0.1, -2.5];
        let lo: Vec<f32> = cast_slice(&xs);
        assert_eq!(lo[2], -2.5f32);
        let back: Vec<f64> = cast_slice(&lo);
        assert_eq!(back[0], 1.0);
        assert_ne!(back[1], 0.1, "0.1 is not representable in f32");
    }
}
