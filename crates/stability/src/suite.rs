//! Experiment drivers for Tables 1-2 and Figure 2: factor a sampled random
//! matrix with CALU or GEPP, record growth/threshold statistics, solve an
//! HPL-style system, and report one table row.

use crate::residuals::{componentwise_backward_error, hpl_tests, HplReport};
use calu_core::{
    calu_inplace, gepp_inplace, rt::runtime_calu_inplace, rt::RuntimeOpts, CaluOpts, LuFactors,
    PanelMode, PivotStats,
};
use calu_matrix::gen;
use calu_matrix::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One row of Table 1 / Table 2 (averaged over `samples`).
#[derive(Debug, Clone)]
pub struct StabilityRow {
    /// Matrix order.
    pub n: usize,
    /// Tournament height `Pr` (0 for GEPP).
    pub p: usize,
    /// Block size `b` (the GEPP baseline uses its own blocking).
    pub b: usize,
    /// Samples averaged.
    pub samples: usize,
    /// Mean growth factor `gT`.
    pub g_t: f64,
    /// Mean average threshold `τ_ave` (1.0 for GEPP).
    pub tau_ave: f64,
    /// Minimum threshold over all samples and steps.
    pub tau_min: f64,
    /// Mean componentwise backward error before refinement.
    pub wb: f64,
    /// Mean HPL residuals.
    pub hpl: HplReport,
    /// Maximum `|L|` entry over all samples.
    pub max_l: f64,
}

/// The paper's sample-size rule for Table 1: `S = max(10 · 2^(10−k), 3)`
/// for `n = 2^k` (e.g. 10 samples at n=1024, 3 at n=8192). Non-powers of
/// two round `k` down.
pub fn hpl_sample_size(n: usize) -> usize {
    let k = (usize::BITS - 1 - n.max(1).leading_zeros()) as i32;
    let s = 10.0 * 2f64.powi(10 - k);
    (s as usize).max(3)
}

fn one_case(
    n: usize,
    seed: u64,
    factor: impl Fn(&Matrix, &mut PivotStats) -> LuFactors,
) -> (PivotStats, f64, HplReport) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = gen::randn(&mut rng, n, n);
    let b = gen::hpl_rhs(&mut rng, n);
    let mut stats = PivotStats::new(a.max_abs());
    let f = factor(&a, &mut stats);
    let x = f.solve(&b);
    let wb = componentwise_backward_error(&a, &x, &b);
    let hpl = hpl_tests(&a, &x, &b);
    (stats, wb, hpl)
}

fn aggregate(
    n: usize,
    p: usize,
    b: usize,
    samples: usize,
    seed0: u64,
    factor: impl Fn(&Matrix, &mut PivotStats) -> LuFactors,
) -> StabilityRow {
    let mut g_t = 0.0;
    let mut tau_ave = 0.0;
    let mut tau_min = f64::INFINITY;
    let mut wb_sum = 0.0;
    let mut h1 = 0.0;
    let mut h2 = 0.0;
    let mut h3 = 0.0;
    let mut max_l = 0.0_f64;
    for s in 0..samples {
        let (stats, wb, hpl) = one_case(n, seed0 + s as u64, &factor);
        g_t += stats.growth_factor(1.0);
        tau_ave += stats.tau_ave();
        tau_min = tau_min.min(stats.tau_min());
        max_l = max_l.max(stats.max_l);
        wb_sum += wb;
        h1 += hpl.hpl1;
        h2 += hpl.hpl2;
        h3 += hpl.hpl3;
    }
    let sf = samples as f64;
    StabilityRow {
        n,
        p,
        b,
        samples,
        g_t: g_t / sf,
        tau_ave: tau_ave / sf,
        tau_min,
        wb: wb_sum / sf,
        hpl: HplReport { hpl1: h1 / sf, hpl2: h2 / sf, hpl3: h3 / sf },
        max_l,
    }
}

/// Runs one Table 1 cell: CALU with ca-pivoting at `(n, Pr = p, b)` over
/// `samples` seeded instances.
pub fn run_calu_case(n: usize, p: usize, b: usize, samples: usize, seed0: u64) -> StabilityRow {
    aggregate(n, p, b, samples, seed0, |a, stats| {
        let mut lu = a.clone();
        let ipiv = calu_inplace(
            lu.view_mut(),
            CaluOpts { block: b, p, parallel_update: true, ..Default::default() },
            stats,
        )
        .expect("random normal matrices are numerically nonsingular");
        LuFactors { lu, ipiv }
    })
}

/// Runs one Table 2 cell: GEPP at order `n` over `samples` instances.
pub fn run_gepp_case(n: usize, b: usize, samples: usize, seed0: u64) -> StabilityRow {
    aggregate(n, 0, b, samples, seed0, |a, stats| {
        let mut lu = a.clone();
        let ipiv = gepp_inplace(lu.view_mut(), b, stats).expect("nonsingular");
        LuFactors { lu, ipiv }
    })
}

/// Matrix ensemble for [`run_calu_ensemble_case`] — the paper reports
/// "similar results" for ca-pivoting on "different random distributions"
/// and "dense Toeplitz matrices" (Section 6.1); the structured ensembles
/// extend the sweep to conditioning and growth stressors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ensemble {
    /// Standard normal entries (the headline ensemble).
    Normal,
    /// Uniform `[-1, 1)` entries.
    Uniform,
    /// Dense Toeplitz with N(0,1) diagonals.
    Toeplitz,
    /// Orthogonally mixed graded singular values, `κ₂ = 10^8` (`randsvd`):
    /// ill-conditioned but growth-benign.
    Graded,
    /// Sylvester Hadamard matrix (deterministic; `n` rounds down to a power
    /// of two): GEPP growth exactly `n`, a structured mid-scale control.
    Hadamard,
}

impl Ensemble {
    /// Element standard deviation for the Trefethen-Schreiber `gT`
    /// normalization (structured ensembles use 1: absolute growth).
    pub fn sigma(self) -> f64 {
        match self {
            Ensemble::Uniform => (1.0f64 / 3.0).sqrt(), // std of U[-1,1)
            _ => 1.0,
        }
    }

    /// Draws one sample of the ensemble at order `n`.
    pub fn sample(self, rng: &mut StdRng, n: usize) -> Matrix {
        match self {
            Ensemble::Normal => gen::randn(rng, n, n),
            Ensemble::Uniform => gen::uniform(rng, n, n, -1.0, 1.0),
            Ensemble::Toeplitz => gen::randn_toeplitz(rng, n),
            Ensemble::Graded => gen::randsvd(rng, n, 1e8),
            Ensemble::Hadamard => {
                let n2 = if n.is_power_of_two() { n } else { n.next_power_of_two() / 2 };
                gen::hadamard(n2.max(2))
            }
        }
    }
}

/// Like [`run_calu_case`] but over a chosen ensemble. Growth factors are
/// normalized by the ensemble's element standard deviation.
pub fn run_calu_ensemble_case(
    ens: Ensemble,
    n: usize,
    p: usize,
    b: usize,
    samples: usize,
    seed0: u64,
) -> StabilityRow {
    let factor = move |a: &Matrix, stats: &mut PivotStats| {
        let mut lu = a.clone();
        let ipiv = calu_inplace(
            lu.view_mut(),
            CaluOpts { block: b, p, parallel_update: true, ..Default::default() },
            stats,
        )
        .expect("nonsingular");
        LuFactors { lu, ipiv }
    };
    let mut row = aggregate_ens(ens, n, p, b, samples, seed0, factor);
    row.g_t /= ens.sigma();
    row
}

/// GEPP over a chosen ensemble — the Table-2-style baseline for
/// [`run_calu_ensemble_case`].
pub fn run_gepp_ensemble_case(
    ens: Ensemble,
    n: usize,
    b: usize,
    samples: usize,
    seed0: u64,
) -> StabilityRow {
    let factor = move |a: &Matrix, stats: &mut PivotStats| {
        let mut lu = a.clone();
        let ipiv = gepp_inplace(lu.view_mut(), b, stats).expect("nonsingular");
        LuFactors { lu, ipiv }
    };
    let mut row = aggregate_ens(ens, n, 0, b, samples, seed0, factor);
    row.g_t /= ens.sigma();
    row
}

/// Like [`run_calu_ensemble_case`] but factoring on the task-graph
/// runtime with the tile-resident panel subgraph
/// ([`PanelMode::Resident`]). The resident tournament folds tile-height
/// leaves (`n.div_ceil(b)` of them, recorded as the row's `p`) instead of
/// `Pr` blocks — a *different* deterministic tree — so its rows are held
/// to the same CALU stability gates as the gathered rows, not compared
/// bit-for-bit.
pub fn run_resident_ensemble_case(
    ens: Ensemble,
    n: usize,
    b: usize,
    samples: usize,
    seed0: u64,
) -> StabilityRow {
    let factor = move |a: &Matrix, stats: &mut PivotStats| {
        let mut lu = a.clone();
        let (ipiv, _report) = runtime_calu_inplace(
            lu.view_mut(),
            CaluOpts { block: b, panel_mode: PanelMode::Resident, ..Default::default() },
            RuntimeOpts::default(),
            stats,
        )
        .expect("nonsingular");
        LuFactors { lu, ipiv }
    };
    let mut row = aggregate_ens(ens, n, n.div_ceil(b), b, samples, seed0, factor);
    row.g_t /= ens.sigma();
    row
}

fn aggregate_ens(
    ens: Ensemble,
    n: usize,
    p: usize,
    b: usize,
    samples: usize,
    seed0: u64,
    factor: impl Fn(&Matrix, &mut PivotStats) -> LuFactors,
) -> StabilityRow {
    let mut g_t = 0.0;
    let mut tau_ave = 0.0;
    let mut tau_min = f64::INFINITY;
    let mut wb_sum = 0.0;
    let (mut h1, mut h2, mut h3) = (0.0, 0.0, 0.0);
    let mut max_l = 0.0_f64;
    for s in 0..samples {
        let mut rng = StdRng::seed_from_u64(seed0 + s as u64);
        let a = ens.sample(&mut rng, n);
        let n = a.rows(); // Hadamard may round the order
        let bvec = gen::hpl_rhs(&mut rng, n);
        let mut stats = PivotStats::new(a.max_abs());
        let f = factor(&a, &mut stats);
        let x = f.solve(&bvec);
        g_t += stats.growth_factor(1.0);
        tau_ave += stats.tau_ave();
        tau_min = tau_min.min(stats.tau_min());
        max_l = max_l.max(stats.max_l);
        wb_sum += componentwise_backward_error(&a, &x, &bvec);
        let hpl = hpl_tests(&a, &x, &bvec);
        h1 += hpl.hpl1;
        h2 += hpl.hpl2;
        h3 += hpl.hpl3;
    }
    let sf = samples as f64;
    StabilityRow {
        n,
        p,
        b,
        samples,
        g_t: g_t / sf,
        tau_ave: tau_ave / sf,
        tau_min,
        wb: wb_sum / sf,
        hpl: HplReport { hpl1: h1 / sf, hpl2: h2 / sf, hpl3: h3 / sf },
        max_l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_rule_matches_paper() {
        // Table 1 caption: n = 2^k -> S = max(10*2^(10-k), 3); Table 2
        // lists S = 5 at 2^11..2^13? The paper's Table 2 shows S=5 for
        // n=2^11..2^13 and S=10 at 2^10; the rule in the Table 1 caption
        // gives:
        assert_eq!(hpl_sample_size(1024), 10);
        assert_eq!(hpl_sample_size(2048), 5);
        assert_eq!(hpl_sample_size(4096), 3);
        assert_eq!(hpl_sample_size(8192), 3);
    }

    #[test]
    fn calu_row_sane_statistics() {
        let row = run_calu_case(96, 4, 16, 2, 7);
        assert_eq!(row.samples, 2);
        assert!(row.g_t > 1.0 && row.g_t < 500.0, "gT = {}", row.g_t);
        assert!(row.tau_min > 0.1 && row.tau_min <= 1.0, "tau_min = {}", row.tau_min);
        assert!(row.tau_ave >= row.tau_min && row.tau_ave <= 1.0);
        assert!(row.wb < 1e-11, "wb = {}", row.wb);
        assert!(row.hpl.passes(), "{:?}", row.hpl);
        assert!(row.max_l < 10.0);
    }

    #[test]
    fn gepp_row_has_unit_thresholds() {
        let row = run_gepp_case(96, 16, 2, 11);
        assert!((row.tau_min - 1.0).abs() < 1e-14);
        assert!((row.tau_ave - 1.0).abs() < 1e-14);
        assert!(row.max_l <= 1.0 + 1e-14);
        assert!(row.hpl.passes());
    }

    #[test]
    fn other_ensembles_behave_like_normal() {
        // Paper Section 6.1: "we have performed experiments on different
        // matrices, as matrices following different random distributions,
        // dense Toeplitz matrices, and we have obtained similar results."
        let n = 96;
        for ens in [Ensemble::Uniform, Ensemble::Toeplitz] {
            let row = run_calu_ensemble_case(ens, n, 4, 16, 2, 31);
            assert!(row.hpl.passes(), "{ens:?}: {:?}", row.hpl);
            assert!(row.tau_min > 0.1, "{ens:?}: tau_min {}", row.tau_min);
            assert!(row.max_l < 10.0, "{ens:?}: |L| {}", row.max_l);
            assert!(row.wb < 1e-10, "{ens:?}: wb {}", row.wb);
        }
    }

    #[test]
    fn graded_ensemble_is_ill_conditioned_but_growth_benign() {
        // randsvd(kappa=1e8): pivot quality and growth stay healthy —
        // conditioning, not the factorization, is the problem. HPL2 is
        // scaled by ||x||_1 and passes; HPL1 is *not* condition-robust
        // (HPL assumes its own well-conditioned random inputs) and
        // correctly blows up, which is worth pinning down as a negative
        // control. The backward error wb stays at machine level: the
        // factorization is backward stable regardless of kappa.
        let row = run_calu_ensemble_case(Ensemble::Graded, 64, 4, 16, 2, 41);
        assert!(row.tau_min > 0.1, "tau_min {}", row.tau_min);
        assert!(row.g_t < 64.0, "graded matrices do not blow up: gT {}", row.g_t);
        assert!(row.hpl.hpl2 < 16.0, "HPL2 is ||x||-scaled: {:?}", row.hpl);
        assert!(row.hpl.hpl1 > 16.0, "HPL1 must expose the conditioning: {:?}", row.hpl);
        assert!(row.wb < 1e-8, "backward error is condition-independent: {}", row.wb);
    }

    #[test]
    fn hadamard_growth_is_order_n_for_both_pivotings() {
        // GEPP growth on a Hadamard matrix is exactly n; ca-pivoting's
        // should be within a small factor (threshold pivoting bound).
        let n = 64;
        let c = run_calu_ensemble_case(Ensemble::Hadamard, n, 4, 16, 1, 51);
        let g = run_gepp_ensemble_case(Ensemble::Hadamard, n, 16, 1, 51);
        assert!(g.g_t >= n as f64 * 0.99, "GEPP Hadamard growth ~n, got {}", g.g_t);
        assert!(c.g_t >= n as f64 * 0.5 && c.g_t <= n as f64 * 8.0, "CALU growth {}", c.g_t);
        assert!(c.hpl.passes() && g.hpl.passes());
    }

    #[test]
    fn gepp_ensemble_runner_keeps_unit_thresholds() {
        for ens in [Ensemble::Uniform, Ensemble::Toeplitz, Ensemble::Graded] {
            let row = run_gepp_ensemble_case(ens, 64, 16, 2, 61);
            assert!((row.tau_min - 1.0).abs() < 1e-14, "{ens:?}");
            assert!(row.max_l <= 1.0 + 1e-14, "{ens:?}");
        }
    }

    #[test]
    fn resident_panel_growth_within_calu_gates_on_adversarial_ensembles() {
        // The tile-resident panel subgraph elects through a different
        // deterministic tree; its pivot quality must stay within the same
        // stability envelope as the gathered CALU rows on the adversarial
        // ensembles — thresholds bounded away from zero, growth and
        // backward error the same order of magnitude.
        let n = 96;
        for ens in [Ensemble::Uniform, Ensemble::Toeplitz, Ensemble::Hadamard] {
            let g = run_calu_ensemble_case(ens, n, 4, 16, 2, 71);
            let r = run_resident_ensemble_case(ens, n, 16, 2, 71);
            assert!(r.tau_min > 0.05, "{ens:?}: resident tau_min {}", r.tau_min);
            assert!(
                r.g_t <= 8.0 * g.g_t.max(1.0),
                "{ens:?}: resident gT {} vs gathered {}",
                r.g_t,
                g.g_t
            );
            assert!(
                r.wb <= 50.0 * g.wb.max(1e-16),
                "{ens:?}: resident wb {} vs gathered {}",
                r.wb,
                g.wb
            );
            assert!(r.hpl.hpl2 < 16.0, "{ens:?}: resident HPL2 {:?}", r.hpl);
            // The gathered identity |L| <= 1/tau_min does not transfer:
            // resident thresholds are measured within the diagonal tile
            // while multipliers span every tile. The practical gate is the
            // same modest |L| ceiling the gathered ensembles satisfy.
            assert!(r.max_l < 10.0, "{ens:?}: resident |L| {}", r.max_l);
        }
    }

    #[test]
    fn calu_and_gepp_same_order_of_magnitude() {
        // The paper's conclusion from Tables 1-2: same orders of magnitude
        // for wb and the HPL residuals.
        let c = run_calu_case(128, 8, 16, 2, 21);
        let g = run_gepp_case(128, 16, 2, 21);
        assert!(c.wb < 50.0 * g.wb, "CALU wb {} vs GEPP wb {}", c.wb, g.wb);
        assert!(c.g_t < 8.0 * g.g_t, "CALU gT {} vs GEPP gT {}", c.g_t, g.g_t);
    }
}
