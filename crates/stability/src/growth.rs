//! Growth-factor analysis (Trefethen & Schreiber 1990, the paper's
//! reference \[10\]).
//!
//! Figure 2 (left) plots the measured `gT` for ca-pivoting against the
//! empirical laws `n^(2/3)` (partial pivoting) and `2·n^(2/3)`; the growth
//! itself is tracked by `calu_core::PivotStats` during factorization.

/// The empirical reference curve `c * n^(2/3)` from Trefethen-Schreiber:
/// `c = 1` approximates partial pivoting on random normal matrices; the
/// paper observes ca-pivoting stays under `c ≈ 1.5-2`.
pub fn growth_reference(n: usize, c: f64) -> f64 {
    c * (n as f64).powf(2.0 / 3.0)
}

/// Sample statistics helper: mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample statistics helper: population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_core::{calu_inplace, CaluOpts, PivotStats};
    use calu_matrix::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_curve_values() {
        assert!((growth_reference(1024, 1.0) - 101.59).abs() < 0.1);
        assert!((growth_reference(4096, 2.0) - 2.0 * 256.0).abs() < 1.0);
    }

    #[test]
    fn calu_growth_tracks_n_two_thirds() {
        // The paper's Figure 2 (left): gT for ca-pivoting stays within a
        // small constant of n^(2/3). Test at modest n with two samples.
        let mut rng = StdRng::seed_from_u64(181);
        for &n in &[128usize, 256] {
            let mut gs = Vec::new();
            for _ in 0..2 {
                let a = gen::randn(&mut rng, n, n);
                let mut stats = PivotStats::new(a.max_abs());
                let mut work = a.clone();
                calu_inplace(
                    work.view_mut(),
                    CaluOpts { block: 32, p: 4, ..Default::default() },
                    &mut stats,
                )
                .unwrap();
                gs.push(stats.growth_factor(1.0));
            }
            let g = mean(&gs);
            let lo = growth_reference(n, 0.3);
            let hi = growth_reference(n, 6.0);
            assert!(g > lo && g < hi, "n={n}: gT={g} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn gfpp_dial_interpolates_growth() {
        // The tunable adversary gen::gfpp(n, h) produces growth (1+h)^(n-1)
        // under partial pivoting; ca-pivoting reproduces the same curve
        // (same pivots on this structured family). A dial between benign
        // and Wilkinson-catastrophic validates the growth instrumentation
        // across orders of magnitude.
        let n = 20;
        for &h in &[0.25_f64, 0.5, 1.0] {
            let a = gen::gfpp(n, h);
            let mut stats = PivotStats::new(a.max_abs());
            let mut work = a.clone();
            calu_inplace(
                work.view_mut(),
                CaluOpts { block: 5, p: 4, ..Default::default() },
                &mut stats,
            )
            .unwrap();
            let want = (1.0 + h).powi(n as i32 - 1);
            assert!(
                stats.max_elem >= want * 0.98 && stats.max_elem <= want * 1.02,
                "h={h}: growth {} vs theory {want}",
                stats.max_elem
            );
        }
    }

    #[test]
    fn growth_increases_with_matrix_size() {
        // Sanity on the gT ~ n^(2/3) trend direction: bigger n, bigger gT
        // (in distribution; two samples averaged is enough for 4x sizes).
        let mut rng = StdRng::seed_from_u64(182);
        let g = |n: usize, rng: &mut StdRng| {
            let mut acc = 0.0;
            for _ in 0..2 {
                let a = gen::randn(rng, n, n);
                let mut stats = PivotStats::new(a.max_abs());
                let mut w = a.clone();
                calu_inplace(
                    w.view_mut(),
                    CaluOpts { block: 16, p: 4, ..Default::default() },
                    &mut stats,
                )
                .unwrap();
                acc += stats.growth_factor(1.0);
            }
            acc / 2.0
        };
        let g64 = g(64, &mut rng);
        let g256 = g(256, &mut rng);
        assert!(g256 > g64, "growth must trend up with n: {g64} -> {g256}");
    }
}
