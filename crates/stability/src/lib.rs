//! # calu-stability — the paper's numerical-stability laboratory
//!
//! Section 6.1 of *Communication Avoiding Gaussian Elimination* argues that
//! ca-pivoting is "as stable as Gaussian elimination with partial pivoting
//! in practice" via four instruments, all implemented here:
//!
//! * the **Trefethen-Schreiber growth factor** `gT = max |a_ij^(k)| / σ_A`
//!   ([`growth`]) — Figure 2 (left) shows `gT ≈ c·n^(2/3)` for ca-pivoting,
//!   the same law as partial pivoting;
//! * the **pivot threshold** `τ` — Figure 2 (right) shows `τ_min ≥ 0.33`,
//!   i.e. `|L| ≤ 3` (collected by `calu-core`'s `PivotStats`);
//! * the **HPL accuracy tests** `HPL1/2/3` and the componentwise backward
//!   error `wb` ([`residuals`]) — Tables 1-2;
//! * sampling drivers with the paper's sample-size rule
//!   `S = max(10·2^(10−k), 3)` for `n = 2^k` ([`suite`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod growth;
pub mod residuals;
pub mod suite;

pub use growth::growth_reference;
pub use residuals::{backward_error_inf, componentwise_backward_error, hpl_tests, HplReport};
pub use suite::{
    hpl_sample_size, run_calu_case, run_calu_ensemble_case, run_gepp_case, run_gepp_ensemble_case,
    run_resident_ensemble_case, Ensemble, StabilityRow,
};
