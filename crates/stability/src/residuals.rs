//! HPL accuracy tests and backward errors (paper Section 6.1).
//!
//! The three residuals computed by the HPL benchmark driver, which the
//! paper uses as its accuracy gate ("the accuracy tests are passed if the
//! values of the three quantities are smaller than 16"):
//!
//! ```text
//! HPL1 = ||Ax − b||_inf / (ε ||A||_1 · N)
//! HPL2 = ||Ax − b||_inf / (ε ||A||_1 ||x||_1)
//! HPL3 = ||Ax − b||_inf / (ε ||A||_inf ||x||_inf · N)
//! ```
//!
//! plus the componentwise backward error
//! `wb = max_i |r_i| / (|A|·|x| + |b|)_i` (Oettli-Prager), the paper's `wb`
//! column.

use calu_matrix::blas2::gemv;
use calu_matrix::norms::{mat_norm_inf, vec_norm_inf};
use calu_matrix::{Matrix, Scalar};

/// The three HPL residuals for a computed solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HplReport {
    /// `||Ax − b||_inf / (ε ||A||_1 N)`.
    pub hpl1: f64,
    /// `||Ax − b||_inf / (ε ||A||_1 ||x||_1)`.
    pub hpl2: f64,
    /// `||Ax − b||_inf / (ε ||A||_inf ||x||_inf N)`.
    pub hpl3: f64,
}

impl HplReport {
    /// HPL's pass criterion: all three below 16.
    pub fn passes(&self) -> bool {
        self.hpl1 < 16.0 && self.hpl2 < 16.0 && self.hpl3 < 16.0
    }
}

/// Residual vector `r = b − A x`, computed at the matrix's precision.
pub fn residual<T: Scalar>(a: &Matrix<T>, x: &[T], b: &[T]) -> Vec<T> {
    let mut r = b.to_vec();
    gemv(-T::ONE, a.view(), x, T::ONE, &mut r);
    r
}

/// The three HPL residual tests, at the working precision `T`: residual
/// and norms are computed in `T`, and ε is `T::EPSILON` — so the gate asks
/// the same question at every precision ("is the error a small multiple of
/// this arithmetic's unit roundoff?"). A well-converged `f32` solve passes
/// the `f32` gate with the same ~O(1) values an `f64` solve shows on the
/// `f64` gate.
///
/// # Panics
/// On dimension mismatch.
pub fn hpl_tests<T: Scalar>(a: &Matrix<T>, x: &[T], b: &[T]) -> HplReport {
    let r = residual(a, x, b);
    let [hpl1, hpl2, hpl3] = calu_matrix::norms::hpl_residuals(a.view(), x, &r);
    HplReport { hpl1, hpl2, hpl3 }
}

/// Componentwise (Oettli-Prager) backward error
/// `wb = max_i |r_i| / (|A|·|x| + |b|)_i`; entries with a zero denominator
/// are skipped (they have a zero numerator too for consistent systems).
pub fn componentwise_backward_error<T: Scalar>(a: &Matrix<T>, x: &[T], b: &[T]) -> f64 {
    let r = residual(a, x, b);
    // denom = |A| |x| + |b|.
    let n = a.rows();
    let mut denom = vec![T::ZERO; n];
    for (j, xv) in x.iter().enumerate() {
        let xj = xv.abs();
        for (d, &v) in denom.iter_mut().zip(a.col(j)) {
            *d += v.abs() * xj;
        }
    }
    for (d, &bi) in denom.iter_mut().zip(b) {
        *d += bi.abs();
    }
    let mut wb = 0.0_f64;
    for (ri, di) in r.iter().zip(&denom) {
        if *di > T::ZERO {
            wb = wb.max((ri.abs() / *di).to_f64());
        }
    }
    wb
}

/// Normwise backward error `||Ax − b||_inf / (||A||_inf ||x||_inf + ||b||_inf)`.
pub fn backward_error_inf<T: Scalar>(a: &Matrix<T>, x: &[T], b: &[T]) -> f64 {
    let r = residual(a, x, b);
    let denom = mat_norm_inf(a.view()) * vec_norm_inf(x) + vec_norm_inf(b);
    if denom == T::ZERO {
        0.0
    } else {
        (vec_norm_inf(&r) / denom).to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_core::{calu_factor, CaluOpts};
    use calu_matrix::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_solution_has_zero_residuals() {
        let a = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = b.clone();
        let rep = hpl_tests(&a, &x, &b);
        assert_eq!(rep.hpl1, 0.0);
        assert_eq!(rep.hpl2, 0.0);
        assert_eq!(rep.hpl3, 0.0);
        assert!(rep.passes());
        assert_eq!(componentwise_backward_error(&a, &x, &b), 0.0);
    }

    #[test]
    fn calu_solution_passes_hpl_gates() {
        let mut rng = StdRng::seed_from_u64(171);
        let n = 128;
        let a: Matrix = gen::randn(&mut rng, n, n);
        let b = gen::hpl_rhs(&mut rng, n);
        let f = calu_factor(&a, CaluOpts { block: 16, p: 8, ..Default::default() }).unwrap();
        let x = f.solve(&b);
        let rep = hpl_tests(&a, &x, &b);
        assert!(rep.passes(), "{rep:?}");
        let wb = componentwise_backward_error(&a, &x, &b);
        assert!(wb < 1e-11, "wb = {wb}");
    }

    #[test]
    fn perturbed_solution_fails_gates() {
        let mut rng = StdRng::seed_from_u64(172);
        let n = 64;
        let a: Matrix = gen::randn(&mut rng, n, n);
        let b = gen::hpl_rhs(&mut rng, n);
        let f = calu_factor(&a, CaluOpts::default()).unwrap();
        let mut x = f.solve(&b);
        x[0] += 1.0; // gross error
        let rep = hpl_tests(&a, &x, &b);
        assert!(!rep.passes(), "a grossly wrong solution must fail: {rep:?}");
    }

    #[test]
    fn backward_error_scale_invariant() {
        let mut rng = StdRng::seed_from_u64(173);
        let n = 32;
        let a = gen::randn(&mut rng, n, n);
        let b = gen::hpl_rhs(&mut rng, n);
        let f = calu_factor(&a, CaluOpts::default()).unwrap();
        let x = f.solve(&b);
        let w1 = componentwise_backward_error(&a, &x, &b);

        // Scale the whole system by a power of two: every intermediate
        // rounds identically, so wb is *exactly* unchanged.
        let a2 = Matrix::from_fn(n, n, |i, j| 1024.0 * a[(i, j)]);
        let b2: Vec<f64> = b.iter().map(|v| v * 1024.0).collect();
        let w2 = componentwise_backward_error(&a2, &x, &b2);
        assert_eq!(w1, w2);
    }
}
