//! Equations (1)-(3) from the paper, Section 3-5.
//!
//! Conventions (the paper's): `γ` is time per flop, `γd` per divide, a
//! message of `w` words costs `α + wβ`, with column-direction (`αc`, `βc`)
//! and row-direction (`αr`, `βr`) parameters. Broadcasts/combines over `P`
//! processors are approximated as `log2 P` identical steps. Low-order terms
//! are omitted exactly where the paper omits them.
//!
//! For `γ` we take the machine's BLAS-3 rate (`gamma3`), since the paper's
//! estimates fold all arithmetic into one rate; `model_check` quantifies
//! the gap against the multi-rate discrete-event simulation.

use calu_netsim::MachineConfig;

/// A runtime split into the three cost classes of the α-β-γ model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Arithmetic time (γ and γd terms), seconds.
    pub compute: f64,
    /// Latency time (α terms), seconds.
    pub latency: f64,
    /// Bandwidth time (β terms), seconds.
    pub bandwidth: f64,
}

impl CostBreakdown {
    /// Total modeled runtime.
    pub fn total(&self) -> f64 {
        self.compute + self.latency + self.bandwidth
    }

    /// Fraction of the total spent on latency (the paper's target
    /// bottleneck).
    pub fn latency_fraction(&self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            self.latency / t
        } else {
            0.0
        }
    }
}

fn log2f(p: usize) -> f64 {
    assert!(p >= 1);
    (p as f64).log2()
}

/// Equation (1): TSLU on an `m x b` panel over `P` processors (1D layout).
///
/// ```text
/// T = [2mb²/P + 2b³/3 (log2 P − 1)] γ
///   + b (log2 P + 1) γd
///   + log2 P α + b² log2 P β
/// ```
pub fn t_tslu(mch: &MachineConfig, m: usize, b: usize, p: usize) -> CostBreakdown {
    let (mf, bf, lg) = (m as f64, b as f64, log2f(p));
    let gamma = mch.gamma3;
    let compute = (2.0 * mf * bf * bf / p as f64 + 2.0 * bf.powi(3) / 3.0 * (lg - 1.0).max(0.0))
        * gamma
        + bf * (lg + 1.0) * mch.gamma_div;
    let latency = lg * mch.alpha_col;
    let bandwidth = bf * bf * lg * mch.beta_col;
    CostBreakdown { compute, latency, bandwidth }
}

/// Equation (2): CALU on an `m x n` matrix over a `Pr x Pc` grid with block
/// size `b`.
///
/// ```text
/// T = [ (mn² − n³/3)/P + 2b(mn − n²/2)/Pr + n²b/(2Pc) + 2nb²/3 (log2 Pr − 1) ] γ
///   + n (log2 Pr + 1) γd
///   + log2 Pr [ 3(n/b) αc + (nb/2 + 3n²/(2Pc)) βc ]
///   + log2 Pc [ 3(n/b) αr + (mn − n²/2)/Pr βr ]
/// ```
///
/// ```
/// use calu_netsim::MachineConfig;
/// use calu_perfmodel::{t_calu, t_pdgetrf};
///
/// // The paper's best regime: small matrix, many processors.
/// let m = MachineConfig::power5();
/// let calu = t_calu(&m, 1000, 1000, 50, 8, 8);
/// let pdg = t_pdgetrf(&m, 1000, 1000, 50, 8, 8);
/// assert!(pdg.total() / calu.total() > 1.2, "CALU wins where latency dominates");
/// assert!(pdg.latency > calu.latency * 5.0, "by sending ~b times fewer messages");
/// ```
pub fn t_calu(
    mch: &MachineConfig,
    m: usize,
    n: usize,
    b: usize,
    pr: usize,
    pc: usize,
) -> CostBreakdown {
    let (mf, nf, bf) = (m as f64, n as f64, b as f64);
    let p = (pr * pc) as f64;
    let (lgr, lgc) = (log2f(pr), log2f(pc));
    let gamma = mch.gamma3;

    let compute = ((mf * nf * nf - nf.powi(3) / 3.0) / p
        + 2.0 * bf * (mf * nf - nf * nf / 2.0) / pr as f64
        + nf * nf * bf / (2.0 * pc as f64)
        + 2.0 * nf * bf * bf / 3.0 * (lgr - 1.0).max(0.0))
        * gamma
        + nf * (lgr + 1.0) * mch.gamma_div;

    let latency = lgr * 3.0 * (nf / bf) * mch.alpha_col + lgc * 3.0 * (nf / bf) * mch.alpha_row;

    let bandwidth = lgr * (nf * bf / 2.0 + 3.0 * nf * nf / (2.0 * pc as f64)) * mch.beta_col
        + lgc * ((mf * nf - nf * nf / 2.0) / pr as f64) * mch.beta_row;

    CostBreakdown { compute, latency, bandwidth }
}

/// Equation (3): ScaLAPACK `PDGETRF` on the same layout.
///
/// ```text
/// T = [ (mn² − n³/3)/P + b(mn − n²/2)/Pr + n²b/(2Pc) ] γ
///   + n γd
///   + [ 2n (1 + 2/b) log2 Pr + n ] αc + (nb/2 + 3n²/(2Pc)) log2 Pr βc
///   + log2 Pc [ 3(n/b) αr + (mn − n²/2)/Pr βr ]
/// ```
pub fn t_pdgetrf(
    mch: &MachineConfig,
    m: usize,
    n: usize,
    b: usize,
    pr: usize,
    pc: usize,
) -> CostBreakdown {
    let (mf, nf, bf) = (m as f64, n as f64, b as f64);
    let p = (pr * pc) as f64;
    let (lgr, lgc) = (log2f(pr), log2f(pc));
    let gamma = mch.gamma3;

    let compute = ((mf * nf * nf - nf.powi(3) / 3.0) / p
        + bf * (mf * nf - nf * nf / 2.0) / pr as f64
        + nf * nf * bf / (2.0 * pc as f64))
        * gamma
        + nf * mch.gamma_div;

    let latency = (2.0 * nf * (1.0 + 2.0 / bf) * lgr + nf) * mch.alpha_col
        + lgc * 3.0 * (nf / bf) * mch.alpha_row;

    let bandwidth = (nf * bf / 2.0 + 3.0 * nf * nf / (2.0 * pc as f64)) * lgr * mch.beta_col
        + lgc * ((mf * nf - nf * nf / 2.0) / pr as f64) * mch.beta_row;

    CostBreakdown { compute, latency, bandwidth }
}

/// Message counts per the paper's Section 5 comparison: CALU exchanges
/// `3(n/b)(log2 Pr + log2 Pc)` messages; PDGETRF `≈ 2n log2 Pr` from the
/// panel alone. The panel-latency ratio is the paper's headline factor
/// `b (1 + 1/log2 Pr) / 3`-ish.
pub fn calu_messages(n: usize, b: usize, pr: usize, pc: usize) -> f64 {
    3.0 * (n as f64 / b as f64) * (log2f(pr) + log2f(pc))
}

/// `PDGETRF` message count (column direction dominates).
pub fn pdgetrf_messages(n: usize, b: usize, pr: usize, pc: usize) -> f64 {
    2.0 * n as f64 * (1.0 + 2.0 / b as f64) * log2f(pr)
        + n as f64
        + 3.0 * (n as f64 / b as f64) * log2f(pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_netsim::MachineConfig;

    #[test]
    fn tslu_latency_term_is_log_p() {
        let m = MachineConfig::power5();
        let t4 = t_tslu(&m, 100_000, 50, 4);
        let t16 = t_tslu(&m, 100_000, 50, 16);
        assert!((t16.latency / t4.latency - 2.0).abs() < 1e-9, "log2(16)/log2(4) = 2");
    }

    #[test]
    fn message_ratio_scales_with_b() {
        // The paper: CALU sends fewer panel messages by a factor
        // b(1 + 1/log2 Pr).
        for &b in &[50usize, 100, 150] {
            let calu = calu_messages(10_000, b, 8, 8);
            let pdg = pdgetrf_messages(10_000, b, 8, 8);
            let ratio = pdg / calu;
            let expect = b as f64 / 3.0; // order-of-magnitude law
            assert!(
                ratio > 0.5 * expect && ratio < 3.0 * expect,
                "b={b}: ratio {ratio} vs ~{expect}"
            );
        }
    }

    #[test]
    fn calu_beats_pdgetrf_latency_dominated() {
        // Small matrix, many processors: the regime of the paper's best
        // speedups (Table 5: 2.29x at m=10^3 on 64 procs).
        let m = MachineConfig::power5();
        let c = t_calu(&m, 1000, 1000, 50, 8, 8);
        let g = t_pdgetrf(&m, 1000, 1000, 50, 8, 8);
        let speedup = g.total() / c.total();
        assert!(speedup > 1.2, "speedup {speedup}");
        assert!(g.latency > c.latency * 5.0, "latency must dominate the gap");
    }

    #[test]
    fn compute_terms_converge_for_large_matrices() {
        // For large m the O(n^3) term dominates and CALU's overhead
        // (factor-2 panel flops) becomes marginal: ratio -> 1.
        let m = MachineConfig::power5();
        let c = t_calu(&m, 20_000, 20_000, 100, 8, 8);
        let g = t_pdgetrf(&m, 20_000, 20_000, 100, 8, 8);
        let ratio = g.total() / c.total();
        assert!(ratio > 0.95 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn breakdown_total_is_sum() {
        let m = MachineConfig::xt4();
        let c = t_calu(&m, 5000, 5000, 100, 4, 8);
        assert!((c.total() - (c.compute + c.latency + c.bandwidth)).abs() < 1e-18);
        assert!(c.latency_fraction() > 0.0 && c.latency_fraction() < 1.0);
    }

    #[test]
    fn degenerate_single_processor() {
        let m = MachineConfig::ideal();
        let c = t_calu(&m, 1000, 1000, 50, 1, 1);
        assert_eq!(c.latency, 0.0);
        assert_eq!(c.bandwidth, 0.0);
        assert!(c.compute > 0.0);
    }
}
