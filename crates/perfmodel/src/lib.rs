//! # calu-perfmodel — the paper's closed-form runtime models
//!
//! Equations (1), (2) and (3) of *Communication Avoiding Gaussian
//! Elimination* as executable functions over a
//! [`calu_netsim::MachineConfig`]:
//!
//! * [`equations::t_tslu`] — Eq. (1), the TSLU panel factorization;
//! * [`equations::t_calu`] — Eq. (2), full CALU on a `Pr x Pc` grid;
//! * [`equations::t_pdgetrf`] — Eq. (3), ScaLAPACK's `PDGETRF`;
//!
//! plus message/word/flop count breakdowns (which terms dominate —
//! latency, bandwidth, or compute), the sweep machinery behind Table 7's
//! "best CALU vs best PDGETRF" comparison, and the technology-trend
//! extrapolation ([`trend`]) behind the introduction's claim that CALU's
//! advantage grows on future machines.
//!
//! The equations use the paper's single-γ flop model; the discrete-event
//! simulator in `calu-core::dist::skeleton` refines this with per-BLAS-level
//! rates. `bench/src/bin/model_check.rs` quantifies the agreement.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod equations;
pub mod section5;
pub mod sweep;
pub mod trend;

pub use equations::{t_calu, t_pdgetrf, t_tslu, CostBreakdown};
pub use section5::{compare, latency_advantage, Section5, TermPair};
pub use sweep::{best_config, sweep_grids, BestConfig, SweepPoint};
pub use trend::{evolve, gain_crossover_size, speedup_at, speedup_trend, TechTrend, TrendPoint};
