//! Section 5's term-by-term comparison of CALU and ScaLAPACK's `PDGETRF`,
//! as executable arithmetic.
//!
//! The paper compares the two runtimes (Equations (2) and (3)) one cost
//! class at a time:
//!
//! * **multiply/add flops** — CALU adds the lower-order redundant-panel
//!   term `b(mn − n²/2)/Pr` (each panel is factored twice);
//! * **divides** — CALU adds `n·log2 Pr` (the tournament's `2b×b` GEPPs);
//! * **column latency** — CALU is lower by a factor `b(1 + 1/log2 Pr)`
//!   ("the reduction in the number of messages within processor columns
//!   comes from the reduction in the factorization of a block-column
//!   performed by TSLU versus PDGETF2");
//! * **column bandwidth** — identical volume;
//! * **row costs** — identical (`PDGETRF`'s row broadcasts are already
//!   `O(n/b)`).
//!
//! [`compare`] evaluates every pair of terms for a concrete configuration,
//! and the `section5_comparison` test-suite + `model_check` binary verify
//! each of the paper's five claims numerically.

use calu_netsim::MachineConfig;

/// One cost class compared between the two algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TermPair {
    /// CALU's value for this term.
    pub calu: f64,
    /// `PDGETRF`'s value.
    pub pdgetrf: f64,
}

impl TermPair {
    /// `pdgetrf / calu` (∞ when CALU's term is zero and PDGETRF's is not).
    pub fn ratio(&self) -> f64 {
        if self.calu == 0.0 {
            if self.pdgetrf == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.pdgetrf / self.calu
        }
    }
}

/// Section 5's comparison, term by term, for a square `n x n` problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Section5 {
    /// Multiply/add flop counts (per critical-path processor).
    pub muladd_flops: TermPair,
    /// Division counts.
    pub divides: TermPair,
    /// Messages within processor columns (the paper's headline).
    pub col_messages: TermPair,
    /// Words within processor columns.
    pub col_words: TermPair,
    /// Messages within processor rows.
    pub row_messages: TermPair,
    /// Words within processor rows.
    pub row_words: TermPair,
}

fn log2f(p: usize) -> f64 {
    (p as f64).log2()
}

/// Evaluates every Section 5 term for an `n x n` matrix on a `pr x pc`
/// grid with block size `b` (counts, not seconds — multiply by the machine
/// parameters to price them; [`latency_advantage`] does the headline one).
pub fn compare(m: usize, n: usize, b: usize, pr: usize, pc: usize) -> Section5 {
    let (mf, nf, bf) = (m as f64, n as f64, b as f64);
    let p = (pr * pc) as f64;
    let (lgr, lgc) = (log2f(pr), log2f(pc));

    let base_flops = (mf * nf * nf - nf.powi(3) / 3.0) / p + nf * nf * bf / (2.0 * pc as f64);
    let panel_flops = bf * (mf * nf - nf * nf / 2.0) / pr as f64;
    let tournament_flops = 2.0 * nf * bf * bf / 3.0 * (lgr - 1.0).max(0.0);

    Section5 {
        // CALU factors each panel twice: one extra panel_flops term
        // ("CALU adds a lower order term of about b(mn − n²/2)/Pr").
        muladd_flops: TermPair {
            calu: base_flops + 2.0 * panel_flops + tournament_flops,
            pdgetrf: base_flops + panel_flops,
        },
        // "Comparing the division flop counts, CALU adds a lower order
        // term of n log2 Pr."
        divides: TermPair { calu: nf * (lgr + 1.0), pdgetrf: nf },
        // Eq (2): 3(n/b) log2 Pr; Eq (3): [2n(1 + 2/b) log2 Pr + n].
        col_messages: TermPair {
            calu: 3.0 * (nf / bf) * lgr,
            pdgetrf: 2.0 * nf * (1.0 + 2.0 / bf) * lgr + nf,
        },
        // "for bandwidth, both algorithms have the same communication
        // volume."
        col_words: TermPair {
            calu: (nf * bf / 2.0 + 3.0 * nf * nf / (2.0 * pc as f64)) * lgr,
            pdgetrf: (nf * bf / 2.0 + 3.0 * nf * nf / (2.0 * pc as f64)) * lgr,
        },
        // "in PDGETRF, the number of broadcasts within processor rows is
        // already of the order of n/b, and hence both algorithms have the
        // same costs."
        row_messages: TermPair { calu: 3.0 * (nf / bf) * lgc, pdgetrf: 3.0 * (nf / bf) * lgc },
        row_words: TermPair {
            calu: (mf * nf - nf * nf / 2.0) / pr as f64 * lgc,
            pdgetrf: (mf * nf - nf * nf / 2.0) / pr as f64 * lgc,
        },
    }
}

/// The paper's headline factor: CALU's column-latency cost is lower "by a
/// factor of `b(1 + 1/log2 Pr)`". Returns `(measured_ratio, paper_factor)`
/// so callers can check the law holds to leading order.
pub fn latency_advantage(n: usize, b: usize, pr: usize) -> (f64, f64) {
    let s = compare(n, n, b, pr, pr);
    let paper = b as f64 * (1.0 + 1.0 / log2f(pr)) * 2.0 / 3.0;
    (s.col_messages.ratio(), paper)
}

/// Prices a [`Section5`] comparison on a machine: seconds per term class
/// `(calu_seconds, pdgetrf_seconds)` for (flops, divides, col-latency,
/// col-bandwidth, row-latency, row-bandwidth). The flop terms use the
/// machine's BLAS-3 rate, matching the equations' single-γ convention.
pub fn price(s: &Section5, mch: &MachineConfig) -> [(f64, f64); 6] {
    [
        (s.muladd_flops.calu * mch.gamma3, s.muladd_flops.pdgetrf * mch.gamma3),
        (s.divides.calu * mch.gamma_div, s.divides.pdgetrf * mch.gamma_div),
        (s.col_messages.calu * mch.alpha_col, s.col_messages.pdgetrf * mch.alpha_col),
        (s.col_words.calu * mch.beta_col, s.col_words.pdgetrf * mch.beta_col),
        (s.row_messages.calu * mch.alpha_row, s.row_messages.pdgetrf * mch.alpha_row),
        (s.row_words.calu * mch.beta_row, s.row_words.pdgetrf * mch.beta_row),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundant_panel_work_is_lower_order() {
        // "The price for fewer messages is b(mn − n²/2)/Pr more floating
        // point work, which is a small fraction of the overall work."
        let s = compare(10_000, 10_000, 50, 8, 8);
        let extra = s.muladd_flops.calu - s.muladd_flops.pdgetrf;
        assert!(extra > 0.0);
        assert!(
            extra / s.muladd_flops.pdgetrf < 0.10,
            "extra work fraction {} must be small",
            extra / s.muladd_flops.pdgetrf
        );
    }

    #[test]
    fn divide_overhead_is_n_log_pr() {
        let s = compare(5_000, 5_000, 100, 16, 4);
        let extra = s.divides.calu - s.divides.pdgetrf;
        assert!((extra - 5_000.0 * 4.0).abs() < 1e-9, "n log2 Pr = 20000, got {extra}");
    }

    #[test]
    fn column_latency_factor_matches_paper_law() {
        // Factor b(1 + 1/log2 Pr), up to the paper's own 2/3 constant
        // (3(n/b) vs 2n(1+2/b) + n keeps a 2/3-ish prefactor for large b).
        for &(b, pr) in &[(50usize, 8usize), (100, 16), (150, 64)] {
            let (measured, paper) = latency_advantage(10_000, b, pr);
            assert!(
                (measured / paper - 1.0).abs() < 0.35,
                "b={b} pr={pr}: measured {measured} vs paper-law {paper}"
            );
            assert!(measured > b as f64 / 2.0, "the reduction is ~b-fold: {measured}");
        }
    }

    #[test]
    fn bandwidth_and_row_costs_are_identical() {
        let s = compare(8_000, 8_000, 100, 8, 8);
        assert_eq!(s.col_words.ratio(), 1.0);
        assert_eq!(s.row_messages.ratio(), 1.0);
        assert_eq!(s.row_words.ratio(), 1.0);
    }

    #[test]
    fn priced_terms_sum_close_to_equations() {
        // price(compare(...)) must reproduce t_calu/t_pdgetrf up to the
        // tournament-combine flop term bookkeeping.
        use crate::equations::{t_calu, t_pdgetrf};
        let mch = MachineConfig::power5();
        let (n, b, pr, pc) = (5_000, 50, 8, 8);
        let s = compare(n, n, b, pr, pc);
        let priced = price(&s, &mch);
        let calu_sum: f64 = priced.iter().map(|(c, _)| c).sum();
        let pdg_sum: f64 = priced.iter().map(|(_, p)| p).sum();
        let eq_c = t_calu(&mch, n, n, b, pr, pc).total();
        let eq_p = t_pdgetrf(&mch, n, n, b, pr, pc).total();
        assert!((calu_sum / eq_c - 1.0).abs() < 0.05, "{calu_sum} vs {eq_c}");
        assert!((pdg_sum / eq_p - 1.0).abs() < 0.05, "{pdg_sum} vs {eq_p}");
    }

    #[test]
    fn single_column_grid_degenerates() {
        // Pr = 1: no tournament, no divide overhead, no column messages.
        let s = compare(1_000, 1_000, 50, 1, 4);
        assert_eq!(s.divides.calu, s.divides.pdgetrf);
        assert_eq!(s.col_messages.calu, 0.0);
    }
}
