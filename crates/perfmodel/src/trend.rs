//! Technology-trend extrapolation: the paper's future-architectures
//! argument, made quantitative.
//!
//! The introduction argues: "today's technology trends predict that
//! arithmetic will continue to improve exponentially faster than
//! bandwidth, and bandwidth exponentially faster than latency. So CALU is
//! well suited for future parallel architectures, in which conventional
//! algorithms will spend more and more of their time communicating". This
//! module evolves a [`MachineConfig`] forward in time under those
//! per-component exponential rates and re-evaluates Equations (2)/(3) at
//! each point, so the claim becomes a curve
//! (`bench/src/bin/fig_trend.rs` prints it).

use crate::equations::{t_calu, t_pdgetrf};
use calu_netsim::MachineConfig;

/// Annual improvement factors for the three cost classes. Values > 1 mean
/// the cost *shrinks* by that factor per year.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechTrend {
    /// Arithmetic throughput improvement per year (γ terms shrink).
    pub flops_per_year: f64,
    /// Network bandwidth improvement per year (β terms shrink).
    pub bandwidth_per_year: f64,
    /// Network latency improvement per year (α terms shrink).
    pub latency_per_year: f64,
}

impl Default for TechTrend {
    /// The canonical rates the communication-avoiding literature quotes
    /// (flops ~59%/year from Moore-era scaling, network bandwidth ~26%/year,
    /// latency ~15%/year — see Graham/Snir/Patterson, *Getting up to
    /// Speed*, and the CAQR technical report's motivation section).
    fn default() -> Self {
        Self { flops_per_year: 1.59, bandwidth_per_year: 1.26, latency_per_year: 1.15 }
    }
}

/// Evolves a machine `years` into the future under `trend`: every γ-class
/// constant (including the divide time and the recursion overhead, which
/// are core-bound) shrinks at the flops rate, β at the bandwidth rate, α
/// at the latency rate. Negative `years` rewinds.
pub fn evolve(mch: &MachineConfig, years: f64, trend: &TechTrend) -> MachineConfig {
    let f = trend.flops_per_year.powf(years);
    let b = trend.bandwidth_per_year.powf(years);
    let l = trend.latency_per_year.powf(years);
    MachineConfig {
        name: "evolved",
        gamma3: mch.gamma3 / f,
        n_half3: mch.n_half3, // shape constant, not a rate
        gamma2: mch.gamma2 / f,
        gamma2_cache: mch.gamma2_cache / f,
        cache_bytes: mch.cache_bytes,
        gamma1: mch.gamma1 / f,
        gamma_div: mch.gamma_div / f,
        rec_call_overhead: mch.rec_call_overhead / f,
        alpha_col: mch.alpha_col / l,
        beta_col: mch.beta_col / b,
        alpha_row: mch.alpha_row / l,
        beta_row: mch.beta_row / b,
    }
}

/// One point of the trend curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendPoint {
    /// Years after the baseline machine.
    pub years: f64,
    /// Modeled `T_PDGETRF / T_CALU` at this point (Equations (3)/(2)).
    pub speedup: f64,
    /// Fraction of `PDGETRF`'s modeled time spent on latency — the
    /// quantity the trend inflates.
    pub pdgetrf_latency_fraction: f64,
    /// Same for CALU (stays small — that is the design's point).
    pub calu_latency_fraction: f64,
}

/// Evaluates the CALU-vs-PDGETRF speedup on `base` evolved to each year in
/// `years`, at a fixed problem `(m=n, b, pr, pc)`.
pub fn speedup_trend(
    base: &MachineConfig,
    n: usize,
    b: usize,
    pr: usize,
    pc: usize,
    years: &[f64],
    trend: &TechTrend,
) -> Vec<TrendPoint> {
    years
        .iter()
        .map(|&y| {
            let mch = evolve(base, y, trend);
            let c = t_calu(&mch, n, n, b, pr, pc);
            let g = t_pdgetrf(&mch, n, n, b, pr, pc);
            TrendPoint {
                years: y,
                speedup: g.total() / c.total(),
                pdgetrf_latency_fraction: g.latency_fraction(),
                calu_latency_fraction: c.latency_fraction(),
            }
        })
        .collect()
}

/// Modeled `T_PDGETRF / T_CALU` for a square problem (Equations (3)/(2)).
pub fn speedup_at(mch: &MachineConfig, n: usize, b: usize, pr: usize, pc: usize) -> f64 {
    t_pdgetrf(mch, n, n, b, pr, pc).total() / t_calu(mch, n, n, b, pr, pc).total()
}

/// Finds the matrix size at which CALU's modeled advantage falls below
/// `threshold` (e.g. 1.05 = "within 5% of PDGETRF") on a fixed grid, by
/// doubling then bisecting over `n ∈ [b·max(pr,pc), n_max]`. Returns
/// `None` if the gain still exceeds the threshold at `n_max` (latency
/// utterly dominates this machine) or is already below it at the smallest
/// valid size.
pub fn gain_crossover_size(
    mch: &MachineConfig,
    b: usize,
    pr: usize,
    pc: usize,
    threshold: f64,
    n_max: usize,
) -> Option<usize> {
    let n_min = b * pr.max(pc); // every grid row/column owns a block
    if n_min >= n_max {
        return None;
    }
    if speedup_at(mch, n_min, b, pr, pc) <= threshold {
        return None;
    }
    if speedup_at(mch, n_max, b, pr, pc) > threshold {
        return None;
    }
    let (mut lo, mut hi) = (n_min, n_max);
    while hi - lo > b {
        let mid = lo + (hi - lo) / 2;
        if speedup_at(mch, mid, b, pr, pc) > threshold {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_years_is_identity() {
        let m = MachineConfig::power5();
        let e = evolve(&m, 0.0, &TechTrend::default());
        assert_eq!(e.gamma3, m.gamma3);
        assert_eq!(e.alpha_col, m.alpha_col);
        assert_eq!(e.beta_row, m.beta_row);
    }

    #[test]
    fn evolution_rates_are_ordered() {
        let m = MachineConfig::power5();
        let e = evolve(&m, 10.0, &TechTrend::default());
        // After 10 years flops got cheaper faster than bandwidth, and
        // bandwidth faster than latency.
        let f_gain = m.gamma3 / e.gamma3;
        let b_gain = m.beta_col / e.beta_col;
        let l_gain = m.alpha_col / e.alpha_col;
        assert!(f_gain > b_gain && b_gain > l_gain, "{f_gain} {b_gain} {l_gain}");
        assert!(f_gain > 100.0, "1.59^10 ~ 104");
    }

    #[test]
    fn calu_advantage_grows_with_time() {
        // The paper's claim: as machines evolve, conventional algorithms
        // spend ever more time communicating, so CALU's win grows.
        let m = MachineConfig::power5();
        let years = [0.0, 5.0, 10.0, 15.0];
        let pts = speedup_trend(&m, 5_000, 50, 8, 8, &years, &TechTrend::default());
        for w in pts.windows(2) {
            assert!(
                w[1].speedup > w[0].speedup,
                "speedup must grow: {} -> {}",
                w[0].speedup,
                w[1].speedup
            );
            assert!(
                w[1].pdgetrf_latency_fraction >= w[0].pdgetrf_latency_fraction,
                "PDGETRF latency share must grow"
            );
        }
        // And CALU keeps its latency share far below PDGETRF's throughout.
        for p in &pts {
            assert!(p.calu_latency_fraction < p.pdgetrf_latency_fraction);
        }
    }

    #[test]
    fn rewinding_shrinks_the_gap() {
        let m = MachineConfig::power5();
        let now = speedup_at(&m, 2_000, 50, 8, 8);
        let past = speedup_at(&evolve(&m, -10.0, &TechTrend::default()), 2_000, 50, 8, 8);
        assert!(past < now, "10 years ago the latency mattered less: {past} vs {now}");
    }

    #[test]
    fn crossover_moves_out_as_machines_evolve() {
        let m = MachineConfig::power5();
        let trend = TechTrend::default();
        let c_now = gain_crossover_size(&m, 50, 8, 8, 1.05, 4_000_000)
            .expect("crossover must exist on the baseline");
        let c_future = gain_crossover_size(&evolve(&m, 8.0, &trend), 50, 8, 8, 1.05, 4_000_000)
            .unwrap_or(usize::MAX);
        assert!(
            c_future > c_now,
            "the size below which CALU pays must grow with time: {c_now} -> {c_future}"
        );
    }

    #[test]
    fn crossover_respects_threshold_ordering() {
        let m = MachineConfig::power5();
        let strict = gain_crossover_size(&m, 50, 8, 8, 1.20, 4_000_000);
        let loose = gain_crossover_size(&m, 50, 8, 8, 1.02, 4_000_000);
        if let (Some(s), Some(l)) = (strict, loose) {
            assert!(s <= l, "a stricter gain bar is crossed earlier: {s} vs {l}");
        } else {
            panic!("both crossovers should exist on POWER5: {strict:?} {loose:?}");
        }
    }
}
