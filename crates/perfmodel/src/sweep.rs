//! Configuration sweeps: the machinery behind Table 7, which compares the
//! *best* CALU against the *best* `PDGETRF` over processor counts, grid
//! shapes and block sizes:
//!
//! ```text
//! speedup(m, Pmax) = min_{P<=Pmax, b} T_PDGETRF(m,m,P,b)
//!                  / min_{P<=Pmax, b} T_CALU(m,m,P,b)
//! ```

use crate::equations::{t_calu, t_pdgetrf, CostBreakdown};
use calu_netsim::MachineConfig;

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Grid rows.
    pub pr: usize,
    /// Grid columns.
    pub pc: usize,
    /// Block size.
    pub b: usize,
    /// Modeled cost breakdown.
    pub cost: CostBreakdown,
}

/// Best configuration found by a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestConfig {
    /// The winning point.
    pub point: SweepPoint,
    /// Total modeled runtime, seconds.
    pub time: f64,
}

/// The paper's grid shapes: 4=2x2, 8=2x4, 16=4x4, 32=4x8, 64=8x8 (Tables
/// 3-7). Returns `(pr, pc)` for a processor count, or `None` if it is not
/// one of the swept counts.
pub fn paper_grid(p: usize) -> Option<(usize, usize)> {
    match p {
        4 => Some((2, 2)),
        8 => Some((2, 4)),
        16 => Some((4, 4)),
        32 => Some((4, 8)),
        64 => Some((8, 8)),
        _ => None,
    }
}

/// Evaluates `alg` (`true` = CALU, `false` = PDGETRF) over the paper's
/// grids up to `p_max` and blocks `bs`, returning all points.
pub fn sweep_grids(
    mch: &MachineConfig,
    m: usize,
    bs: &[usize],
    p_max: usize,
    calu: bool,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &p in &[4usize, 8, 16, 32, 64] {
        if p > p_max {
            continue;
        }
        let (pr, pc) = paper_grid(p).expect("swept counts have grids");
        for &b in bs {
            if b >= m {
                continue;
            }
            let cost =
                if calu { t_calu(mch, m, m, b, pr, pc) } else { t_pdgetrf(mch, m, m, b, pr, pc) };
            out.push(SweepPoint { pr, pc, b, cost });
        }
    }
    out
}

/// Returns the fastest configuration of a sweep.
///
/// # Panics
/// If the sweep is empty.
pub fn best_config(points: &[SweepPoint]) -> BestConfig {
    let best = points
        .iter()
        .min_by(|a, b| a.cost.total().total_cmp(&b.cost.total()))
        .expect("non-empty sweep");
    BestConfig { point: *best, time: best.cost.total() }
}

/// Table 7's speedup: best PDGETRF over best CALU for problem size `m`,
/// processor budget `p_max`, and the paper's block sizes.
pub fn best_vs_best_speedup(
    mch: &MachineConfig,
    m: usize,
    p_max: usize,
) -> (f64, BestConfig, BestConfig) {
    let bs = [50usize, 100, 150];
    let calu = best_config(&sweep_grids(mch, m, &bs, p_max, true));
    let pdg = best_config(&sweep_grids(mch, m, &bs, p_max, false));
    (pdg.time / calu.time, calu, pdg)
}

/// Finds the best grid shape `(pr, pc)` with `pr*pc == p` for CALU at the
/// given problem, exploring all factorizations of `p` — used to study the
/// hierarchical-machine question the paper raises in Section 4.
pub fn best_grid_shape(mch: &MachineConfig, m: usize, b: usize, p: usize) -> (usize, usize, f64) {
    let mut best = (1, p, f64::INFINITY);
    for pr in 1..=p {
        if !p.is_multiple_of(pr) {
            continue;
        }
        let pc = p / pr;
        let t = crate::equations::t_calu(mch, m, m, b, pr, pc).total();
        if t < best.2 {
            best = (pr, pc, t);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_netsim::MachineConfig;

    #[test]
    fn hierarchical_links_shift_best_grid_shape() {
        // With cheap row links, column communication is the expensive
        // direction, so the optimal grid uses no more (usually fewer) grid
        // rows than under uniform links.
        let uni = MachineConfig::power5();
        let hier = MachineConfig::hierarchical();
        let (pr_u, _, _) = best_grid_shape(&uni, 2_000, 50, 64);
        let (pr_h, _, _) = best_grid_shape(&hier, 2_000, 50, 64);
        assert!(pr_h <= pr_u, "hierarchical best Pr {pr_h} vs uniform {pr_u}");
    }

    #[test]
    fn best_grid_shape_explores_all_factorizations() {
        let mch = MachineConfig::power5();
        let (pr, pc, t) = best_grid_shape(&mch, 4_000, 100, 16);
        assert_eq!(pr * pc, 16);
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn paper_grids_cover_table_counts() {
        assert_eq!(paper_grid(4), Some((2, 2)));
        assert_eq!(paper_grid(64), Some((8, 8)));
        assert_eq!(paper_grid(7), None);
    }

    #[test]
    fn sweep_is_complete() {
        let mch = MachineConfig::power5();
        let pts = sweep_grids(&mch, 5000, &[50, 100, 150], 64, true);
        assert_eq!(pts.len(), 5 * 3);
    }

    #[test]
    fn best_vs_best_speedups_match_paper_shape() {
        // Table 7 (POWER5): speedups 1.59 (m=10^3), 1.69 (5*10^3), 1.34
        // (10^4). Our model must land in the same ballpark, with the small
        // matrix showing a clear win.
        let mch = MachineConfig::power5();
        let (s1k, _, _) = best_vs_best_speedup(&mch, 1000, 64);
        let (s10k, _, _) = best_vs_best_speedup(&mch, 10_000, 64);
        assert!(s1k > 1.15, "small-matrix speedup {s1k}");
        assert!(s10k >= 0.98, "CALU should not lose at 10^4: {s10k}");
        assert!(s1k > s10k, "speedup shrinks with size: {s1k} vs {s10k}");
    }

    #[test]
    fn best_config_picks_minimum() {
        let mch = MachineConfig::xt4();
        let pts = sweep_grids(&mch, 2000, &[50, 100], 16, false);
        let best = best_config(&pts);
        for p in &pts {
            assert!(best.time <= p.cost.total() + 1e-18);
        }
    }
}
