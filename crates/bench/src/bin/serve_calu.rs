//! Serving-layer performance record: per-request latency and throughput of
//! [`SolverService`] across batch sizes, cache regimes, and executors,
//! written as `BENCH_serve.json` so CI and later sessions can diff it.
//!
//! The claim under test: once a factorization is cached, a batched solve
//! pass is O(n²) per request and must beat the factor-per-request floor
//! (cold cache, batch 1 — every request pays the O(n³) factorization) by a
//! growing margin as the batch widens.
//!
//! Scenario grid: {serial, threaded} x batch {1, 8, 32} x {hot, cold}.
//! *hot* pre-warms the factor cache and keeps a generous byte budget, so
//! every timed request is a cache hit; *cold* sets the budget to zero, so
//! every `process` pass re-factors (hit ratio 0). Per-ticket latency is
//! submit-to-`process`-return; percentiles are over all requests of the
//! scenario.
//!
//! Alongside the scenario record, the service's own observability layer
//! is exported: the threaded hot batch-8 scenario's metrics snapshot
//! (queue/cache/latency registry) is embedded under `"metrics"`, and its
//! span trace is written as a Chrome-trace JSON (`TRACE_serve.json`,
//! openable in `chrome://tracing` / Perfetto).
//!
//! Usage: `serve_calu [--n N] [--nb NB] [--reqs R] [--out PATH] [--trace-out PATH]`
//! (defaults: n=256, nb=32, reqs=64, out=BENCH_serve.json,
//! trace-out=TRACE_serve.json).

use calu_bench::{write_record, HostInfo};
use calu_core::{CaluOpts, RuntimeOpts, ServeOpts, SolverService};
use calu_matrix::{gen, Matrix};
use calu_obs::{chrome_trace, parse_chrome_trace, JsonValue, Span};
use calu_runtime::ExecutorKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Args {
    n: usize,
    nb: usize,
    reqs: usize,
    out: String,
    trace_out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 256,
        nb: 32,
        reqs: 64,
        out: "BENCH_serve.json".into(),
        trace_out: "TRACE_serve.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}; try --help");
                std::process::exit(2);
            })
        };
        let parsed = |v: String| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad numeric value {v:?}; try --help");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--n" => args.n = parsed(val()),
            "--nb" => args.nb = parsed(val()),
            "--reqs" => args.reqs = parsed(val()),
            "--out" => args.out = val(),
            "--trace-out" => args.trace_out = val(),
            "--help" | "-h" => {
                eprintln!(
                    "usage: serve_calu [--n N] [--nb NB] [--reqs R] [--out PATH] \
                     [--trace-out PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

struct Scenario {
    executor: &'static str,
    batch: usize,
    cache: &'static str,
    solves_per_s: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    hit_ratio: f64,
    factored: usize,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

fn run_scenario(
    a: &Matrix<f64>,
    rhs_pool: &[Vec<f64>],
    nb: usize,
    batch: usize,
    hot: bool,
    executor: ExecutorKind,
    exec_name: &'static str,
) -> (Scenario, JsonValue, Vec<Span>) {
    let reqs = rhs_pool.len();
    let opts = ServeOpts {
        cache_capacity_bytes: if hot { 256 << 20 } else { 0 },
        queue_capacity: reqs.max(batch),
        max_batch: batch,
        rhs_block: 8,
        calu: CaluOpts { block: nb, p: 4, ..Default::default() },
        rt: RuntimeOpts { lookahead: 2, executor, parallel_panel: false },
    };
    let mut svc: SolverService = SolverService::new(opts);
    svc.register(1, a.clone());

    if hot {
        // Pre-warm the cache so every timed request is a hit.
        let t = svc.submit(1, rhs_pool[0].clone()).expect("queue sized for the run");
        svc.process();
        svc.try_take(t).expect("processed").expect("nonsingular");
    }
    let warm_stats = svc.cache_stats();

    let mut latencies = Vec::with_capacity(reqs);
    let mut factored = 0usize;
    let t_total = Instant::now();
    for group in rhs_pool.chunks(batch) {
        let submitted = Instant::now();
        let tickets: Vec<_> = group
            .iter()
            .map(|rhs| svc.submit(1, rhs.clone()).expect("queue sized for the run"))
            .collect();
        let rep = svc.process();
        let done = submitted.elapsed().as_secs_f64();
        assert_eq!(rep.completed, tickets.len());
        factored += rep.factored;
        for t in tickets {
            svc.try_take(t).expect("processed").expect("nonsingular");
            latencies.push(done);
        }
    }
    let total_s = t_total.elapsed().as_secs_f64();

    let stats = svc.cache_stats();
    let (hits, misses) = (stats.hits - warm_stats.hits, stats.misses - warm_stats.misses);
    latencies.sort_by(|x, y| x.total_cmp(y));
    let scenario = Scenario {
        executor: exec_name,
        batch,
        cache: if hot { "hot" } else { "cold" },
        solves_per_s: reqs as f64 / total_s,
        p50_ms: percentile(&latencies, 0.50) * 1e3,
        p95_ms: percentile(&latencies, 0.95) * 1e3,
        p99_ms: percentile(&latencies, 0.99) * 1e3,
        hit_ratio: hits as f64 / (hits + misses).max(1) as f64,
        factored,
    };
    (scenario, svc.metrics_snapshot(), svc.spans())
}

fn main() {
    let args = parse_args();
    let (n, nb, reqs) = (args.n, args.nb, args.reqs);
    // Measured wall-clock ratios only mean something with real parallelism
    // under the threaded executor; on a 1-core container the cache-regime
    // contrast (O(n²) hit vs O(n³) miss) still holds but thread scaling
    // does not.
    let host = HostInfo::detect(0);
    let host_threads = host.host_threads;

    let mut rng = StdRng::seed_from_u64(2008);
    let a: Matrix<f64> = gen::diag_dominant(&mut rng, n);
    let rhs_pool: Vec<Vec<f64>> = (0..reqs)
        .map(|_| {
            let col: Matrix<f64> = gen::randn(&mut rng, n, 1);
            col.col(0).to_vec()
        })
        .collect();

    println!("serve_calu: {n}x{n}, nb={nb}, reqs={reqs}, host_threads={host_threads}");

    let executors: [(ExecutorKind, &'static str); 2] =
        [(ExecutorKind::Serial, "serial"), (ExecutorKind::Threaded { threads: 0 }, "threaded")];
    let mut scenarios = Vec::new();
    // The threaded hot batch-8 scenario is the exported-observability one:
    // its metrics snapshot lands in the BENCH record and its span trace
    // becomes TRACE_serve.json.
    let mut exported: Option<(JsonValue, Vec<Span>)> = None;
    for &(executor, exec_name) in &executors {
        for &batch in &[1usize, 8, 32] {
            for &hot in &[true, false] {
                let (s, metrics, spans) =
                    run_scenario(&a, &rhs_pool, nb, batch, hot, executor, exec_name);
                if exec_name == "threaded" && batch == 8 && hot {
                    exported = Some((metrics, spans));
                }
                println!(
                    "{:>8} batch={:<2} {:<4}: {:>8.1} solves/s  p50={:.2}ms p95={:.2}ms \
                     p99={:.2}ms  hit_ratio={:.2} factored={}",
                    s.executor,
                    s.batch,
                    s.cache,
                    s.solves_per_s,
                    s.p50_ms,
                    s.p95_ms,
                    s.p99_ms,
                    s.hit_ratio,
                    s.factored
                );
                scenarios.push(s);
            }
        }
    }

    // Headline: cache-hit batched serving vs the factor-per-request floor,
    // per executor at batch >= 8.
    let rate = |exec: &str, batch: usize, cache: &str| {
        scenarios
            .iter()
            .find(|s| s.executor == exec && s.batch == batch && s.cache == cache)
            .map(|s| s.solves_per_s)
            .expect("scenario grid covers this point")
    };
    let mut record = host.stamp(
        JsonValue::obj()
            .set("bench", "serve_calu")
            .set("n", n)
            .set("nb", nb)
            .set("reqs", reqs)
            .set("communicator", "shared_memory"),
    );
    for &(_, exec_name) in &executors {
        let floor = rate(exec_name, 1, "cold");
        record = record
            .set(
                &format!("{exec_name}_hot_batch8_vs_factor_per_request"),
                rate(exec_name, 8, "hot") / floor,
            )
            .set(
                &format!("{exec_name}_hot_batch32_vs_factor_per_request"),
                rate(exec_name, 32, "hot") / floor,
            );
        println!(
            "{exec_name}: hot batch8 {:.1}x, batch32 {:.1}x over factor-per-request",
            rate(exec_name, 8, "hot") / floor,
            rate(exec_name, 32, "hot") / floor
        );
    }
    let scenarios_json: JsonValue = scenarios
        .iter()
        .map(|s| {
            JsonValue::obj()
                .set("executor", s.executor)
                .set("batch", s.batch)
                .set("cache", s.cache)
                .set("solves_per_s", s.solves_per_s)
                .set("p50_ms", s.p50_ms)
                .set("p95_ms", s.p95_ms)
                .set("p99_ms", s.p99_ms)
                .set("hit_ratio", s.hit_ratio)
                .set("factored", s.factored)
        })
        .collect();
    record = record.set("scenarios", scenarios_json);

    // The observability exports: embedded metrics snapshot + Chrome trace.
    let (metrics, spans) = exported.expect("scenario grid includes threaded hot batch 8");
    let trace = chrome_trace(&spans);
    let parsed = parse_chrome_trace(&trace).expect("own trace export parses");
    assert_eq!(parsed.len(), spans.len(), "trace round-trip preserves every span");
    std::fs::write(&args.trace_out, &trace).expect("write trace json");
    println!("wrote {} ({} spans)", args.trace_out, spans.len());
    record = record
        .set("metrics", metrics)
        .set("trace_file", args.trace_out.as_str())
        .set("trace_spans", spans.len());
    write_record(&args.out, &record);
}
