//! Storage-layout performance record: flat column-major vs tile-major
//! runtime CALU, written as `BENCH_layout.json` so CI and later sessions
//! can diff performance.
//!
//! Two kinds of evidence per `(n, executor, panel mode)` cell, because
//! the container running CI may be single-core and its host cache does
//! not match the modeled machine:
//!
//! * **measured**: wall-clock of the flat-storage runtime CALU
//!   ([`calu_core::runtime_calu_inplace`]) vs the tile-backed path
//!   ([`calu_core::runtime_calu_tiles`]) on this host, each factoring a
//!   working copy cloned *outside* the timed region. Factors are
//!   asserted bitwise identical between the two paths before timing.
//! * **modeled**: total cache traffic of the task DAG under the XT4
//!   cost model's 2 MB cache for each [`TileLocality`], plus the
//!   layout-aware task-time totals — the layout claim that does not
//!   depend on the host. (At these sizes a laptop-class LLC may hold the
//!   whole matrix, leaving the measured delta inside noise; the modeled
//!   difference is the durable record.)
//!
//! The DAG used for the modeled columns is built with the *same*
//! [`PanelMode`] that the measured runs execute, so modeled and executed
//! paths always agree: the gathered DAG's tile-major `Panel(k)` charges
//! its gather/scatter copy, the resident DAG's per-tile subgraph does
//! not (the copy does not exist there). With `--panel both` (default)
//! the record's `panel_comparison` section quantifies exactly the
//! eliminated gather/scatter words.
//!
//! As in `BENCH_runtime.json`, `"measured_speedup_valid": false` flags a
//! single-core host: the threaded-executor rows then measure executor
//! overhead, not a parallel win (see EXPERIMENTS.md).
//!
//! Usage: `layout_calu [--n N] [--nb NB] [--reps R] [--threads T]
//! [--panel gathered|resident|both] [--out PATH] [--trace-out PATH]`
//! (defaults: n=0 meaning the 512 and 1024 record sizes, nb=128, reps=1,
//! threads=0 = host, panel=both, out=BENCH_layout.json). With
//! `--trace-out`, one extra tile-major threaded run at the largest size
//! exports its task timeline as a Chrome trace for `bench_report --trace`.

use calu_bench::{write_record, HostInfo};
use calu_core::{runtime_calu_inplace, runtime_calu_tiles, CaluOpts, RuntimeOpts};
use calu_matrix::{gen, Matrix, NoObs, TileMatrix};
use calu_netsim::MachineConfig;
use calu_obs::{JsonValue, Recorder};
use calu_runtime::{
    modeled_cache_traffic, modeled_time_layout, ExecutorKind, LuDag, LuShape, PanelMode,
    TileLocality,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Args {
    n: usize,
    nb: usize,
    reps: usize,
    threads: usize,
    panel: Vec<PanelMode>,
    out: String,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 0,
        nb: 128,
        reps: 1,
        threads: 0,
        panel: vec![PanelMode::Gathered, PanelMode::Resident],
        out: "BENCH_layout.json".into(),
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}; try --help");
                std::process::exit(2);
            })
        };
        let parsed = |v: String| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad numeric value {v:?}; try --help");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--n" => args.n = parsed(val()),
            "--nb" => args.nb = parsed(val()),
            "--reps" => args.reps = parsed(val()),
            "--threads" => args.threads = parsed(val()),
            "--panel" => {
                args.panel = match val().as_str() {
                    "gathered" => vec![PanelMode::Gathered],
                    "resident" => vec![PanelMode::Resident],
                    "both" => vec![PanelMode::Gathered, PanelMode::Resident],
                    other => {
                        eprintln!("bad --panel {other:?}: expected gathered|resident|both");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => args.out = val(),
            "--trace-out" => args.trace_out = Some(val()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: layout_calu [--n N] [--nb NB] [--reps R] [--threads T] \
                     [--panel gathered|resident|both] [--out PATH] [--trace-out PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

fn mode_name(mode: PanelMode) -> &'static str {
    match mode {
        PanelMode::Gathered => "gathered",
        PanelMode::Resident => "resident",
    }
}

struct Row {
    n: usize,
    panel: &'static str,
    executor: &'static str,
    flat_s: f64,
    tiled_s: f64,
    traffic_flat_mb: f64,
    traffic_tiled_mb: f64,
    modeled_flat_s: f64,
    modeled_tiled_s: f64,
}

fn best_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    (0..reps.max(1)).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let args = parse_args();
    let sizes: Vec<usize> = if args.n == 0 { vec![512, 1024] } else { vec![args.n] };
    let nb = args.nb;
    let host = HostInfo::detect(args.threads);
    let host_threads = host.host_threads;
    let mch = MachineConfig::xt4(); // 2 MB cache: 512^2+ doubles spill it
    let mut rng = StdRng::seed_from_u64(2026);

    println!("layout_calu: nb={nb}, host_threads={host_threads}, reps={}", args.reps);
    println!(
        "{:>6} {:>9} {:>9} {:>11} {:>11} {:>9} {:>11} {:>11} {:>8}",
        "n", "panel", "executor", "flat", "tile", "measured", "traffic(F)", "traffic(T)", "modeled"
    );

    let mut rows = Vec::new();
    // Per (mode, n): tile-major panel traffic, for the gather/scatter
    // elimination summary below.
    let mut panel_traffic_mb: Vec<(&'static str, usize, f64)> = Vec::new();
    for &n in &sizes {
        let a: Matrix = gen::randn(&mut rng, n, n);
        let p = (n / nb).max(2);
        let shape = LuShape { m: n, n, nb };
        let tiles0 = TileMatrix::from_matrix(&a, nb, nb);

        for &mode in &args.panel {
            let opts = CaluOpts { block: nb, p, panel_mode: mode, ..Default::default() };

            // Correctness gate before any timing: flat and tile paths,
            // bitwise. The gathered mode is additionally pinned to the
            // sequential sweep; the resident mode follows its own
            // deterministic tree, so its gate is flat == tile.
            let flat_ref = {
                let mut w = a.clone();
                let (ipiv, _) =
                    runtime_calu_inplace(w.view_mut(), opts, RuntimeOpts::default(), &mut NoObs)
                        .expect("factorization succeeds");
                (w, ipiv)
            };
            if mode == PanelMode::Gathered {
                let seq = calu_core::calu_factor(&a, opts).expect("factorization succeeds");
                assert_eq!(flat_ref.1, seq.ipiv, "gathered pivots diverge at n={n}");
                assert_eq!(
                    flat_ref.0.max_abs_diff(&seq.lu),
                    0.0,
                    "gathered factors must be bitwise identical at n={n}"
                );
            }
            {
                let mut t = tiles0.clone();
                let (ipiv, _) =
                    runtime_calu_tiles(&mut t, opts, RuntimeOpts::default(), &mut NoObs).unwrap();
                assert_eq!(ipiv, flat_ref.1, "{} tile pivots diverge at n={n}", mode_name(mode));
                assert_eq!(
                    t.to_matrix().max_abs_diff(&flat_ref.0),
                    0.0,
                    "{} tile factors must be bitwise identical at n={n}",
                    mode_name(mode)
                );
            }

            // Modeled columns from the mode-matching DAG: executed and
            // modeled paths agree on which panel tasks (and copies) exist.
            let dag = LuDag::build_with(shape, 1, mode);
            let traffic = |loc: TileLocality| -> f64 {
                dag.tasks().iter().map(|&t| modeled_cache_traffic(&shape, t, &mch, loc)).sum()
            };
            let modeled = |loc: TileLocality| -> f64 {
                dag.tasks().iter().map(|&t| modeled_time_layout(&shape, t, &mch, loc)).sum()
            };
            let (tf, tt) = (traffic(TileLocality::Flat), traffic(TileLocality::TileMajor));
            let (mf, mt) = (modeled(TileLocality::Flat), modeled(TileLocality::TileMajor));
            panel_traffic_mb.push((
                mode_name(mode),
                n,
                dag.tasks()
                    .iter()
                    .filter(|t| t.cat().starts_with("panel"))
                    .map(|&t| modeled_cache_traffic(&shape, t, &mch, TileLocality::TileMajor))
                    .sum::<f64>()
                    / 1e6,
            ));

            for (name, executor) in [
                ("serial", ExecutorKind::Serial),
                ("threaded", ExecutorKind::Threaded { threads: args.threads }),
            ] {
                let rt = RuntimeOpts { lookahead: 1, executor, parallel_panel: false };
                // Both timed regions factor a pre-cloned working copy in
                // place — the clone stays outside the timer on both paths.
                let flat_s = best_of(args.reps, || {
                    let mut w = a.clone();
                    let t0 = Instant::now();
                    let (ipiv, _) = runtime_calu_inplace(w.view_mut(), opts, rt, &mut NoObs)
                        .expect("flat run succeeds");
                    let dt = t0.elapsed().as_secs_f64();
                    assert_eq!(ipiv.len(), n);
                    dt
                });
                let tiled_s = best_of(args.reps, || {
                    let mut t = tiles0.clone();
                    let t0 = Instant::now();
                    let (ipiv, _) = runtime_calu_tiles(&mut t, opts, rt, &mut NoObs)
                        .expect("tile run succeeds");
                    let dt = t0.elapsed().as_secs_f64();
                    assert_eq!(ipiv.len(), n);
                    dt
                });
                println!(
                    "{:>6} {:>9} {:>9} {:>9.1}ms {:>9.1}ms {:>8.2}x {:>9.1}MB {:>9.1}MB {:>7.2}x",
                    n,
                    mode_name(mode),
                    name,
                    flat_s * 1e3,
                    tiled_s * 1e3,
                    flat_s / tiled_s,
                    tf / 1e6,
                    tt / 1e6,
                    mf / mt
                );
                rows.push(Row {
                    n,
                    panel: mode_name(mode),
                    executor: name,
                    flat_s,
                    tiled_s,
                    traffic_flat_mb: tf / 1e6,
                    traffic_tiled_mb: tt / 1e6,
                    modeled_flat_s: mf,
                    modeled_tiled_s: mt,
                });
            }
        }
    }

    if let Some(path) = &args.trace_out {
        // One extra tile-major threaded run at the largest size, replayed
        // into a Chrome trace so `bench_report --trace` can profile it.
        // Uses the last selected panel mode (resident under `both`).
        let mode = *args.panel.last().expect("at least one panel mode");
        let n = *sizes.last().expect("sizes non-empty");
        let a: Matrix = gen::randn(&mut rng, n, n);
        let mut t = TileMatrix::from_matrix(&a, nb, nb);
        let opts =
            CaluOpts { block: nb, p: (n / nb).max(2), panel_mode: mode, ..Default::default() };
        let rt = RuntimeOpts {
            lookahead: 1,
            executor: ExecutorKind::Threaded { threads: args.threads },
            parallel_panel: false,
        };
        let (ipiv, rep) = runtime_calu_tiles(&mut t, opts, rt, &mut NoObs).expect("traced run");
        assert_eq!(ipiv.len(), n);
        let rec = Recorder::new();
        rep.record_into(&rec, 0.0);
        std::fs::write(path, rec.chrome_trace()).expect("write trace json");
        println!("wrote {path} ({} spans, {} panel mode)", rec.len(), mode_name(mode));
    }

    if !host.measured_speedup_valid {
        println!(
            "\nsingle-core host ({host_threads} thread): threaded rows measure executor \
             overhead, not parallel wins, and the host LLC may hold the whole matrix — the \
             layout claim is the modeled cache-traffic cut of {:.2}x (XT4 cache model)",
            rows.iter().map(|r| r.traffic_flat_mb / r.traffic_tiled_mb).fold(0.0, f64::max)
        );
    }

    // Panel-mode comparison: the tile-major panel traffic per mode, and
    // the per-size gather/scatter words the resident subgraph eliminates.
    let mut cmp_rows = Vec::new();
    for &n in &sizes {
        let find = |m: &str| {
            panel_traffic_mb.iter().find(|&&(pm, pn, _)| pm == m && pn == n).map(|&(_, _, v)| v)
        };
        if let (Some(g), Some(r)) = (find("gathered"), find("resident")) {
            println!(
                "n={n}: tile-major panel traffic gathered {g:.1}MB vs resident {r:.1}MB \
                 (eliminated gather/scatter: {:.1}MB)",
                g - r
            );
            cmp_rows.push(
                JsonValue::obj()
                    .set("n", n)
                    .set("panel_traffic_gathered_mb", g)
                    .set("panel_traffic_resident_mb", r)
                    .set("eliminated_panel_copy_mb", g - r),
            );
        }
    }

    let row_json = |r: &Row| {
        JsonValue::obj()
            .set("n", r.n)
            .set("panel", r.panel)
            .set("executor", r.executor)
            .set("flat_s", r.flat_s)
            .set("tiled_s", r.tiled_s)
            .set("measured_speedup", r.flat_s / r.tiled_s)
            .set("modeled_traffic_flat_mb", r.traffic_flat_mb)
            .set("modeled_traffic_tiled_mb", r.traffic_tiled_mb)
            .set("modeled_traffic_ratio", r.traffic_flat_mb / r.traffic_tiled_mb)
            .set("modeled_time_flat_s", r.modeled_flat_s)
            .set("modeled_time_tiled_s", r.modeled_tiled_s)
    };
    let mut record = host
        .stamp(
            JsonValue::obj()
                .set("bench", "layout_calu")
                .set("nb", nb)
                .set("communicator", "shared_memory"),
        )
        .set("reps", args.reps)
        .set("model", "xt4")
        .set("rows", rows.iter().map(row_json).collect::<JsonValue>());
    if !cmp_rows.is_empty() {
        record = record.set("panel_comparison", cmp_rows.into_iter().collect::<JsonValue>());
    }
    write_record(&args.out, &record);
}
