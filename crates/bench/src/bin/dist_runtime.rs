//! Distributed-runtime performance record: the `core::dist` layer driven
//! through the per-rank `calu-runtime` DAG, written as `BENCH_dist.json`.
//!
//! Two sections, because the container running CI may be single-core:
//!
//! * **modeled** (host-independent — the acceptance evidence): for each
//!   grid, the distributed DAG at lookahead depths 1-3 under the POWER5
//!   α-β-γ cost model. Per depth it records the infinite-parallelism
//!   critical path and the per-rank list-scheduled makespan; the
//!   `lookahead_win` column is `makespan(d=1) / makespan(d)` — the
//!   schedule-quality win of making lookahead a real parameter of the
//!   distributed algorithm (depth 1 reproduces the SPMD loop's coupling).
//! * **measured**: wall-clock of the real-data DAG execution (serial vs.
//!   threaded executor) on the host, with the factors asserted **bitwise
//!   identical** to the pre-refactor SPMD reference on every run. When
//!   `available_parallelism` reports one core the JSON carries
//!   `"measured_speedup_valid": false` — executor overhead is not a
//!   parallel win (see EXPERIMENTS.md).
//!
//! Usage: `dist_runtime [--n N] [--nb NB] [--model-n N] [--model-nb NB]
//! [--reps R] [--out PATH]` (defaults: n=512, nb=64, model-n=2000,
//! model-nb=50, reps=1, out=BENCH_dist.json).

use calu_bench::{write_record, HostInfo};
use calu_core::dist::{dist_calu_factor_spmd, DistCaluConfig};
use calu_core::{dist_calu_factor_rt, CommKind, DistRtOpts, LocalLu};
use calu_matrix::{gen, Matrix};
use calu_netsim::MachineConfig;
use calu_obs::analyze::{dag_span_chain_ns, intervals_ns, measured_phase_ns, reconcile_phases};
use calu_obs::{JsonValue, Profile, ProfileInputs};
use calu_runtime::{
    simulate_dist_schedule, DistCostModel, DistGeom, DistPanelAlg, ExecutorKind, LuDag, LuShape,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

struct Args {
    n: usize,
    nb: usize,
    model_n: usize,
    model_nb: usize,
    reps: usize,
    communicator: CommKind,
    out: String,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 512,
        nb: 64,
        model_n: 2000,
        model_nb: 50,
        reps: 1,
        communicator: CommKind::InProcess,
        out: "BENCH_dist.json".into(),
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}; try --help");
                std::process::exit(2);
            })
        };
        let parsed = |v: String| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad numeric value {v:?}; try --help");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--n" => args.n = parsed(val()),
            "--nb" => args.nb = parsed(val()),
            "--model-n" => args.model_n = parsed(val()),
            "--model-nb" => args.model_nb = parsed(val()),
            "--reps" => args.reps = parsed(val()),
            "--communicator" => {
                let v = val();
                args.communicator = CommKind::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown communicator {v:?} (in_process | threaded); try --help");
                    std::process::exit(2);
                });
            }
            "--out" => args.out = val(),
            "--trace-out" => args.trace_out = Some(val()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: dist_runtime [--n N] [--nb NB] [--model-n N] [--model-nb NB] \
                     [--reps R] [--communicator in_process|threaded] [--out PATH] \
                     [--trace-out PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

struct ModelRow {
    depth: usize,
    tasks: usize,
    cp_s: f64,
    makespan_s: f64,
}

struct MeasuredRow {
    depth: usize,
    serial_s: f64,
    threaded_s: f64,
}

fn best_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    (0..reps.max(1)).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let args = parse_args();
    let host = HostInfo::detect(0);
    let host_threads = host.host_threads;
    let mch = MachineConfig::power5();
    let grids: [(usize, usize); 3] = [(2, 2), (2, 4), (4, 4)];

    // --- Modeled section: lookahead over grids at paper-ish scale.
    let (mn, mb) = (args.model_n, args.model_nb);
    println!("dist_runtime: modeled {mn}x{mn}, b={mb} on the {} model", mch.name);
    println!(
        "{:>6} {:>5} {:>7} {:>12} {:>12} {:>9}",
        "grid", "depth", "tasks", "model CP", "model mksp", "la win"
    );
    let mut modeled: Vec<((usize, usize), Vec<ModelRow>)> = Vec::new();
    for &(pr, pc) in &grids {
        let shape = LuShape { m: mn, n: mn, nb: mb };
        let model = DistCostModel {
            geom: DistGeom { shape, pr, pc },
            alg: DistPanelAlg::Tslu,
            recursive_panel: true,
            mch: mch.clone(),
        };
        let mut rows = Vec::new();
        for depth in [1usize, 2, 3] {
            let dag = LuDag::build_dist(shape, (pr, pc), depth);
            let cp_s = dag.critical_path(|t| model.cost(t).total(&mch));
            let makespan_s = simulate_dist_schedule(&dag, |t| model.cost(t), &mch).makespan;
            rows.push(ModelRow { depth, tasks: dag.len(), cp_s, makespan_s });
        }
        let base = rows[0].makespan_s;
        for r in &rows {
            println!(
                "{:>6} {:>5} {:>7} {:>10.2}ms {:>10.2}ms {:>8.3}x",
                format!("{pr}x{pc}"),
                r.depth,
                r.tasks,
                r.cp_s * 1e3,
                r.makespan_s * 1e3,
                base / r.makespan_s
            );
        }
        modeled.push(((pr, pc), rows));
    }
    let best_win = modeled
        .iter()
        .flat_map(|(g, rows)| {
            let base = rows[0].makespan_s;
            rows.iter().filter(|r| r.depth >= 2).map(move |r| (*g, r.depth, base / r.makespan_s))
        })
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("modeled rows non-empty");
    println!(
        "\nbest modeled lookahead win: {:.3}x at depth {} on {}x{}",
        best_win.2, best_win.1, best_win.0 .0, best_win.0 .1
    );

    // --- Measured section: real-data execution, bitwise-checked.
    let (n, nb) = (args.n, args.nb);
    let (pr, pc) = (2usize, 2usize);
    let mut rng = StdRng::seed_from_u64(2026);
    let a: Matrix = gen::randn(&mut rng, n, n);
    let cfg = DistCaluConfig { b: nb, pr, pc, local: LocalLu::Recursive };
    let (_rep, reference) = dist_calu_factor_spmd(&a, cfg, MachineConfig::ideal());
    let communicator = args.communicator;
    println!(
        "\nmeasured: {n}x{n}, b={nb}, grid {pr}x{pc}, communicator={}, host_threads={}, reps={}",
        communicator.label(),
        host_threads,
        args.reps
    );
    // Under the threaded communicator the per-rank DAGs run on one OS
    // thread per rank and the executor knob is moot, so the "threaded"
    // column is the rank-thread wall clock; the "serial" column stays the
    // in-process baseline either way.
    println!("{:>5} {:>12} {:>12} {:>9}", "depth", "serial", "threaded", "measured");
    let mut measured = Vec::new();
    for depth in [1usize, 2, 3] {
        let run = |executor: ExecutorKind, communicator: CommKind| {
            let rt = DistRtOpts { lookahead: depth, executor, communicator };
            let t0 = Instant::now();
            let (_rep, d) = dist_calu_factor_rt(&a, cfg, rt, MachineConfig::ideal());
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(d.ipiv, reference.ipiv, "DAG pivots must match the SPMD reference");
            assert_eq!(
                d.lu.max_abs_diff(&reference.lu),
                0.0,
                "DAG factors must be bitwise identical to the SPMD reference"
            );
            dt
        };
        let serial_s = best_of(args.reps, || run(ExecutorKind::Serial, CommKind::InProcess));
        let threaded_s =
            best_of(args.reps, || run(ExecutorKind::Threaded { threads: 0 }, communicator));
        println!(
            "{:>5} {:>10.1}ms {:>10.1}ms {:>8.2}x",
            depth,
            serial_s * 1e3,
            threaded_s * 1e3,
            serial_s / threaded_s
        );
        measured.push(MeasuredRow { depth, serial_s, threaded_s });
    }
    if !host.measured_speedup_valid {
        println!(
            "single-core host ({host_threads} thread): measured 'speedup' is executor overhead \
             only — the schedule-quality claim is the modeled lookahead win above"
        );
    }
    println!("factors bitwise-identical to the SPMD reference on every run ✓");

    // --- Comm-ledger reconciliation: one instrumented run on the measured
    // grid; every mailbox word the run actually moved, reconciled against
    // the exact predictor (asserted equal) and the paper's skeleton.
    let rt = DistRtOpts { lookahead: 2, executor: ExecutorKind::Serial, communicator };
    let (rep, _d) = dist_calu_factor_rt(&a, cfg, rt, MachineConfig::ideal());
    for d in rep.mailbox_deltas() {
        if d.source == "mailbox_exact" {
            assert!(
                d.exact(),
                "term {}: measured {:?} != exact prediction {:?}",
                d.term,
                d.measured,
                d.expected
            );
        }
    }
    println!(
        "comm ledger: {} msgs / {} words measured on {pr}x{pc}, exact-predictor terms all \
         reconcile to zero gap ✓",
        rep.comm.total().msgs,
        rep.comm.total().words
    );
    let comm = rep
        .comm
        .to_json(&rep.expected_mailbox)
        .set("skeleton", rep.skeleton_deltas().iter().map(|d| d.to_json()).collect::<JsonValue>());

    // --- Wait-state profile and measured critical path of the
    // instrumented run. The sum-to-wall partition is exact per worker
    // (Profile::build asserts it); the measured critical path is
    // sandwiched between the DAG's longest executed span chain and the
    // wall clock.
    let mshape = LuShape { m: n, n, nb };
    let mdag = LuDag::build_dist(mshape, (pr, pc), 2);
    let intervals = intervals_ns(&rep.spans);
    // Collectives execute once per participant under the threaded
    // communicator, so one DAG task may own several span instances; the
    // task-level edges fan out to all instance pairs and the analyzer
    // keeps the temporally consistent ones.
    let mut instances: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, s) in rep.spans.iter().enumerate() {
        instances.entry(s.name.clone()).or_default().push(i);
    }
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for u in 0..mdag.len() {
        let Some(us) = instances.get(&mdag.tasks()[u].to_string()) else { continue };
        for &v in mdag.successors(u) {
            let Some(vs) = instances.get(&mdag.tasks()[v].to_string()) else { continue };
            for &iu in us {
                for &iv in vs {
                    edges.push((iu, iv));
                }
            }
        }
    }
    let dag_chain_ns = dag_span_chain_ns(&intervals, &edges);
    let waits: Vec<((u32, u32), u64)> =
        rep.comm.wait_rank_totals().into_iter().map(|(r, ns)| ((r, r), ns)).collect();
    let overheads = rep.exec.queue_delay_ns_by_lane();
    let profile = Profile::build(
        &rep.spans,
        ProfileInputs { wall_s: rep.exec.wall, comm_wait_ns: &waits, overhead_ns: &overheads },
    );
    assert!(profile.workers.iter().all(|w| w.partition_exact()), "sum-to-wall must be exact");
    assert!(
        dag_chain_ns <= profile.measured_cp_ns,
        "the DAG's longest executed span chain bounds the measured critical path from below"
    );
    assert!(
        profile.measured_cp_ns <= profile.wall_ns,
        "the measured critical path cannot exceed the wall clock"
    );
    // Model-vs-measured reconciliation against the POWER5 skeleton, per
    // phase (task category), not just totals; the headline ratio compares
    // measured chained-span seconds to the modeled critical path.
    let meas_model = DistCostModel {
        geom: DistGeom { shape: mshape, pr, pc },
        alg: DistPanelAlg::Tslu,
        recursive_panel: true,
        mch: mch.clone(),
    };
    let modeled_cp_s = mdag.critical_path(|t| meas_model.cost(t).total(&mch));
    let measured_vs_modeled_cp = (dag_chain_ns as f64 / 1e9) / modeled_cp_s;
    let mut modeled_phase: std::collections::BTreeMap<&'static str, f64> = Default::default();
    for id in 0..mdag.len() {
        let t = mdag.tasks()[id];
        *modeled_phase.entry(t.cat()).or_default() += meas_model.cost(t).total(&mch);
    }
    let modeled_phase: Vec<(String, f64)> =
        modeled_phase.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
    let phases = reconcile_phases(&measured_phase_ns(&rep.spans), &modeled_phase);
    println!(
        "profile: {} workers partition {:.2}ms of wall exactly; DAG span chain {:.2}ms <= \
         measured CP {:.2}ms <= wall, measured/modeled CP = {:.3}",
        profile.workers.len(),
        profile.wall_ns as f64 / 1e6,
        dag_chain_ns as f64 / 1e6,
        profile.measured_cp_ns as f64 / 1e6,
        measured_vs_modeled_cp
    );
    let profile_json = profile
        .to_json()
        .set("dag_span_chain_ns", dag_chain_ns)
        .set("dag_span_chain_s", dag_chain_ns as f64 / 1e9)
        .set("modeled_cp_s", modeled_cp_s)
        .set("measured_vs_modeled_cp", measured_vs_modeled_cp)
        .set("phases", phases.iter().map(|p| p.to_json()).collect::<JsonValue>());

    if let Some(path) = &args.trace_out {
        std::fs::write(path, calu_obs::chrome_trace(&rep.spans))
            .unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("wrote {path} ({} spans)", rep.spans.len());
    }

    // --- JSON record.
    let modeled_json: JsonValue = modeled
        .iter()
        .map(|((pr, pc), rows)| {
            let base = rows[0].makespan_s;
            let rows_json: JsonValue = rows
                .iter()
                .map(|r| {
                    JsonValue::obj()
                        .set("depth", r.depth)
                        .set("tasks", r.tasks)
                        .set("modeled_cp_s", r.cp_s)
                        .set("modeled_makespan_s", r.makespan_s)
                        .set("lookahead_win", base / r.makespan_s)
                })
                .collect();
            JsonValue::obj()
                .set("grid", format!("{pr}x{pc}"))
                .set("m", mn)
                .set("b", mb)
                .set("rows", rows_json)
        })
        .collect();
    let measured_json: JsonValue = measured
        .iter()
        .map(|r| {
            JsonValue::obj()
                .set("depth", r.depth)
                .set("serial_s", r.serial_s)
                .set("threaded_s", r.threaded_s)
                .set("measured_speedup", r.serial_s / r.threaded_s)
        })
        .collect();
    let record = host
        .stamp(JsonValue::obj().set("bench", "dist_runtime").set("model", "power5"))
        .set("communicator", communicator.label())
        .set("bitwise_equal_to_spmd", true)
        .set(
            "best_modeled_lookahead_win",
            JsonValue::obj()
                .set("grid", format!("{}x{}", best_win.0 .0, best_win.0 .1))
                .set("depth", best_win.1)
                .set("win", best_win.2),
        )
        .set("modeled", modeled_json)
        .set(
            "measured",
            JsonValue::obj()
                .set("n", n)
                .set("b", nb)
                .set("grid", format!("{pr}x{pc}"))
                .set("communicator", communicator.label())
                .set("rows", measured_json),
        )
        .set("comm", comm)
        .set("profile", profile_json);
    write_record(&args.out, &record);
}
