//! Table 1 regenerator: HPL accuracy tests for the ca-pivoting strategy —
//! growth factor, average/minimum threshold, componentwise backward error
//! `wb`, and the HPL1/2/3 residuals, per `(n, P, b)`.
//!
//! Usage: `table1_hpl_calu [--full] [--csv]`

use calu_bench::stability_table::calu_table;
use calu_bench::Cli;

fn main() {
    let cli = Cli::parse();
    println!("# Table 1: HPL accuracy tests for ca-pivoting (randn matrices)");
    println!("# paper: all cells pass (HPL < 16); wb ~ 1e-14..1e-15; tau_min >= 0.33\n");
    calu_table(&cli).print(cli.csv);
}
