//! Scaling curves (extension of Tables 5-6's fixed-size cells): strong
//! scaling (fixed n, growing P) and weak scaling (fixed memory per rank)
//! for CALU vs PDGETRF on the simulated machines, including the modern
//! commodity cluster where the latency skew is much larger.
//!
//! Usage: `fig_scaling [--csv]`

use calu_bench::{f2, Cli, Table};
use calu_core::dist::{skeleton_calu, skeleton_pdgetrf, RowSwapScheme, SkelCfg};
use calu_core::LocalLu;
use calu_netsim::machine::flops_lu;
use calu_netsim::MachineConfig;

fn times(mch: &MachineConfig, n: usize, b: usize, pr: usize, pc: usize) -> (f64, f64) {
    let calu =
        SkelCfg { m: n, n, b, pr, pc, local: LocalLu::Recursive, swap: RowSwapScheme::ReduceBcast };
    let pdg = SkelCfg { local: LocalLu::Classic, swap: RowSwapScheme::PdLaswp, ..calu };
    (skeleton_calu(calu, mch.clone()).makespan(), skeleton_pdgetrf(pdg, mch.clone()).makespan())
}

fn main() {
    let cli = Cli::parse();
    let grids: Vec<(usize, usize, usize)> = vec![(4, 2, 2), (16, 4, 4), (64, 8, 8), (256, 16, 16)];

    for mch in [MachineConfig::power5(), MachineConfig::modern_cluster()] {
        println!("## Strong scaling on {}: n = 10^4, b = 50", mch.name);
        let mut t =
            Table::new(&["P", "grid", "T_CALU (s)", "T_PDGETRF (s)", "speedup", "CALU par-eff %"]);
        let n = 10_000;
        let mut t1 = None;
        for &(p, pr, pc) in &grids {
            let (tc, tp) = times(&mch, n, 50, pr, pc);
            let t_one = *t1.get_or_insert(tc * p as f64); // P0-normalized work-time
            let eff = 100.0 * t_one / (tc * p as f64);
            t.row(vec![
                format!("{p}"),
                format!("{pr}x{pc}"),
                format!("{tc:.3}"),
                format!("{tp:.3}"),
                f2(tp / tc),
                format!("{eff:.0}"),
            ]);
        }
        t.print(cli.csv);
        println!();

        println!("## Weak scaling on {}: n = 2500 * sqrt(P), b = 50", mch.name);
        let mut t = Table::new(&[
            "P",
            "grid",
            "n",
            "T_CALU (s)",
            "T_PDGETRF (s)",
            "speedup",
            "CALU GF/s/rank",
        ]);
        for &(p, pr, pc) in &grids {
            let n = 2_500 * (p as f64).sqrt() as usize;
            let (tc, tp) = times(&mch, n, 50, pr, pc);
            t.row(vec![
                format!("{p}"),
                format!("{pr}x{pc}"),
                format!("{n}"),
                format!("{tc:.3}"),
                format!("{tp:.3}"),
                f2(tp / tc),
                format!("{:.1}", flops_lu(n, n) / tc / 1e9 / p as f64),
            ]);
        }
        t.print(cli.csv);
        println!();
    }
    println!("# Reading: the CALU-vs-PDGETRF speedup grows with P in strong scaling");
    println!("# (panel latency becomes the bottleneck) and is larger on the modern");
    println!("# cluster (higher flops-per-latency skew), while weak scaling keeps");
    println!("# per-rank efficiency roughly flat for CALU.");
}
