//! Runtime-executor performance record: serial vs. threaded execution of
//! the CALU task DAG at several lookahead depths, written as
//! `BENCH_runtime.json` so CI and later sessions can diff performance.
//!
//! Two win metrics are recorded, because the container running CI may be
//! single-core:
//!
//! * **measured**: wall-clock of the threaded executor vs. the serial
//!   executor on the host (meaningful when `host_threads > 1`);
//! * **modeled**: the DAG's critical path vs. its serial sum under the
//!   POWER5 γ-rate cost model — the schedule-quality win that does not
//!   depend on the host, and the acceptance evidence on single-core hosts.
//!
//! The measured-speedup claim is only meaningful with real parallelism:
//! when `available_parallelism` reports a single core the JSON carries
//! `"measured_speedup_valid": false` and the summary line says so, so a
//! committed record from a single-core CI container cannot be mistaken
//! for a parallel-win measurement (see EXPERIMENTS.md).
//!
//! Usage: `runtime_calu [--n N] [--nb NB] [--reps R] [--threads T] [--out PATH]
//! [--trace-out PATH]` (defaults: n=1024, nb=128, reps=1, threads=0 = host,
//! out=BENCH_runtime.json). With `--trace-out`, one extra threaded run at
//! the deepest lookahead exports its task timeline as a Chrome trace that
//! `bench_report --trace` (or `chrome://tracing`) can consume.

use calu_bench::{write_record, HostInfo};
use calu_core::{runtime_calu_factor, CaluOpts, RuntimeOpts};
use calu_matrix::{gen, Matrix};
use calu_netsim::MachineConfig;
use calu_obs::{JsonValue, Recorder};
use calu_runtime::{modeled_time, ExecutorKind, LuDag, LuShape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Args {
    n: usize,
    nb: usize,
    reps: usize,
    threads: usize,
    out: String,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 1024,
        nb: 128,
        reps: 1,
        threads: 0,
        out: "BENCH_runtime.json".into(),
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}; try --help");
                std::process::exit(2);
            })
        };
        let parsed = |v: String| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad numeric value {v:?}; try --help");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--n" => args.n = parsed(val()),
            "--nb" => args.nb = parsed(val()),
            "--reps" => args.reps = parsed(val()),
            "--threads" => args.threads = parsed(val()),
            "--out" => args.out = val(),
            "--trace-out" => args.trace_out = Some(val()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: runtime_calu [--n N] [--nb NB] [--reps R] [--threads T] [--out PATH] \
                     [--trace-out PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

struct Row {
    depth: usize,
    serial_s: f64,
    threaded_s: f64,
    tasks: usize,
    modeled_serial_s: f64,
    modeled_cp_s: f64,
}

fn best_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    (0..reps.max(1)).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let args = parse_args();
    let (n, nb) = (args.n, args.nb);
    let host = HostInfo::detect(args.threads);
    let host_threads = host.host_threads;
    let mut rng = StdRng::seed_from_u64(2024);
    let a: Matrix = gen::randn(&mut rng, n, n);
    let opts = CaluOpts { block: nb, p: 4, ..Default::default() };
    let shape = LuShape { m: n, n, nb };
    let mch = MachineConfig::power5();

    println!("runtime_calu: {n}x{n}, nb={nb}, host_threads={host_threads}, reps={}", args.reps);
    println!(
        "{:>5} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9}",
        "depth", "serial", "threaded", "measured", "model 1-wkr", "model CP", "modeled"
    );

    let mut rows = Vec::new();
    for depth in [1usize, 2, 3] {
        let run = |executor: ExecutorKind| {
            let rt = RuntimeOpts { lookahead: depth, executor, parallel_panel: false };
            let t0 = Instant::now();
            let (f, _rep) = runtime_calu_factor(&a, opts, rt).expect("factorization succeeds");
            let dt = t0.elapsed().as_secs_f64();
            // Keep the factors alive so the call is not optimized away.
            assert_eq!(f.ipiv.len(), n);
            dt
        };
        let serial_s = best_of(args.reps, || run(ExecutorKind::Serial));
        let threaded_s =
            best_of(args.reps, || run(ExecutorKind::Threaded { threads: args.threads }));

        let dag = LuDag::build(shape, depth);
        let modeled_serial_s = dag.total_cost(|t| modeled_time(&shape, t, &mch));
        let modeled_cp_s = dag.critical_path(|t| modeled_time(&shape, t, &mch));
        println!(
            "{:>5} {:>10.1}ms {:>10.1}ms {:>8.2}x {:>10.1}ms {:>10.1}ms {:>8.2}x",
            depth,
            serial_s * 1e3,
            threaded_s * 1e3,
            serial_s / threaded_s,
            modeled_serial_s * 1e3,
            modeled_cp_s * 1e3,
            modeled_serial_s / modeled_cp_s
        );
        rows.push(Row {
            depth,
            serial_s,
            threaded_s,
            tasks: dag.len(),
            modeled_serial_s,
            modeled_cp_s,
        });
    }

    let measured_valid = host.measured_speedup_valid;
    let best = rows
        .iter()
        .max_by(|a, b| (a.serial_s / a.threaded_s).total_cmp(&(b.serial_s / b.threaded_s)))
        .expect("rows non-empty");
    if measured_valid {
        println!(
            "\nbest measured win: depth {} at {:.2}x; best modeled critical-path win: {:.2}x",
            best.depth,
            best.serial_s / best.threaded_s,
            rows.iter().map(|r| r.modeled_serial_s / r.modeled_cp_s).fold(0.0, f64::max)
        );
    } else {
        println!(
            "\nsingle-core host ({host_threads} thread): measured 'speedup' is executor \
             overhead only, NOT a parallel win — the schedule-quality claim is the modeled \
             critical-path win of {:.2}x",
            rows.iter().map(|r| r.modeled_serial_s / r.modeled_cp_s).fold(0.0, f64::max)
        );
    }

    if let Some(path) = &args.trace_out {
        // One extra threaded run at the deepest lookahead, replayed into a
        // Chrome trace so `bench_report --trace` can profile it.
        let rt = RuntimeOpts {
            lookahead: 3,
            executor: ExecutorKind::Threaded { threads: args.threads },
            parallel_panel: false,
        };
        let (f, rep) = runtime_calu_factor(&a, opts, rt).expect("traced run succeeds");
        assert_eq!(f.ipiv.len(), n);
        let rec = Recorder::new();
        rep.record_into(&rec, 0.0);
        std::fs::write(path, rec.chrome_trace()).expect("write trace json");
        println!("wrote {path} ({} spans)", rec.len());
    }

    let row_json = |r: &Row| {
        JsonValue::obj()
            .set("depth", r.depth)
            .set("tasks", r.tasks)
            .set("serial_s", r.serial_s)
            .set("threaded_s", r.threaded_s)
            .set("measured_speedup", r.serial_s / r.threaded_s)
            .set("modeled_serial_s", r.modeled_serial_s)
            .set("modeled_cp_s", r.modeled_cp_s)
            .set("modeled_cp_speedup", r.modeled_serial_s / r.modeled_cp_s)
    };
    let record = host
        .stamp(
            JsonValue::obj()
                .set("bench", "runtime_calu")
                .set("n", n)
                .set("nb", nb)
                .set("communicator", "shared_memory"),
        )
        .set("reps", args.reps)
        .set("model", "power5")
        .set("rows", rows.iter().map(row_json).collect::<JsonValue>());
    write_record(&args.out, &record);
}
