//! Runtime-executor performance record: serial vs. threaded execution of
//! the CALU task DAG at several lookahead depths and both panel modes,
//! written as `BENCH_runtime.json` so CI and later sessions can diff
//! performance.
//!
//! Two win metrics are recorded, because the container running CI may be
//! single-core:
//!
//! * **measured**: wall-clock of the threaded executor vs. the serial
//!   executor on the host (meaningful when `host_threads > 1`);
//! * **modeled**: the DAG's critical path vs. its serial sum under the
//!   POWER5 γ-rate cost model — the schedule-quality win that does not
//!   depend on the host, and the acceptance evidence on single-core hosts.
//!
//! The measured-speedup claim is only meaningful with real parallelism:
//! when `available_parallelism` reports a single core the JSON carries
//! `"measured_speedup_valid": false` and the summary line says so, so a
//! committed record from a single-core CI container cannot be mistaken
//! for a parallel-win measurement (see EXPERIMENTS.md).
//!
//! The `--panel` flag selects the panel decomposition: `gathered` (one
//! monolithic `Panel(k)` task per step), `resident` (the per-tile
//! `PanelElect`/`PanelReduce`/`PanelFinish`/`PanelApply` tournament
//! subgraph), or `both` (the default). With both modes the record gains a
//! `panel_comparison` section: per mode, one traced threaded run's
//! measured panel-phase time, the idle-during-panel wait
//! (`calu_obs::idle_overlap_ns`), the modeled critical path, and the
//! modeled tile-major panel traffic — including the gather/scatter words
//! the resident subgraph eliminates. The gathered reference uses
//! `p = max(n/nb, 2)` tournament blocks so its leaves coincide with the
//! resident tree's tile-height leaves at the first step (apples to
//! apples); each row records its `p`.
//!
//! Usage: `runtime_calu [--n N] [--nb NB] [--reps R] [--threads T]
//! [--panel gathered|resident|both] [--out PATH] [--trace-out PATH]`
//! (defaults: n=1024, nb=128, reps=1, threads=0 = host, panel=both,
//! out=BENCH_runtime.json). With `--trace-out`, one extra threaded run at
//! the deepest lookahead exports its task timeline as a Chrome trace that
//! `bench_report --trace` (or `chrome://tracing`) can consume.

use calu_bench::{write_record, HostInfo};
use calu_core::{runtime_calu_factor, CaluOpts, RuntimeOpts};
use calu_matrix::{gen, Matrix};
use calu_netsim::MachineConfig;
use calu_obs::analyze::measured_phase_ns;
use calu_obs::{idle_overlap_ns, JsonValue, Profile, ProfileInputs, Recorder};
use calu_runtime::{
    modeled_cache_traffic, modeled_time, ExecutorKind, LuDag, LuShape, PanelMode, TileLocality,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Args {
    n: usize,
    nb: usize,
    reps: usize,
    threads: usize,
    panel: Vec<PanelMode>,
    out: String,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 1024,
        nb: 128,
        reps: 1,
        threads: 0,
        panel: vec![PanelMode::Gathered, PanelMode::Resident],
        out: "BENCH_runtime.json".into(),
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}; try --help");
                std::process::exit(2);
            })
        };
        let parsed = |v: String| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad numeric value {v:?}; try --help");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--n" => args.n = parsed(val()),
            "--nb" => args.nb = parsed(val()),
            "--reps" => args.reps = parsed(val()),
            "--threads" => args.threads = parsed(val()),
            "--panel" => {
                args.panel = match val().as_str() {
                    "gathered" => vec![PanelMode::Gathered],
                    "resident" => vec![PanelMode::Resident],
                    "both" => vec![PanelMode::Gathered, PanelMode::Resident],
                    other => {
                        eprintln!("bad --panel {other:?}: expected gathered|resident|both");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => args.out = val(),
            "--trace-out" => args.trace_out = Some(val()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: runtime_calu [--n N] [--nb NB] [--reps R] [--threads T] \
                     [--panel gathered|resident|both] [--out PATH] [--trace-out PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

fn mode_name(mode: PanelMode) -> &'static str {
    match mode {
        PanelMode::Gathered => "gathered",
        PanelMode::Resident => "resident",
    }
}

struct Row {
    panel: &'static str,
    p: usize,
    depth: usize,
    serial_s: f64,
    threaded_s: f64,
    tasks: usize,
    modeled_serial_s: f64,
    modeled_cp_s: f64,
}

/// One mode's traced threaded run for the `panel_comparison` section.
struct PanelSide {
    mode: &'static str,
    wall_s: f64,
    panel_measured_ns: u64,
    panel_wait_ns: u64,
    modeled_cp_s: f64,
    panel_traffic_mb: f64,
}

fn best_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    (0..reps.max(1)).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let args = parse_args();
    let (n, nb) = (args.n, args.nb);
    let host = HostInfo::detect(args.threads);
    let host_threads = host.host_threads;
    let mut rng = StdRng::seed_from_u64(2024);
    let a: Matrix = gen::randn(&mut rng, n, n);
    // Apples-to-apples tournament granularity: the gathered reference
    // folds p = max(n/nb, 2) block-rows, matching the resident tree's
    // tile-height leaves at the first panel.
    let p = (n / nb).max(2);
    let opts_for =
        |mode: PanelMode| CaluOpts { block: nb, p, panel_mode: mode, ..Default::default() };
    let shape = LuShape { m: n, n, nb };
    let mch = MachineConfig::power5();

    println!(
        "runtime_calu: {n}x{n}, nb={nb}, p={p}, host_threads={host_threads}, reps={}",
        args.reps
    );
    println!(
        "{:>9} {:>5} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9}",
        "panel", "depth", "serial", "threaded", "measured", "model 1-wkr", "model CP", "modeled"
    );

    let mut rows = Vec::new();
    for &mode in &args.panel {
        for depth in [1usize, 2, 3] {
            let run = |executor: ExecutorKind| {
                let rt = RuntimeOpts { lookahead: depth, executor, parallel_panel: false };
                let t0 = Instant::now();
                let (f, _rep) =
                    runtime_calu_factor(&a, opts_for(mode), rt).expect("factorization succeeds");
                let dt = t0.elapsed().as_secs_f64();
                // Keep the factors alive so the call is not optimized away.
                assert_eq!(f.ipiv.len(), n);
                dt
            };
            let serial_s = best_of(args.reps, || run(ExecutorKind::Serial));
            let threaded_s =
                best_of(args.reps, || run(ExecutorKind::Threaded { threads: args.threads }));

            let dag = LuDag::build_with(shape, depth, mode);
            let modeled_serial_s = dag.total_cost(|t| modeled_time(&shape, t, &mch));
            let modeled_cp_s = dag.critical_path(|t| modeled_time(&shape, t, &mch));
            println!(
                "{:>9} {:>5} {:>10.1}ms {:>10.1}ms {:>8.2}x {:>10.1}ms {:>10.1}ms {:>8.2}x",
                mode_name(mode),
                depth,
                serial_s * 1e3,
                threaded_s * 1e3,
                serial_s / threaded_s,
                modeled_serial_s * 1e3,
                modeled_cp_s * 1e3,
                modeled_serial_s / modeled_cp_s
            );
            rows.push(Row {
                panel: mode_name(mode),
                p,
                depth,
                serial_s,
                threaded_s,
                tasks: dag.len(),
                modeled_serial_s,
                modeled_cp_s,
            });
        }
    }

    let measured_valid = host.measured_speedup_valid;
    let best = rows
        .iter()
        .max_by(|a, b| (a.serial_s / a.threaded_s).total_cmp(&(b.serial_s / b.threaded_s)))
        .expect("rows non-empty");
    if measured_valid {
        println!(
            "\nbest measured win: {} depth {} at {:.2}x; best modeled critical-path win: {:.2}x",
            best.panel,
            best.depth,
            best.serial_s / best.threaded_s,
            rows.iter().map(|r| r.modeled_serial_s / r.modeled_cp_s).fold(0.0, f64::max)
        );
    } else {
        println!(
            "\nsingle-core host ({host_threads} thread): measured 'speedup' is executor \
             overhead only, NOT a parallel win — the schedule-quality claim is the modeled \
             critical-path win of {:.2}x",
            rows.iter().map(|r| r.modeled_serial_s / r.modeled_cp_s).fold(0.0, f64::max)
        );
    }

    // Panel-mode comparison: one traced threaded run per selected mode at
    // depth 2, profiled through calu-obs — measured panel-phase time, the
    // idle-during-panel wait the decomposition exists to shrink, and the
    // modeled tile-major panel traffic whose gathered/resident difference
    // is exactly the eliminated gather/scatter copy.
    let mut sides: Vec<PanelSide> = Vec::new();
    for &mode in &args.panel {
        let rt = RuntimeOpts {
            lookahead: 2,
            executor: ExecutorKind::Threaded { threads: args.threads },
            parallel_panel: false,
        };
        let (f, rep) = runtime_calu_factor(&a, opts_for(mode), rt).expect("traced run succeeds");
        assert_eq!(f.ipiv.len(), n);
        let rec = Recorder::new();
        rep.record_into(&rec, 0.0);
        let spans = rec.take();
        let wall_ns = (rep.wall * 1e9).round() as u64;
        let is_panel = |c: &str| c.starts_with("panel");
        let panel_measured_ns = measured_phase_ns(&spans)
            .into_iter()
            .filter(|(cat, _)| is_panel(cat))
            .map(|(_, ns)| ns)
            .sum();
        let panel_wait_ns = idle_overlap_ns(&spans, is_panel, wall_ns);
        // The sum-to-wall partition must hold exactly on this run
        // (Profile::build asserts it per lane).
        let profile = Profile::build(
            &spans,
            ProfileInputs {
                wall_s: rep.wall,
                overhead_ns: &rep.queue_delay_ns_by_lane(),
                ..Default::default()
            },
        );
        assert!(profile.workers.iter().all(|w| w.partition_exact()));
        let dag = LuDag::build_with(shape, 2, mode);
        let panel_traffic_mb = dag
            .tasks()
            .iter()
            .filter(|t| is_panel(t.cat()))
            .map(|&t| modeled_cache_traffic(&shape, t, &mch, TileLocality::TileMajor))
            .sum::<f64>()
            / 1e6;
        sides.push(PanelSide {
            mode: mode_name(mode),
            wall_s: rep.wall,
            panel_measured_ns,
            panel_wait_ns,
            modeled_cp_s: dag.critical_path(|t| modeled_time(&shape, t, &mch)),
            panel_traffic_mb,
        });
    }
    println!(
        "\n{:>9} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "panel", "wall", "panel time", "panel wait", "model CP", "panel MB"
    );
    for s in &sides {
        println!(
            "{:>9} {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>10.1}ms {:>10.1}MB",
            s.mode,
            s.wall_s * 1e3,
            s.panel_measured_ns as f64 / 1e6,
            s.panel_wait_ns as f64 / 1e6,
            s.modeled_cp_s * 1e3,
            s.panel_traffic_mb
        );
    }
    if let [g, r] = &sides[..] {
        println!(
            "resident vs gathered: panel time {:.2}x, eliminated gather/scatter {:.1}MB",
            g.panel_measured_ns as f64 / (r.panel_measured_ns as f64).max(1.0),
            g.panel_traffic_mb - r.panel_traffic_mb
        );
    }

    if let Some(path) = &args.trace_out {
        // One extra threaded run at the deepest lookahead, replayed into a
        // Chrome trace so `bench_report --trace` can profile it. Uses the
        // last selected panel mode (resident under the default `both`).
        let mode = *args.panel.last().expect("at least one panel mode");
        let rt = RuntimeOpts {
            lookahead: 3,
            executor: ExecutorKind::Threaded { threads: args.threads },
            parallel_panel: false,
        };
        let (f, rep) = runtime_calu_factor(&a, opts_for(mode), rt).expect("traced run succeeds");
        assert_eq!(f.ipiv.len(), n);
        let rec = Recorder::new();
        rep.record_into(&rec, 0.0);
        std::fs::write(path, rec.chrome_trace()).expect("write trace json");
        println!("wrote {path} ({} spans, {} panel mode)", rec.len(), mode_name(mode));
    }

    let row_json = |r: &Row| {
        JsonValue::obj()
            .set("panel", r.panel)
            .set("p", r.p)
            .set("depth", r.depth)
            .set("tasks", r.tasks)
            .set("serial_s", r.serial_s)
            .set("threaded_s", r.threaded_s)
            .set("measured_speedup", r.serial_s / r.threaded_s)
            .set("modeled_serial_s", r.modeled_serial_s)
            .set("modeled_cp_s", r.modeled_cp_s)
            .set("modeled_cp_speedup", r.modeled_serial_s / r.modeled_cp_s)
    };
    let side_json = |s: &PanelSide| {
        JsonValue::obj()
            .set("panel", s.mode)
            .set("wall_s", s.wall_s)
            .set("panel_measured_ns", s.panel_measured_ns)
            .set("panel_wait_ns", s.panel_wait_ns)
            .set("modeled_cp_s", s.modeled_cp_s)
            .set("modeled_panel_traffic_tile_mb", s.panel_traffic_mb)
            .set("partition_exact", true)
    };
    let mut record = host
        .stamp(
            JsonValue::obj()
                .set("bench", "runtime_calu")
                .set("n", n)
                .set("nb", nb)
                .set("p", p)
                .set("communicator", "shared_memory"),
        )
        .set("reps", args.reps)
        .set("model", "power5")
        .set("rows", rows.iter().map(row_json).collect::<JsonValue>());
    let mut cmp = JsonValue::obj()
        .set("depth", 2usize)
        .set("executor", "threaded")
        .set("modes", sides.iter().map(side_json).collect::<JsonValue>());
    if let [g, r] = &sides[..] {
        cmp = cmp
            .set(
                "panel_time_ratio",
                g.panel_measured_ns as f64 / (r.panel_measured_ns as f64).max(1.0),
            )
            .set("eliminated_panel_copy_mb", g.panel_traffic_mb - r.panel_traffic_mb);
    }
    record = record.set("panel_comparison", cmp);
    write_record(&args.out, &record);
}
