//! Section 5's term-by-term CALU vs PDGETRF comparison, priced on both
//! machine models: where the factor-`b` message reduction shows up, what
//! the redundant panel work costs, and why everything else ties.
//!
//! Usage: `section5_comparison [--csv]`

use calu_bench::{f2, sci, Cli, Table};
use calu_netsim::MachineConfig;
use calu_perfmodel::section5::{compare, latency_advantage, price};

const CLASSES: [&str; 6] =
    ["mul/add flops", "divides", "col latency", "col bandwidth", "row latency", "row bandwidth"];

fn main() {
    let cli = Cli::parse();
    println!("# Section 5: term-by-term runtime comparison (Equations (2) vs (3))");
    println!("# paper: CALU adds b(mn-n^2/2)/Pr flops and n*log2(Pr) divides, wins");
    println!("# col latency by ~b(1 + 1/log2 Pr), ties col bandwidth and row costs\n");

    for mch in [MachineConfig::power5(), MachineConfig::xt4()] {
        for &(n, b, pr, pc) in &[(1_000usize, 50usize, 8usize, 8usize), (10_000, 50, 8, 8)] {
            let s = compare(n, n, b, pr, pc);
            let priced = price(&s, &mch);
            println!("## {} — n={n}, b={b}, grid {pr}x{pc}", mch.name);
            let mut t = Table::new(&["term", "CALU (s)", "PDGETRF (s)", "PDGETRF/CALU"]);
            for (name, (c, p)) in CLASSES.iter().zip(priced) {
                let ratio = if c == 0.0 { "-".into() } else { f2(p / c) };
                t.row(vec![(*name).into(), sci(c), sci(p), ratio]);
            }
            let tot_c: f64 = priced.iter().map(|(c, _)| c).sum();
            let tot_p: f64 = priced.iter().map(|(_, p)| p).sum();
            t.row(vec!["TOTAL".into(), sci(tot_c), sci(tot_p), f2(tot_p / tot_c)]);
            t.print(cli.csv);
            let (measured, law) = latency_advantage(n, b, pr);
            println!(
                "   col-message reduction: {measured:.0}x  (paper law b(1+1/log2 Pr) ~ {law:.0}x)\n"
            );
        }
    }
}
