//! Technology-trend figure (extension of the introduction's claim):
//! evolve the POWER5 under the canonical component rates — arithmetic
//! 59%/yr, bandwidth 26%/yr, latency 15%/yr — and plot the modeled
//! CALU-vs-PDGETRF speedup and PDGETRF's latency share over 15 years,
//! plus the crossover matrix size below which CALU pays.
//!
//! Usage: `fig_trend [--csv]`

use calu_bench::{f2, Cli, Table};
use calu_netsim::MachineConfig;
use calu_perfmodel::{evolve, gain_crossover_size, speedup_trend, TechTrend};

fn main() {
    let cli = Cli::parse();
    let trend = TechTrend::default();
    let base = MachineConfig::power5();
    let years: Vec<f64> = (0..=15).step_by(3).map(|y| y as f64).collect();

    println!("# Future architectures (Introduction): \"arithmetic will continue to improve");
    println!("# exponentially faster than bandwidth, and bandwidth exponentially faster than");
    println!("# latency. So CALU is well suited for future parallel architectures.\"");
    println!("# Model: Equations (2)/(3) on POWER5 evolved at flops x{}/yr,", trend.flops_per_year);
    println!(
        "#        bandwidth x{}/yr, latency x{}/yr.\n",
        trend.bandwidth_per_year, trend.latency_per_year
    );

    let mut t = Table::new(&[
        "years",
        "speedup n=1e3",
        "speedup n=5e3",
        "speedup n=1e4",
        "PDGETRF lat% (5e3)",
        "CALU lat% (5e3)",
        "crossover n (gain<5%)",
    ]);
    let grids = (8usize, 8usize);
    for &y in &years {
        let mch = evolve(&base, y, &trend);
        let s1 = speedup_trend(&base, 1_000, 50, grids.0, grids.1, &[y], &trend)[0];
        let s5 = speedup_trend(&base, 5_000, 50, grids.0, grids.1, &[y], &trend)[0];
        let s10 = speedup_trend(&base, 10_000, 50, grids.0, grids.1, &[y], &trend)[0];
        let cross = gain_crossover_size(&mch, 50, grids.0, grids.1, 1.05, 16_000_000)
            .map(|c| format!("{c}"))
            .unwrap_or_else(|| ">16M".into());
        t.row(vec![
            format!("{y:.0}"),
            f2(s1.speedup),
            f2(s5.speedup),
            f2(s10.speedup),
            format!("{:.1}", 100.0 * s5.pdgetrf_latency_fraction),
            format!("{:.1}", 100.0 * s5.calu_latency_fraction),
            cross,
        ]);
    }
    t.print(cli.csv);
}
