//! Tree-shape stability ablation: does the *shape* of the tournament
//! (binary tree vs one flat stack) change the quality of the elected
//! pivots? Figure 2 varies the tournament height `P`; this binary varies
//! the shape at fixed height, reporting threshold and growth statistics
//! for panels elected each way, plus the GEPP reference.
//!
//! Usage: `ablation_tree_stability [--full] [--csv]`

use calu_bench::{f2, Cli, Table};
use calu_core::tournament::{tournament, tournament_flat, Candidates};
use calu_core::tslu::{partition_rows, winners_to_ipiv};
use calu_core::PivotStats;
use calu_matrix::lapack::lu_nopiv;
use calu_matrix::perm::apply_ipiv;
use calu_matrix::{gen, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn elect(panel: &Matrix, p: usize, flat: bool) -> Vec<usize> {
    let b = panel.cols();
    let blocks: Vec<Candidates> = partition_rows(panel.rows(), p)
        .into_iter()
        .map(|r| {
            let block = panel.view().submatrix(r.start, 0, r.len(), b).to_matrix();
            Candidates::from_block_row(&block, &r.collect::<Vec<_>>())
        })
        .collect();
    if flat {
        tournament_flat(blocks).rows
    } else {
        tournament(blocks).rows
    }
}

/// Factors the panel with the elected winners on top; returns the stats.
fn panel_stats(panel: &Matrix, winners: &[usize]) -> PivotStats {
    let mut w = panel.clone();
    let ipiv = winners_to_ipiv(winners, panel.rows());
    apply_ipiv(w.view_mut(), &ipiv);
    let mut stats = PivotStats::new(panel.max_abs());
    lu_nopiv(w.view_mut(), &mut stats).expect("elected pivots keep the panel nonsingular");
    stats
}

fn main() {
    let cli = Cli::parse();
    let (m, b, samples) = if cli.full { (8192, 64, 10) } else { (1024, 32, 4) };

    println!("# Tree-shape stability ablation on {m}x{b} randn panels, S={samples}");
    println!("# binary = the paper's reduction tree; flat = single stacked GEPP;");
    println!("# GEPP = partial pivoting reference (tau = 1 by definition)\n");

    let mut t = Table::new(&["P", "shape", "tau_min", "tau_ave", "max|L|", "growth vs GEPP"]);
    for &p in &[4usize, 16, 64] {
        let mut rows: Vec<(String, f64, f64, f64, f64)> = Vec::new();
        for (shape, flat) in [("binary", false), ("flat", true)] {
            let (mut tmin, mut tave, mut ml, mut growth) = (f64::INFINITY, 0.0, 0.0_f64, 0.0);
            for s in 0..samples {
                let mut rng = StdRng::seed_from_u64(5_000 + s as u64);
                let panel = gen::randn(&mut rng, m, b);
                let winners = elect(&panel, p, flat);
                let stats = panel_stats(&panel, &winners);
                // GEPP growth on the same panel for the ratio.
                let gepp = {
                    let mut w = panel.clone();
                    let mut ipiv = vec![0usize; b];
                    let mut st = PivotStats::new(panel.max_abs());
                    calu_matrix::lapack::getf2(w.view_mut(), &mut ipiv, &mut st).unwrap();
                    st.max_elem
                };
                tmin = tmin.min(stats.tau_min());
                tave += stats.tau_ave();
                ml = ml.max(stats.max_l);
                growth += stats.max_elem / gepp;
            }
            rows.push((
                shape.to_string(),
                tmin,
                tave / samples as f64,
                ml,
                growth / samples as f64,
            ));
        }
        for (shape, tmin, tave, ml, g) in rows {
            t.row(vec![format!("{p}"), shape, f2(tmin), f2(tave), f2(ml), f2(g)]);
        }
    }
    t.print(cli.csv);
    println!("\n# expectation: both shapes behave as threshold pivoting (tau_min >= ~0.33,");
    println!("# |L| <= ~3, growth within a small factor of GEPP) — the communication");
    println!("# pattern, not the pivot quality, is what separates them (model_check).");
}
