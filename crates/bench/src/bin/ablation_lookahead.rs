//! Look-ahead ablation (Section 4: CALU "can incorporate techniques which
//! allow some overlap between computation and communication as the
//! so-called look-ahead technique used in HPL"): plain CALU skeleton vs
//! the depth-1 look-ahead skeleton on both machine models, across the
//! paper's full-factorization sweep.
//!
//! Usage: `ablation_lookahead [--csv]`

use calu_bench::calu_table::cell_valid;
use calu_bench::{f2, paper_grids, Cli, Table};
use calu_core::dist::{skeleton_calu, skeleton_calu_lookahead, RowSwapScheme, SkelCfg};
use calu_core::LocalLu;
use calu_netsim::{MachineConfig, TimeBreakdown};

fn main() {
    let cli = Cli::parse();
    println!("# Look-ahead ablation: T_CALU / T_CALU+lookahead (simulated)");
    println!("# The gain is the panel critical path hidden behind the trailing gemm;");
    println!("# it is largest where the panel (latency) share is largest.\n");

    for mch in [MachineConfig::power5(), MachineConfig::xt4()] {
        println!("## {}", mch.name);
        let mut t = Table::new(&[
            "m=n",
            "b",
            "P=16 gain",
            "P=64 gain",
            "P=64 idle% plain",
            "P=64 idle% lookahead",
        ]);
        for &m in &[1_000usize, 5_000, 10_000] {
            for &b in &[50usize, 100] {
                let mut cells: Vec<String> = vec![format!("{m}"), format!("{b}")];
                let mut idles: Vec<String> = Vec::new();
                for (p, pr, pc) in paper_grids() {
                    if p != 16 && p != 64 {
                        continue;
                    }
                    if !cell_valid(m, b, pr, pc) {
                        cells.push("-".into());
                        if p == 64 {
                            idles = vec!["-".into(), "-".into()];
                        }
                        continue;
                    }
                    let cfg = SkelCfg {
                        m,
                        n: m,
                        b,
                        pr,
                        pc,
                        local: LocalLu::Recursive,
                        swap: RowSwapScheme::ReduceBcast,
                    };
                    let plain = skeleton_calu(cfg, mch.clone());
                    let la = skeleton_calu_lookahead(cfg, mch.clone());
                    cells.push(f2(plain.makespan() / la.makespan()));
                    if p == 64 {
                        let bp = TimeBreakdown::from_report(&plain);
                        let bl = TimeBreakdown::from_report(&la);
                        idles = vec![
                            format!("{:.1}", 100.0 * bp.idle),
                            format!("{:.1}", 100.0 * bl.idle),
                        ];
                    }
                }
                cells.extend(idles);
                t.row(cells);
            }
        }
        t.print(cli.csv);
        println!();
    }
}
