//! Table 7 regenerator: "for a given problem size and processor budget,
//! best CALU vs best PDGETRF" — the speedup a user actually gets, plus the
//! winning configurations and percent of theoretical peak, for both
//! machine models. Also prints the closed-form (Eq. 2/3) version for
//! comparison.
//!
//! Usage: `table7_best [--csv]`

use calu_bench::calu_table::best_vs_best;
use calu_bench::{f2, Cli, Table};
use calu_netsim::MachineConfig;
use calu_perfmodel::sweep::best_vs_best_speedup;

fn run(mch: &MachineConfig, cli: &Cli) {
    println!("\n## {}", mch.name);
    let mut t = Table::new(&[
        "m",
        "speedup",
        "CALU GFlops",
        "CALU P",
        "CALU b",
        "Prcnt",
        "PDGETRF GFlops",
        "PDGETRF P",
        "PDGETRF b",
        "Eq-model speedup",
    ]);
    for &m in &[1_000usize, 5_000, 10_000] {
        let (s, c, p) = best_vs_best(mch, m);
        let peak64 = c.p as f64 * mch.peak_flops() / 1e9;
        let (s_eq, _, _) = best_vs_best_speedup(mch, m, 64);
        t.row(vec![
            m.to_string(),
            f2(s),
            format!("{:.1}", c.gflops),
            c.p.to_string(),
            c.b.to_string(),
            format!("{:.1}", 100.0 * c.gflops / peak64),
            format!("{:.1}", p.gflops),
            p.p.to_string(),
            p.b.to_string(),
            f2(s_eq),
        ]);
    }
    t.print(cli.csv);
}

fn main() {
    let cli = Cli::parse();
    println!("# Table 7: best-CALU vs best-PDGETRF speedup (P <= 64, b in {{50,100,150}})");
    println!("# paper: POWER5 1.59 / 1.69 / 1.34 and XT4 1.53 / 1.26 / 1.31 for m = 10^3 / 5*10^3 / 10^4");
    run(&MachineConfig::power5(), &cli);
    run(&MachineConfig::xt4(), &cli);
}
