//! Profiling and regression front-end over the observability stack.
//!
//! Two modes:
//!
//! * `bench_report --trace PATH [--wall-s S] [--out PATH]` — parse a
//!   Chrome trace (e.g. `TRACE_serve.json`, or a `--trace-out` export
//!   from any bench bin), run `calu_obs::analyze` over it, and render the
//!   resulting [`Profile`] as a deterministic JSON report. Asserts the
//!   analysis invariants on the way out: every worker's compute +
//!   comm-wait + overhead + idle sums to wall-clock **exactly**, and the
//!   measured critical path is ≤ wall and ≥ every single worker's own
//!   longest span chain. (A bare trace carries no ledger/queue-delay side
//!   channels, so its busy time all lands in `compute` — the bins that
//!   have the side channels embed the fully attributed profile in their
//!   `BENCH_*.json` records.)
//! * `bench_report --diff A.json B.json [--tol REL]` — structural diff of
//!   two bench records (any `BENCH_*.json`): walks both JSON trees,
//!   reports every leaf that differs (numeric leaves with their relative
//!   difference, largest first) and every key present on one side only.
//!   Without `--tol` the diff is informational and always exits 0; with
//!   `--tol` the exit code is 1 if any numeric leaf moved by more than
//!   the given relative tolerance — the regression-detection mode CI can
//!   gate on.
//!
//! Host-dependent fields (`host_threads`, wall-clock seconds) *will*
//! differ across machines; pick comparison pairs (same host, or modeled
//! sections only) accordingly — see EXPERIMENTS.md on measured-speedup
//! honesty.

use calu_obs::analyze::longest_chain_ns;
use calu_obs::{parse_chrome_trace, JsonValue, Profile, ProfileInputs};
use std::collections::BTreeMap;

fn usage() -> ! {
    eprintln!(
        "usage: bench_report --trace PATH [--wall-s S] [--out PATH]\n\
         \u{20}      bench_report --diff A.json B.json [--tol REL]"
    );
    std::process::exit(2);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    })
}

/// One differing leaf between two records.
struct Diff {
    path: String,
    a: String,
    b: String,
    /// Relative difference for numeric leaves; `None` for type/shape/
    /// string/bool differences (always reported, never tolerated).
    rel: Option<f64>,
}

fn rel_diff(a: f64, b: f64) -> f64 {
    if a == b {
        0.0
    } else {
        (a - b).abs() / f64::max(a.abs(), b.abs())
    }
}

/// Walks both trees, collecting every difference with its JSON-pointer
/// path. Object keys are compared as sets (order changes are not
/// differences); arrays are compared element-wise.
fn diff_json(path: &str, a: &JsonValue, b: &JsonValue, out: &mut Vec<Diff>) {
    match (a.as_object(), b.as_object()) {
        (Some(ao), Some(bo)) => {
            let am: BTreeMap<&str, &JsonValue> = ao.iter().map(|(k, v)| (k.as_str(), v)).collect();
            let bm: BTreeMap<&str, &JsonValue> = bo.iter().map(|(k, v)| (k.as_str(), v)).collect();
            for (k, av) in &am {
                match bm.get(k) {
                    Some(bv) => diff_json(&format!("{path}/{k}"), av, bv, out),
                    None => out.push(Diff {
                        path: format!("{path}/{k}"),
                        a: "present".into(),
                        b: "missing".into(),
                        rel: None,
                    }),
                }
            }
            for k in bm.keys() {
                if !am.contains_key(k) {
                    out.push(Diff {
                        path: format!("{path}/{k}"),
                        a: "missing".into(),
                        b: "present".into(),
                        rel: None,
                    });
                }
            }
            return;
        }
        (None, None) => {}
        _ => {
            out.push(Diff { path: path.into(), a: a.to_json(), b: b.to_json(), rel: None });
            return;
        }
    }
    match (a.as_array(), b.as_array()) {
        (Some(aa), Some(ba)) => {
            if aa.len() != ba.len() {
                out.push(Diff {
                    path: path.into(),
                    a: format!("{} elements", aa.len()),
                    b: format!("{} elements", ba.len()),
                    rel: None,
                });
            }
            for (i, (av, bv)) in aa.iter().zip(ba).enumerate() {
                diff_json(&format!("{path}/{i}"), av, bv, out);
            }
            return;
        }
        (None, None) => {}
        _ => {
            out.push(Diff { path: path.into(), a: a.to_json(), b: b.to_json(), rel: None });
            return;
        }
    }
    if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
        if x != y {
            out.push(Diff {
                path: path.into(),
                a: a.to_json(),
                b: b.to_json(),
                rel: Some(rel_diff(x, y)),
            });
        }
        return;
    }
    if a.to_json() != b.to_json() {
        out.push(Diff { path: path.into(), a: a.to_json(), b: b.to_json(), rel: None });
    }
}

fn run_trace(path: &str, wall_s: f64, out: Option<&str>) {
    let spans = parse_chrome_trace(&read(path)).unwrap_or_else(|e| {
        eprintln!("{path} is not a valid chrome trace: {e}");
        std::process::exit(2);
    });
    // A bare trace has no ledger or queue-delay side channels; the
    // partition still holds exactly, with busy time reported as compute.
    let profile = Profile::build(&spans, ProfileInputs { wall_s, ..Default::default() });
    for w in &profile.workers {
        assert!(
            w.partition_exact(),
            "lane ({},{}) violates the sum-to-wall partition",
            w.pid,
            w.tid
        );
    }
    assert!(profile.measured_cp_ns <= profile.wall_ns, "measured critical path exceeds wall-clock");
    // Each worker's own longest chain bounds the global chain from below.
    let mut lanes: BTreeMap<(u32, u32), Vec<(u64, u64)>> = BTreeMap::new();
    for (s, iv) in spans.iter().zip(calu_obs::analyze::intervals_ns(&spans)) {
        lanes.entry((s.pid, s.tid)).or_default().push(iv);
    }
    for ((pid, tid), ivs) in lanes {
        assert!(
            longest_chain_ns(&ivs) <= profile.measured_cp_ns,
            "lane ({pid},{tid}) chains longer than the measured critical path"
        );
    }
    let report = JsonValue::obj()
        .set("report", "bench_report")
        .set("trace", path)
        .set("profile", profile.to_json());
    let text = report.pretty();
    match out {
        Some(p) => {
            std::fs::write(p, format!("{text}\n")).unwrap_or_else(|e| {
                eprintln!("cannot write {p}: {e}");
                std::process::exit(2);
            });
            println!("wrote {p}");
        }
        None => println!("{text}"),
    }
    println!(
        "{} spans, {} workers: partition exact, measured CP {:.3}ms <= wall {:.3}ms ✓",
        profile.spans,
        profile.workers.len(),
        profile.measured_cp_ns as f64 / 1e6,
        profile.wall_ns as f64 / 1e6
    );
}

fn run_diff(a_path: &str, b_path: &str, tol: Option<f64>) {
    let parse = |path: &str| {
        JsonValue::parse(&read(path)).unwrap_or_else(|e| {
            eprintln!("{path} is not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let (a, b) = (parse(a_path), parse(b_path));
    let mut diffs = Vec::new();
    diff_json("", &a, &b, &mut diffs);
    // Largest numeric movement first; structural differences lead.
    diffs.sort_by(|x, y| y.rel.unwrap_or(f64::INFINITY).total_cmp(&x.rel.unwrap_or(f64::INFINITY)));
    if diffs.is_empty() {
        println!("{a_path} and {b_path}: identical");
        return;
    }
    println!("{a_path} vs {b_path}: {} differing leaves", diffs.len());
    for d in &diffs {
        match d.rel {
            Some(r) => println!("  {:>9.4}% {}: {} -> {}", r * 1e2, d.path, d.a, d.b),
            None => println!("  structural {}: {} -> {}", d.path, d.a, d.b),
        }
    }
    if let Some(tol) = tol {
        let worst = diffs.iter().filter_map(|d| d.rel).fold(0.0, f64::max);
        let structural = diffs.iter().filter(|d| d.rel.is_none()).count();
        if worst > tol || structural > 0 {
            eprintln!(
                "regression gate: worst relative change {:.4}% > {:.4}% tolerance \
                 (or {structural} structural changes)",
                worst * 1e2,
                tol * 1e2
            );
            std::process::exit(1);
        }
        println!("within tolerance {:.4}% ✓", tol * 1e2);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut trace: Option<String> = None;
    let mut wall_s = 0.0_f64;
    let mut out: Option<String> = None;
    let mut diff: Vec<String> = Vec::new();
    let mut tol: Option<f64> = None;
    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage();
            })
        };
        let parsed = |v: String| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad numeric value {v:?}");
                usage();
            })
        };
        match flag.as_str() {
            "--trace" => trace = Some(val()),
            "--wall-s" => wall_s = parsed(val()),
            "--out" => out = Some(val()),
            "--diff" => {
                diff.push(val());
                diff.push(val());
            }
            "--tol" => tol = Some(parsed(val())),
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_report --trace PATH [--wall-s S] [--out PATH]\n\
                     \u{20}      bench_report --diff A.json B.json [--tol REL]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                usage();
            }
        }
    }
    match (trace, diff.len()) {
        (Some(path), 0) => run_trace(&path, wall_s, out.as_deref()),
        (None, 2) => run_diff(&diff[0], &diff[1], tol),
        _ => usage(),
    }
}
