//! Mixed-precision performance record: `f32` vs `f64` CALU factorization
//! (both on the task-graph runtime) and the convergence of the
//! iterative-refinement solver, written as `BENCH_precision.json` so CI
//! and later sessions can diff it.
//!
//! Three records, because the container running CI may be slow, noisy, or
//! single-core:
//!
//! * **measured**: wall-clock of the `f32` vs the `f64` runtime
//!   factorization on the host, plus the end-to-end `ir_solve` time;
//! * **modeled**: the same DAG's critical path under the POWER5 γ rates
//!   at each precision ([`MachineConfig::for_precision`]) — the
//!   host-independent claim;
//! * **convergence**: the per-iteration backward-error trajectory of
//!   `ir_solve` and whether the `f64` HPL gate passed.
//!
//! Usage: `precision_calu [--n N] [--nb NB] [--reps R] [--out PATH]
//! [--trace-out PATH]` (defaults: n=768, nb=96, reps=1,
//! out=BENCH_precision.json). With `--trace-out`, one extra `f32` run
//! exports its task timeline as a Chrome trace for `bench_report --trace`.

use calu_bench::{write_record, HostInfo};
use calu_core::{ir_solve, runtime_calu_factor, CaluOpts, IrOpts, RuntimeOpts};
use calu_matrix::{gen, Matrix, Scalar};
use calu_netsim::{MachineConfig, Precision};
use calu_obs::{JsonValue, Recorder};
use calu_runtime::{modeled_time, ExecutorKind, LuDag, LuShape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Args {
    n: usize,
    nb: usize,
    reps: usize,
    out: String,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args =
        Args { n: 768, nb: 96, reps: 1, out: "BENCH_precision.json".into(), trace_out: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}; try --help");
                std::process::exit(2);
            })
        };
        let parsed = |v: String| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad numeric value {v:?}; try --help");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--n" => args.n = parsed(val()),
            "--nb" => args.nb = parsed(val()),
            "--reps" => args.reps = parsed(val()),
            "--out" => args.out = val(),
            "--trace-out" => args.trace_out = Some(val()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: precision_calu [--n N] [--nb NB] [--reps R] [--out PATH] \
                     [--trace-out PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

fn best_of<F: FnMut() -> f64>(reps: usize, mut f: F) -> f64 {
    (0..reps.max(1)).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn time_factor<T: Scalar>(a: &Matrix<T>, opts: CaluOpts, rt: RuntimeOpts, reps: usize) -> f64 {
    best_of(reps, || {
        let t0 = Instant::now();
        let (f, _rep) = runtime_calu_factor(a, opts, rt).expect("factorization succeeds");
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(f.ipiv.len(), a.rows().min(a.cols()));
        dt
    })
}

fn main() {
    let args = parse_args();
    let (n, nb) = (args.n, args.nb);
    let host = HostInfo::detect(0);
    let host_threads = host.host_threads;
    let mut rng = StdRng::seed_from_u64(2025);
    let a64: Matrix<f64> = gen::randn(&mut rng, n, n);
    let a32: Matrix<f32> = a64.cast();
    let b: Vec<f64> = gen::hpl_rhs(&mut rng, n);

    let opts = CaluOpts { block: nb, p: 4, ..Default::default() };
    let rt = RuntimeOpts {
        lookahead: 2,
        executor: ExecutorKind::Threaded { threads: 0 },
        parallel_panel: false,
    };

    println!("precision_calu: {n}x{n}, nb={nb}, host_threads={host_threads}, reps={}", args.reps);

    // --- Measured factor times at both precisions, same DAG/schedule.
    let t64 = time_factor(&a64, opts, rt, args.reps);
    let t32 = time_factor(&a32, opts, rt, args.reps);
    println!(
        "factor f64: {:.1} ms   factor f32: {:.1} ms   speedup {:.2}x",
        t64 * 1e3,
        t32 * 1e3,
        t64 / t32
    );

    // --- Modeled critical path at each precision (host-independent).
    let shape = LuShape { m: n, n, nb };
    let dag = LuDag::build(shape, rt.lookahead);
    let mch = MachineConfig::power5();
    let cp = |p: Precision| {
        let m = mch.for_precision(p);
        dag.critical_path(|t| modeled_time(&shape, t, &m))
    };
    let (cp64, cp32) = (cp(Precision::F64), cp(Precision::F32));
    println!(
        "modeled CP f64: {:.1} ms   f32: {:.1} ms   speedup {:.2}x (power5 rates)",
        cp64 * 1e3,
        cp32 * 1e3,
        cp64 / cp32
    );

    if let Some(path) = &args.trace_out {
        // One extra f32 run, replayed into a Chrome trace so
        // `bench_report --trace` can profile the low-precision schedule.
        let (f, rep) = runtime_calu_factor(&a32, opts, rt).expect("traced run succeeds");
        assert_eq!(f.ipiv.len(), n);
        let rec = Recorder::new();
        rep.record_into(&rec, 0.0);
        std::fs::write(path, rec.chrome_trace()).expect("write trace json");
        println!("wrote {path} ({} spans)", rec.len());
    }

    // --- ir_solve end to end: f32 factor + f64 refinement.
    let ir_opts = IrOpts { calu: opts, rt, max_iter: 10 };
    let t0 = Instant::now();
    let (_x, report) = ir_solve(&a64, &b, ir_opts).expect("well-conditioned ensemble");
    let t_ir = t0.elapsed().as_secs_f64();
    println!(
        "ir_solve: {:.1} ms, {} refinement steps, converged={}, final wb={:.2e}",
        t_ir * 1e3,
        report.iterations,
        report.converged,
        report.final_backward_error()
    );
    for (k, s) in report.steps.iter().enumerate() {
        println!(
            "  step {k}: backward_error={:.3e}  hpl=[{:.2}, {:.2}, {:.2}]",
            s.backward_error, s.hpl[0], s.hpl[1], s.hpl[2]
        );
    }

    let steps: JsonValue = report
        .steps
        .iter()
        .map(|s| {
            JsonValue::obj()
                .set("backward_error", s.backward_error)
                .set("hpl1", s.hpl[0])
                .set("hpl2", s.hpl[1])
                .set("hpl3", s.hpl[2])
        })
        .collect();
    let record = host
        .stamp(
            JsonValue::obj()
                .set("bench", "precision_calu")
                .set("n", n)
                .set("nb", nb)
                .set("communicator", "shared_memory"),
        )
        .set("reps", args.reps)
        .set("model", "power5")
        .set("factor_f64_s", t64)
        .set("factor_f32_s", t32)
        .set("measured_f32_speedup", t64 / t32)
        .set("modeled_cp_f64_s", cp64)
        .set("modeled_cp_f32_s", cp32)
        .set("modeled_f32_speedup", cp64 / cp32)
        .set("ir_solve_s", t_ir)
        .set("ir_iterations", report.iterations)
        .set("ir_converged", report.converged)
        .set("ir_steps", steps);
    write_record(&args.out, &record);
}
