//! Table 3 regenerator: time ratio of `PDGETF2` to TSLU on the IBM POWER5
//! machine model, for recursive (`Rec`) and classic (`Cl`) local LU.
//!
//! Usage: `table3_tslu_power5 [--csv]` (skeleton simulation — always runs
//! the paper-scale sweep; it takes seconds).

use calu_bench::tslu_table::{build, tslu_gflops};
use calu_bench::Cli;
use calu_core::LocalLu;
use calu_netsim::MachineConfig;

fn main() {
    let cli = Cli::parse();
    let mch = MachineConfig::power5();
    println!("# Table 3: PDGETF2 / TSLU time ratio, IBM POWER5 model");
    println!("# paper headline: best 4.37 (m=10^6, n=150, P=16); TSLU 215 GFLOP/s on 64 procs\n");
    build(&mch).print(cli.csv);
    let g = tslu_gflops(&mch, 1_000_000, 150, 64, LocalLu::Recursive);
    let pct = 100.0 * g / (64.0 * mch.peak_flops() / 1e9);
    println!(
        "\nTSLU m=10^6 n=150 P=64: {g:.0} GFLOP/s ({pct:.0}% of 64-proc peak; paper: 215, 44%)"
    );
}
