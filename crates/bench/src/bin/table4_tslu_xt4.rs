//! Table 4 regenerator: time ratio of `PDGETF2` to TSLU on the Cray XT4
//! machine model, recursive vs classic local LU.
//!
//! Usage: `table4_tslu_xt4 [--csv]`

use calu_bench::tslu_table::{build, tslu_gflops};
use calu_bench::Cli;
use calu_core::LocalLu;
use calu_netsim::MachineConfig;

fn main() {
    let cli = Cli::parse();
    let mch = MachineConfig::xt4();
    println!("# Table 4: PDGETF2 / TSLU time ratio, Cray XT4 model");
    println!("# paper headline: best 5.58 (m=10^6, n=150, P=4); TSLU 240 GFLOP/s on 64 procs\n");
    build(&mch).print(cli.csv);
    let g = tslu_gflops(&mch, 1_000_000, 150, 64, LocalLu::Recursive);
    let pct = 100.0 * g / (64.0 * mch.peak_flops() / 1e9);
    println!(
        "\nTSLU m=10^6 n=150 P=64: {g:.0} GFLOP/s ({pct:.0}% of 64-proc peak; paper: 240, 36%)"
    );
}
