//! Figure 2 regenerator: growth factor `gT` (left panel) and minimum pivot
//! threshold `τ_min` (right panel) for ca-pivoting on random normal
//! matrices, versus the Trefethen-Schreiber reference curves `n^(2/3)` and
//! `2 n^(2/3)` and a GEPP control. Two samples per point, as in the paper.
//!
//! Usage: `fig2_growth [--full] [--csv]`

use calu_bench::{f2, Cli, Table};
use calu_core::{calu_inplace, gepp_inplace, CaluOpts, PivotStats};
use calu_matrix::gen;
use calu_stability::growth::growth_reference;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse();
    let ns: Vec<usize> = if cli.full { vec![1024, 2048, 4096, 8192] } else { vec![256, 512, 1024] };
    // (P, b) legend entries; the reduced sweep scales them down with n.
    let configs: Vec<(usize, usize)> = if cli.full {
        vec![(256, 32), (128, 64), (128, 32), (64, 128), (64, 32), (64, 16)]
    } else {
        vec![(32, 16), (16, 32), (16, 16), (8, 32)]
    };
    let samples = 2;

    let mut t = Table::new(&[
        "n",
        "P",
        "b",
        "gT(ca-piv)",
        "tau_min",
        "tau_ave",
        "max|L|",
        "gT(GEPP)",
        "n^(2/3)",
        "2n^(2/3)",
    ]);
    for &n in &ns {
        // GEPP control once per n.
        let mut g_gepp = 0.0;
        for s in 0..samples {
            let mut rng = StdRng::seed_from_u64(0xF160 + s);
            let a = gen::randn(&mut rng, n, n);
            let mut stats = PivotStats::new(a.max_abs());
            let mut w = a.clone();
            gepp_inplace(w.view_mut(), 64.min(n / 4).max(1), &mut stats).unwrap();
            g_gepp += stats.growth_factor(1.0);
        }
        g_gepp /= samples as f64;

        for &(p, b) in &configs {
            if n / p == 0 || b >= n {
                continue;
            }
            let (mut g, mut tmin, mut tave, mut ml) = (0.0, f64::INFINITY, 0.0, 0.0_f64);
            for s in 0..samples {
                let mut rng = StdRng::seed_from_u64(0xF162 + s);
                let a = gen::randn(&mut rng, n, n);
                let mut stats = PivotStats::new(a.max_abs());
                let mut w = a.clone();
                calu_inplace(
                    w.view_mut(),
                    CaluOpts { block: b, p, parallel_update: true, ..Default::default() },
                    &mut stats,
                )
                .unwrap();
                g += stats.growth_factor(1.0);
                tmin = tmin.min(stats.tau_min());
                tave += stats.tau_ave();
                ml = ml.max(stats.max_l);
            }
            g /= samples as f64;
            tave /= samples as f64;
            t.row(vec![
                n.to_string(),
                p.to_string(),
                b.to_string(),
                f2(g),
                f2(tmin),
                f2(tave),
                f2(ml),
                f2(g_gepp),
                f2(growth_reference(n, 1.0)),
                f2(growth_reference(n, 2.0)),
            ]);
        }
    }
    println!("# Figure 2: growth factor and minimum threshold (randn, ca-pivoting)");
    println!("# paper: gT ~ c*n^(2/3) with c ~ 1.5, tau_min >= 0.33 (i.e. |L| <= 3)\n");
    t.print(cli.csv);
}
