//! Table 5 regenerator: time ratio of `PDGETRF` to CALU (Impvt) and CALU
//! GFLOP/s on the IBM POWER5 machine model.
//!
//! Usage: `table5_calu_power5 [--csv]`

use calu_bench::calu_table::build;
use calu_bench::Cli;
use calu_netsim::MachineConfig;

fn main() {
    let cli = Cli::parse();
    println!("# Table 5: PDGETRF / CALU time ratio + CALU GFLOP/s, IBM POWER5 model");
    println!(
        "# paper headline: best 2.29 (m=10^3, b=100, P=64); 213.9 GFLOP/s at m=10^4, b=50, P=64\n"
    );
    build(&MachineConfig::power5()).print(cli.csv);
}
