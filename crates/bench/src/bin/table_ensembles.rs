//! Ensemble-robustness table (extension of Section 6.1's remark that
//! ca-pivoting behaves the same on "different random distributions" and
//! "dense Toeplitz matrices"): CALU vs GEPP stability statistics across
//! five matrix ensembles.
//!
//! Usage: `table_ensembles [--full] [--csv]`

use calu_bench::{f2, sci, Cli, Table};
use calu_stability::{run_calu_ensemble_case, run_gepp_ensemble_case, Ensemble};

fn main() {
    let cli = Cli::parse();
    let (n, samples) = if cli.full { (1024, 5) } else { (192, 2) };
    let (p, b) = (4, n / 12);

    println!("# Ensemble robustness: ca-pivoting vs GEPP at n={n}, P={p}, b={b}, S={samples}");
    println!("# paper: \"different random distributions, dense Toeplitz matrices ...");
    println!("#         we have obtained similar results\" (Section 6.1)");
    println!("# expectations: tau_min >= ~0.33, |L| <= ~3, wb ~ 1e-14, HPL2/3 pass everywhere;");
    println!("#               HPL1 legitimately fails on the kappa=1e8 graded ensemble\n");

    let mut t = Table::new(&[
        "ensemble", "alg", "gT", "tau_ave", "tau_min", "max|L|", "wb", "HPL1", "HPL2", "HPL3",
        "passes",
    ]);
    for ens in [
        Ensemble::Normal,
        Ensemble::Uniform,
        Ensemble::Toeplitz,
        Ensemble::Graded,
        Ensemble::Hadamard,
    ] {
        let c = run_calu_ensemble_case(ens, n, p, b, samples, 9_000);
        let g = run_gepp_ensemble_case(ens, n, b, samples, 9_000);
        for (alg, row) in [("CALU", &c), ("GEPP", &g)] {
            t.row(vec![
                format!("{ens:?}"),
                alg.into(),
                f2(row.g_t),
                f2(row.tau_ave),
                f2(row.tau_min),
                f2(row.max_l),
                sci(row.wb),
                sci(row.hpl.hpl1),
                sci(row.hpl.hpl2),
                sci(row.hpl.hpl3),
                if row.hpl.passes() { "yes".into() } else { "no (HPL1)".into() },
            ]);
        }
    }
    t.print(cli.csv);
}
