//! Table 2 regenerator: the GEPP control for Table 1 — growth factor,
//! componentwise backward error, and HPL residuals at the same orders.
//!
//! Usage: `table2_hpl_gepp [--full] [--csv]`

use calu_bench::stability_table::gepp_table;
use calu_bench::Cli;

fn main() {
    let cli = Cli::parse();
    println!("# Table 2: HPL accuracy tests for LU with partial pivoting (randn)");
    println!("# paper: same orders of magnitude as CALU (Table 1)\n");
    gepp_table(&cli).print(cli.csv);
}
