//! Cross-validation of the paper's closed-form models (Equations 1-3)
//! against the discrete-event simulator, plus the row-swap ablation
//! (`PDLASWP` per-row messages vs the paper's reduce+broadcast) called out
//! in Section 4.
//!
//! The closed forms use a single flop rate γ; the simulator distinguishes
//! BLAS-1/2/3 rates. Agreement is therefore expected on *communication*
//! terms (message schedules are identical) and within a small factor on
//! compute-dominated cells.
//!
//! Usage: `model_check [--csv]`

use calu_bench::{f2, Cli, Table};
use calu_core::dist::{
    skeleton_calu, skeleton_pdgetrf, skeleton_tslu, skeleton_tslu_tree, RowSwapScheme, SkelCfg,
    TsluTree,
};
use calu_core::LocalLu;
use calu_netsim::MachineConfig;
use calu_perfmodel::equations::{t_calu, t_pdgetrf, t_tslu};

fn main() {
    let cli = Cli::parse();
    let mch = MachineConfig::power5();

    println!("# Model check: Equations (1)-(3) vs discrete-event simulation (POWER5 model)\n");

    // ---- Eq. (1) vs skeleton TSLU.
    let mut t1 = Table::new(&["m", "b", "P", "sim (s)", "Eq.1 (s)", "sim/eq"]);
    for &(m, b, p) in
        &[(10_000usize, 50usize, 4usize), (100_000, 100, 16), (1_000_000, 150, 64), (1_000, 50, 16)]
    {
        let sim = skeleton_tslu(m, b, p, LocalLu::Recursive, mch.clone()).makespan();
        let eq = t_tslu(&mch, m, b, p).total();
        t1.row(vec![
            m.to_string(),
            b.to_string(),
            p.to_string(),
            format!("{sim:.3e}"),
            format!("{eq:.3e}"),
            f2(sim / eq),
        ]);
    }
    println!("## TSLU (Eq. 1)");
    t1.print(cli.csv);

    // ---- Eq. (2)/(3) vs 2D skeletons.
    let mut t2 = Table::new(&["m", "b", "grid", "alg", "sim (s)", "Eq (s)", "sim/eq"]);
    for &(m, b, pr, pc) in
        &[(1_000usize, 50usize, 4usize, 4usize), (5_000, 100, 4, 8), (10_000, 50, 8, 8)]
    {
        let cfg = SkelCfg {
            m,
            n: m,
            b,
            pr,
            pc,
            local: LocalLu::Recursive,
            swap: RowSwapScheme::ReduceBcast,
        };
        let sim_c = skeleton_calu(cfg, mch.clone()).makespan();
        let eq_c = t_calu(&mch, m, m, b, pr, pc).total();
        t2.row(vec![
            m.to_string(),
            b.to_string(),
            format!("{pr}x{pc}"),
            "CALU".into(),
            format!("{sim_c:.3e}"),
            format!("{eq_c:.3e}"),
            f2(sim_c / eq_c),
        ]);
        let cfg_p = SkelCfg { local: LocalLu::Classic, swap: RowSwapScheme::PdLaswp, ..cfg };
        let sim_p = skeleton_pdgetrf(cfg_p, mch.clone()).makespan();
        let eq_p = t_pdgetrf(&mch, m, m, b, pr, pc).total();
        t2.row(vec![
            m.to_string(),
            b.to_string(),
            format!("{pr}x{pc}"),
            "PDGETRF".into(),
            format!("{sim_p:.3e}"),
            format!("{eq_p:.3e}"),
            f2(sim_p / eq_p),
        ]);
    }
    println!("\n## CALU / PDGETRF (Eqs. 2-3)");
    t2.print(cli.csv);

    // ---- Ablation: row-swap scheme inside CALU (Section 4 discussion).
    let mut t3 = Table::new(&["m", "b", "grid", "reduce+bcast (s)", "pdlaswp (s)", "laswp/rb"]);
    for &(m, b, pr, pc) in
        &[(1_000usize, 50usize, 8usize, 8usize), (5_000, 50, 8, 8), (10_000, 100, 8, 8)]
    {
        let base = SkelCfg {
            m,
            n: m,
            b,
            pr,
            pc,
            local: LocalLu::Recursive,
            swap: RowSwapScheme::ReduceBcast,
        };
        let rb = skeleton_calu(base, mch.clone()).makespan();
        let lw =
            skeleton_calu(SkelCfg { swap: RowSwapScheme::PdLaswp, ..base }, mch.clone()).makespan();
        t3.row(vec![
            m.to_string(),
            b.to_string(),
            format!("{pr}x{pc}"),
            format!("{rb:.3e}"),
            format!("{lw:.3e}"),
            f2(lw / rb),
        ]);
    }
    println!("\n## Ablation: CALU row-swap scheme (paper Section 4)");
    t3.print(cli.csv);

    // ---- Ablation: tournament reduction-tree shape.
    let mut t4 = Table::new(&["m", "b", "P", "butterfly (s)", "reduce+bcast (s)", "flat (s)"]);
    for &(m, b, p) in &[(1_000usize, 50usize, 16usize), (10_000, 50, 32), (100_000, 150, 64)] {
        let run =
            |tree| skeleton_tslu_tree(m, b, p, LocalLu::Recursive, tree, mch.clone()).makespan();
        t4.row(vec![
            m.to_string(),
            b.to_string(),
            p.to_string(),
            format!("{:.3e}", run(TsluTree::Butterfly)),
            format!("{:.3e}", run(TsluTree::ReduceBcast)),
            format!("{:.3e}", run(TsluTree::Flat)),
        ]);
    }
    println!("\n## Ablation: TSLU reduction-tree shape");
    t4.print(cli.csv);
}
