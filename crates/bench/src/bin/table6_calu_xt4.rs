//! Table 6 regenerator: time ratio of `PDGETRF` to CALU (Impvt) and CALU
//! GFLOP/s on the Cray XT4 machine model.
//!
//! Usage: `table6_calu_xt4 [--csv]`

use calu_bench::calu_table::build;
use calu_bench::Cli;
use calu_netsim::MachineConfig;

fn main() {
    let cli = Cli::parse();
    println!("# Table 6: PDGETRF / CALU time ratio + CALU GFLOP/s, Cray XT4 model");
    println!("# paper headline: best 1.81 (m=10^3, b=100, P=64); smaller gains than POWER5\n");
    build(&MachineConfig::xt4()).print(cli.csv);
}
