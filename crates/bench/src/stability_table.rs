//! Shared sweep logic for the stability experiments (Figure 2, Tables 1-2).

use crate::{f2, sci, Cli, Table};
use calu_stability::suite::{hpl_sample_size, run_calu_case, run_gepp_case, StabilityRow};

/// The `(n, P, b)` cells of Table 1 / Figure 2. The reduced sweep keeps the
/// laptop run under a couple of minutes; `--full` runs the paper's sizes
/// (n up to 8192 — hours on two cores).
pub fn calu_cells(cli: &Cli) -> Vec<(usize, usize, usize)> {
    if cli.full {
        // The paper's Table 1 cells, top to bottom.
        vec![
            (8192, 256, 32),
            (8192, 256, 16),
            (8192, 128, 64),
            (8192, 128, 32),
            (8192, 128, 16),
            (8192, 64, 64),
            (8192, 64, 32),
            (8192, 64, 16),
            (4096, 256, 16),
            (4096, 128, 32),
            (4096, 128, 16),
            (4096, 64, 64),
            (4096, 64, 32),
            (4096, 64, 16),
            (2048, 128, 16),
            (2048, 64, 32),
            (2048, 64, 16),
            (1024, 64, 16),
        ]
    } else {
        // Same structure, reduced sizes; tournament height and block keep
        // their paper ratios to n.
        vec![
            (1024, 64, 16),
            (1024, 32, 16),
            (1024, 16, 32),
            (512, 32, 16),
            (512, 16, 16),
            (256, 16, 16),
            (256, 8, 16),
        ]
    }
}

/// Sizes for the GEPP control (Table 2).
pub fn gepp_cells(cli: &Cli) -> Vec<usize> {
    if cli.full {
        vec![8192, 4096, 2048, 1024]
    } else {
        vec![1024, 512, 256]
    }
}

/// Samples per cell: the paper's rule, capped at 3 in the reduced sweep.
pub fn samples_for(n: usize, cli: &Cli) -> usize {
    let s = hpl_sample_size(n);
    if cli.full {
        s
    } else {
        s.min(3)
    }
}

/// Renders Table 1 rows.
pub fn calu_table(cli: &Cli) -> Table {
    let mut t = Table::new(&[
        "n", "P", "b", "S", "gT", "tau_ave", "tau_min", "wb", "HPL1", "HPL2", "HPL3", "max|L|",
    ]);
    for (n, p, b) in calu_cells(cli) {
        let s = samples_for(n, cli);
        let row = run_calu_case(n, p, b, s, 0xCA1);
        t.row(stability_cells(&row, true));
    }
    t
}

/// Renders Table 2 rows.
pub fn gepp_table(cli: &Cli) -> Table {
    let mut t = Table::new(&["n", "S", "gT", "wb", "HPL1", "HPL2", "HPL3"]);
    for n in gepp_cells(cli) {
        let s = samples_for(n, cli);
        let row = run_gepp_case(n, 64.min(n / 4).max(1), s, 0x6E99);
        t.row(vec![
            row.n.to_string(),
            row.samples.to_string(),
            f2(row.g_t),
            sci(row.wb),
            sci(row.hpl.hpl1),
            sci(row.hpl.hpl2),
            sci(row.hpl.hpl3),
        ]);
    }
    t
}

fn stability_cells(row: &StabilityRow, with_pivot_cols: bool) -> Vec<String> {
    let mut v = vec![row.n.to_string()];
    if with_pivot_cols {
        v.push(row.p.to_string());
        v.push(row.b.to_string());
    }
    v.push(row.samples.to_string());
    v.push(f2(row.g_t));
    if with_pivot_cols {
        v.push(f2(row.tau_ave));
        v.push(f2(row.tau_min));
    }
    v.push(sci(row.wb));
    v.push(sci(row.hpl.hpl1));
    v.push(sci(row.hpl.hpl2));
    v.push(sci(row.hpl.hpl3));
    if with_pivot_cols {
        v.push(f2(row.max_l));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_sweep_is_small() {
        let cli = Cli::default();
        assert!(calu_cells(&cli).len() <= 8);
        assert!(samples_for(256, &cli) <= 3);
    }

    #[test]
    fn full_sweep_matches_paper_cells() {
        let cli = Cli { full: true, csv: false };
        let cells = calu_cells(&cli);
        assert_eq!(cells.len(), 18, "Table 1 has 18 CALU rows (19 with the duplicate block)");
        assert!(cells.contains(&(8192, 256, 32)));
        assert_eq!(samples_for(8192, &cli), 3);
        assert_eq!(samples_for(1024, &cli), 10);
    }
}
