//! # calu-bench — the paper's evaluation harness
//!
//! One regenerator binary per table/figure of the paper (see
//! `DESIGN.md`'s per-experiment index and `EXPERIMENTS.md` for recorded
//! results):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig2_growth` | Figure 2: growth factor + minimum threshold |
//! | `table1_hpl_calu` | Table 1: HPL accuracy tests for ca-pivoting |
//! | `table2_hpl_gepp` | Table 2: HPL accuracy tests for GEPP |
//! | `table3_tslu_power5` | Table 3: PDGETF2/TSLU ratios, IBM POWER5 |
//! | `table4_tslu_xt4` | Table 4: PDGETF2/TSLU ratios, Cray XT4 |
//! | `table5_calu_power5` | Table 5: PDGETRF/CALU ratios + GFLOP/s, POWER5 |
//! | `table6_calu_xt4` | Table 6: PDGETRF/CALU ratios + GFLOP/s, XT4 |
//! | `table7_best` | Table 7: best-vs-best speedups |
//! | `model_check` | Eqs. 1-3 vs simulator + row-swap ablation |
//! | `table_ensembles` | Section 6.1 remark: five-ensemble stability sweep |
//! | `fig_trend` | Introduction: future-architecture speedup trend |
//! | `ablation_lookahead` | Section 4: HPL-style look-ahead gain |
//! | `ablation_tree_stability` | tournament tree shape vs pivot quality |
//! | `fig_scaling` | strong/weak scaling curves, incl. a modern cluster |
//! | `section5_comparison` | Section 5's term-by-term cost comparison |
//! | `runtime_calu` | Section 7 multicore: serial vs threaded task-graph runtime, `BENCH_runtime.json` perf record |
//!
//! Numerics binaries accept `--full` (paper-scale sizes; slow) and default
//! to a reduced sweep; all accept `--csv`.
//!
//! The `benches/` directory holds criterion microbenchmarks of the real
//! (wall-clock) kernels on the host machine.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calu_table;
pub mod stability_table;
pub mod tslu_table;

/// Command-line options shared by the regenerator binaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cli {
    /// Run the paper-scale sweep (hours) instead of the reduced one.
    pub full: bool,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
}

impl Cli {
    /// Parses `--full` / `--csv` from `std::env::args`.
    pub fn parse() -> Self {
        let mut cli = Cli::default();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--full" => cli.full = true,
                "--csv" => cli.csv = true,
                "--help" | "-h" => {
                    eprintln!("options: --full (paper-scale sweep), --csv");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        cli
    }
}

/// A simple aligned-text / CSV table writer.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders to stdout, aligned text or CSV.
    pub fn print(&self, csv: bool) {
        if csv {
            println!("{}", self.headers.join(","));
            for r in &self.rows {
                println!("{}", r.join(","));
            }
            return;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(&widths) {
                s.push_str(&format!("{:>width$}  ", c, width = w));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("{}", "-".repeat(total));
        for r in &self.rows {
            line(r);
        }
    }
}

/// Formats a ratio with two decimals (the paper's table style).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats in scientific notation with two significant decimals
/// (the paper's `4.22e-14` style).
pub fn sci(x: f64) -> String {
    format!("{x:.2e}")
}

/// The paper's processor-count-to-grid mapping used in every table.
pub fn paper_grids() -> Vec<(usize, usize, usize)> {
    vec![(4, 2, 2), (8, 2, 4), (16, 4, 4), (32, 4, 8), (64, 8, 8)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.239), "1.24");
        assert_eq!(sci(4.22e-14), "4.22e-14");
    }

    #[test]
    fn grids_match_paper() {
        let g = paper_grids();
        assert_eq!(g[0], (4, 2, 2));
        assert_eq!(g[4], (64, 8, 8));
    }
}
