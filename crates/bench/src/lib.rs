//! # calu-bench — the paper's evaluation harness
//!
//! One regenerator binary per table/figure of the paper (see
//! `DESIGN.md`'s per-experiment index and `EXPERIMENTS.md` for recorded
//! results):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig2_growth` | Figure 2: growth factor + minimum threshold |
//! | `table1_hpl_calu` | Table 1: HPL accuracy tests for ca-pivoting |
//! | `table2_hpl_gepp` | Table 2: HPL accuracy tests for GEPP |
//! | `table3_tslu_power5` | Table 3: PDGETF2/TSLU ratios, IBM POWER5 |
//! | `table4_tslu_xt4` | Table 4: PDGETF2/TSLU ratios, Cray XT4 |
//! | `table5_calu_power5` | Table 5: PDGETRF/CALU ratios + GFLOP/s, POWER5 |
//! | `table6_calu_xt4` | Table 6: PDGETRF/CALU ratios + GFLOP/s, XT4 |
//! | `table7_best` | Table 7: best-vs-best speedups |
//! | `model_check` | Eqs. 1-3 vs simulator + row-swap ablation |
//! | `table_ensembles` | Section 6.1 remark: five-ensemble stability sweep |
//! | `fig_trend` | Introduction: future-architecture speedup trend |
//! | `ablation_lookahead` | Section 4: HPL-style look-ahead gain |
//! | `ablation_tree_stability` | tournament tree shape vs pivot quality |
//! | `fig_scaling` | strong/weak scaling curves, incl. a modern cluster |
//! | `section5_comparison` | Section 5's term-by-term cost comparison |
//! | `runtime_calu` | Section 7 multicore: serial vs threaded task-graph runtime, `BENCH_runtime.json` perf record |
//!
//! Numerics binaries accept `--full` (paper-scale sizes; slow) and default
//! to a reduced sweep; all accept `--csv`.
//!
//! The `benches/` directory holds criterion microbenchmarks of the real
//! (wall-clock) kernels on the host machine.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calu_table;
pub mod stability_table;
pub mod tslu_table;

use calu_obs::{JsonValue, Metrics};

/// Command-line options shared by the regenerator binaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cli {
    /// Run the paper-scale sweep (hours) instead of the reduced one.
    pub full: bool,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
}

impl Cli {
    /// Parses `--full` / `--csv` from `std::env::args`.
    pub fn parse() -> Self {
        let mut cli = Cli::default();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--full" => cli.full = true,
                "--csv" => cli.csv = true,
                "--help" | "-h" => {
                    eprintln!("options: --full (paper-scale sweep), --csv");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        cli
    }
}

/// A simple aligned-text / CSV table writer.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders to stdout, aligned text or CSV.
    pub fn print(&self, csv: bool) {
        if csv {
            println!("{}", self.headers.join(","));
            for r in &self.rows {
                println!("{}", r.join(","));
            }
            return;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(&widths) {
                s.push_str(&format!("{:>width$}  ", c, width = w));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("{}", "-".repeat(total));
        for r in &self.rows {
            line(r);
        }
    }
}

/// Formats a ratio with two decimals (the paper's table style).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats in scientific notation with two significant decimals
/// (the paper's `4.22e-14` style).
pub fn sci(x: f64) -> String {
    format!("{x:.2e}")
}

/// The paper's processor-count-to-grid mapping used in every table.
pub fn paper_grids() -> Vec<(usize, usize, usize)> {
    vec![(4, 2, 2), (8, 2, 4), (16, 4, 4), (32, 4, 8), (64, 8, 8)]
}

/// Host-parallelism detection shared by every `BENCH_*.json` regenerator.
///
/// The container running CI may be single-core, in which case a
/// "threaded vs serial" wall-clock ratio measures executor overhead, not
/// a parallel win. Each perf-record binary used to re-derive this flag
/// by hand; this is the one place the rule lives now: a measured speedup
/// is valid only when the executor actually gets more than one thread
/// *and* the host has more than one core to run them on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostInfo {
    /// Cores reported by `available_parallelism` (1 when unknown).
    pub host_threads: usize,
    /// Threads the threaded executor actually gets: the explicit request,
    /// or the host parallelism when the request is 0 ("use all cores").
    pub exec_threads: usize,
    /// Whether a threaded-vs-serial wall-clock ratio means anything here.
    pub measured_speedup_valid: bool,
}

impl HostInfo {
    /// Detects the host, resolving a `--threads` flag (0 = all cores).
    pub fn detect(threads_flag: usize) -> Self {
        let host_threads = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
        let exec_threads = if threads_flag == 0 { host_threads } else { threads_flag };
        HostInfo {
            host_threads,
            exec_threads,
            measured_speedup_valid: exec_threads > 1 && host_threads > 1,
        }
    }

    /// Stamps the host fields onto a `BENCH_*.json` record object.
    pub fn stamp(&self, record: JsonValue) -> JsonValue {
        record
            .set("host_threads", self.host_threads)
            .set("executor_threads", self.exec_threads)
            .set("measured_speedup_valid", self.measured_speedup_valid)
    }

    /// Records the same facts as gauges on a metrics registry, so a
    /// snapshot taken later carries the host context alongside the
    /// benchmark's own counters.
    pub fn record(&self, metrics: &Metrics) {
        metrics.gauge_set("host.threads", self.host_threads as f64);
        metrics.gauge_set("host.executor_threads", self.exec_threads as f64);
        metrics.gauge_set(
            "host.measured_speedup_valid",
            if self.measured_speedup_valid { 1.0 } else { 0.0 },
        );
    }
}

/// Writes a `BENCH_*.json` / `TRACE_*.json` record to `path` (pretty,
/// newline-terminated — the committed-artifact convention) and logs it.
pub fn write_record(path: &str, record: &JsonValue) {
    let mut text = record.pretty();
    text.push('\n');
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.239), "1.24");
        assert_eq!(sci(4.22e-14), "4.22e-14");
    }

    #[test]
    fn grids_match_paper() {
        let g = paper_grids();
        assert_eq!(g[0], (4, 2, 2));
        assert_eq!(g[4], (64, 8, 8));
    }

    #[test]
    fn host_info_resolves_thread_flags() {
        let host = HostInfo::detect(0);
        assert!(host.host_threads >= 1);
        assert_eq!(host.exec_threads, host.host_threads);
        assert_eq!(host.measured_speedup_valid, host.exec_threads > 1 && host.host_threads > 1);

        let pinned = HostInfo::detect(1);
        assert_eq!(pinned.exec_threads, 1);
        assert!(!pinned.measured_speedup_valid, "one executor thread is never a parallel win");
    }

    #[test]
    fn host_info_stamps_record_and_metrics() {
        let host = HostInfo { host_threads: 4, exec_threads: 2, measured_speedup_valid: true };
        let rec = host.stamp(JsonValue::obj().set("bench", "t"));
        assert_eq!(rec.get("host_threads").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(rec.get("executor_threads").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(rec.get("measured_speedup_valid").and_then(JsonValue::as_bool), Some(true));

        let m = Metrics::new();
        host.record(&m);
        assert_eq!(m.gauge("host.threads"), Some(4.0));
        assert_eq!(m.gauge("host.measured_speedup_valid"), Some(1.0));

        // Round-trip through the deterministic writer/parser.
        let parsed = JsonValue::parse(&rec.pretty()).expect("own output parses");
        assert_eq!(parsed, rec);
    }
}
