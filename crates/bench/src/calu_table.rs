//! Shared sweep logic for Tables 5-6: PDGETRF-to-CALU time ratios and CALU
//! GFLOP/s over the paper's `(m, b, grid)` sweep, and the best-vs-best
//! search of Table 7.

use crate::{f2, paper_grids, Table};
use calu_core::dist::{skeleton_calu, skeleton_pdgetrf, RowSwapScheme, SkelCfg};
use calu_core::LocalLu;
use calu_netsim::machine::flops_lu;
use calu_netsim::MachineConfig;

/// The paper's full-factorization sweep: square `m ∈ {10^3, 5·10^3, 10^4}`,
/// `b ∈ {50, 100, 150}`.
pub fn paper_sweep() -> (Vec<usize>, Vec<usize>) {
    (vec![1_000, 5_000, 10_000], vec![50, 100, 150])
}

/// Validity rule for a cell: every process row and column must own at
/// least one block (`m/b >= Pr` and `m/b >= Pc`), matching the blank cells
/// of Tables 5-6.
pub fn cell_valid(m: usize, b: usize, pr: usize, pc: usize) -> bool {
    m / b >= pr && m / b >= pc
}

/// Simulated times for one cell: `(t_calu, t_pdgetrf)`.
pub fn cell_times(machine: &MachineConfig, m: usize, b: usize, pr: usize, pc: usize) -> (f64, f64) {
    let calu_cfg =
        SkelCfg { m, n: m, b, pr, pc, local: LocalLu::Recursive, swap: RowSwapScheme::ReduceBcast };
    let pdg_cfg = SkelCfg { local: LocalLu::Classic, swap: RowSwapScheme::PdLaswp, ..calu_cfg };
    let t_calu = skeleton_calu(calu_cfg, machine.clone()).makespan();
    let t_pdg = skeleton_pdgetrf(pdg_cfg, machine.clone()).makespan();
    (t_calu, t_pdg)
}

/// Useful-flops GFLOP/s for a factorization of an `m x m` matrix in `t`
/// seconds (the paper reports `GFlops` this way).
pub fn gflops(m: usize, t: f64) -> f64 {
    flops_lu(m, m) / t / 1e9
}

/// Builds Table 5/6: rows `(m, b)`, columns `Impvt`/`GFlops` per grid.
pub fn build(machine: &MachineConfig) -> Table {
    let (ms, bs) = paper_sweep();
    let mut headers: Vec<String> = vec!["m=n".into(), "b".into()];
    for (p, pr, pc) in paper_grids() {
        headers.push(format!("P={p} ({pr}x{pc}) Impvt"));
        headers.push(format!("P={p} GFlops"));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&hdr_refs);

    for &m in &ms {
        for &b in &bs {
            let mut row = vec![format!("{m}"), format!("{b}")];
            for (_p, pr, pc) in paper_grids() {
                if cell_valid(m, b, pr, pc) {
                    let (tc, tp) = cell_times(machine, m, b, pr, pc);
                    row.push(f2(tp / tc));
                    row.push(format!("{:.1}", gflops(m, tc)));
                } else {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
            t.row(row);
        }
    }
    t
}

/// Best configuration found by the Table 7 search.
#[derive(Debug, Clone, Copy)]
pub struct Best {
    /// Simulated runtime, seconds.
    pub time: f64,
    /// Processor count.
    pub p: usize,
    /// Block size.
    pub b: usize,
    /// GFLOP/s at the best point.
    pub gflops: f64,
}

/// Table 7: independent best over `P ∈ {8..64}` (paper grids) and
/// `b ∈ {50,100,150}` for CALU and PDGETRF. Returns `(speedup, best CALU,
/// best PDGETRF)`.
pub fn best_vs_best(machine: &MachineConfig, m: usize) -> (f64, Best, Best) {
    let mut best_c: Option<Best> = None;
    let mut best_p: Option<Best> = None;
    for (p, pr, pc) in paper_grids() {
        if p < 8 {
            continue; // the paper's Table 7 sweeps 8..64
        }
        for &b in &[50usize, 100, 150] {
            if !cell_valid(m, b, pr, pc) {
                continue;
            }
            let (tc, tp) = cell_times(machine, m, b, pr, pc);
            if best_c.is_none_or(|x| tc < x.time) {
                best_c = Some(Best { time: tc, p, b, gflops: gflops(m, tc) });
            }
            if best_p.is_none_or(|x| tp < x.time) {
                best_p = Some(Best { time: tp, p, b, gflops: gflops(m, tp) });
            }
        }
    }
    let (c, p) = (best_c.expect("valid cells"), best_p.expect("valid cells"));
    (p.time / c.time, c, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_matches_paper_blanks() {
        // Table 5: m=10^3, b=150 missing at P=32 (4x8) and 64 (8x8).
        assert!(cell_valid(1_000, 150, 4, 4));
        assert!(!cell_valid(1_000, 150, 4, 8));
        assert!(cell_valid(1_000, 100, 8, 8));
        assert!(cell_valid(10_000, 150, 8, 8));
    }

    #[test]
    fn improvements_have_paper_shape_power5() {
        let mch = MachineConfig::power5();
        // m=10^3 on 64 procs: the paper's best regime (2.29x there).
        let (tc, tp) = cell_times(&mch, 1_000, 50, 8, 8);
        let small = tp / tc;
        assert!(small > 1.4, "small-matrix improvement {small}");
        // m=10^4 on 4 procs: compute-dominated, ratio near 1 (paper: 1.00).
        let (tc, tp) = cell_times(&mch, 10_000, 50, 2, 2);
        let large = tp / tc;
        assert!((0.9..1.35).contains(&large), "compute-bound ratio {large}");
        assert!(small > large);
    }

    #[test]
    fn best_vs_best_monotone_shape() {
        let mch = MachineConfig::power5();
        let (s1k, _, _) = best_vs_best(&mch, 1_000);
        let (s10k, bc10k, _) = best_vs_best(&mch, 10_000);
        assert!(s1k > 1.2, "{s1k}");
        assert!(s10k >= 0.95, "{s10k}");
        assert!(s1k > s10k);
        // Paper: best CALU at m=10^4 uses 64 procs.
        assert_eq!(bc10k.p, 64);
    }
}
