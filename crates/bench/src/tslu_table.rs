//! Shared sweep logic for Tables 3-4: PDGETF2-to-TSLU time ratios over the
//! paper's `(m, n = b, P)` grid, with classic (`Cl`) and recursive (`Rec`)
//! local LU columns.

use crate::{f2, Table};
use calu_core::dist::{skeleton_pdgetf2, skeleton_tslu};
use calu_core::LocalLu;
use calu_netsim::MachineConfig;

/// The paper's panel sweep: `m ∈ {10^3, 5·10^3, 10^4, 10^5, 10^6}`,
/// `n = b ∈ {50, 100, 150}`, `P ∈ {4, 8, 16, 32, 64}`.
pub fn paper_sweep() -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    (vec![1_000, 5_000, 10_000, 100_000, 1_000_000], vec![50, 100, 150], vec![4, 8, 16, 32, 64])
}

/// A cell is reported only when every processor owns at least a block-row
/// of the panel (the paper leaves cells blank when "the input matrix is too
/// small and some processors are not involved").
pub fn cell_valid(m: usize, b: usize, p: usize) -> bool {
    m / p >= b
}

/// Ratio of `PDGETF2` to TSLU simulated time for one cell.
pub fn ratio(machine: &MachineConfig, m: usize, b: usize, p: usize, local: LocalLu) -> f64 {
    let t_tslu = skeleton_tslu(m, b, p, local, machine.clone()).makespan();
    let t_pdf2 = skeleton_pdgetf2(m, b, p, machine.clone()).makespan();
    t_pdf2 / t_tslu
}

/// Builds the full table in the paper's layout: one row per `(m, n)`, one
/// `Rec`/`Cl` column pair per processor count.
pub fn build(machine: &MachineConfig) -> Table {
    let (ms, bs, ps) = paper_sweep();
    let mut headers: Vec<String> = vec!["m".into(), "n=b".into()];
    for p in &ps {
        headers.push(format!("P={p} Rec"));
        headers.push(format!("P={p} Cl"));
    }
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(&hdr_refs);

    for &m in &ms {
        for &b in &bs {
            let mut row = vec![format!("{m}"), format!("{b}")];
            for &p in &ps {
                if cell_valid(m, b, p) {
                    row.push(f2(ratio(machine, m, b, p, LocalLu::Recursive)));
                    row.push(f2(ratio(machine, m, b, p, LocalLu::Classic)));
                } else {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
            t.row(row);
        }
    }
    t
}

/// TSLU aggregate GFLOP/s (counting, as the paper does, the total flops
/// TSLU performs — both passes over the panel) for the best-performance
/// headline (`m = 10^6, n = 150` on 64 processors).
pub fn tslu_gflops(machine: &MachineConfig, m: usize, b: usize, p: usize, local: LocalLu) -> f64 {
    let rep = skeleton_tslu(m, b, p, local, machine.clone());
    rep.total_flops() / rep.makespan() / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_rule_matches_paper_blanks() {
        // Table 3: m=10^3, n=150 has entries only at P=4; n=100 up to P=8.
        assert!(cell_valid(1_000, 150, 4));
        assert!(!cell_valid(1_000, 150, 8));
        assert!(cell_valid(1_000, 100, 8));
        assert!(!cell_valid(1_000, 100, 16));
        assert!(cell_valid(1_000, 50, 16));
        assert!(!cell_valid(1_000, 50, 32));
        assert!(cell_valid(5_000, 50, 64));
    }

    #[test]
    fn headline_cells_have_paper_shape() {
        // POWER5: large panels, recursive local LU -> clear TSLU wins;
        // classic on huge panels loses (ratio < 1) because TSLU-Cl does 2x
        // the BLAS-2 flops.
        let mch = MachineConfig::power5();
        let rec_big = ratio(&mch, 1_000_000, 150, 16, LocalLu::Recursive);
        let cl_big = ratio(&mch, 1_000_000, 150, 16, LocalLu::Classic);
        assert!(rec_big > 2.0, "Rec at m=10^6: {rec_big}");
        assert!(cl_big < 1.1, "Cl at m=10^6: {cl_big}");
        // Small panel, many procs: both variants win on latency.
        let rec_small = ratio(&mch, 1_000, 50, 16, LocalLu::Recursive);
        assert!(rec_small > 1.3, "latency-bound cell: {rec_small}");
    }

    #[test]
    fn gflops_sane() {
        let mch = MachineConfig::power5();
        let g = tslu_gflops(&mch, 1_000_000, 150, 64, LocalLu::Recursive);
        // 64 procs x 6.5 GF peak = 416 GF; TSLU should land well inside.
        assert!(g > 20.0 && g < 416.0, "TSLU GFLOP/s {g}");
    }
}
