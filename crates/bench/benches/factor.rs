//! Criterion benchmark for full factorizations (the wall-clock analogue of
//! Tables 5-6): sequential CALU vs blocked GEPP vs rayon-parallel CALU vs
//! the lookahead-tiled multicore variant, plus the factor-consumer
//! routines (inverse, condition estimate).

use calu_core::{calu_factor, gepp_factor, par_calu_factor, tiled_calu_factor, CaluOpts};
use calu_matrix::lapack::{gecon, getrf, getri, GetrfOpts};
use calu_matrix::norms::mat_norm_1;
use calu_matrix::NoObs;
use calu_matrix::{gen, Matrix};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_factor(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_factorization");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(21);
    let n = 512;
    let a: Matrix = gen::randn(&mut rng, n, n);
    let opts = CaluOpts { block: 64, p: 4, ..Default::default() };
    g.bench_function("calu_seq_512", |bench| bench.iter(|| calu_factor(&a, opts).unwrap()));
    g.bench_function("calu_rayon_512", |bench| bench.iter(|| par_calu_factor(&a, opts).unwrap()));
    g.bench_function("calu_tiled_lookahead_512", |bench| {
        bench.iter(|| tiled_calu_factor(&a, opts).unwrap())
    });
    g.bench_function("gepp_512", |bench| bench.iter(|| gepp_factor(&a, 64).unwrap()));
    g.finish();
}

fn bench_factor_consumers(c: &mut Criterion) {
    let mut g = c.benchmark_group("factor_consumers");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(22);
    let n = 256;
    let a = gen::randn(&mut rng, n, n);
    let anorm: f64 = mat_norm_1(a.view());
    let mut lu = a.clone();
    let mut ipiv = vec![0usize; n];
    getrf(lu.view_mut(), &mut ipiv, GetrfOpts::default(), &mut NoObs).unwrap();

    g.bench_function("getri_256", |bench| {
        bench.iter(|| {
            let mut inv = lu.clone();
            getri(inv.view_mut(), &ipiv).unwrap();
            inv
        })
    });
    g.bench_function("gecon_256", |bench| bench.iter(|| gecon(lu.view(), &ipiv, anorm)));
    g.finish();
}

criterion_group!(benches, bench_factor, bench_factor_consumers);
criterion_main!(benches);
