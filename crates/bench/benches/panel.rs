//! Criterion benchmark for the panel factorization (the wall-clock
//! analogue of Tables 3-4): sequential TSLU (tournament + unpivoted LU)
//! versus a classic GEPP panel on tall-skinny matrices.

use calu_core::tslu::{gepp_panel, tslu_factor, LocalLu};
use calu_matrix::{gen, Matrix, NoObs};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_panel(c: &mut Criterion) {
    let mut g = c.benchmark_group("panel_factorization");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(11);
    for &(m, b) in &[(4096usize, 32usize), (8192, 64)] {
        let a0: Matrix = gen::randn(&mut rng, m, b);
        g.bench_function(format!("tslu_p4_rec_{m}x{b}"), |bench| {
            bench.iter_batched(
                || a0.clone(),
                |mut a| {
                    tslu_factor(a.view_mut(), 4, LocalLu::Recursive, &mut NoObs).unwrap();
                },
                BatchSize::LargeInput,
            )
        });
        g.bench_function(format!("tslu_p4_cl_{m}x{b}"), |bench| {
            bench.iter_batched(
                || a0.clone(),
                |mut a| {
                    tslu_factor(a.view_mut(), 4, LocalLu::Classic, &mut NoObs).unwrap();
                },
                BatchSize::LargeInput,
            )
        });
        g.bench_function(format!("gepp_panel_{m}x{b}"), |bench| {
            bench.iter_batched(
                || a0.clone(),
                |mut a| {
                    gepp_panel(a.view_mut(), &mut NoObs).unwrap();
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_panel);
criterion_main!(benches);
