//! Criterion benchmark for the discrete-event simulator itself: how fast
//! the table regenerators can sweep (one Table 5 cell = one `skeleton_calu`
//! + one `skeleton_pdgetrf` run).

use calu_core::dist::{skeleton_calu, skeleton_pdgetf2, skeleton_tslu, RowSwapScheme, SkelCfg};
use calu_core::LocalLu;
use calu_netsim::MachineConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim_skeletons");
    g.sample_size(10);
    g.bench_function("tslu_m1e6_b150_p64", |bench| {
        bench
            .iter(|| skeleton_tslu(1_000_000, 150, 64, LocalLu::Recursive, MachineConfig::power5()))
    });
    g.bench_function("pdgetf2_m1e5_b100_p16", |bench| {
        bench.iter(|| skeleton_pdgetf2(100_000, 100, 16, MachineConfig::power5()))
    });
    let cfg = SkelCfg {
        m: 10_000,
        n: 10_000,
        b: 100,
        pr: 8,
        pc: 8,
        local: LocalLu::Recursive,
        swap: RowSwapScheme::ReduceBcast,
    };
    g.bench_function("calu2d_m1e4_8x8", |bench| {
        bench.iter(|| skeleton_calu(cfg, MachineConfig::power5()))
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
