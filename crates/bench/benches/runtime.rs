//! Criterion benchmark for the task-graph runtime: DAG construction cost,
//! serial-replay vs. threaded execution at several lookahead depths, and
//! the old front-ends now routed through the runtime.

use calu_core::{runtime_calu_factor, tiled_calu_factor, CaluOpts, RuntimeOpts};
use calu_matrix::{gen, Matrix};
use calu_runtime::{ExecutorKind, LuDag, LuShape};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dag_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_dag_build");
    g.sample_size(10);
    for n in [1024usize, 4096] {
        let shape = LuShape { m: n, n, nb: 64 };
        g.bench_function(format!("build_{n}_nb64_d2"), |bench| {
            bench.iter(|| LuDag::build(shape, 2))
        });
    }
    g.finish();
}

fn bench_runtime_factor(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_factor");
    g.sample_size(10);
    let n = 512;
    let mut rng = StdRng::seed_from_u64(31);
    let a: Matrix = gen::randn(&mut rng, n, n);
    let opts = CaluOpts { block: 64, p: 4, ..Default::default() };
    for depth in [1usize, 2] {
        let serial =
            RuntimeOpts { lookahead: depth, executor: ExecutorKind::Serial, parallel_panel: false };
        g.bench_function(format!("serial_{n}_d{depth}"), |bench| {
            bench.iter(|| runtime_calu_factor(&a, opts, serial).unwrap())
        });
        let threaded = RuntimeOpts {
            lookahead: depth,
            executor: ExecutorKind::Threaded { threads: 0 },
            parallel_panel: false,
        };
        g.bench_function(format!("threaded_{n}_d{depth}"), |bench| {
            bench.iter(|| runtime_calu_factor(&a, opts, threaded).unwrap())
        });
    }
    g.bench_function(format!("tiled_frontend_{n}"), |bench| {
        bench.iter(|| tiled_calu_factor(&a, opts).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_dag_build, bench_runtime_factor);
criterion_main!(benches);
