//! Criterion microbenchmarks of the dense substrate kernels on the host:
//! `gemm` (serial and parallel), `trsm`, and the two panel factorization
//! kernels whose speed gap drives Tables 3-4 (`getf2` vs `rgetf2`).

use calu_matrix::blas3::{gemm, par_gemm, trsm};
use calu_matrix::lapack::{getf2, rgetf2};
use calu_matrix::{gen, Diag, Matrix, NoObs, Side, Uplo};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[128usize, 256] {
        let a = gen::randn(&mut rng, n, n);
        let b = gen::randn(&mut rng, n, n);
        let c0 = Matrix::zeros(n, n);
        g.bench_function(format!("serial_{n}"), |bench| {
            bench.iter_batched(
                || c0.clone(),
                |mut cc| gemm(1.0, a.view(), b.view(), 0.0, cc.view_mut()),
                BatchSize::LargeInput,
            )
        });
        g.bench_function(format!("rayon_{n}"), |bench| {
            bench.iter_batched(
                || c0.clone(),
                |mut cc| par_gemm(1.0, a.view(), b.view(), 0.0, cc.view_mut()),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("trsm");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    let n = 192;
    let mut l = gen::randn(&mut rng, n, n);
    for i in 0..n {
        l[(i, i)] = 1.0;
    }
    let b0 = gen::randn(&mut rng, n, n);
    g.bench_function("left_lower_unit_192", |bench| {
        bench.iter_batched(
            || b0.clone(),
            |mut bb| trsm(Side::Left, Uplo::Lower, Diag::Unit, 1.0, l.view(), bb.view_mut()),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_panel_kernels(c: &mut Criterion) {
    // The Rec-vs-Cl comparison of Tables 3-4 at host scale: a tall panel.
    let mut g = c.benchmark_group("panel_kernel");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    let (m, b) = (2048, 64);
    let a0: Matrix = gen::randn(&mut rng, m, b);
    g.bench_function("getf2_classic_2048x64", |bench| {
        bench.iter_batched(
            || a0.clone(),
            |mut a| {
                let mut ipiv = vec![0usize; b];
                getf2(a.view_mut(), &mut ipiv, &mut NoObs).unwrap();
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("rgetf2_recursive_2048x64", |bench| {
        bench.iter_batched(
            || a0.clone(),
            |mut a| {
                let mut ipiv = vec![0usize; b];
                rgetf2(a.view_mut(), &mut ipiv, &mut NoObs).unwrap();
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_trsm, bench_panel_kernels);
criterion_main!(benches);
