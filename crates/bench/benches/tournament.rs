//! Criterion benchmark for the tournament reduction operator (the redundant
//! work CALU pays for its latency savings): one `2b x b` GEPP per tree node
//! plus candidate bookkeeping.

use calu_core::{reduce_pair, tournament, Candidates};
use calu_matrix::gen;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn make_candidates(rng: &mut StdRng, b: usize, base: usize) -> Candidates {
    let block = gen::randn(rng, b, b);
    Candidates::from_block_row(&block, &(base..base + b).collect::<Vec<_>>())
}

fn bench_tournament(c: &mut Criterion) {
    let mut g = c.benchmark_group("tournament");
    let mut rng = StdRng::seed_from_u64(31);
    for &b in &[32usize, 64, 128] {
        let c0 = make_candidates(&mut rng, b, 0);
        let c1 = make_candidates(&mut rng, b, b);
        g.bench_function(format!("reduce_pair_b{b}"), |bench| bench.iter(|| reduce_pair(&c0, &c1)));
    }
    // Whole tournament at p = 16, b = 64 (one panel's preprocessing tree).
    let b = 64;
    let blocks: Vec<Candidates> = (0..16).map(|i| make_candidates(&mut rng, b, i * b)).collect();
    g.bench_function("tree_p16_b64", |bench| bench.iter(|| tournament(blocks.clone())));
    g.finish();
}

criterion_group!(benches, bench_tournament);
criterion_main!(benches);
